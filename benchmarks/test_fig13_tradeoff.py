"""Benchmark: Figure 13 — vulnerable time vs total user cost.

The paper's shape: the time-out baseline costs the users nothing but leaves
workstations vulnerable for orders of magnitude longer than FADEWICH; the
cost of FADEWICH rises slightly with the number of sensors and quickly
stabilises, while the vulnerable time keeps shrinking.
"""

from repro.analysis.comparison import compute_tradeoff, render_tradeoff

SENSOR_SWEEP = (3, 5, 7, 9)


def test_fig13_security_usability_tradeoff(benchmark, context):
    points = benchmark.pedantic(
        compute_tradeoff,
        args=(context, SENSOR_SWEEP),
        kwargs={"n_draws": 10},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_tradeoff(points))

    by_label = {p.label: p for p in points}
    timeout = by_label["timeout"]
    best = by_label["9 sensors"]
    worst = by_label["3 sensors"]

    # The time-out never interrupts users but leaves sessions exposed.
    assert timeout.total_cost_min == 0.0
    assert timeout.vulnerable_time_min > 0.0
    # FADEWICH reduces the vulnerable time dramatically (the paper shows
    # one-plus orders of magnitude).
    assert best.vulnerable_time_min < timeout.vulnerable_time_min / 3.0
    # More sensors keep shrinking the vulnerable time.
    assert best.vulnerable_time_min <= worst.vulnerable_time_min
    # The user cost stays bounded (minutes, not hours, over the campaign).
    assert best.total_cost_min < 30.0

"""Benchmark: Figure 2 — distribution of the sum of standard deviations.

Checks that the walking distribution sits visibly to the right of the
normal (quiet) profile and that the 99th-percentile threshold separates
them, which is the premise of the MD module.
"""

import numpy as np

from repro.analysis.md_profile import compute_std_profile, render_std_profile


def test_fig2_std_sum_profile(benchmark, campaign, config):
    result = benchmark(compute_std_profile, campaign, config, 0)
    print("\n" + render_std_profile(result))

    assert result.normal_values.size > 100
    assert result.walking_values.size > 0
    # Walking fluctuations exceed the quiet ones (the paper's Figure 2 gap).
    assert result.separation > 0.0
    assert np.median(result.walking_values) > np.median(result.normal_values)
    assert np.percentile(result.walking_values, 75) > result.percentile_99 * 0.9
    # The threshold lies in the upper tail of the normal profile.
    quiet_above = float(np.mean(result.normal_values >= result.percentile_99))
    assert quiet_above < 0.05

"""Benchmark: Figure 11 — correlation between per-stream variance features.

The paper's observation: streams between physically close devices react in
similar ways to a moving body, so their variance features correlate.
"""

from repro.analysis.feature_analysis import (
    compute_variance_correlations,
    render_variance_correlations,
)


def test_fig11_variance_correlations(benchmark, context):
    result = benchmark(compute_variance_correlations, context, 9)
    print("\n" + render_variance_correlations(result))

    n_streams = len(result.stream_ids)
    assert n_streams == 72
    assert result.correlation.matrix.shape == (n_streams, n_streams)

    # The two directions of the same physical link share the channel, so
    # their variance features correlate well above the matrix-wide average
    # (their noise is independent, so the correlation is not 1).
    forward = result.correlation.value("d1-d2", "d2-d1")
    assert forward > result.mean_absolute_correlation()
    assert forward > 0.15
    # Correlation structure exists but the matrix is not degenerate.
    mean_abs = result.mean_absolute_correlation()
    assert 0.02 < mean_abs < 0.95

"""Benchmark: Table V — the top-15 features ranked by RMI.

The paper lists the fifteen features with the highest relative mutual
information with the class label (a mix of autocorrelation, entropy and
variance features from different streams), computed with 256 quantisation
bins after removing highly correlated features.
"""

from repro.analysis.feature_analysis import compute_rmi_ranking, render_rmi_table


def test_table5_top_features_by_rmi(benchmark, context):
    ranked = benchmark.pedantic(
        compute_rmi_ranking,
        args=(context, 9),
        kwargs={"bins": 256, "drop_correlated_above": 0.95},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_rmi_table(ranked, top_k=15))

    assert len(ranked) >= 15
    top15 = ranked[:15]
    # Ranking is descending and every score is a valid RMI.
    for a, b in zip(top15, top15[1:]):
        assert a.rmi >= b.rmi
    assert all(0.0 <= fi.rmi <= 1.0 for fi in top15)
    # The top features carry real information about the class.
    assert top15[0].rmi > 0.1
    # The top-15 features involve several distinct streams, as in the paper.
    streams = {fi.name.rsplit("-", 1)[0] for fi in top15}
    assert len(streams) >= 5

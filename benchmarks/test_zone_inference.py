"""Benchmark: the zone-occupancy inference workload, offline and streaming.

Two gates over one simulated working day, both asserting bit-identity
between the paths they time (so neither can pass on divergent numbers):

* **columnar** — the vectorised offline grid
  (:meth:`~repro.zones.estimator.ZoneOccupancyEstimator.day_grid`)
  against the bounded-state :class:`~repro.zones.estimator.ZoneEngine`
  fed one sample at a time — the arrival pattern of a live deployment
  without batching — over a calibration-spanning prefix of the day,
  >= ``MIN_COLUMNAR_SPEEDUP`` required;
* **streaming overhead** — the same engine fed realistic 256-sample
  batches over the full day must cost at most
  ``MAX_STREAM_OVERHEAD`` of the offline grid: bounded state and
  tail re-materialisation are allowed a constant factor, never an
  asymptotic one.

Day length defaults to compact 10-minute days (``--sweep-day-s`` to
override); ``--paper-scale`` runs the full 8-hour day.  Both timed sides
run as the best of ``--bench-repeats``; results land in
``BENCH_results.json`` next to the other gates.
"""

import numpy as np

from repro.mobility.behavior import BehaviorProfile
from repro.mobility.scheduler import ScheduleGenerator
from repro.radio.office import paper_office
from repro.simulation.collector import CampaignCollector
from repro.zones import ZoneMap, ZoneOccupancyEstimator

#: Required speedup of the offline columnar grid over single-sample
#: streaming on the prefix slice (measured well above this).
MIN_COLUMNAR_SPEEDUP = 3.0

#: Maximum tolerated ratio of 256-sample-batch streaming to the offline
#: grid over the full day.
MAX_STREAM_OVERHEAD = 4.0

BATCH_SAMPLES = 256

#: Single-sample prefix: past the calibration boundary with decided
#: instants, small enough to keep the per-sample python loop in seconds.
PREFIX = 600


def _day_duration(request) -> float:
    if request.config.getoption("--paper-scale"):
        return 8 * 3600.0
    return float(request.config.getoption("--sweep-day-s"))


def _bench_day(request):
    layout = paper_office()
    profile = BehaviorProfile(
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )
    generator = ScheduleGenerator(
        layout,
        {w.workstation_id: profile for w in layout.workstations},
        rng=np.random.default_rng(7),
    )
    day = generator.generate_day(0, _day_duration(request))
    collector = CampaignCollector(
        layout, seed=request.config.getoption("--campaign-seed")
    )
    return layout, collector.collect_day(day)


def _stream_grids(engine, rssi, batch_samples):
    grids = [
        engine.extend(rssi[pos : pos + batch_samples])
        for pos in range(0, rssi.shape[0], batch_samples)
    ]
    return (
        np.concatenate([g.scores for g in grids]),
        np.concatenate([g.occupied for g in grids]),
    )


def test_zone_inference_gates(request, best_of, speedup_gate):
    layout, day = _bench_day(request)
    estimator = ZoneOccupancyEstimator(zone_map=ZoneMap.from_layout(layout))
    trace = day.trace
    ids = trace.stream_ids
    rssi = np.column_stack([trace.streams[sid] for sid in ids])
    n = rssi.shape[0]
    assert n > estimator.calibration_samples, (
        "day too short for the calibration window"
    )
    prefix = min(PREFIX, n)

    def offline(rows):
        _, matrix, columns = estimator.attenuation.day_block(day, layout)
        return estimator.offline_grid(matrix[:rows], columns)

    # Gate 1: columnar offline vs single-sample streaming on the prefix.
    t_cols, grid_cols = best_of(lambda: offline(prefix))
    t_single, single = best_of(
        lambda: _stream_grids(
            estimator.streaming_engine(ids, layout), rssi[:prefix], 1
        )
    )
    np.testing.assert_array_equal(single[0], grid_cols.scores)
    np.testing.assert_array_equal(single[1], grid_cols.occupied)
    assert (grid_cols.occupied >= 0).any(), "no occupancy decided on prefix"
    speedup_gate(
        "zone columnar grid",
        t_single,
        t_cols,
        MIN_COLUMNAR_SPEEDUP,
        reference_name="single-sample ZoneEngine",
        fast_name="offline columnar grid",
        detail=f"{prefix} samples, {len(ids)} links, bitwise-identical",
    )

    # Gate 2: realistic batching must stay within a constant factor of
    # the offline grid over the full day.
    t_full, grid_full = best_of(lambda: offline(n))
    t_batch, batched = best_of(
        lambda: _stream_grids(
            estimator.streaming_engine(ids, layout), rssi, BATCH_SAMPLES
        )
    )
    np.testing.assert_array_equal(batched[0], grid_full.scores)
    np.testing.assert_array_equal(batched[1], grid_full.occupied)
    speedup_gate(
        "zone streaming overhead",
        t_full,
        t_batch,
        1.0 / MAX_STREAM_OVERHEAD,
        reference_name="offline columnar grid",
        fast_name=f"{BATCH_SAMPLES}-sample-batch ZoneEngine",
        detail=f"{n} samples, {len(ids)} links, bitwise-identical",
    )

"""Benchmark: Table II — labelled events collected during the campaign.

Regenerates the label histogram of the simulated five-day campaign and
checks its shape against the paper's Table II (entries dominate, departures
are spread across all workstations).
"""

from repro.analysis.events_table import compute_event_table, render_event_table


def test_table2_labelled_events(benchmark, campaign):
    table = benchmark(compute_event_table, campaign)
    print("\n" + render_event_table(table))

    # Shape checks: every workstation produced departures, entries exist,
    # and the total event count is in the same order of magnitude as the
    # paper's 130 events.
    assert table.entries > 0
    for workstation in campaign.layout.workstation_ids:
        assert table.counts.get(workstation, 0) > 0
    assert table.total >= 30
    assert table.departure_balance() > 0.2

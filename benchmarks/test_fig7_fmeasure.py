"""Benchmark: Figure 7 — MD F-measure as a function of t_delta.

The paper's shape: each curve rises, peaks around the typical
workstation-to-door walking time (~5 s) and falls once t_delta exceeds the
duration of real movement windows; more sensors give a higher curve.
"""

import numpy as np

from repro.analysis.md_performance import (
    compute_fmeasure_curves,
    render_fmeasure_curves,
)

T_DELTAS = tuple(np.arange(2.0, 8.01, 0.5))
FIGURE_SENSORS = (3, 5, 7, 9)


def test_fig7_fmeasure_vs_tdelta(benchmark, context):
    curves = benchmark(
        compute_fmeasure_curves, context, T_DELTAS, FIGURE_SENSORS
    )
    print("\n" + render_fmeasure_curves(curves))

    by_sensors = {c.n_sensors: c for c in curves}
    # More sensors -> a peak F-measure at least as good (small tolerance for
    # the finite number of events in the simulated campaign).
    assert by_sensors[9].peak()[1] >= by_sensors[3].peak()[1] - 0.05
    # The nine-sensor deployment peaks at a useful operating point.
    assert by_sensors[9].peak()[1] > 0.8
    # The peak lies at an intermediate t_delta (neither extreme), i.e. the
    # curve is unimodal-ish as in the paper.
    peak_t = by_sensors[9].peak()[0]
    assert T_DELTAS[0] <= peak_t <= T_DELTAS[-1]
    # Very large t_delta hurts recall and therefore the F-measure.
    assert by_sensors[9].f_measures[-1] <= by_sensors[9].peak()[1]

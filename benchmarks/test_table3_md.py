"""Benchmark: Table III — MD performance (TP/FP/FN) vs number of sensors.

The paper's shape: detection improves monotonically with more sensors and
the false-negative count collapses towards zero with 8-9 sensors, while
false positives stay a small fraction of decisions.
"""

from repro.analysis.md_performance import compute_md_table, render_md_table

SENSOR_SWEEP = (3, 4, 5, 6, 7, 8, 9)


def test_table3_md_performance(benchmark, context):
    rows = benchmark(compute_md_table, context, SENSOR_SWEEP)
    print("\n" + render_md_table(rows))

    by_sensors = {row.n_sensors: row.counts for row in rows}
    # Monotone-ish improvement: 9 sensors detect at least as much as 3.
    assert by_sensors[9].tp >= by_sensors[3].tp
    assert by_sensors[9].recall >= by_sensors[3].recall
    # With the full deployment nearly every movement is detected.
    assert by_sensors[9].recall >= 0.85
    assert by_sensors[9].fn <= by_sensors[3].fn
    # False positives remain a small fraction of all decisions.
    assert by_sensors[9].rates()["fp"] <= 0.25

"""Benchmark / CI smoke: chaos recovery of the self-healing fleet.

The reliability layer's end-to-end drill, run exactly the way a CI smoke
step should kill things:

1. a serial, fault-free sweep fills a reference store — the ground truth
   every recovery below must reproduce *bitwise*;
2. a two-worker :func:`run_prioritized` fleet runs the same grid under a
   seeded :class:`FaultPlan`: worker 0 hard-crashes (``os._exit``, no
   unwind, leases left on disk) before its first put, worker 1 silently
   truncates its first store record on disk.  The supervisor must respawn
   the dead slot fault-free, the respawn must break the corpse's leases
   after TTL, the checksum layer must quarantine the mangled record, and
   the batch must still end with the exact serial report — one record per
   scenario, no leftover leases, exactly one ``*.corrupt`` file;
3. the streaming router is killed mid-stream and restored across router
   generations (``checkpoint_tenants`` → JSON → ``restore_from``) while
   injected shard deaths force ``restart_shard`` recoveries in *both*
   generations — and the tenant's reassembled decision stream must be
   bit-identical to one uninterrupted detector that never saw a fault.

No timing gate: the default-policy throughput gates live in the other
benchmark modules and run without any of this machinery; this module
gates *recovery*, which either reproduces the fault-free bits or fails.
"""

import json

import numpy as np

from repro.analysis.campaign import CampaignScale
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.analysis.sweep_queue import GridJob, run_prioritized
from repro.analysis.sweep_store import SweepStore, name_slug
from repro.core.config import FadewichConfig, MDConfig
from repro.radio.office import paper_office
from repro.reliability import (
    ROUTER_SHARD_DEATH,
    STORE_CORRUPT,
    WORKER_CRASH_BEFORE_PUT,
    FaultPlan,
    FaultSpec,
    dumps_snapshot,
    loads_snapshot,
)
from repro.streaming import DayRecordingSource, IngestRouter, OnlineDetector

CHAOS_SEED = 31

GRID_NAME = "chaos-recovery"


def _chaos_grid(request) -> ScenarioGrid:
    if request.config.getoption("--paper-scale"):
        day_s = 8 * 3600.0
    else:
        day_s = float(request.config.getoption("--sweep-day-s"))
    scale = CampaignScale(
        name="chaos-recovery",
        n_days=1,
        day_duration_s=day_s,
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )
    # Six replicates of one configuration: six equal-cost simulation keys,
    # enough for both workers to be mid-grid when the faults land.
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[scale],
        configs={"default": FadewichConfig()},
        n_replicates=6,
        sensor_counts=(3,),
    )


def test_fleet_recovers_from_crash_and_corruption(request, tmp_path):
    grid = _chaos_grid(request)

    # --- 1. fault-free serial reference --------------------------------- #
    serial = ScenarioSweepRunner(
        grid, seed=CHAOS_SEED, mode="serial", re_sensor_counts=()
    ).run()
    serial_dict = serial.to_dict()
    assert len(serial.results) == len(grid) == 6

    # --- 2. two-worker fleet under a seeded fault plan ------------------- #
    # Worker 0 dies the hard way — os._exit skips every finally, so its
    # claimed lease stays on disk and only TTL expiry can free the key.
    # Worker 1 survives but its first record hits the disk truncated.
    worker_faults = {
        0: FaultPlan.of(
            FaultSpec(
                point=WORKER_CRASH_BEFORE_PUT,
                hits=(0,),
                kind="crash",
                hard=True,
            )
        ),
        1: FaultPlan.of(FaultSpec(point=STORE_CORRUPT, hits=(0,))),
    }
    fleet_root = tmp_path / "chaos-store"
    result = run_prioritized(
        [
            GridJob(
                name=GRID_NAME,
                grid=grid,
                seed=CHAOS_SEED,
                re_sensor_counts=(),
            )
        ],
        fleet_root,
        workers=2,
        lease_ttl_s=2.0,
        claim_chunk=1,
        poll_interval_s=0.05,
        worker_timeout_s=600.0,
        log_dir=tmp_path / "logs",
        report_path=None,
        mp_context="fork",
        max_worker_respawns=2,
        respawn_backoff_s=0.1,
        worker_faults=worker_faults,
    )

    # --- 3. full recovery, bit for bit ----------------------------------- #
    assert result.reports[GRID_NAME].to_dict() == serial_dict, (
        "the healed fleet diverged from the fault-free serial report"
    )
    store = SweepStore(fleet_root / name_slug(GRID_NAME))
    assert len(store.names()) == len(grid), (
        "recovery left lost or duplicated records"
    )
    assert not list(store.path.glob("*.lease")), (
        "recovery left lease files behind"
    )
    corrupt = store.corrupt_files()
    assert len(corrupt) == 1, (
        f"expected exactly one quarantined record, found {corrupt}"
    )
    log_text = result.log_paths[GRID_NAME].read_text(encoding="utf-8")
    assert "died (exit 70); respawn 1/2" in log_text, (
        "the supervisor never respawned the hard-crashed worker"
    )
    assert "exhausted" not in log_text


def test_router_kill_restore_preserves_tenant_bits(campaign):
    day = campaign.days[0]
    ids = list(day.trace.stream_ids[:3])
    cfg = MDConfig(profile_init_s=30.0)

    # Uninterrupted fault-free reference stream.
    reference = OnlineDetector(ids, cfg, sample_rate_hz=4.0)
    trace = day.trace.restricted_view(ids)
    matrix = np.column_stack([trace.streams[sid] for sid in ids])
    want = reference.process_block(trace.times, matrix)
    reference.finalize()

    batches = list(
        DayRecordingSource("office", day, stream_ids=ids, batch_samples=512)
    )
    half = len(batches) // 2
    assert half >= 2, "benchmark day too short to split across routers"

    # Generation A: injected shard death mid-stream, then a hard stop.
    first = IngestRouter(
        n_workers=1,
        config=cfg,
        sample_rate_hz=4.0,
        failure_policy="restart_shard",
        faults=FaultPlan.of(FaultSpec(point=ROUTER_SHARD_DEATH, hits=(1,))),
    )
    state_a = first.register("office", ids)
    for batch in batches[:half]:
        first.submit(batch)
    snapshots = first.checkpoint_tenants()
    blocks_a = list(state_a.blocks)
    first.close()
    assert first.stats.shard_restarts == {0: 1}

    # The checkpoint crosses process boundaries as plain JSON.
    wire = dumps_snapshot(snapshots["office"])

    # Generation B: restore, survive another shard death, finish.
    second = IngestRouter(
        n_workers=1,
        config=cfg,
        sample_rate_hz=4.0,
        failure_policy="restart_shard",
        faults=FaultPlan.of(FaultSpec(point=ROUTER_SHARD_DEATH, hits=(2,))),
    )
    with second:
        state_b = second.register(
            "office", ids, restore_from=loads_snapshot(wire)
        )
        for batch in batches[half:]:
            second.submit(batch)
        second.drain()
        blocks_b = list(state_b.blocks)
    assert second.stats.shard_restarts == {0: 1}

    blocks = blocks_a + blocks_b
    np.testing.assert_array_equal(
        np.concatenate([b.std_sums for b in blocks]), want.std_sums
    )
    np.testing.assert_array_equal(
        np.concatenate([b.decisions for b in blocks]), want.decisions
    )
    np.testing.assert_array_equal(
        np.concatenate([b.durations for b in blocks]), want.durations
    )
    assert (
        state_b.detector.completed_windows == reference.completed_windows
    )
    # The restored tenant's own snapshot still round-trips — generation C
    # could pick up right here.
    final_state = json.loads(dumps_snapshot(state_b.detector.snapshot()))
    assert final_state["stream_ids"] == ids

"""Benchmark: Figure 9 — proportion of deauthenticated workstations vs time.

The paper's shape: with enough sensors the vast majority of departures are
deauthenticated within a few seconds (the case-A cluster just after
t_delta), a step appears at t_ID + t_ss = 8 s (case-B misclassifications)
and the residual tail is the missed detections waiting for the time-out.
"""

from repro.analysis.security_eval import compute_deauth_curves, render_deauth_curves

FIGURE_SENSORS = (3, 5, 7, 9)


def test_fig9_deauthentication_latency(benchmark, context):
    curves = benchmark(compute_deauth_curves, context, FIGURE_SENSORS, 10.0)
    print("\n" + render_deauth_curves(curves))

    by_sensors = {c.n_sensors: c for c in curves}
    # More sensors deauthenticate more departures within 10 seconds.
    assert by_sensors[9].percent_within(10.0) >= by_sensors[3].percent_within(10.0)
    # The full deployment secures most departures within ten seconds...
    assert by_sensors[9].percent_within(10.0) >= 75.0
    # ...and a solid majority within six seconds (the paper: all within 6 s,
    # 90 % within 4 s on their testbed).
    assert by_sensors[9].percent_within(6.0) >= 40.0
    # The curves are cumulative, hence monotone.
    for curve in curves:
        diffs = curve.percent_deauthenticated[1:] - curve.percent_deauthenticated[:-1]
        assert (diffs >= -1e-9).all()

"""Benchmark: Figure 12 — per-stream importance (RMI) over the office plan.

The paper visualises the relative mutual information of every stream's
features with the class label as a heat map on the floor plan; some sensors
(d5 in their deployment) contribute little.  Here the same per-stream RMI
scores are computed and the spread between informative and uninformative
streams is checked.
"""

from repro.analysis.feature_analysis import (
    compute_stream_importance,
    render_stream_importance,
)


def test_fig12_stream_importance(benchmark, context):
    result = benchmark(compute_stream_importance, context, 9)
    print("\n" + render_stream_importance(result))

    scores = result.scores
    # One score per undirected-ish pair (both directions reported).
    assert len(scores) > 30
    values = sorted(scores.values(), reverse=True)
    assert all(0.0 <= v <= 1.0 for v in values)
    # Informative streams clearly beat the least informative ones.
    assert values[0] > values[-1]
    assert values[0] > 0.05
    # There is a least-informative sensor, as the paper observes for d5.
    assert result.least_important_sensor() in {f"d{i}" for i in range(1, 10)}

"""Benchmark: streaming detection kernel and multi-tenant router throughput.

Two gates over one simulated working day:

* **kernel** — the batched :class:`~repro.streaming.detector.OnlineDetector`
  (fed fixed-size :class:`~repro.streaming.source.DayRecordingSource`
  batches) against the per-sample :class:`~repro.core.movement.MovementDetector`
  loop it replaces, bit-identity asserted on every decision and window
  duration, >= 3x required;
* **router** — an :class:`~repro.streaming.router.IngestRouter` sustaining
  eight concurrent offices (distinct sensor subsets, batches interleaved
  in arrival order by :func:`~repro.streaming.source.merge_by_time`)
  against per-sample scalar detectors over the same eight tenants.  Every
  tenant's concatenated decision stream must be bit-identical to a
  standalone single-tenant replay — the no-reordering acceptance
  criterion — with >= 2x required over the scalar loop.

Day length defaults to a compact 40-minute day (``--streaming-day-s`` to
override; the CI smoke job passes a smaller day, ``--paper-scale`` the
full 8-hour day).  Timings use the shared best-of-``--bench-repeats``
estimator; the scalar references run once (they are the slow side by an
order of magnitude — a repeat would only add minutes, not precision).
"""

import numpy as np

from repro.core.config import MDConfig
from repro.core.movement import MovementDetector
from repro.mobility.behavior import BehaviorProfile
from repro.mobility.scheduler import ScheduleGenerator
from repro.radio.office import paper_office
from repro.simulation.collector import CampaignCollector
from repro.streaming import (
    DayRecordingSource,
    IngestRouter,
    OnlineDetector,
    merge_by_time,
)

#: Required speedups.
MIN_KERNEL_SPEEDUP = 3.0
MIN_ROUTER_SPEEDUP = 2.0

N_TENANTS = 8
BATCH_SAMPLES = 256
RATE = 4.0

MD_CFG = MDConfig(profile_init_s=30.0)


def _day_duration(request) -> float:
    if request.config.getoption("--paper-scale"):
        return 8 * 3600.0
    return float(request.config.getoption("--streaming-day-s"))


def _bench_day(request):
    layout = paper_office()
    profile = BehaviorProfile(
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )
    generator = ScheduleGenerator(
        layout,
        {w.workstation_id: profile for w in layout.workstations},
        rng=np.random.default_rng(7),
    )
    day = generator.generate_day(0, _day_duration(request))
    collector = CampaignCollector(
        layout, seed=request.config.getoption("--campaign-seed")
    )
    return collector.collect_day(day)


def _scalar_replay(trace, ids):
    """The pre-streaming way: one MovementDetector, one sample at a time."""
    detector = MovementDetector(ids, MD_CFG, sample_rate_hz=RATE)
    rows = np.column_stack([trace.streams[sid] for sid in ids]).tolist()
    times = trace.times.tolist()
    decisions = np.empty(len(times), dtype=np.int8)
    durations = np.empty(len(times))
    for i, (t, row) in enumerate(zip(times, rows)):
        d = detector.process(t, dict(zip(ids, row)))
        decisions[i] = -1 if d is None else int(d)
        durations[i] = detector.current_window_duration(t)
    return decisions, durations


def _streaming_replay(day, ids):
    detector = OnlineDetector(ids, MD_CFG, sample_rate_hz=RATE)
    blocks = [
        detector.process_block(batch.times, batch.samples)
        for batch in DayRecordingSource(
            "bench", day, stream_ids=ids, batch_samples=BATCH_SAMPLES
        )
    ]
    return (
        np.concatenate([b.decisions for b in blocks]),
        np.concatenate([b.durations for b in blocks]),
    )


def test_streaming_kernel_throughput(request, best_of, speedup_gate):
    day = _bench_day(request)
    ids = day.trace.stream_ids
    n = day.trace.n_samples

    t_stream, (dec_stream, dur_stream) = best_of(
        lambda: _streaming_replay(day, ids)
    )
    t_scalar, (dec_scalar, dur_scalar) = best_of(
        lambda: _scalar_replay(day.trace, ids), repeats=1
    )

    # Bit-identity first: every decision and window duration equal.
    np.testing.assert_array_equal(dec_stream, dec_scalar)
    np.testing.assert_array_equal(dur_stream, dur_scalar)

    rate_scalar = n / t_scalar
    rate_stream = n / t_stream
    speedup_gate(
        "streaming kernel throughput",
        t_scalar,
        t_stream,
        MIN_KERNEL_SPEEDUP,
        reference_name=f"per-sample ({rate_scalar:12,.0f} samples/s)",
        fast_name=f"streaming  ({rate_stream:12,.0f} samples/s)",
        detail=(
            f"{n} steps x {len(ids)} streams, "
            f"{BATCH_SAMPLES}-sample batches"
        ),
    )


def _tenant_feeds(day):
    """Eight offices replaying the day over distinct sensor subsets."""
    rng = np.random.default_rng(11)
    all_ids = day.trace.stream_ids
    return [
        (
            f"office-{i}",
            sorted(rng.choice(all_ids, size=4 + (i % 3), replace=False)),
        )
        for i in range(N_TENANTS)
    ]


def _router_replay(day, feeds, n_workers=4):
    router = IngestRouter(
        n_workers=n_workers,
        queue_capacity=32,
        config=MD_CFG,
        sample_rate_hz=RATE,
    )
    try:
        for tenant, ids in feeds:
            router.register(tenant, ids)
        sources = [
            DayRecordingSource(
                tenant, day, stream_ids=ids, batch_samples=BATCH_SAMPLES
            )
            for tenant, ids in feeds
        ]
        for batch in merge_by_time(sources):
            router.submit(batch)
        router.drain()
        return {
            tenant: router.tenant_state(tenant).concatenated()
            for tenant, _ in feeds
        }
    finally:
        router.close()


def test_router_sustains_eight_offices(request, best_of, speedup_gate):
    day = _bench_day(request)
    feeds = _tenant_feeds(day)
    n = day.trace.n_samples

    t_router, streams = best_of(lambda: _router_replay(day, feeds))
    t_scalar, scalar = best_of(
        lambda: {
            tenant: _scalar_replay(day.trace, ids)
            for tenant, ids in feeds
        },
        repeats=1,
    )

    # The no-reordering criterion: each of the eight tenants' concatenated
    # decision streams is bit-identical to a standalone replay of the same
    # day — sharding, interleaved submission and bounded queues left no
    # trace in the output.
    for tenant, ids in feeds:
        got = streams[tenant]
        dec_scalar, dur_scalar = scalar[tenant]
        np.testing.assert_array_equal(got.decisions, dec_scalar)
        np.testing.assert_array_equal(got.durations, dur_scalar)
        assert got.times.shape[0] == n

    total = n * N_TENANTS
    speedup_gate(
        "streaming router throughput",
        t_scalar,
        t_router,
        MIN_ROUTER_SPEEDUP,
        reference_name=(
            f"per-sample x {N_TENANTS} ({total / t_scalar:12,.0f} samples/s)"
        ),
        fast_name=(
            f"router (4 workers)  ({total / t_router:12,.0f} samples/s)"
        ),
        detail=(
            f"{N_TENANTS} offices x {n} steps, "
            f"{BATCH_SAMPLES}-sample batches, bounded queues"
        ),
    )

"""Benchmark: the detector axis must be nearly free on top of one sweep.

Detector variants of a scenario share the simulated recording *and* the
per-config rolling-std feature matrices — only the decision kernel
differs — so sweeping the full three-detector zoo over a grid must cost
at most ``MAX_DETECTOR_OVERHEAD`` of the same grid swept with the KDE
detector alone.  If the runner ever rebuilt recordings or feature
matrices per detector variant, the ratio would sit near 3x and the gate
fails.

The gate also asserts the zoo sweep's KDE rows are ``to_dict``-identical
to the KDE-only sweep's — adding detectors to a grid must never perturb
the paper numbers — so the timing can never pass on divergent work.

Two execution-scale companions:

* a compact multi-detector :func:`repro.run_prioritized` batch (two
  grids, two workers) asserting distributed execution over the shared
  store matches the serial reports bit for bit, detector axis included —
  the CI-sized stand-in for the stress run;
* ``@pytest.mark.stress`` (opt-in via ``--run-stress``): a 1000-point
  multi-detector prioritized batch (a 3-detector grid and a 2-detector
  grid at 200 replicates each) exercising the lease protocol and the
  per-detector store keying at fleet scale.

Day length defaults to compact 10-minute days (``--sweep-day-s`` to
override); ``--paper-scale`` runs full 8-hour days.  Both timed sides
run as the best of ``--bench-repeats``.
"""

import numpy as np
import pytest

from repro.analysis.campaign import CampaignScale
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.analysis.sweep_queue import GridJob, run_prioritized
from repro.analysis.sweep_store import SweepStore
from repro.detectors import (
    EmaMadDetector,
    KdeMdDetector,
    VarianceThresholdDetector,
)
from repro.detectors.ema_mad import (
    _dense_window_median_mad,
    _sorted_window_median_mad,
)
from repro.radio.office import paper_office, wide_office

#: Maximum tolerated ratio of the 3-detector sweep to the KDE-only sweep.
MAX_DETECTOR_OVERHEAD = 1.5

#: Minimum speedup of the sorted-window rolling median/MAD over the dense
#: ``np.median`` path at a large long window (measured ~2.5-4x at 481).
MIN_SORTED_MEDIAN_SPEEDUP = 1.5

SWEEP_SEED = 23

ZOO = {
    "kde_md": KdeMdDetector(),
    "ema_mad": EmaMadDetector(),
    "variance": VarianceThresholdDetector(),
}


def _bench_scale(request, name="detector-bench") -> CampaignScale:
    if request.config.getoption("--paper-scale"):
        day_s = 8 * 3600.0
    else:
        day_s = float(request.config.getoption("--sweep-day-s"))
    return CampaignScale(
        name=name,
        n_days=2,
        day_duration_s=day_s,
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )


def _grid(request, detectors) -> ScenarioGrid:
    # One sensor count keeps the timed region dominated by the shared
    # work (simulation + feature matrices): a runner that re-simulated or
    # re-featurised per detector variant would still blow the gate (~3x),
    # while the legitimate per-detector decision kernels stay cheap.
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[_bench_scale(request)],
        sensor_counts=(3,),
        detectors=detectors,
    )


def test_detector_sweep_overhead(request, best_of, speedup_gate):
    zoo_grid = _grid(request, ZOO)
    kde_grid = _grid(request, {"kde_md": KdeMdDetector()})

    def run(grid):
        return ScenarioSweepRunner(
            grid, seed=SWEEP_SEED, mode="serial", re_sensor_counts=()
        ).run()

    t_kde, kde_report = best_of(lambda: run(kde_grid))
    t_zoo, zoo_report = best_of(lambda: run(zoo_grid))

    # The zoo sweep's KDE rows must be exactly the KDE-only sweep's —
    # the detector axis may never move the paper numbers...
    assert kde_report.n_scenarios == 1 and zoo_report.n_scenarios == 3
    want = kde_report.results[0]
    got = zoo_report.result_for(want.spec.name)
    assert got.to_dict() == want.to_dict()
    # ...and every variant analysed the same shared recording.
    assert len({id(r.recording) for r in zoo_report.results}) == 1

    # Three detectors for at most MAX_DETECTOR_OVERHEAD of one: the gate
    # asserts t_zoo / t_kde <= MAX_DETECTOR_OVERHEAD, i.e. the KDE-only
    # side's "speedup" over the zoo must stay >= 1 / MAX_DETECTOR_OVERHEAD.
    speedup_gate(
        "detector sweep overhead",
        t_kde,
        t_zoo,
        1.0 / MAX_DETECTOR_OVERHEAD,
        reference_name="KDE-only sweep",
        fast_name="3-detector zoo",
        detail=f"{len(zoo_grid)} scenarios sharing 1 recording, serial",
    )


def test_sorted_window_median_gate(best_of, speedup_gate):
    """The sorted-window rolling median/MAD must beat dense at large windows.

    ``EmaMadDetector`` dispatches its full-window median/MAD to an
    indexable sorted list once ``long_window`` reaches the measured
    crossover; this gate locks the large-window win in — and asserts the
    two paths are bitwise identical on the benchmarked series, so the
    timing can never pass on divergent numbers.  (At the default
    ``long_window=120`` the dense path is kept — that regime is covered
    by the detector-overhead gate above.)
    """
    w = 481
    rng = np.random.default_rng(SWEEP_SEED)
    # Rounded values force heavy ties — the adversarial case for order
    # statistics on a sorted window.
    series = np.round(rng.normal(2.0, 1.0, 20_000), 1)

    t_dense, dense = best_of(lambda: _dense_window_median_mad(series, w))
    t_sorted, fast = best_of(lambda: _sorted_window_median_mad(series, w))
    assert np.array_equal(dense[0], fast[0])
    assert np.array_equal(dense[1], fast[1])

    speedup_gate(
        "sorted-window rolling median/MAD",
        t_dense,
        t_sorted,
        MIN_SORTED_MEDIAN_SPEEDUP,
        reference_name="dense np.median windows",
        fast_name="indexable sorted window",
        detail=f"window {w}, {series.size} samples, bitwise-identical",
    )


def _prioritized_jobs(request, *, n_replicates, scaled=True):
    """Two multi-detector grids for a prioritized batch.

    The compact smoke shape (2 grids, heterogeneous detector axes); the
    stress shape scales the same grids up through ``n_replicates``.
    """
    scale = _bench_scale(request, name="det-queue")
    if scaled:
        scale = scale.derive("det-queue", day_duration_s=300.0)
    busy = scale.derive("det-queue-busy", departures_per_hour=10.0)
    zoo_a = dict(ZOO)
    zoo_b = {"kde_md": KdeMdDetector(), "variance": VarianceThresholdDetector()}
    grid_a = ScenarioGrid(
        layouts=[paper_office()],
        scales=[scale],
        sensor_counts=(3,),
        detectors=zoo_a,
        n_replicates=n_replicates,
    )
    grid_b = ScenarioGrid(
        layouts=[paper_office()],
        scales=[busy],
        sensor_counts=(3,),
        detectors=zoo_b,
        n_replicates=n_replicates,
    )
    return [
        GridJob("zoo", grid_a, seed=SWEEP_SEED),
        GridJob("pair", grid_b, seed=SWEEP_SEED + 1),
    ]


def test_prioritized_multi_detector_matches_serial(request, tmp_path):
    # The CI-sized stand-in for the stress run: 10 grid points (6 + 4)
    # over 2 cooperative workers, checked bit-identical to serial runs.
    jobs = _prioritized_jobs(request, n_replicates=2)
    result = run_prioritized(
        jobs,
        SweepStore(tmp_path / "store"),
        workers=2,
        report_path=tmp_path / "report.json",
        log_dir=tmp_path / "logs",
    )
    assert result.order == ["zoo", "pair"]
    for job in jobs:
        serial = job.make_runner("serial").run()
        assert result.reports[job.name].to_dict() == serial.to_dict()
    # Per-detector records landed in each grid's own store partition.
    names = {
        spec_name
        for job in jobs
        for spec_name in (
            r.spec.name for r in result.reports[job.name].results
        )
    }
    assert sum("/kde_md/" in n for n in names) == 4
    assert sum("/ema_mad/" in n for n in names) == 2
    assert sum("/variance/" in n for n in names) == 4


@pytest.mark.stress
def test_prioritized_multi_detector_stress(request, tmp_path):
    """~1000 grid points through the lease protocol, detector axis live.

    A 3-detector grid and a 2-detector grid at 200 replicates each =
    1000 scenarios, 4 workers; detector-sharing means only 400 campaigns
    are simulated.  Asserts completeness and per-detector record keying,
    not timing — this is a load test of the claim/heartbeat/merge path.
    """
    jobs = _prioritized_jobs(request, n_replicates=200)
    total = sum(len(job.grid) for job in jobs)
    assert total == 1000
    result = run_prioritized(
        jobs,
        SweepStore(tmp_path / "store"),
        workers=4,
        report_path=tmp_path / "report.json",
        log_dir=tmp_path / "logs",
    )
    assert [len(result.reports[j.name].results) for j in jobs] == [600, 400]
    for job in jobs:
        report = result.reports[job.name]
        by_detector = {}
        for r in report.results:
            by_detector.setdefault(r.spec.detector_name, 0)
            by_detector[r.spec.detector_name] += 1
        assert all(count == 200 for count in by_detector.values())

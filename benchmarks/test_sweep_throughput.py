"""Benchmark: scenario-grid sweep vs. standalone campaign+analysis runs.

The sweep engine must be "many reproduction campaigns for the price of
many reproduction campaigns": executing a grid through
:class:`~repro.analysis.scenarios.ScenarioSweepRunner` has to reuse the
batch simulation engine and the columnar MD grid per scenario, not fall
back to scalar paths or re-derive shared work.  The gate times a
4-scenario grid (2 layouts x 2 behaviour scales) in serial mode — so the
comparison measures engine reuse, not worker-pool parallelism — against
the sum of dedicated standalone runs (serial ``collect_generated`` +
``AnalysisContext.md_evaluations``) of the *same* scenarios, and requires
the per-scenario overhead to stay within ``MAX_SWEEP_OVERHEAD``.

It also asserts the sweep's MD numbers equal the standalone runs' exactly
(same derived seeds, same columnar engine), so the timing gate can never
pass on divergent work.

Day length defaults to compact 10-minute days (``--sweep-day-s`` to
override); ``--paper-scale`` runs full 8-hour days.  Both sides are timed
as the best of ``--bench-repeats`` runs.
"""

from repro.analysis.campaign import AnalysisContext, CampaignScale
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.radio.office import paper_office, wide_office
from repro.simulation.collector import CampaignCollector

#: Maximum tolerated ratio of sweep time to the summed standalone runs.
MAX_SWEEP_OVERHEAD = 1.3

SWEEP_SEED = 17


def _sweep_grid(request) -> ScenarioGrid:
    if request.config.getoption("--paper-scale"):
        day_s = 8 * 3600.0
    else:
        day_s = float(request.config.getoption("--sweep-day-s"))
    base = CampaignScale(
        name="sweep-bench",
        n_days=2,
        day_duration_s=day_s,
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )
    busy = base.derive("sweep-bench-busy", departures_per_hour=10.0)
    return ScenarioGrid(
        layouts=[paper_office(), wide_office()], scales=[base, busy]
    )


def test_sweep_throughput(request, best_of, speedup_gate):
    grid = _sweep_grid(request)

    def run_sweep():
        return ScenarioSweepRunner(
            grid, seed=SWEEP_SEED, mode="serial", re_sensor_counts=()
        ).run()

    def run_standalone():
        # The exact same scenarios, each as a user would run it by hand:
        # a dedicated serial collector plus its own analysis context.
        runner = ScenarioSweepRunner(
            grid, seed=SWEEP_SEED, mode="serial", re_sensor_counts=()
        )
        rows = {}
        for spec in runner.specs:
            collector = CampaignCollector(
                spec.layout,
                channel_config=spec.channel_config,
                seed=runner.scenario_seed(spec),
            )
            recording = collector.collect_generated(
                spec.scale.n_days,
                spec.scale.day_duration_s,
                spec.scale.profiles_for(spec.layout),
            )
            context = AnalysisContext(recording, spec.config, seed=0)
            counts = grid.sensor_counts_for(spec.layout)
            evaluations = context.md_evaluations(counts)
            rows[spec.name] = {
                n: (e.counts.tp, e.counts.fp, e.counts.fn)
                for n, e in evaluations.items()
            }
        return rows

    t_sweep, report = best_of(run_sweep)
    t_alone, alone = best_of(run_standalone)

    # The sweep must produce exactly the standalone numbers...
    assert report.n_scenarios == len(grid) == 4
    for result in report.results:
        got = {
            row.n_sensors: (row.counts.tp, row.counts.fp, row.counts.fn)
            for row in result.md_rows
        }
        assert got == alone[result.spec.name], result.spec.name
    # ...and cost at most MAX_SWEEP_OVERHEAD of the standalone total,
    # i.e. the "speedup" of the standalone side over the sweep must stay
    # >= 1 / MAX_SWEEP_OVERHEAD (the sweep may also be faster — it shares
    # per-scenario setup — but must never regress to scalar paths).
    speedup_gate(
        "sweep throughput",
        t_alone,
        t_sweep,
        1.0 / MAX_SWEEP_OVERHEAD,
        reference_name="standalone x4",
        fast_name="grid sweep   ",
        detail=f"{len(grid)} scenarios x {grid.scales[0].n_days} days, serial",
    )

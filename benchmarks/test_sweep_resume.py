"""Benchmark / CI smoke: resumable sweep persistence.

Exercises the full resume workflow the store exists for, at benchmark
scale, and gates it:

1. a cold grid sweep runs against an empty :class:`SweepStore` and writes
   the aggregate report to ``SWEEP_report.json`` (uploaded as a CI
   artifact alongside ``BENCH_results.json``);
2. a warm re-run must perform **zero** day-collection tasks and reproduce
   the cold report bit-identically (``to_dict()``) — this is the
   resume-identity contract of ``ScenarioSweepRunner.run(store=...)``;
3. one scenario record is deleted and the sweep resumed: only the missing
   scenario's simulation may be recollected (its ``n_days`` day tasks,
   nothing else), and the resumed report must still equal the cold one;
4. the warm re-run must beat the cold sweep by ``MIN_RESUME_SPEEDUP`` —
   the whole point of persistence is that re-entry costs store reads, not
   simulation.

Day length defaults to compact 10-minute days (``--sweep-day-s``);
``--paper-scale`` runs full 8-hour days.
"""

import json

from repro.analysis.campaign import CampaignScale
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.analysis.sweep_store import SweepStore
from repro.core.config import FadewichConfig
from repro.radio.office import paper_office
from repro.simulation.runner import CampaignRunner

#: A warm resume re-reads a few JSON records instead of simulating and
#: analysing the grid; requiring only 3x leaves enormous headroom for
#: loaded CI runners while still failing loudly if the store path ever
#: starts recomputing scenarios.
MIN_RESUME_SPEEDUP = 3.0

RESUME_SEED = 23

#: Where the sweep report lands for the CI artifact upload.
SWEEP_REPORT_PATH = "SWEEP_report.json"


def _resume_grid(request) -> ScenarioGrid:
    if request.config.getoption("--paper-scale"):
        day_s = 8 * 3600.0
    else:
        day_s = float(request.config.getoption("--sweep-day-s"))
    scale = CampaignScale(
        name="resume-bench",
        n_days=2,
        day_duration_s=day_s,
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )
    # Config-only variants share a simulation and replicates are distinct
    # grid points, so the store must handle both partial-simulation reuse
    # and per-replicate records: 4 scenarios, 2 simulations, 4 day tasks.
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[scale],
        configs={
            "default": FadewichConfig(),
            "t6": FadewichConfig().derive(t_delta_s=6.0),
        },
        n_replicates=2,
        sensor_counts=(3, 6, 9),
    )


def test_resumable_sweep(request, tmp_path, best_of, speedup_gate, monkeypatch):
    executed = []
    original_run_tasks = CampaignRunner.run_tasks

    def counting_run_tasks(self, tasks):
        tasks = list(tasks)
        executed.extend(tasks)
        return original_run_tasks(self, tasks)

    monkeypatch.setattr(CampaignRunner, "run_tasks", counting_run_tasks)

    grid = _resume_grid(request)
    store = SweepStore(tmp_path / "sweep-store")

    def make_runner() -> ScenarioSweepRunner:
        return ScenarioSweepRunner(
            grid, seed=RESUME_SEED, mode="serial", re_sensor_counts=()
        )

    # --- 1. cold sweep ------------------------------------------------- #
    t_cold, cold = best_of(lambda: make_runner().run(store=store), repeats=1)
    n_days_total = sum(
        spec.scale.n_days
        for spec in {
            s.simulation_key(): s for s in make_runner().specs
        }.values()
    )
    assert len(executed) == n_days_total == 4
    cold.save(SWEEP_REPORT_PATH)

    # --- 2. warm resume: zero collection, identical report ------------- #
    n_after_cold = len(executed)
    warm_runner = make_runner()
    t_warm, warm = best_of(lambda: warm_runner.run(store=store))
    assert len(executed) == n_after_cold, (
        "a warm store must perform zero day-collection tasks, got "
        f"{len(executed) - n_after_cold}"
    )
    assert warm_runner.last_run_stats.n_day_tasks == 0
    assert warm_runner.last_run_stats.n_cached == len(grid)
    assert warm.to_dict() == cold.to_dict(), (
        "warm resume diverged from the cold report"
    )

    # --- 3. delete one record, resume: only the missing simulation ----- #
    victim = cold.results[0].spec
    assert store.delete(victim.name)
    n_before_resume = len(executed)
    resume_runner = make_runner()
    resumed = resume_runner.run(store=store)
    recollected = executed[n_before_resume:]
    assert len(recollected) == victim.scale.n_days, (
        f"resume recollected {len(recollected)} day tasks, expected only "
        f"the missing simulation's {victim.scale.n_days}"
    )
    assert resume_runner.last_run_stats.n_simulations == 1
    assert resume_runner.last_run_stats.n_cached == len(grid) - 1
    assert resumed.to_dict() == cold.to_dict(), (
        "resumed report diverged from the cold report"
    )

    # The artifact on disk is the real, loadable export.
    with open(SWEEP_REPORT_PATH) as handle:
        assert json.load(handle)["n_scenarios"] == len(grid)

    # --- 4. gate: resuming must cost store reads, not simulation ------- #
    speedup_gate(
        "sweep resume",
        t_cold,
        t_warm,
        MIN_RESUME_SPEEDUP,
        reference_name="cold sweep ",
        fast_name="warm resume",
        detail=(
            f"{len(grid)} scenarios x {grid.scales[0].n_days} days, "
            "serial, persistent store"
        ),
    )

"""Benchmark: batch simulation engine throughput vs. the scalar reference.

Measures samples/second (timesteps x streams) of
``CampaignCollector.collect_day`` (vectorised batch engine) against
``collect_day_scalar`` (per-step reference) on one simulated working day,
asserts the two engines produce bit-identical traces, and fails loudly if
the batch engine loses its edge (>= 5x required).

Day length defaults to a compact 40-minute day (``--engine-day-s`` to
override; the CI smoke job passes a tiny day).  ``--paper-scale`` runs the
full 8-hour / 4 Hz day of the paper's campaign instead.  Each side is
timed as the best of ``--bench-repeats`` runs (shared ``best_of``
fixture), keeping the gate robust to loaded runners.
"""

import time

import numpy as np

from repro.mobility.behavior import BehaviorProfile
from repro.mobility.scheduler import ScheduleGenerator
from repro.radio.office import paper_office
from repro.simulation.collector import CampaignCollector
from repro.simulation.runner import CampaignRunner

#: Required speedup of the batch engine over the scalar reference.
MIN_SPEEDUP = 5.0


def _schedule_generator(layout, rng_seed):
    # Compact movement rates so even tiny days contain walks.
    profile = BehaviorProfile(
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )
    return ScheduleGenerator(
        layout,
        {w.workstation_id: profile for w in layout.workstations},
        rng=np.random.default_rng(rng_seed),
    )


def _bench_day(duration_s):
    layout = paper_office()
    return layout, _schedule_generator(layout, 7).generate_day(0, duration_s)


def _day_duration(request) -> float:
    if request.config.getoption("--paper-scale"):
        return 8 * 3600.0
    return float(request.config.getoption("--engine-day-s"))


def test_engine_throughput_scalar_vs_batch(request, best_of, speedup_gate):
    duration = _day_duration(request)
    layout, day = _bench_day(duration)
    seed = request.config.getoption("--campaign-seed")
    collector = CampaignCollector(layout, seed=seed)
    n_streams = len(collector.links)

    t_batch, batch = best_of(lambda: collector.collect_day(day))
    t_scalar, scalar = best_of(lambda: collector.collect_day_scalar(day))

    # The two engines must agree bit for bit...
    for sid in scalar.trace.stream_ids:
        np.testing.assert_array_equal(
            batch.trace.streams[sid], scalar.trace.streams[sid]
        )
    # ...and the batch engine must stay decisively faster.
    n_steps = scalar.trace.n_samples
    rate_scalar = n_steps * n_streams / t_scalar
    rate_batch = n_steps * n_streams / t_batch
    speedup_gate(
        "engine throughput",
        t_scalar,
        t_batch,
        MIN_SPEEDUP,
        reference_name=f"scalar ({rate_scalar:12,.0f} samples/s)",
        fast_name=f"batch  ({rate_batch:12,.0f} samples/s)",
        detail=f"{duration:.0f}s day, {n_steps} steps x {n_streams} streams",
    )


def test_runner_parallel_day_collection(request):
    """Sanity-check (and report) the parallel runner on a few days.

    Wall-clock gains depend on the worker pool the CI machine grants, so
    only correctness is asserted; the timing is printed for inspection.
    """
    duration = min(_day_duration(request), 2400.0)
    layout = paper_office()
    schedule = _schedule_generator(layout, 3).generate_campaign(3, duration)

    t0 = time.perf_counter()
    serial = CampaignRunner(layout, seed=1, mode="serial").run(schedule)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = CampaignRunner(layout, seed=1, mode="process").run(schedule)
    t_parallel = time.perf_counter() - t0

    print(
        f"\nrunner ({schedule.n_days} x {duration:.0f}s days): "
        f"serial {t_serial:.2f}s, process pool {t_parallel:.2f}s"
    )
    for a, b in zip(serial.days, parallel.days):
        sid = a.trace.stream_ids[0]
        np.testing.assert_array_equal(a.trace.streams[sid], b.trace.streams[sid])

"""Benchmark: Table IV — incorrect decisions and daily usability cost.

The paper's shape: a handful of wrongly triggered screen savers per day,
well under one wrong deauthentication per day once the classifier has
enough sensors, and a total daily cost of a few tens of seconds shared by
the office's users.
"""

from repro.analysis.usability_eval import (
    compute_usability_table,
    render_usability_table,
)

SENSOR_SWEEP = (3, 5, 7, 9)
N_DRAWS = 30


def test_table4_usability_cost(benchmark, context):
    rows = benchmark.pedantic(
        compute_usability_table,
        args=(context, SENSOR_SWEEP),
        kwargs={"n_draws": N_DRAWS},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_usability_table(rows))

    by_sensors = {row.n_sensors: row.result for row in rows}
    for result in by_sensors.values():
        # Costs are small: the paper never exceeds ~37 s/day for 3 users.
        assert result.cost_per_day_s < 300.0
        assert result.screensavers_per_day >= 0.0
        assert result.deauthentications_per_day >= 0.0
    # Wrong deauthentications stay rare compared to the number of daily
    # departures (the paper reports < 1 per day).
    assert by_sensors[9].deauthentications_per_day < 6.0

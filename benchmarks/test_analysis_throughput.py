"""Benchmark: columnar analysis engine throughput vs. the scalar references.

Measures the offline analysis fast paths of PR 2 against their retained
per-observation references, asserts bit-identical output, and fails loudly
if a fast path loses its edge:

* ``evaluate_md_grid`` (shared rolling feature matrix + lockstep profile
  engine, all sensor counts and days pooled) vs. per-count
  ``evaluate_md_scalar`` — the Table III / Figure 7 path.  Gate:
  >= 2.5x.  The ceiling here is structural: ~60 % of even the *scalar*
  path is erf evaluations inside the KDE percentile bisections, work that
  is identical in both paths by the bit-identity contract; the columnar
  engine eliminates everything else (per-count rolling recompute, the
  per-observation Python loop, per-call numpy dispatch), which lands the
  measured ratio around 3x.
* ``FadewichSystem.replay_day`` (array replay: columnar std-sums,
  lockstep profile, precomputed idle/input arrays) vs.
  ``replay_day_scalar`` (dict-per-step ``process_sample`` loop) — the
  Figure 9 / online-replay path.  Gate: >= 5x (typically 10-20x: the
  scalar loop pays per-stream ``np.std`` at every step).
* ``cross_validated_predictions`` vs. its scalar reference — reported for
  inspection only; both sides are dominated by the same SVM fits.

Day length defaults to two 20-minute days (``--analysis-day-s`` to
override); ``--paper-scale`` runs full 8-hour days instead.
"""

import numpy as np

from repro.analysis.campaign import CampaignScale, collect_campaign
from repro.core.config import FadewichConfig
from repro.core.evaluation import (
    build_sample_dataset,
    cross_validated_predictions,
    cross_validated_predictions_scalar,
    evaluate_md,
    evaluate_md_grid,
    evaluate_md_scalar,
    sensor_subset,
)
from repro.core.system import FadewichSystem

#: Required speedup of the pooled MD grid over the per-count scalar sweep.
MIN_MD_SPEEDUP = 2.5

#: Required speedup of the array replay over the per-sample reference.
MIN_REPLAY_SPEEDUP = 5.0


def _analysis_scale(request) -> CampaignScale:
    if request.config.getoption("--paper-scale"):
        day_s = 8 * 3600.0
    else:
        day_s = float(request.config.getoption("--analysis-day-s"))
    return CampaignScale(
        name="analysis-bench",
        n_days=2,
        day_duration_s=day_s,
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )


def _bench_campaign(request):
    seed = request.config.getoption("--campaign-seed")
    return collect_campaign(seed=seed, scale=_analysis_scale(request))


def test_md_grid_throughput(request, best_of, speedup_gate):
    recording = _bench_campaign(request)
    config = FadewichConfig()
    counts = list(range(3, len(recording.layout.sensors) + 1))

    t_grid, grid = best_of(lambda: evaluate_md_grid(recording, config, counts))
    t_scalar, scalar = best_of(
        lambda: {
            n: evaluate_md_scalar(
                recording, config, sensor_subset(recording.layout.sensor_ids, n)
            )
            for n in counts
        }
    )

    # The two paths must agree bit for bit...
    for n in counts:
        assert grid[n].counts == scalar[n].counts
        for day_g, day_s in zip(grid[n].days, scalar[n].days):
            assert day_g.md_result.windows == day_s.md_result.windows
            np.testing.assert_array_equal(
                day_g.md_result.threshold_trace, day_s.md_result.threshold_trace
            )
    # ...and the grid must stay decisively faster.
    n_obs = grid[counts[0]].days[0].md_result.times.shape[0]
    speedup_gate(
        "MD grid throughput",
        t_scalar,
        t_grid,
        MIN_MD_SPEEDUP,
        reference_name="scalar sweep",
        fast_name="pooled grid ",
        detail=(
            f"{recording.n_days} days x {n_obs} obs x "
            f"{len(counts)} sensor counts"
        ),
    )


def test_replay_throughput(request, best_of, speedup_gate):
    recording = _bench_campaign(request)
    config = FadewichConfig()
    layout = recording.layout

    evaluation = evaluate_md(recording, config, layout.sensor_ids)
    re_module, dataset = build_sample_dataset(evaluation, config, random_state=0)

    def make_system():
        system = FadewichSystem(
            stream_ids=re_module.stream_ids,
            workstation_ids=layout.workstation_ids,
            config=config,
        )
        if len(dataset):
            system.train(dataset)
        return system

    day = recording.days[-1]
    t_batch, batch = best_of(lambda: make_system().replay_day(day))
    t_scalar, scalar = best_of(lambda: make_system().replay_day_scalar(day))

    assert batch.actions == scalar.actions
    assert batch.final_states == scalar.final_states
    assert batch.deauthentications == scalar.deauthentications
    assert batch.alerts == scalar.alerts
    assert batch.screensavers == scalar.screensavers

    n_steps = day.trace.n_samples
    n_streams = len(re_module.stream_ids)
    speedup_gate(
        "replay throughput",
        t_scalar,
        t_batch,
        MIN_REPLAY_SPEEDUP,
        reference_name=f"scalar ({n_steps * n_streams / t_scalar:12,.0f} samples/s)",
        fast_name=f"array  ({n_steps * n_streams / t_batch:12,.0f} samples/s)",
        detail=f"{n_steps} steps x {n_streams} streams",
    )


def test_cv_throughput(request, best_of):
    """Report (no gate): both CV paths are dominated by the same SVM fits."""
    recording = _bench_campaign(request)
    config = FadewichConfig()
    evaluation = evaluate_md(recording, config, recording.layout.sensor_ids)
    re_module, dataset = build_sample_dataset(evaluation, config, random_state=0)

    t_vec, vectorized = best_of(
        lambda: cross_validated_predictions(
            re_module, dataset, rng=np.random.default_rng(0)
        )
    )
    t_scalar, scalar = best_of(
        lambda: cross_validated_predictions_scalar(
            re_module, dataset, rng=np.random.default_rng(0)
        )
    )

    print(
        f"\nCV throughput ({len(dataset)} samples): "
        f"scalar {t_scalar:.3f}s, vectorized {t_vec:.3f}s "
        f"({t_scalar / max(t_vec, 1e-9):.2f}x)"
    )
    assert vectorized == scalar

"""Benchmark: columnar analysis engine throughput vs. the scalar references.

Measures the offline analysis fast paths (PR 2's columnar engine, PR 4's
root-finding threshold engine and shared-Gram learning curve) against
their retained references, asserts the equivalence contracts, and fails
loudly if a fast path loses its edge:

* ``evaluate_md_grid`` (shared rolling feature matrix + lockstep profile
  engine, all sensor counts and days pooled) vs. per-count
  ``evaluate_md_scalar`` — the Table III / Figure 7 path.  Gate: >= 5x
  (raised from 2.5x by PR 4).  The old ceiling was the erf work inside
  the KDE percentile *bisections*, identical in both paths by the
  bit-identity contract; the safeguarded-Newton threshold engine
  (``mixture_quantiles``: analytic-derivative steps, warm starts,
  active-row evaluation) cut that shared floor ~6x, and what remains of
  the scalar path is dominated by its per-observation Python loop and
  per-profile solver calls — which the lockstep grid amortises across
  all (day, sensor-count) columns at once.
* ``FadewichSystem.replay_day`` (array replay: columnar std-sums,
  lockstep profile, precomputed idle/input arrays) vs.
  ``replay_day_scalar`` (dict-per-step ``process_sample`` loop) — the
  Figure 9 / online-replay path.  Gate: >= 5x (typically 10-20x: the
  scalar loop pays per-stream ``np.std`` at every step).
* the shared-Gram learning-curve engine (one kernel matrix per (repeat,
  fold), index-sliced precomputed fits, warm-started SMO, incremental
  error cache) vs. the retained per-fit reference (fresh Gram per fit,
  original error-recomputing SMO formulation) at Figure 8 scale.  Gate:
  >= 3x, plus the bit-identity contract: with warm start off, the
  shared-Gram scores equal the per-fit cached-SMO scores bit for bit
  (slice-stable kernels).
* ``cross_validated_predictions`` vs. its scalar reference — reported for
  inspection only; both sides are dominated by the same SVM fits.

Day length defaults to six 20-minute days (``--analysis-day-s`` to
override); ``--paper-scale`` runs full 8-hour days instead.
"""

import numpy as np

from repro.analysis.campaign import CampaignScale, collect_campaign
from repro.core.config import FadewichConfig
from repro.core.evaluation import (
    build_sample_dataset,
    cross_validated_predictions,
    cross_validated_predictions_scalar,
    evaluate_md,
    evaluate_md_grid,
    evaluate_md_scalar,
    sensor_subset,
)
from repro.core.system import FadewichSystem
from repro.ml.validation import SVCFoldFitter, learning_curve

#: Required speedup of the pooled MD grid over the per-count scalar sweep.
MIN_MD_SPEEDUP = 5.0

#: Required speedup of the array replay over the per-sample reference.
MIN_REPLAY_SPEEDUP = 5.0

#: Required speedup of the shared-Gram learning curve over the per-fit
#: reference.
MIN_CURVE_SPEEDUP = 3.0


def _analysis_scale(request) -> CampaignScale:
    if request.config.getoption("--paper-scale"):
        day_s = 8 * 3600.0
    else:
        day_s = float(request.config.getoption("--analysis-day-s"))
    return CampaignScale(
        name="analysis-bench",
        n_days=6,
        day_duration_s=day_s,
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )


def _bench_campaign(request):
    seed = request.config.getoption("--campaign-seed")
    return collect_campaign(seed=seed, scale=_analysis_scale(request))


def test_md_grid_throughput(request, best_of, speedup_gate):
    recording = _bench_campaign(request)
    config = FadewichConfig()
    counts = list(range(3, len(recording.layout.sensors) + 1))

    t_grid, grid = best_of(lambda: evaluate_md_grid(recording, config, counts))
    t_scalar, scalar = best_of(
        lambda: {
            n: evaluate_md_scalar(
                recording, config, sensor_subset(recording.layout.sensor_ids, n)
            )
            for n in counts
        }
    )

    # The two paths must agree bit for bit...
    for n in counts:
        assert grid[n].counts == scalar[n].counts
        for day_g, day_s in zip(grid[n].days, scalar[n].days):
            assert day_g.md_result.windows == day_s.md_result.windows
            np.testing.assert_array_equal(
                day_g.md_result.threshold_trace, day_s.md_result.threshold_trace
            )
    # ...and the grid must stay decisively faster.
    n_obs = grid[counts[0]].days[0].md_result.times.shape[0]
    speedup_gate(
        "MD grid throughput",
        t_scalar,
        t_grid,
        MIN_MD_SPEEDUP,
        reference_name="scalar sweep",
        fast_name="pooled grid ",
        detail=(
            f"{recording.n_days} days x {n_obs} obs x "
            f"{len(counts)} sensor counts"
        ),
    )


def test_replay_throughput(request, best_of, speedup_gate):
    recording = _bench_campaign(request)
    config = FadewichConfig()
    layout = recording.layout

    evaluation = evaluate_md(recording, config, layout.sensor_ids)
    re_module, dataset = build_sample_dataset(evaluation, config, random_state=0)

    def make_system():
        system = FadewichSystem(
            stream_ids=re_module.stream_ids,
            workstation_ids=layout.workstation_ids,
            config=config,
        )
        if len(dataset):
            system.train(dataset)
        return system

    day = recording.days[-1]
    t_batch, batch = best_of(lambda: make_system().replay_day(day))
    t_scalar, scalar = best_of(lambda: make_system().replay_day_scalar(day))

    assert batch.actions == scalar.actions
    assert batch.final_states == scalar.final_states
    assert batch.deauthentications == scalar.deauthentications
    assert batch.alerts == scalar.alerts
    assert batch.screensavers == scalar.screensavers

    n_steps = day.trace.n_samples
    n_streams = len(re_module.stream_ids)
    speedup_gate(
        "replay throughput",
        t_scalar,
        t_batch,
        MIN_REPLAY_SPEEDUP,
        reference_name=f"scalar ({n_steps * n_streams / t_scalar:12,.0f} samples/s)",
        fast_name=f"array  ({n_steps * n_streams / t_batch:12,.0f} samples/s)",
        detail=f"{n_steps} steps x {n_streams} streams",
    )


def _fig8_scale_dataset(seed: int = 0, n_per_class: int = 200):
    """A Figure 8-shaped classification problem at paper scale.

    Four classes (the ``w0..w3`` labels of the paper office), the 216
    features of the 9-sensor deployment (72 directed streams x 3 features)
    and several hundred samples — the regime the paper's full campaigns
    produce, where the per-fit Gram work the shared-Gram engine eliminates
    dominates the reference.  Synthetic (overlapping Gaussian classes,
    fixed seed) so the gate's scale does not depend on the benchmark
    campaign length.
    """
    rng = np.random.default_rng(seed)
    d = 216
    centers = rng.normal(size=(4, d)) * 0.25
    X = np.vstack([rng.normal(size=(n_per_class, d)) + c for c in centers])
    y = np.repeat(np.arange(4), n_per_class)
    return X, y


def test_learning_curve_throughput(request, best_of, speedup_gate):
    """Figure 8 gate: shared-Gram curve >= 3x the per-fit reference.

    The fast path combines the three PR-4 optimisations (one Gram per
    (repeat, fold) with index-sliced precomputed fits, warm-started SMO
    across training sizes, the incremental SMO error cache); the
    reference is the retained per-fit path (fresh Gram per fit, original
    error-recomputing SMO formulation).  The bit-identity contract is
    asserted alongside: slice-stable kernels make the shared-Gram scores
    (warm start off) equal the per-fit cached-SMO scores bit for bit.
    """
    X, y = _fig8_scale_dataset()
    sizes = [80, 160, 320, 480, 640]
    svc = dict(C=1.0, kernel="linear", random_state=0)

    def run(**flags):
        return learning_curve(
            None, X, y, sizes, n_folds=5, n_repeats=1,
            rng=np.random.default_rng(1),
            fitter=SVCFoldFitter(**svc, **flags),
        )

    t_fast, fast = best_of(lambda: run())
    t_ref, reference = best_of(
        lambda: run(shared_gram=False, warm_start=False, error_cache=False)
    )

    # Equivalence: shared-Gram (warm start off) == per-fit (cached SMO),
    # bit for bit — the slice-stability contract.
    shared_cold = run(warm_start=False)
    perfit_cold = run(shared_gram=False, warm_start=False)
    np.testing.assert_array_equal(
        shared_cold.all_scores, perfit_cold.all_scores
    )
    # The fast path's warm-started fits stop at tol-equivalent (not
    # bitwise-equal) stationary points: the curves must agree closely.
    assert np.nanmax(np.abs(fast.all_scores - reference.all_scores)) <= 0.15

    speedup_gate(
        "learning-curve throughput",
        t_ref,
        t_fast,
        MIN_CURVE_SPEEDUP,
        reference_name="per-fit  ",
        fast_name="shared gram",
        detail=f"{X.shape[0]} samples x {X.shape[1]} features, sizes {sizes}",
    )


def test_cv_throughput(request, best_of):
    """Report (no gate): both CV paths are dominated by the same SVM fits."""
    recording = _bench_campaign(request)
    config = FadewichConfig()
    evaluation = evaluate_md(recording, config, recording.layout.sensor_ids)
    re_module, dataset = build_sample_dataset(evaluation, config, random_state=0)

    t_vec, vectorized = best_of(
        lambda: cross_validated_predictions(
            re_module, dataset, rng=np.random.default_rng(0)
        )
    )
    t_scalar, scalar = best_of(
        lambda: cross_validated_predictions_scalar(
            re_module, dataset, rng=np.random.default_rng(0)
        )
    )

    print(
        f"\nCV throughput ({len(dataset)} samples): "
        f"scalar {t_scalar:.3f}s, vectorized {t_vec:.3f}s "
        f"({t_scalar / max(t_vec, 1e-9):.2f}x)"
    )
    assert vectorized == scalar

"""Benchmark: Figure 8 — RE classification accuracy vs training-set size.

The paper's shape: accuracy improves with more training samples and with
more sensors; the error bars shrink as the training set grows.
"""

import numpy as np

from repro.analysis.re_performance import (
    compute_learning_curves,
    render_learning_curves,
)

FIGURE_SENSORS = (3, 5, 7, 9)


def test_fig8_learning_curves(benchmark, context):
    curves = benchmark.pedantic(
        compute_learning_curves,
        args=(context,),
        kwargs={"sensor_counts": FIGURE_SENSORS, "n_repeats": 5},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_learning_curves(curves))

    assert curves, "at least one sensor count must have enough samples"
    by_sensors = {c.n_sensors: c for c in curves}
    top = by_sensors[max(by_sensors)]
    # Accuracy with the full deployment and the full training set clearly
    # beats chance (4 classes -> 0.25) and is in a usable range.
    assert top.final_accuracy > 0.5
    # Accuracy does not degrade as the training set grows.
    acc = top.result.mean_accuracy
    valid = ~np.isnan(acc)
    assert acc[valid][-1] >= acc[valid][0] - 0.1
    # More sensors help (or at least do not hurt) the final accuracy.
    if min(by_sensors) != max(by_sensors):
        assert (
            by_sensors[max(by_sensors)].final_accuracy
            >= by_sensors[min(by_sensors)].final_accuracy - 0.1
        )

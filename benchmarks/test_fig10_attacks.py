"""Benchmark: Figure 10 — attack opportunities for Insider and Co-worker.

The paper's shape: under the time-out baseline every departure is
exploitable by both adversaries; with FADEWICH the number of opportunities
drops sharply as sensors are added, and the Insider (who needs 4 extra
seconds to reach the desk) always has at most as many opportunities as the
Co-worker.
"""

from repro.analysis.security_eval import (
    compute_attack_opportunities,
    render_attack_opportunities,
)

SENSOR_SWEEP = (3, 4, 5, 6, 7, 8, 9)


def test_fig10_attack_opportunities(benchmark, context):
    rows = benchmark(compute_attack_opportunities, context, SENSOR_SWEEP)
    print("\n" + render_attack_opportunities(rows))

    timeout_row = rows[0]
    assert timeout_row.label == "timeout"
    assert timeout_row.insider_pct == 100.0
    assert timeout_row.coworker_pct == 100.0

    by_label = {row.label: row for row in rows}
    best = by_label["9 sensors"]
    worst = by_label["3 sensors"]
    # FADEWICH strictly improves on the time-out, and more sensors help.
    assert best.insider_pct < timeout_row.insider_pct
    assert best.insider_pct <= worst.insider_pct
    assert best.coworker_pct <= worst.coworker_pct
    # The full deployment denies the Insider almost every opportunity.
    assert best.insider_pct <= 25.0
    # The Insider never exceeds the Co-worker.
    for row in rows:
        assert row.insider_pct <= row.coworker_pct + 1e-9

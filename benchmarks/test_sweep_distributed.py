"""Benchmark / CI smoke: distributed cooperative sweep execution.

Exercises the lease-claim work queue at benchmark scale and gates it:

1. a serial cold sweep fills a fresh :class:`SweepStore` — the reference;
2. two worker *processes* cooperatively fill another fresh store through
   :func:`run_prioritized` (lease claims, heartbeats, per-grid log, the
   driver's final closing pass) and must beat the serial cold run by
   ``MIN_DISTRIBUTED_SPEEDUP`` — the whole point of the queue is that
   adding workers buys wall-clock time;
3. bit-identity is asserted *inside* the gate: the distributed report must
   equal the serial ``to_dict()`` exactly — parallelism may never change
   a number — and the store must hold exactly one record per scenario
   with no leftover lease files.

The grid is eight homogeneous simulation keys (8 replicates x 1 config),
so two workers can split the claims 4/4; day length follows
``--sweep-day-s`` (``--paper-scale`` runs full 8-hour days).

Single-core hosts: two processes time-slicing one CPU cannot beat a
serial run on wall-clock, so when fewer than two CPUs are available the
gate degrades to an *overhead bound* — the cooperative fill may not cost
more than ``1 / MIN_SINGLE_CORE_RATIO`` of the serial run — while the
identity and record-integrity assertions hold unchanged.  Multi-core CI
enforces the real speedup.
"""

import os

from repro.analysis.campaign import CampaignScale
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.analysis.sweep_queue import GridJob, run_prioritized
from repro.analysis.sweep_store import SweepStore, name_slug
from repro.core.config import FadewichConfig
from repro.radio.office import paper_office

#: Two workers over eight equal-cost simulation keys would ideally halve
#: the wall time; 1.5x leaves room for process start-up, claim overhead
#: and the driver's closing warm pass on loaded CI runners, while still
#: failing loudly if the fleet ever stops actually sharing the work.
MIN_DISTRIBUTED_SPEEDUP = 1.5

#: The single-core fallback: with one CPU the fleet *cannot* be faster,
#: but claims, heartbeats, per-pass store reloads and the closing pass
#: must stay cheap — the cooperative fill may cost at most ~1.7x the
#: serial run (ratio >= 0.6).
MIN_SINGLE_CORE_RATIO = 0.6

DISTRIBUTED_SEED = 29

GRID_NAME = "distributed-bench"


def _distributed_grid(request) -> ScenarioGrid:
    if request.config.getoption("--paper-scale"):
        day_s = 8 * 3600.0
    else:
        day_s = float(request.config.getoption("--sweep-day-s"))
    scale = CampaignScale(
        name="distributed-bench",
        n_days=2,
        day_duration_s=day_s,
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )
    # Eight replicates of one configuration: eight equal-cost simulation
    # keys, the cleanest load to split across two claimants.
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[scale],
        configs={"default": FadewichConfig()},
        n_replicates=8,
        sensor_counts=(3, 6),
    )


def test_distributed_sweep(request, tmp_path, best_of, speedup_gate):
    grid = _distributed_grid(request)

    def make_runner() -> ScenarioSweepRunner:
        return ScenarioSweepRunner(
            grid, seed=DISTRIBUTED_SEED, mode="serial", re_sensor_counts=()
        )

    # --- 1. serial cold reference -------------------------------------- #
    serial_store = SweepStore(tmp_path / "serial-store")
    t_serial, serial = best_of(
        lambda: make_runner().run(store=serial_store), repeats=1
    )
    assert len(serial.results) == len(grid) == 8

    # --- 2. two-process cooperative cold fill -------------------------- #
    job = GridJob(
        name=GRID_NAME,
        grid=grid,
        seed=DISTRIBUTED_SEED,
        re_sensor_counts=(),
    )
    fleet_root = tmp_path / "fleet-store"

    def cooperative_fill():
        return run_prioritized(
            [job],
            fleet_root,
            workers=2,
            claim_chunk=1,
            poll_interval_s=0.05,
            worker_timeout_s=600.0,
            log_dir=tmp_path / "logs",
            report_path=None,
            mp_context="fork",
        )

    t_fleet, result = best_of(cooperative_fill, repeats=1)

    # --- 3. identity inside the gate ----------------------------------- #
    distributed = result.reports[GRID_NAME]
    assert distributed.to_dict() == serial.to_dict(), (
        "distributed fill diverged from the serial report"
    )
    fleet_store = SweepStore(fleet_root / name_slug(GRID_NAME))
    assert len(fleet_store.names()) == len(grid), (
        "fleet left lost or duplicated records"
    )
    assert not list(fleet_store.path.glob("*.lease")), (
        "fleet left lease files behind"
    )
    # Both workers ran and exited cleanly (the per-grid log records it).
    log_text = result.log_paths[GRID_NAME].read_text(encoding="utf-8")
    assert "worker exit codes [0, 0]" in log_text

    # --- 4. gate: two workers must actually buy wall-clock time -------- #
    try:
        n_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        n_cpus = os.cpu_count() or 1
    multi_core = n_cpus >= 2
    speedup_gate(
        "distributed sweep",
        t_serial,
        t_fleet,
        MIN_DISTRIBUTED_SPEEDUP if multi_core else MIN_SINGLE_CORE_RATIO,
        reference_name="serial cold fill ",
        fast_name="2-process fill   ",
        detail=(
            f"{len(grid)} simulation keys x {grid.scales[0].n_days} days, "
            f"lease-claim work queue, fork workers, {n_cpus} CPU(s)"
            + ("" if multi_core else " [single-core overhead bound]")
        ),
    )

"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures from the
same simulated campaign.  The campaign and the cached analysis context are
session-scoped so the expensive pieces (collection, offline MD per sensor
count, RE cross-validation) are computed once per benchmark session.

The campaign scale is compact (five 40-minute days with compressed movement
rates) so the whole benchmark suite runs in minutes; pass
``--paper-scale`` to run the full five 8-hour days instead.
"""

from __future__ import annotations

import pytest

from repro.analysis.campaign import AnalysisContext, CampaignScale, collect_campaign
from repro.core.config import FadewichConfig

SENSOR_SWEEP = (3, 4, 5, 6, 7, 8, 9)
FIGURE_SENSORS = (3, 5, 7, 9)


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks on five full 8-hour days instead of the "
        "compact campaign",
    )
    parser.addoption(
        "--campaign-seed",
        action="store",
        type=int,
        default=42,
        help="seed of the simulated campaign",
    )
    parser.addoption(
        "--engine-day-s",
        action="store",
        type=float,
        default=2400.0,
        help="simulated day length (seconds) of the engine throughput "
        "benchmark; CI smoke runs pass a tiny value (overridden to the "
        "full 8-hour day by --paper-scale)",
    )
    parser.addoption(
        "--analysis-day-s",
        action="store",
        type=float,
        default=1200.0,
        help="simulated day length (seconds) of the analysis throughput "
        "benchmark; CI smoke runs pass a smaller value (overridden to the "
        "full 8-hour day by --paper-scale)",
    )


@pytest.fixture(scope="session")
def campaign(request):
    """The recorded campaign all benchmarks analyse."""
    scale = (
        CampaignScale.paper()
        if request.config.getoption("--paper-scale")
        else CampaignScale.compact()
    )
    seed = request.config.getoption("--campaign-seed")
    return collect_campaign(seed=seed, scale=scale)


@pytest.fixture(scope="session")
def context(campaign):
    """The cached analysis context over the benchmark campaign."""
    return AnalysisContext(campaign, FadewichConfig(), seed=0)


@pytest.fixture(scope="session")
def config():
    return FadewichConfig()

"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures from the
same simulated campaign.  The campaign and the cached analysis context are
session-scoped so the expensive pieces (collection, offline MD per sensor
count, RE cross-validation) are computed once per benchmark session.

The campaign scale is compact (five 40-minute days with compressed movement
rates) so the whole benchmark suite runs in minutes; pass
``--paper-scale`` to run the full five 8-hour days instead.

Timing-gate robustness: the throughput benchmarks (engine >= 5x, MD grid
>= 5x, replay >= 5x, learning curve >= 3x, sweep <= 1.3x per-scenario
overhead) assert on wall-clock ratios, which are noisy on loaded CI
runners.  The shared ``best_of`` fixture times each side as the best of
``--bench-repeats`` runs — the minimum is the standard robust estimator
for "how fast can this code go", since external load only ever *adds*
time — and ``speedup_gate`` renders and asserts the ratio uniformly
across the gate benchmarks.

Machine-readable results: every ``speedup_gate`` invocation is also
recorded (reference/fast wall times, measured ratio, required ratio,
pass/fail) and written to the ``--bench-json`` file at session end,
*merged* with any results already in the file — the CI smoke steps each
run a different benchmark module into the same ``BENCH_results.json``,
which is then uploaded as a build artifact so the perf trajectory is
tracked across commits.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis.campaign import AnalysisContext, CampaignScale, collect_campaign
from repro.core.config import FadewichConfig

SENSOR_SWEEP = (3, 4, 5, 6, 7, 8, 9)
FIGURE_SENSORS = (3, 5, 7, 9)


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks on five full 8-hour days instead of the "
        "compact campaign",
    )
    parser.addoption(
        "--campaign-seed",
        action="store",
        type=int,
        default=42,
        help="seed of the simulated campaign",
    )
    parser.addoption(
        "--engine-day-s",
        action="store",
        type=float,
        default=2400.0,
        help="simulated day length (seconds) of the engine throughput "
        "benchmark; CI smoke runs pass a tiny value (overridden to the "
        "full 8-hour day by --paper-scale)",
    )
    parser.addoption(
        "--analysis-day-s",
        action="store",
        type=float,
        default=1200.0,
        help="simulated day length (seconds) of the analysis throughput "
        "benchmark; CI smoke runs pass a smaller value (overridden to the "
        "full 8-hour day by --paper-scale)",
    )
    parser.addoption(
        "--sweep-day-s",
        action="store",
        type=float,
        default=600.0,
        help="simulated day length (seconds) of each scenario in the sweep "
        "throughput benchmark (overridden to the full 8-hour day by "
        "--paper-scale)",
    )
    parser.addoption(
        "--streaming-day-s",
        action="store",
        type=float,
        default=2400.0,
        help="simulated day length (seconds) replayed through the streaming "
        "detection kernel and the multi-tenant router in the streaming "
        "throughput benchmark; CI smoke runs pass a smaller value "
        "(overridden to the full 8-hour day by --paper-scale)",
    )
    parser.addoption(
        "--bench-repeats",
        action="store",
        type=int,
        default=3,
        help="how many times each timed side of a throughput gate runs; "
        "the best (minimum) time is used, making the gates robust to "
        "loaded runners",
    )
    parser.addoption(
        "--run-stress",
        action="store_true",
        default=False,
        help="run the @pytest.mark.stress benchmarks (e.g. the ~1000-point "
        "multi-detector prioritized sweep), which are far too heavy for "
        "the CI smoke steps",
    )
    parser.addoption(
        "--bench-json",
        action="store",
        default="BENCH_results.json",
        help="file the per-gate speedup factors and wall times are written "
        "to at session end (merged with existing content so several "
        "benchmark invocations accumulate into one report); pass an empty "
        "string to disable",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "stress: heavy load-test benchmarks, skipped unless --run-stress",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-stress"):
        return
    skip = pytest.mark.skip(reason="stress benchmark; pass --run-stress")
    for item in items:
        if "stress" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def campaign(request):
    """The recorded campaign all benchmarks analyse."""
    scale = (
        CampaignScale.paper()
        if request.config.getoption("--paper-scale")
        else CampaignScale.compact()
    )
    seed = request.config.getoption("--campaign-seed")
    return collect_campaign(seed=seed, scale=scale)


@pytest.fixture(scope="session")
def context(campaign):
    """The cached analysis context over the benchmark campaign."""
    return AnalysisContext(campaign, FadewichConfig(), seed=0)


@pytest.fixture(scope="session")
def config():
    return FadewichConfig()


@pytest.fixture(scope="session")
def best_of(request):
    """Robust timer: best wall-clock of ``--bench-repeats`` runs.

    Returns ``(seconds, result)`` of the fastest run.  All gated code paths
    are deterministic, so every repeat returns the same result; the first
    repeat doubles as a warm-up (allocator, caches), which is why callers
    no longer need explicit warm-up calls.
    """
    default_repeats = max(1, int(request.config.getoption("--bench-repeats")))

    def _best_of(fn, repeats: int = default_repeats):
        best_t, result = float("inf"), None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - t0
            if elapsed < best_t:
                best_t, result = elapsed, value
        return best_t, result

    return _best_of


@pytest.fixture(scope="session")
def speedup_gate(request):
    """Uniform render-record-and-assert for the throughput gates.

    ``gate(label, t_reference, t_fast, min_speedup, detail=...)`` prints
    both timings and the measured ratio, records the measurement for the
    ``--bench-json`` report (before asserting, so failed gates are
    reported too), asserts ``t_reference / t_fast >= min_speedup`` and
    returns the ratio.
    """
    results = _bench_results(request.config)

    def _gate(
        label: str,
        t_reference: float,
        t_fast: float,
        min_speedup: float,
        *,
        reference_name: str = "reference",
        fast_name: str = "fast path",
        detail: str = "",
    ) -> float:
        speedup = t_reference / t_fast
        results[label] = {
            "reference_s": round(t_reference, 6),
            "fast_s": round(t_fast, 6),
            "speedup": round(speedup, 4),
            "min_required": min_speedup,
            "passed": bool(speedup >= min_speedup),
            "detail": detail,
        }
        print(
            f"\n{label}{f' ({detail})' if detail else ''}:\n"
            f"  {reference_name}: {t_reference:8.3f}s\n"
            f"  {fast_name}: {t_fast:8.3f}s\n"
            f"  speedup: {speedup:.2f}x (required >= {min_speedup:.2f}x)"
        )
        assert speedup >= min_speedup, (
            f"{label}: {fast_name} lost its edge — "
            f"{speedup:.2f}x < required {min_speedup:.2f}x"
        )
        return speedup

    return _gate


def _bench_results(config) -> dict:
    """The session's gate-measurement store (lazily created)."""
    if not hasattr(config, "_bench_gate_results"):
        config._bench_gate_results = {}
    return config._bench_gate_results


def pytest_sessionfinish(session, exitstatus):
    """Write (merge) the recorded gate measurements into ``--bench-json``.

    Merging lets the CI smoke steps — separate pytest invocations over
    different benchmark modules — accumulate into one
    ``BENCH_results.json`` artifact.
    """
    path = session.config.getoption("--bench-json")
    results = _bench_results(session.config)
    if not path or not results:
        return
    report = {"schema": 1, "gates": {}}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if isinstance(existing.get("gates"), dict):
                report["gates"] = existing["gates"]
        except (OSError, ValueError):
            pass
    for label, entry in results.items():
        report["gates"][label] = dict(entry, recorded_at=time.time())
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

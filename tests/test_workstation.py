"""Tests for the workstation substrate: input activity, idle time, sessions."""

import numpy as np
import pytest

from repro.workstation.activity import (
    MIKKELSEN_ACTIVITY_PROBABILITY,
    ActivityTrace,
    InputActivityModel,
)
from repro.workstation.idle import IdleTracker, TraceIdleProvider
from repro.workstation.session import SessionState, WorkstationSession


class TestActivityModel:
    def test_activity_fraction_matches_mikkelsen(self, rng):
        model = InputActivityModel(rng=rng)
        trace = model.generate_always_present(duration_s=3600.0 * 5)
        fraction = trace.active_bins.mean()
        assert fraction == pytest.approx(MIKKELSEN_ACTIVITY_PROBABILITY, abs=0.03)

    def test_no_input_outside_presence(self, rng):
        model = InputActivityModel(rng=rng)
        trace = model.generate(600.0, presence_intervals=[(0.0, 100.0)])
        # Bins after 100 s must all be inactive.
        first_absent_bin = int(100.0 / trace.bin_seconds) + 1
        assert not trace.active_bins[first_absent_bin:].any()

    def test_idle_time_grows_during_absence(self, rng):
        model = InputActivityModel(activity_prob=1.0, rng=rng)
        trace = model.generate(300.0, presence_intervals=[(0.0, 100.0)])
        assert trace.idle_time_at(250.0) >= 140.0

    def test_idle_time_small_while_active(self, rng):
        model = InputActivityModel(activity_prob=1.0, rng=rng)
        trace = model.generate_always_present(300.0)
        assert trace.idle_time_at(200.0) <= trace.bin_seconds + 1e-9

    def test_has_input_in_interval(self, rng):
        model = InputActivityModel(activity_prob=1.0, rng=rng)
        trace = model.generate(100.0, presence_intervals=[(0.0, 50.0)])
        assert trace.has_input_in(0.0, 20.0)
        assert not trace.has_input_in(60.0, 90.0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            InputActivityModel(activity_prob=1.5)
        with pytest.raises(ValueError):
            InputActivityModel(bin_seconds=0.0)
        with pytest.raises(ValueError):
            InputActivityModel().generate(0.0, [])

    def test_trace_duration_and_end_time(self):
        trace = ActivityTrace(bin_seconds=5.0, active_bins=np.ones(10, dtype=bool))
        assert trace.duration == pytest.approx(50.0)
        assert trace.end_time == pytest.approx(50.0)

    def test_last_input_before_start_is_none(self):
        trace = ActivityTrace(
            bin_seconds=5.0, active_bins=np.ones(4, dtype=bool), start_time=100.0
        )
        assert trace.last_input_before(50.0) is None


class TestIdleTracking:
    def test_idle_tracker_counts_from_start_without_input(self):
        tracker = IdleTracker(["w1", "w2"], start_time=0.0)
        assert tracker.idle_time("w1", 30.0) == pytest.approx(30.0)

    def test_idle_tracker_resets_on_input(self):
        tracker = IdleTracker(["w1"])
        tracker.record_input("w1", 10.0)
        assert tracker.idle_time("w1", 12.0) == pytest.approx(2.0)

    def test_idle_tracker_idle_for_query(self):
        tracker = IdleTracker(["w1", "w2"])
        tracker.record_input("w1", 95.0)
        tracker.record_input("w2", 10.0)
        assert tracker.idle_for(t=100.0, s=30.0) == ["w2"]

    def test_idle_tracker_rejects_out_of_order_input(self):
        tracker = IdleTracker(["w1"])
        tracker.record_input("w1", 10.0)
        with pytest.raises(ValueError):
            tracker.record_input("w1", 5.0)

    def test_idle_tracker_unknown_workstation(self):
        tracker = IdleTracker(["w1"])
        with pytest.raises(KeyError):
            tracker.idle_time("w9", 0.0)
        with pytest.raises(KeyError):
            tracker.record_input("w9", 0.0)

    def test_idle_tracker_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            IdleTracker(["w1", "w1"])

    def test_trace_idle_provider(self, rng):
        model = InputActivityModel(activity_prob=1.0, rng=rng)
        traces = {
            "w1": model.generate(200.0, [(0.0, 200.0)]),
            "w2": model.generate(200.0, [(0.0, 50.0)]),
        }
        provider = TraceIdleProvider(traces)
        assert provider.idle_time("w1", 150.0) <= 6.0
        assert provider.idle_time("w2", 150.0) >= 90.0
        assert provider.idle_for(150.0, 60.0) == ["w2"]

    def test_trace_idle_provider_empty_raises(self):
        with pytest.raises(ValueError):
            TraceIdleProvider({})


class TestWorkstationSession:
    def test_initial_state_authenticated(self):
        session = WorkstationSession("w1")
        assert session.state is SessionState.AUTHENTICATED
        assert session.is_accessible()

    def test_deauthentication_blocks_access(self):
        session = WorkstationSession("w1")
        session.deauthenticate(10.0)
        assert session.state is SessionState.DEAUTHENTICATED
        assert not session.is_accessible()
        assert session.deauthentications() == 1

    def test_alert_then_screensaver_after_tid(self):
        session = WorkstationSession("w1", t_id_s=5.0)
        session.enter_alert(10.0)
        session.tick(12.0, idle_time_s=2.0)
        assert session.state is SessionState.ALERT
        session.tick(16.0, idle_time_s=6.0)
        assert session.state is SessionState.SCREENSAVER
        assert session.screensaver_activations() == 1

    def test_input_cancels_alert(self):
        session = WorkstationSession("w1")
        session.enter_alert(10.0)
        session.register_input(11.0)
        assert session.state is SessionState.AUTHENTICATED
        session.tick(20.0, idle_time_s=10.0)
        assert session.state is SessionState.AUTHENTICATED

    def test_input_does_not_reauthenticate(self):
        session = WorkstationSession("w1")
        session.deauthenticate(5.0)
        session.register_input(6.0)
        assert session.state is SessionState.DEAUTHENTICATED
        session.reauthenticate(7.0)
        assert session.state is SessionState.AUTHENTICATED

    def test_alert_on_deauthenticated_session_is_noop(self):
        session = WorkstationSession("w1")
        session.deauthenticate(5.0)
        session.enter_alert(6.0)
        assert session.state is SessionState.DEAUTHENTICATED

    def test_history_records_transitions(self):
        session = WorkstationSession("w1")
        session.enter_alert(1.0)
        session.register_input(2.0)
        session.deauthenticate(3.0)
        states = [ev.to_state for ev in session.history]
        assert states == [
            SessionState.ALERT,
            SessionState.AUTHENTICATED,
            SessionState.DEAUTHENTICATED,
        ]

    def test_negative_tid_rejected(self):
        with pytest.raises(ValueError):
            WorkstationSession("w1", t_id_s=-1.0)

    def test_repeated_alert_does_not_restart_timer(self):
        session = WorkstationSession("w1", t_id_s=5.0)
        session.enter_alert(10.0)
        session.enter_alert(14.0)
        session.tick(15.5, idle_time_s=6.0)
        assert session.state is SessionState.SCREENSAVER

"""Tests for the FADEWICH configuration, variation windows, KMA and actions."""

import pytest

from repro.core.config import FadewichConfig, MDConfig, REConfig
from repro.core.kma import KeyboardMouseActivity
from repro.core.windows import (
    TrueWindow,
    VariationWindow,
    match_windows,
    true_window_for_event,
)
from repro.mobility.events import EventKind, GroundTruthEvent
from repro.workstation.idle import IdleTracker


class TestConfig:
    def test_paper_defaults(self, config):
        assert config.t_delta_s == pytest.approx(4.5)
        assert config.t_id_s == pytest.approx(5.0)
        assert config.t_ss_s == pytest.approx(3.0)
        assert config.timeout_s == pytest.approx(300.0)
        assert config.screensaver_cost_s == pytest.approx(3.0)
        assert config.reauth_cost_s == pytest.approx(13.0)
        assert config.md.alpha == pytest.approx(1.0)

    def test_misclassification_delay_is_tid_plus_tss(self, config):
        assert config.misclassification_delay_s == pytest.approx(8.0)

    def test_with_t_delta_returns_modified_copy(self, config):
        other = config.with_t_delta(6.0)
        assert other.t_delta_s == 6.0
        assert config.t_delta_s == 4.5

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FadewichConfig(t_delta_s=0.0)
        with pytest.raises(ValueError):
            FadewichConfig(timeout_s=-1.0)
        with pytest.raises(ValueError):
            MDConfig(alpha=0.0)
        with pytest.raises(ValueError):
            MDConfig(tau=1.5)
        with pytest.raises(ValueError):
            REConfig(svm_c=0.0)
        with pytest.raises(ValueError):
            REConfig(entropy_bins=0)


class TestVariationWindows:
    def _event(self, t=100.0, exit_time=105.0, label="w1"):
        return GroundTruthEvent(
            EventKind.DEPARTURE, t, "u1", label, exit_time=exit_time
        )

    def test_duration_and_contains(self):
        window = VariationWindow(10.0, 16.0)
        assert window.duration == pytest.approx(6.0)
        assert window.contains(12.0)
        assert not window.contains(17.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            VariationWindow(10.0, 5.0)

    def test_true_window_spans_event_and_exit(self):
        tw = true_window_for_event(self._event(), slack_s=5.0)
        assert tw.t_start == pytest.approx(95.0)
        assert tw.t_end == pytest.approx(110.0)

    def test_true_window_without_exit_time(self):
        event = GroundTruthEvent(EventKind.ENTRY, 50.0, "u1", "w1")
        tw = true_window_for_event(event, slack_s=3.0)
        assert tw.t_start == pytest.approx(47.0)
        assert tw.t_end == pytest.approx(53.0)

    def test_overlap_detection(self):
        tw = TrueWindow(95.0, 110.0, self._event())
        assert VariationWindow(100.0, 108.0).overlaps(tw)
        assert VariationWindow(80.0, 96.0).overlaps(tw)
        assert not VariationWindow(111.0, 120.0).overlaps(tw)

    def test_match_counts_tp_fp_fn(self):
        events = [self._event(100.0, 105.0), self._event(200.0, 205.0, "w2")]
        windows = [
            VariationWindow(101.0, 107.0),  # matches first event
            VariationWindow(300.0, 306.0),  # matches nothing -> FP
        ]
        result = match_windows(windows, events, slack_s=5.0)
        assert result.counts.tp == 1
        assert result.counts.fp == 1
        assert result.counts.fn == 1

    def test_min_duration_filters_short_windows(self):
        events = [self._event(100.0, 105.0)]
        windows = [VariationWindow(101.0, 103.0)]  # only 2 s long
        result = match_windows(windows, events, slack_s=5.0, min_duration_s=4.5)
        assert result.counts.tp == 0
        assert result.counts.fn == 1

    def test_redundant_detection_not_counted_as_fp(self):
        events = [self._event(100.0, 105.0)]
        windows = [VariationWindow(99.0, 104.0), VariationWindow(105.0, 110.0)]
        result = match_windows(windows, events, slack_s=5.0)
        assert result.counts.tp == 1
        assert result.counts.fp == 0

    def test_each_event_matched_at_most_once(self):
        events = [self._event(100.0, 105.0)]
        windows = [VariationWindow(99.0, 104.0)]
        result = match_windows(windows, events, slack_s=5.0)
        assert len(result.true_positive_pairs) == 1
        assert len(result.missed_events) == 0


class TestKMA:
    def test_idle_set_matches_tracker(self):
        tracker = IdleTracker(["w1", "w2", "w3"])
        tracker.record_input("w1", 95.0)
        tracker.record_input("w2", 50.0)
        kma = KeyboardMouseActivity(tracker)
        assert kma.idle_set(t=100.0, s=10.0) == {"w2", "w3"}
        assert kma.idle_set(t=100.0, s=200.0) == set()

    def test_idle_time_passthrough(self):
        tracker = IdleTracker(["w1"])
        tracker.record_input("w1", 90.0)
        kma = KeyboardMouseActivity(tracker)
        assert kma.idle_time("w1", 100.0) == pytest.approx(10.0)

    def test_most_idle(self):
        tracker = IdleTracker(["w1", "w2"])
        tracker.record_input("w1", 99.0)
        tracker.record_input("w2", 10.0)
        kma = KeyboardMouseActivity(tracker)
        assert kma.most_idle(100.0) == "w2"

    def test_negative_threshold_rejected(self):
        kma = KeyboardMouseActivity(IdleTracker(["w1"]))
        with pytest.raises(ValueError):
            kma.idle_set(10.0, -1.0)

    def test_workstation_ids_exposed(self):
        kma = KeyboardMouseActivity(IdleTracker(["w1", "w2"]))
        assert set(kma.workstation_ids) == {"w1", "w2"}

"""Tests for the SVM substrate: kernels, the SMO solver and one-vs-one."""

import numpy as np
import pytest

from repro.ml.kernels import (
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    make_kernel,
)
from repro.ml.multiclass import OneVsOneSVC
from repro.ml.svm import BinarySVC, SVMNotFittedError


class TestKernels:
    def test_linear_kernel_matches_dot_product(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        Y = np.array([[0.5, 0.5]])
        K = LinearKernel()(X, Y)
        assert K.shape == (2, 1)
        assert K[0, 0] == pytest.approx(1.5)
        assert K[1, 0] == pytest.approx(3.5)

    def test_rbf_kernel_is_one_on_diagonal(self):
        X = np.random.default_rng(0).normal(size=(5, 3))
        K = RBFKernel(gamma=0.7)(X, X)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_kernel_decreases_with_distance(self):
        k = RBFKernel(gamma=1.0)
        near = k(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = k(np.array([[0.0]]), np.array([[2.0]]))[0, 0]
        assert near > far

    def test_rbf_kernel_values_in_unit_interval(self):
        X = np.random.default_rng(1).normal(size=(10, 4))
        K = RBFKernel(gamma=0.3)(X, X)
        assert np.all(K <= 1.0 + 1e-12)
        assert np.all(K >= 0.0)

    def test_polynomial_kernel_degree_one_is_affine_dot(self):
        k = PolynomialKernel(degree=1, gamma=1.0, coef0=2.0)
        K = k(np.array([[1.0, 1.0]]), np.array([[2.0, 3.0]]))
        assert K[0, 0] == pytest.approx(7.0)

    def test_kernel_gram_is_symmetric(self):
        X = np.random.default_rng(2).normal(size=(6, 3))
        for kernel in (LinearKernel(), RBFKernel(gamma=0.5), PolynomialKernel()):
            K = kernel(X, X)
            assert np.allclose(K, K.T)

    def test_kernel_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            LinearKernel()(np.ones((2, 3)), np.ones((2, 4)))

    def test_make_kernel_by_name(self):
        assert isinstance(make_kernel("linear"), LinearKernel)
        assert isinstance(make_kernel("rbf", gamma=2.0), RBFKernel)
        assert isinstance(make_kernel("poly", degree=2), PolynomialKernel)

    def test_make_kernel_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_kernel("sigmoid")

    def test_kernel_diagonal_consistency(self):
        X = np.random.default_rng(3).normal(size=(4, 2))
        for kernel in (LinearKernel(), RBFKernel(gamma=0.5), PolynomialKernel()):
            full = np.diag(kernel(X, X))
            assert np.allclose(kernel.diagonal(X), full)


class TestBinarySVC:
    def _separable(self, rng):
        X = np.vstack(
            [rng.normal(-2.0, 0.4, size=(25, 2)), rng.normal(2.0, 0.4, size=(25, 2))]
        )
        y = np.array([0] * 25 + [1] * 25)
        return X, y

    def test_fits_linearly_separable_data(self, rng):
        X, y = self._separable(rng)
        clf = BinarySVC(C=1.0, kernel="linear").fit(X, y)
        assert clf.score(X, y) == pytest.approx(1.0)

    def test_rbf_fits_xor_pattern(self, rng):
        X = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(20, 2)),
                rng.normal([3, 3], 0.2, size=(20, 2)),
                rng.normal([0, 3], 0.2, size=(20, 2)),
                rng.normal([3, 0], 0.2, size=(20, 2)),
            ]
        )
        y = np.array([0] * 40 + [1] * 40)
        clf = BinarySVC(C=10.0, kernel="rbf", gamma=1.0).fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(SVMNotFittedError):
            BinarySVC().predict(np.zeros((1, 2)))

    def test_decision_function_sign_matches_prediction(self, rng):
        X, y = self._separable(rng)
        clf = BinarySVC(C=1.0, kernel="linear").fit(X, y)
        scores = clf.decision_function(X)
        preds = clf.predict(X)
        assert np.all((scores >= 0) == (preds == clf.classes_[1]))

    def test_string_labels_are_preserved(self, rng):
        X, _ = self._separable(rng)
        y = np.array(["a"] * 25 + ["b"] * 25)
        clf = BinarySVC(kernel="linear").fit(X, y)
        assert set(clf.predict(X)) <= {"a", "b"}

    def test_single_class_training_predicts_that_class(self):
        X = np.zeros((5, 2))
        y = np.array(["only"] * 5)
        clf = BinarySVC().fit(X, y)
        assert list(clf.predict(np.ones((3, 2)))) == ["only"] * 3

    def test_more_than_two_classes_raises(self):
        X = np.zeros((3, 2))
        with pytest.raises(ValueError):
            BinarySVC().fit(X, np.array([0, 1, 2]))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            BinarySVC().fit(np.zeros((3, 2)), np.array([0, 1]))

    def test_support_vectors_are_subset_of_training_data(self, rng):
        X, y = self._separable(rng)
        clf = BinarySVC(C=1.0, kernel="linear").fit(X, y)
        assert clf.support_vectors_.shape[0] <= X.shape[0]
        assert clf.support_vectors_.shape[1] == X.shape[1]

    def test_gamma_scale_heuristic_used_when_none(self, rng):
        X, y = self._separable(rng)
        clf = BinarySVC(kernel="rbf", gamma=None).fit(X, y)
        assert clf._kernel_obj.gamma > 0


class TestOneVsOneSVC:
    def _blobs(self, rng, centers=(0.0, 4.0, 8.0), n=20):
        X = np.vstack([rng.normal(c, 0.3, size=(n, 2)) for c in centers])
        y = np.repeat(np.arange(len(centers)), n)
        return X, y

    def test_three_class_blobs_are_learned(self, rng):
        X, y = self._blobs(rng)
        clf = OneVsOneSVC(C=10.0, kernel="rbf").fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_number_of_pairwise_estimators(self, rng):
        X, y = self._blobs(rng, centers=(0.0, 3.0, 6.0, 9.0))
        clf = OneVsOneSVC(kernel="linear").fit(X, y)
        assert len(clf.estimators_) == 6  # 4 choose 2

    def test_predict_before_fit_raises(self):
        with pytest.raises(SVMNotFittedError):
            OneVsOneSVC().predict(np.zeros((1, 2)))

    def test_single_class_dataset(self):
        X = np.random.default_rng(0).normal(size=(5, 2))
        y = np.array(["w1"] * 5)
        clf = OneVsOneSVC().fit(X, y)
        assert list(clf.predict(X)) == ["w1"] * 5

    def test_empty_training_set_raises(self):
        with pytest.raises(ValueError):
            OneVsOneSVC().fit(np.empty((0, 2)), np.empty((0,)))

    def test_string_labels(self, rng):
        X, y_int = self._blobs(rng)
        labels = np.array(["w0", "w1", "w2"])[y_int]
        clf = OneVsOneSVC(kernel="linear").fit(X, labels)
        assert set(clf.predict(X)) <= {"w0", "w1", "w2"}
        assert clf.score(X, labels) > 0.95

    def test_generalises_to_held_out_points(self, rng):
        X, y = self._blobs(rng, n=30)
        clf = OneVsOneSVC(C=10.0, kernel="rbf").fit(X[::2], y[::2])
        assert clf.score(X[1::2], y[1::2]) > 0.9

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            OneVsOneSVC().fit(np.zeros((3, 2)), np.array([0, 1]))

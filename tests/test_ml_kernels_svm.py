"""Tests for the SVM substrate: kernels, the SMO solver and one-vs-one."""

import numpy as np
import pytest

from repro.ml.kernels import (
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    make_kernel,
)
from repro.ml.multiclass import OneVsOneSVC
from repro.ml.svm import BinarySVC, SVMNotFittedError


class TestKernels:
    def test_linear_kernel_matches_dot_product(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        Y = np.array([[0.5, 0.5]])
        K = LinearKernel()(X, Y)
        assert K.shape == (2, 1)
        assert K[0, 0] == pytest.approx(1.5)
        assert K[1, 0] == pytest.approx(3.5)

    def test_rbf_kernel_is_one_on_diagonal(self):
        X = np.random.default_rng(0).normal(size=(5, 3))
        K = RBFKernel(gamma=0.7)(X, X)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_kernel_decreases_with_distance(self):
        k = RBFKernel(gamma=1.0)
        near = k(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = k(np.array([[0.0]]), np.array([[2.0]]))[0, 0]
        assert near > far

    def test_rbf_kernel_values_in_unit_interval(self):
        X = np.random.default_rng(1).normal(size=(10, 4))
        K = RBFKernel(gamma=0.3)(X, X)
        assert np.all(K <= 1.0 + 1e-12)
        assert np.all(K >= 0.0)

    def test_polynomial_kernel_degree_one_is_affine_dot(self):
        k = PolynomialKernel(degree=1, gamma=1.0, coef0=2.0)
        K = k(np.array([[1.0, 1.0]]), np.array([[2.0, 3.0]]))
        assert K[0, 0] == pytest.approx(7.0)

    def test_kernel_gram_is_symmetric(self):
        X = np.random.default_rng(2).normal(size=(6, 3))
        for kernel in (LinearKernel(), RBFKernel(gamma=0.5), PolynomialKernel()):
            K = kernel(X, X)
            assert np.allclose(K, K.T)

    def test_kernel_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            LinearKernel()(np.ones((2, 3)), np.ones((2, 4)))

    def test_make_kernel_by_name(self):
        assert isinstance(make_kernel("linear"), LinearKernel)
        assert isinstance(make_kernel("rbf", gamma=2.0), RBFKernel)
        assert isinstance(make_kernel("poly", degree=2), PolynomialKernel)

    def test_make_kernel_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_kernel("sigmoid")

    def test_kernel_diagonal_consistency(self):
        X = np.random.default_rng(3).normal(size=(4, 2))
        for kernel in (LinearKernel(), RBFKernel(gamma=0.5), PolynomialKernel()):
            full = np.diag(kernel(X, X))
            assert np.allclose(kernel.diagonal(X), full)


class TestBinarySVC:
    def _separable(self, rng):
        X = np.vstack(
            [rng.normal(-2.0, 0.4, size=(25, 2)), rng.normal(2.0, 0.4, size=(25, 2))]
        )
        y = np.array([0] * 25 + [1] * 25)
        return X, y

    def test_fits_linearly_separable_data(self, rng):
        X, y = self._separable(rng)
        clf = BinarySVC(C=1.0, kernel="linear").fit(X, y)
        assert clf.score(X, y) == pytest.approx(1.0)

    def test_rbf_fits_xor_pattern(self, rng):
        X = np.vstack(
            [
                rng.normal([0, 0], 0.2, size=(20, 2)),
                rng.normal([3, 3], 0.2, size=(20, 2)),
                rng.normal([0, 3], 0.2, size=(20, 2)),
                rng.normal([3, 0], 0.2, size=(20, 2)),
            ]
        )
        y = np.array([0] * 40 + [1] * 40)
        clf = BinarySVC(C=10.0, kernel="rbf", gamma=1.0).fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(SVMNotFittedError):
            BinarySVC().predict(np.zeros((1, 2)))

    def test_decision_function_sign_matches_prediction(self, rng):
        X, y = self._separable(rng)
        clf = BinarySVC(C=1.0, kernel="linear").fit(X, y)
        scores = clf.decision_function(X)
        preds = clf.predict(X)
        assert np.all((scores >= 0) == (preds == clf.classes_[1]))

    def test_string_labels_are_preserved(self, rng):
        X, _ = self._separable(rng)
        y = np.array(["a"] * 25 + ["b"] * 25)
        clf = BinarySVC(kernel="linear").fit(X, y)
        assert set(clf.predict(X)) <= {"a", "b"}

    def test_single_class_training_predicts_that_class(self):
        X = np.zeros((5, 2))
        y = np.array(["only"] * 5)
        clf = BinarySVC().fit(X, y)
        assert list(clf.predict(np.ones((3, 2)))) == ["only"] * 3

    def test_more_than_two_classes_raises(self):
        X = np.zeros((3, 2))
        with pytest.raises(ValueError):
            BinarySVC().fit(X, np.array([0, 1, 2]))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            BinarySVC().fit(np.zeros((3, 2)), np.array([0, 1]))

    def test_support_vectors_are_subset_of_training_data(self, rng):
        X, y = self._separable(rng)
        clf = BinarySVC(C=1.0, kernel="linear").fit(X, y)
        assert clf.support_vectors_.shape[0] <= X.shape[0]
        assert clf.support_vectors_.shape[1] == X.shape[1]

    def test_gamma_scale_heuristic_used_when_none(self, rng):
        X, y = self._separable(rng)
        clf = BinarySVC(kernel="rbf", gamma=None).fit(X, y)
        assert clf._kernel_obj.gamma > 0


class TestOneVsOneSVC:
    def _blobs(self, rng, centers=(0.0, 4.0, 8.0), n=20):
        X = np.vstack([rng.normal(c, 0.3, size=(n, 2)) for c in centers])
        y = np.repeat(np.arange(len(centers)), n)
        return X, y

    def test_three_class_blobs_are_learned(self, rng):
        X, y = self._blobs(rng)
        clf = OneVsOneSVC(C=10.0, kernel="rbf").fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_number_of_pairwise_estimators(self, rng):
        X, y = self._blobs(rng, centers=(0.0, 3.0, 6.0, 9.0))
        clf = OneVsOneSVC(kernel="linear").fit(X, y)
        assert len(clf.estimators_) == 6  # 4 choose 2

    def test_predict_before_fit_raises(self):
        with pytest.raises(SVMNotFittedError):
            OneVsOneSVC().predict(np.zeros((1, 2)))

    def test_single_class_dataset(self):
        X = np.random.default_rng(0).normal(size=(5, 2))
        y = np.array(["w1"] * 5)
        clf = OneVsOneSVC().fit(X, y)
        assert list(clf.predict(X)) == ["w1"] * 5

    def test_empty_training_set_raises(self):
        with pytest.raises(ValueError):
            OneVsOneSVC().fit(np.empty((0, 2)), np.empty((0,)))

    def test_string_labels(self, rng):
        X, y_int = self._blobs(rng)
        labels = np.array(["w0", "w1", "w2"])[y_int]
        clf = OneVsOneSVC(kernel="linear").fit(X, labels)
        assert set(clf.predict(X)) <= {"w0", "w1", "w2"}
        assert clf.score(X, labels) > 0.95

    def test_generalises_to_held_out_points(self, rng):
        X, y = self._blobs(rng, n=30)
        clf = OneVsOneSVC(C=10.0, kernel="rbf").fit(X[::2], y[::2])
        assert clf.score(X[1::2], y[1::2]) > 0.9

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            OneVsOneSVC().fit(np.zeros((3, 2)), np.array([0, 1]))


class TestPrecomputedKernel:
    """``kernel="precomputed"``: Gram-view fits, bit-identical to direct."""

    def _data(self, rng, n=60, d=12, classes=3):
        X = rng.normal(size=(n, d))
        y = rng.integers(0, classes, n)
        return X, y

    def test_binary_precomputed_fit_bit_identical_to_direct(self, rng):
        X, y = self._data(rng, classes=2)
        kern = RBFKernel(gamma=0.15)
        K = kern(X, X)
        for _ in range(3):
            idx = np.sort(rng.choice(X.shape[0], size=40, replace=False))
            direct = BinarySVC(C=5.0, kernel=kern, random_state=0).fit(X[idx], y[idx])
            pre = BinarySVC(C=5.0, kernel="precomputed", random_state=0).fit(
                K[np.ix_(idx, idx)], y[idx]
            )
            np.testing.assert_array_equal(direct.dual_coef_, pre.dual_coef_)
            np.testing.assert_array_equal(direct.support_idx_, pre.support_idx_)
            assert direct.intercept_ == pre.intercept_

    def test_ovo_precomputed_predictions_bit_identical_to_direct(self, rng):
        X, y = self._data(rng)
        kern = RBFKernel(gamma=0.15)
        K = kern(X, X)
        idx = np.sort(rng.choice(X.shape[0], size=45, replace=False))
        test = np.setdiff1d(np.arange(X.shape[0]), idx)
        direct = OneVsOneSVC(C=5.0, kernel=kern, random_state=0).fit(X[idx], y[idx])
        pre = OneVsOneSVC(C=5.0, kernel="precomputed", random_state=0).fit(
            K[np.ix_(idx, idx)], y[idx]
        )
        np.testing.assert_array_equal(
            direct.predict(X[test]), pre.predict(kern(X[test], X[idx]))
        )
        # Cached test-row columns of a bigger Gram block work identically.
        K_all = kern(X, X[idx])
        np.testing.assert_array_equal(
            pre.predict(K_all[test]), direct.predict(X[test])
        )

    def test_precomputed_requires_square_gram(self, rng):
        X, y = self._data(rng, classes=2)
        with pytest.raises(ValueError, match="square"):
            BinarySVC(kernel="precomputed").fit(X[:10, :5], y[:10])
        with pytest.raises(ValueError, match="square"):
            OneVsOneSVC(kernel="precomputed").fit(X[:10, :5], y[:10])

    def test_precomputed_predict_validates_columns(self, rng):
        X, y = self._data(rng, classes=2)
        K = LinearKernel()(X, X)
        clf = BinarySVC(kernel="precomputed").fit(K[:30, :30], y[:30])
        with pytest.raises(ValueError, match="training columns"):
            clf.decision_function(K[:5, :10])


class TestSMOErrorCache:
    """The incremental error cache and its retained reference formulation."""

    def _binary(self, rng, n=50):
        X = np.vstack([
            rng.normal(-1.0, 1.0, size=(n // 2, 6)),
            rng.normal(1.0, 1.0, size=(n - n // 2, 6)),
        ])
        y = np.array([0] * (n // 2) + [1] * (n - n // 2))
        return X, y

    def test_fixed_seed_fits_are_bit_identical(self, rng):
        X, y = self._binary(rng)
        fits = [
            BinarySVC(C=2.0, kernel="rbf", gamma=0.2, random_state=7).fit(X, y)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(fits[0].dual_coef_, fits[1].dual_coef_)
        np.testing.assert_array_equal(fits[0].alpha_, fits[1].alpha_)
        assert fits[0].intercept_ == fits[1].intercept_

    def test_reference_formulation_reaches_same_quality(self, rng):
        X, y = self._binary(rng, n=60)
        cached = BinarySVC(C=2.0, kernel="linear", random_state=0).fit(X, y)
        reference = BinarySVC(
            C=2.0, kernel="linear", random_state=0, error_cache=False
        ).fit(X, y)
        assert cached.score(X, y) >= reference.score(X, y) - 0.05

    def test_dual_constraints_hold_after_cached_fit(self, rng):
        """The incremental updates preserve the SMO dual invariants.

        Every accepted (i, j) step must keep the box constraints
        ``0 <= alpha <= C`` and conserve ``sum(alpha * y)`` (each step
        moves the pair along the equality constraint); a buggy cache
        update would break them silently.
        """
        X, y = self._binary(rng, n=40)
        clf = BinarySVC(C=1.0, kernel="linear", random_state=0).fit(X, y)
        y_signed = np.where(y == clf.classes_[1], 1.0, -1.0)
        assert np.all(clf.alpha_ >= 0.0)
        assert np.all(clf.alpha_ <= clf.C)
        assert abs(float(clf.alpha_ @ y_signed)) < 1e-7

    def test_warm_start_converges_to_valid_solution(self, rng):
        X, y = self._binary(rng, n=60)
        kern = LinearKernel()
        K = kern(X, X)
        cold_small = BinarySVC(C=1.0, kernel="precomputed", random_state=0).fit(
            K[:30, :30], y[:30]
        )
        warm = BinarySVC(C=1.0, kernel="precomputed", random_state=0)
        warm.fit(K, y, init=(cold_small.alpha_, cold_small.intercept_))
        cold = BinarySVC(C=1.0, kernel="precomputed", random_state=0).fit(K, y)
        # Same tol-quality stationary point: train accuracy matches cold.
        assert (
            abs(float(np.mean(warm.predict(K) == y)) - float(np.mean(cold.predict(K) == y)))
            <= 0.05
        )

    def test_warm_start_rejects_oversized_alpha(self, rng):
        X, y = self._binary(rng, n=20)
        with pytest.raises(ValueError, match="warm-start"):
            BinarySVC(kernel="linear").fit(X, y, init=(np.zeros(25), 0.0))

    def test_ovo_pair_states_roundtrip_as_warm_init(self, rng):
        X = np.vstack([rng.normal(c, 0.8, size=(15, 4)) for c in (0.0, 3.0, 6.0)])
        y = np.repeat(np.array(["a", "b", "c"]), 15)
        perm = rng.permutation(45)
        X, y = X[perm], y[perm]
        kern = LinearKernel()
        K = kern(X, X)
        small = OneVsOneSVC(C=1.0, kernel="precomputed", random_state=0).fit(
            K[:30, :30], y[:30]
        )
        states = small.pair_states()
        assert set(states) == {("a", "b"), ("a", "c"), ("b", "c")}
        big = OneVsOneSVC(C=1.0, kernel="precomputed", random_state=0)
        big.fit(K, y, warm_init=states)
        assert float(np.mean(big.predict(K) == y)) > 0.8

"""Shared fixtures for the test suite.

The expensive fixtures (a small recorded campaign and its analysis context)
are session-scoped so the many tests that need realistic data share one
simulation run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.campaign import AnalysisContext
from repro.core.config import FadewichConfig, MDConfig
from repro.mobility.behavior import BehaviorProfile
from repro.radio.office import paper_office
from repro.simulation.collector import CampaignCollector


@pytest.fixture(scope="session")
def layout():
    """The paper's 6 m x 3 m office with nine sensors."""
    return paper_office()


@pytest.fixture(scope="session")
def config():
    """The paper's default FADEWICH configuration."""
    return FadewichConfig()


@pytest.fixture(scope="session")
def fast_md_config():
    """An MD configuration with a short profile-initialisation phase."""
    return MDConfig(profile_init_s=30.0)


@pytest.fixture(scope="session")
def small_recording(layout):
    """A single compact simulated day shared by the integration-style tests."""
    collector = CampaignCollector(layout, seed=1234)
    profile = BehaviorProfile(
        departures_per_hour=8.0,
        mean_absence_s=120.0,
        min_absence_s=40.0,
        internal_moves_per_hour=2.0,
    )
    profiles = {w.workstation_id: profile for w in layout.workstations}
    return collector.collect_generated(
        n_days=2, day_duration_s=1200.0, profiles=profiles
    )


@pytest.fixture(scope="session")
def analysis_context(small_recording, config):
    """An analysis context over the shared small recording."""
    return AnalysisContext(small_recording, config, seed=0)


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(0)

"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import DayEvaluation, MDEvaluation, sensor_subset
from repro.core.movement import OfflineMDResult
from repro.core.windows import VariationWindow, match_windows, true_window_for_event
from repro.ml.features import window_autocorrelation, window_entropy, window_variance
from repro.ml.kde import GaussianKDE, bisect_quantiles, mixture_quantiles
from repro.ml.kernels import make_kernel
from repro.ml.metrics import DetectionCounts
from repro.ml.mutual_info import quantize, relative_mutual_information
from repro.mobility.events import EventKind, GroundTruthEvent
from repro.mobility.trajectory import (
    departure_trajectory,
    entry_trajectory,
    walk_through,
)
from repro.radio.geometry import Point, excess_path_length, point_segment_distance
from repro.radio.office import paper_office
from repro.workstation.activity import InputActivityModel

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
small_floats = st.floats(
    min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False
)


class TestGeometryProperties:
    @given(
        px=finite_floats, py=finite_floats,
        ax=finite_floats, ay=finite_floats,
        bx=finite_floats, by=finite_floats,
    )
    def test_excess_path_length_nonnegative(self, px, py, ax, ay, bx, by):
        value = excess_path_length(Point(px, py), Point(ax, ay), Point(bx, by))
        assert value >= -1e-9

    @given(
        px=finite_floats, py=finite_floats,
        ax=finite_floats, ay=finite_floats,
        bx=finite_floats, by=finite_floats,
    )
    def test_point_segment_distance_bounded_by_endpoint_distances(
        self, px, py, ax, ay, bx, by
    ):
        p, a, b = Point(px, py), Point(ax, ay), Point(bx, by)
        dist = point_segment_distance(p, a, b)
        assert dist <= p.distance_to(a) + 1e-9
        assert dist <= p.distance_to(b) + 1e-9
        assert dist >= -1e-12

    @given(
        waypoints=st.lists(
            st.tuples(finite_floats, finite_floats), min_size=2, max_size=6
        ),
        speed=st.floats(min_value=0.3, max_value=3.0),
        t=st.floats(min_value=-10.0, max_value=500.0),
    )
    def test_trajectory_position_stays_within_bounding_box(self, waypoints, speed, t):
        points = [Point(x, y) for x, y in waypoints]
        traj = walk_through(points, start_time=0.0, speed_mps=speed)
        pos = traj.position_at(t)
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        assert min(xs) - 1e-6 <= pos.x <= max(xs) + 1e-6
        assert min(ys) - 1e-6 <= pos.y <= max(ys) + 1e-6


class TestBatchTrajectoryProperties:
    """Invariants of the batch-evaluation trajectory APIs."""

    @given(
        waypoints=st.lists(
            st.tuples(finite_floats, finite_floats), min_size=2, max_size=6
        ),
        speed=st.floats(min_value=0.3, max_value=3.0),
        pause=st.floats(min_value=0.0, max_value=5.0),
        times=st.lists(
            st.floats(min_value=-20.0, max_value=600.0), min_size=1, max_size=40
        ),
    )
    def test_positions_at_matches_position_at_pointwise(
        self, waypoints, speed, pause, times
    ):
        points = [Point(x, y) for x, y in waypoints]
        pauses = [pause] + [0.0] * (len(points) - 2)
        traj = walk_through(points, start_time=3.0, speed_mps=speed, pauses=pauses)
        block = traj.positions_at(np.asarray(times))
        for i, t in enumerate(times):
            pos = traj.position_at(t)
            # Bitwise equality: both paths share the same segment lookup
            # and interpolation arithmetic.
            assert block[i, 0] == pos.x
            assert block[i, 1] == pos.y

    @given(
        sx=st.floats(min_value=0.3, max_value=5.7),
        sy=st.floats(min_value=0.3, max_value=2.7),
        entry=st.booleans(),
        start=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_departure_and_entry_trajectories_stay_inside_office(
        self, sx, sy, entry, start
    ):
        layout = paper_office()
        seat = Point(sx, sy)
        if entry:
            traj = entry_trajectory(layout.door, seat, start)
        else:
            traj = departure_trajectory(seat, layout.door, start)
        grid = np.linspace(start - 2.0, traj.end_time + 2.0, 64)
        xy = traj.positions_at(grid)
        # Piecewise-linear interpolation through in-office waypoints can
        # never leave the office bounding box.
        assert np.all(xy[:, 0] >= -1e-9) and np.all(xy[:, 0] <= layout.width + 1e-9)
        assert np.all(xy[:, 1] >= -1e-9) and np.all(xy[:, 1] <= layout.height + 1e-9)

    @given(
        waypoints=st.lists(
            st.tuples(finite_floats, finite_floats), min_size=2, max_size=6
        ),
        speed=st.floats(min_value=0.3, max_value=3.0),
        dt=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_grid_sampled_speeds_nonnegative_and_bounded(
        self, waypoints, speed, dt
    ):
        points = [Point(x, y) for x, y in waypoints]
        traj = walk_through(points, start_time=0.0, speed_mps=speed)
        grid = np.arange(0.0, traj.end_time + 2.0 * dt, dt)
        xy = traj.positions_at(grid)
        dist = np.hypot(np.diff(xy[:, 0]), np.diff(xy[:, 1]))
        speeds = dist / dt
        assert np.all(speeds >= 0.0)
        # The walker moves at constant leg speed, so any chord between two
        # grid instants is at most speed * dt long (triangle inequality).
        assert np.all(speeds <= speed * (1.0 + 1e-9) + 1e-12)


class TestFeatureProperties:
    @given(values=st.lists(finite_floats, min_size=1, max_size=100))
    def test_variance_nonnegative(self, values):
        assert window_variance(values) >= 0.0

    @given(values=st.lists(finite_floats, min_size=1, max_size=100),
           bins=st.integers(min_value=1, max_value=64))
    def test_entropy_bounds(self, values, bins):
        entropy = window_entropy(values, bins=bins)
        assert -1e-9 <= entropy <= np.log(bins) + 1e-9

    @given(values=st.lists(finite_floats, min_size=2, max_size=100),
           lag=st.integers(min_value=0, max_value=10))
    def test_autocorrelation_bounded(self, values, lag):
        # The paper's estimator divides by (n - k) while the variance uses n,
        # so at large lags its magnitude can exceed 1 but never n / (n - k).
        ac = window_autocorrelation(values, lag=lag)
        n = len(values)
        bound = n / max(n - lag, 1) + 1e-6
        assert -bound <= ac <= bound

    @given(values=st.lists(finite_floats, min_size=1, max_size=200),
           bins=st.integers(min_value=1, max_value=256))
    def test_quantize_within_bins(self, values, bins):
        q = quantize(np.asarray(values), bins=bins)
        assert q.min() >= 0
        assert q.max() < bins

    @given(
        values=st.lists(finite_floats, min_size=0, max_size=50),
        poison=st.sampled_from([np.nan, np.inf, -np.inf]),
        position=st.integers(min_value=0, max_value=50),
        bins=st.integers(min_value=1, max_value=256),
    )
    def test_quantize_rejects_non_finite(self, values, poison, position, bins):
        # NaN used to slip through the ``hi <= lo`` constant-feature guard
        # (False for NaN bounds), giving NaN linspace edges and garbage
        # digitize output — silently wrong RMI instead of an error.
        x = np.asarray(values, dtype=float)
        x = np.insert(x, min(position, x.shape[0]), poison)
        with pytest.raises(ValueError, match="non-finite"):
            quantize(x, bins=bins)

    @given(
        values=st.lists(finite_floats, min_size=4, max_size=100),
    )
    def test_rmi_in_unit_interval(self, values):
        x = np.asarray(values)
        y = (np.arange(x.shape[0]) % 2).astype(int)
        rmi = relative_mutual_information(x, y)
        assert 0.0 <= rmi <= 1.0


class TestKDEProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(small_floats, min_size=2, max_size=80),
        q=st.floats(min_value=1.0, max_value=99.0),
    )
    def test_percentile_within_reasonable_range(self, data, q):
        kde = GaussianKDE(data)
        value = kde.percentile(q)
        spread = max(data) - min(data) + 10.0 * kde.bandwidth
        assert min(data) - spread <= value <= max(data) + spread

    @settings(max_examples=25, deadline=None)
    @given(data=st.lists(small_floats, min_size=2, max_size=80))
    def test_cdf_monotone(self, data):
        kde = GaussianKDE(data)
        grid = np.linspace(min(data) - 1.0, max(data) + 1.0, 30)
        cdf = kde.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-9)


class TestQuantileSolverProperties:
    """The safeguarded-Newton threshold engine (PR 4's conscious re-pin)."""

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(small_floats, min_size=2, max_size=60),
        bandwidth=st.floats(min_value=1e-3, max_value=5.0),
        q=st.floats(min_value=0.5, max_value=99.5),
    )
    def test_solver_matches_brute_force_grid_inversion(self, data, bandwidth, q):
        """The Newton engine inverts the CDF like a dense-grid lookup.

        Brute force: evaluate the CDF on a dense grid and take the cell
        where it crosses the target (step inversion — linear interpolation
        would misplace the quantile on the near-staircase CDFs of tiny
        bandwidths).  The solver's value must land in that cell, up to the
        grid pitch.
        """
        kde = GaussianKDE(data, bandwidth=bandwidth)
        value = kde.percentile(q, tol=1e-6)
        lo = min(data) - 10.0 * bandwidth
        hi = max(data) + 10.0 * bandwidth
        grid = np.linspace(lo, hi, 20001)
        cdf = kde.cdf(grid)
        pitch = (hi - lo) / 20000
        crossing = int(np.searchsorted(cdf, q / 100.0))
        cell_lo = grid[max(crossing - 1, 0)]
        cell_hi = grid[min(crossing, grid.shape[0] - 1)]
        assert cell_lo - pitch - 1e-6 <= value <= cell_hi + pitch + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=2, max_value=60),
        q=st.floats(min_value=0.5, max_value=99.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_newton_within_old_tol_of_bisection(self, rows, n, q, seed):
        """|Newton - retained bisection| <= tol: the documented re-pin bound."""
        rng = np.random.default_rng(seed)
        data = np.exp(rng.normal(0.0, rng.uniform(0.1, 2.0), size=(rows, n)))
        data *= rng.uniform(1.0, 50.0)
        h = np.abs(rng.normal(1.0, 0.5, rows)) + 1e-3
        newton = mixture_quantiles(data, h, q, tol=1e-6)
        bisect = bisect_quantiles(data, h, q, tol=1e-6)
        assert np.abs(newton - bisect).max() <= 1e-6

    @settings(max_examples=5, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=60),
        q=st.floats(min_value=90.0, max_value=99.5),
        drift=st.floats(min_value=-2e-3, max_value=2e-3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_chained_warm_starts_stay_within_bound_under_drift(
        self, n, q, drift, seed
    ):
        """1000+ warm-started re-solves of a drifting profile never degrade.

        The streaming engine's profile maintenance re-solves the threshold
        after every accepted batch, warm-starting Newton from the chain's
        previous threshold (``x0``) while the underlying profile drifts
        slowly — exactly the long-running-service regime.  A warm start far
        from the drifted solution must not push Newton outside the pinned
        ``|Newton - bisect| <= 1e-6`` bound at *any* point of the chain.
        """
        rng = np.random.default_rng(seed)
        window = rng.normal(10.0, 1.0, n)
        kde = GaussianKDE(window)
        x0 = None
        for step in range(1000):
            threshold = kde.percentile(q, x0=x0, tol=1e-6)
            reference = bisect_quantiles(
                kde.data[np.newaxis, :],
                np.array([kde.bandwidth]),
                q,
                tol=1e-6,
            )[0]
            assert abs(threshold - reference) <= 1e-6
            x0 = threshold
            # Slow drift: the profile window slides one sample per step,
            # its mean creeping away from where the chain started.
            fresh = rng.normal(10.0 + drift * step, 1.0 + 0.2 * abs(drift) * step)
            kde = kde.updated([fresh], drop_oldest=1)

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(min_value=2, max_value=10),
        n=st.integers(min_value=2, max_value=40),
        q=st.floats(min_value=1.0, max_value=99.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_batched_solve_bit_identical_to_single_rows(self, rows, n, q, seed):
        """Solving a profile alone or inside any batch gives the same bits."""
        rng = np.random.default_rng(seed)
        data = rng.normal(5.0, 2.0, size=(rows, n))
        h = np.abs(rng.normal(1.0, 0.4, rows)) + 1e-2
        x0 = rng.normal(5.0, 1.0, rows)
        batched = mixture_quantiles(data, h, q, x0=x0)
        single = np.array([
            mixture_quantiles(data[i : i + 1], h[i : i + 1], q, x0=x0[i : i + 1])[0]
            for i in range(rows)
        ])
        np.testing.assert_array_equal(batched, single)

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.lists(small_floats, min_size=2, max_size=40),
        q=st.floats(min_value=1.0, max_value=99.0),
        guess_offset=st.floats(min_value=-30.0, max_value=30.0),
    )
    def test_warm_start_agrees_with_cold_start(self, data, q, guess_offset):
        """Any warm-start guess lands within tol of the cold-start root."""
        kde = GaussianKDE(data)
        cold = kde.percentile(q)
        warm = kde.percentile(q, x0=cold + guess_offset)
        assert abs(warm - cold) <= 2e-6


class TestKernelSliceStability:
    """Gram entries depend only on their own row pair (bitwise)."""

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=25),
        m=st.integers(min_value=3, max_value=25),
        d=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
        name=st.sampled_from(["linear", "rbf", "poly"]),
    )
    def test_subgram_equals_gram_slice(self, n, m, d, seed, name):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d)) * 3.0
        Y = rng.normal(size=(m, d)) * 2.0
        kernel = make_kernel(name, **({} if name == "linear" else {"gamma": 0.37}))
        K = kernel(X, Y)
        idx = rng.choice(n, size=rng.integers(1, n + 1), replace=False)
        jdx = rng.choice(m, size=rng.integers(1, m + 1), replace=False)
        np.testing.assert_array_equal(
            kernel(X[idx], Y[jdx]), K[np.ix_(idx, jdx)]
        )


class TestDetectionCountProperties:
    @given(tp=st.integers(0, 500), fp=st.integers(0, 500), fn=st.integers(0, 500))
    def test_metrics_in_unit_interval(self, tp, fp, fn):
        counts = DetectionCounts(tp, fp, fn)
        assert 0.0 <= counts.precision <= 1.0
        assert 0.0 <= counts.recall <= 1.0
        assert 0.0 <= counts.f_measure <= 1.0
        rates = counts.rates()
        assert 0.0 <= sum(rates.values()) <= 1.0 + 1e-9

    @given(
        tp1=st.integers(0, 100), fp1=st.integers(0, 100), fn1=st.integers(0, 100),
        tp2=st.integers(0, 100), fp2=st.integers(0, 100), fn2=st.integers(0, 100),
    )
    def test_addition_is_componentwise(self, tp1, fp1, fn1, tp2, fp2, fn2):
        total = DetectionCounts(tp1, fp1, fn1) + DetectionCounts(tp2, fp2, fn2)
        assert total.tp == tp1 + tp2
        assert total.fp == fp1 + fp2
        assert total.fn == fn1 + fn2


class TestWindowMatchingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        event_times=st.lists(
            st.floats(min_value=10.0, max_value=1000.0), min_size=0, max_size=8
        ),
        window_specs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1000.0),
                st.floats(min_value=0.0, max_value=30.0),
            ),
            min_size=0,
            max_size=8,
        ),
    )
    def test_counts_are_consistent_with_inputs(self, event_times, window_specs):
        events = [
            GroundTruthEvent(EventKind.DEPARTURE, t, "u1", "w1", exit_time=t + 5.0)
            for t in event_times
        ]
        windows = [VariationWindow(s, s + d) for s, d in window_specs]
        result = match_windows(windows, events, slack_s=5.0)
        counts = result.counts
        assert counts.tp + counts.fn == len(events)
        assert counts.tp <= len(windows)
        assert counts.fp <= len(windows)
        assert len(result.true_positive_pairs) == counts.tp
        assert len(result.missed_events) == counts.fn

    @settings(max_examples=30, deadline=None)
    @given(slack=st.floats(min_value=0.5, max_value=30.0),
           t=st.floats(min_value=50.0, max_value=500.0))
    def test_true_window_contains_event_time(self, slack, t):
        event = GroundTruthEvent(EventKind.DEPARTURE, t, "u1", "w1", exit_time=t + 4.0)
        tw = true_window_for_event(event, slack)
        assert tw.t_start <= t <= tw.t_end


def _synthetic_md_evaluation(event_specs, window_specs):
    """An MDEvaluation over synthetic chronological events and MD windows.

    ``event_specs`` / ``window_specs`` are ``(gap, duration)`` pairs laid
    out cumulatively, mirroring the real pipeline's output shape:
    chronological events, sorted non-overlapping variation windows.
    """
    t = 0.0
    events = []
    for gap, duration in event_specs:
        t += gap
        events.append(
            GroundTruthEvent(
                EventKind.DEPARTURE, t, "u1", "w1", exit_time=t + duration
            )
        )
    w = 0.0
    windows = []
    for gap, duration in window_specs:
        w += gap
        windows.append(VariationWindow(w, w + duration))
        w += duration
    md_result = OfflineMDResult(
        times=np.array([0.0, 1.0]),
        std_sums=np.zeros(2),
        windows=tuple(windows),
        threshold_trace=np.zeros(2),
    )
    day = DayEvaluation(
        day_index=0, trace=None, md_result=md_result, match=None, events=events
    )
    return MDEvaluation(sensor_ids=("d1", "d2"), t_delta_s=1.0, days=[day])


_gap = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
_duration = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
_specs = st.lists(st.tuples(_gap, _duration), min_size=0, max_size=6)


class TestRematchProperties:
    """Invariants of the Figure 7 re-scoring path (MDEvaluation.rematch)."""

    @settings(max_examples=150, deadline=None)
    @given(
        event_specs=_specs,
        window_specs=_specs,
        slack_a=st.floats(min_value=0.1, max_value=30.0),
        slack_b=st.floats(min_value=0.1, max_value=30.0),
        t_delta=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_tp_monotone_in_slack_and_counts_conserved(
        self, event_specs, window_specs, slack_a, slack_b, t_delta
    ):
        evaluation = _synthetic_md_evaluation(event_specs, window_specs)
        narrow = evaluation.rematch(t_delta, min(slack_a, slack_b)).counts
        wide = evaluation.rematch(t_delta, max(slack_a, slack_b)).counts
        n_events = len(evaluation.days[0].events)
        # Every event is either detected or missed, at any slack.
        assert narrow.tp + narrow.fn == n_events
        assert wide.tp + wide.fn == n_events
        # Growing the true windows can only gain detections.
        assert narrow.tp <= wide.tp

    @settings(max_examples=100, deadline=None)
    @given(
        event_specs=_specs,
        window_specs=_specs,
        slack=st.floats(min_value=0.1, max_value=30.0),
        t_delta=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_rematch_is_deterministic_and_preserves_detection(
        self, event_specs, window_specs, slack, t_delta
    ):
        evaluation = _synthetic_md_evaluation(event_specs, window_specs)
        first = evaluation.rematch(t_delta, slack)
        second = evaluation.rematch(t_delta, slack)
        assert first.counts == second.counts
        assert first.t_delta_s == t_delta
        # rematch re-scores the same MD output: the windows are untouched.
        for day_before, day_after in zip(evaluation.days, first.days):
            assert day_after.md_result is day_before.md_result


class TestSensorSubsetProperties:
    _ids = st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=4,
        ),
        min_size=2,
        max_size=9,
        unique=True,
    )

    @settings(max_examples=100, deadline=None)
    @given(ids=_ids, data=st.data())
    def test_deterministic_and_prefix_consistent(self, ids, data):
        k = data.draw(st.integers(min_value=2, max_value=len(ids)))
        subset = sensor_subset(ids, k)
        # Deterministic: repeated calls agree.
        assert subset == sensor_subset(ids, k)
        assert len(subset) == k
        # k-prefix consistency: every sweep's subsets nest.
        for smaller in range(2, k + 1):
            assert sensor_subset(ids, smaller) == subset[:smaller]
        # And the subset is literally the deployment-order prefix.
        assert subset == list(ids)[:k]

    @settings(max_examples=50, deadline=None)
    @given(ids=_ids)
    def test_invalid_sizes_rejected(self, ids):
        with pytest.raises(ValueError):
            sensor_subset(ids, 1)
        with pytest.raises(ValueError):
            sensor_subset(ids, len(ids) + 1)


class TestActivityProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        prob=st.floats(min_value=0.0, max_value=1.0),
        duration=st.floats(min_value=10.0, max_value=2000.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_idle_time_never_negative_and_bounded_by_duration(
        self, prob, duration, seed
    ):
        model = InputActivityModel(
            activity_prob=prob, rng=np.random.default_rng(seed)
        )
        trace = model.generate_always_present(duration)
        for t in np.linspace(0.0, duration, 13):
            idle = trace.idle_time_at(float(t))
            assert 0.0 <= idle <= t + trace.bin_seconds + 1e-9

"""Tests for the persistent, resumable sweep subsystem.

Locks the contracts of :mod:`repro.analysis.sweep_store` and the store
integration of :mod:`repro.analysis.scenarios`:

* the component codec round-trips every configuration dataclass a scenario
  is made of into value-equal objects, and the content hash separates
  value changes from renames;
* ``SweepStore`` records are atomic, name-keyed files that never serve a
  result whose key (root seed, sim index, configuration content...) does
  not match — changed configurations invalidate, they are never reused;
* ``SweepReport`` (and ``ScenarioResult`` / ``MDTableRow`` /
  ``ScenarioSpec``) round-trip losslessly through ``save``/``load``;
* resume identity: a warm store performs **zero** day-collection tasks and
  reproduces the cold report bit-identically (``to_dict()``); a half-warm
  store recollects exactly the missing simulation's days and still matches
  the cold report.
"""

import json
import math
import os
import threading

import pytest

from repro.analysis.campaign import CampaignScale
from repro.analysis.md_performance import MDTableRow
from repro.analysis.scenarios import (
    ScenarioGrid,
    ScenarioResult,
    ScenarioSpec,
    ScenarioSweepRunner,
    SweepReport,
)
from repro.analysis.sweep_store import (
    StoreStats,
    SweepStore,
    component_from_dict,
    component_to_dict,
    content_hash,
    register_component,
    name_slug,
)
from repro.core.config import FadewichConfig
from repro.ml.metrics import DetectionCounts
from repro.radio.channel import ChannelConfig
from repro.radio.office import paper_office, wide_office
from repro.simulation.runner import CampaignRunner


def tiny_scale(name="tiny", **overrides):
    base = CampaignScale.compact().derive(name, n_days=2, day_duration_s=600.0)
    return base.derive(name, **overrides) if overrides else base


def tiny_grid(configs=None, n_replicates=2, sensor_counts=(3, 6)):
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[tiny_scale()],
        configs=configs,
        n_replicates=n_replicates,
        sensor_counts=sensor_counts,
    )


@pytest.fixture
def counting_run_tasks(monkeypatch):
    """Counts every DayTask executed through CampaignRunner.run_tasks."""
    executed = []
    original = CampaignRunner.run_tasks

    def counting(self, tasks):
        tasks = list(tasks)
        executed.extend(tasks)
        return original(self, tasks)

    monkeypatch.setattr(CampaignRunner, "run_tasks", counting)
    return executed


class TestComponentCodec:
    @pytest.mark.parametrize(
        "component",
        [
            FadewichConfig(),
            FadewichConfig().derive(t_delta_s=6.0, md={"alpha": 2.0}),
            ChannelConfig(),
            ChannelConfig(slow_drift_sigma_db=0.25),
            CampaignScale.compact(),
            CampaignScale.paper().derive("paper-busy", departures_per_hour=2.0),
            paper_office(),
            wide_office(),
            paper_office().with_sensors(["d1", "d2", "d3"]),
        ],
    )
    def test_round_trip_equality(self, component):
        encoded = component_to_dict(component)
        # Must survive an actual JSON round trip, not just the codec.
        decoded = component_from_dict(json.loads(json.dumps(encoded)))
        assert decoded == component
        assert type(decoded) is type(component)

    def test_content_hash_value_based(self):
        assert content_hash(FadewichConfig()) == content_hash(FadewichConfig())
        assert content_hash(FadewichConfig()) != content_hash(
            FadewichConfig().derive(t_delta_s=6.0)
        )
        # A nested MD parameter change reaches the hash too.
        assert content_hash(FadewichConfig()) != content_hash(
            FadewichConfig().derive(md={"alpha": 2.0})
        )
        # Hash covers the component sequence, order included.
        a, b = FadewichConfig(), ChannelConfig()
        assert content_hash(a, b) != content_hash(b, a)

    def test_unknown_type_decoding_rejected(self):
        with pytest.raises(ValueError, match="unknown component type"):
            component_from_dict({"__type__": "NoSuchThing", "x": 1})

    def test_unencodable_object_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            component_to_dict(object())

    def test_register_component(self):
        import dataclasses

        @register_component
        @dataclasses.dataclass(frozen=True)
        class _Custom:
            value: float = 1.0

        assert component_from_dict(component_to_dict(_Custom(2.5))) == _Custom(2.5)
        with pytest.raises(TypeError, match="not a dataclass"):
            register_component(int)


class TestMDTableRowRoundTrip:
    def test_round_trip(self):
        row = MDTableRow(n_sensors=5, counts=DetectionCounts(tp=9, fp=2, fn=1))
        data = json.loads(json.dumps(row.to_dict()))
        back = MDTableRow.from_dict(data)
        assert back == row
        assert back.counts == DetectionCounts(9, 2, 1)
        assert back.rates == row.rates
        # The exported rates stay human-readable alongside the counts.
        assert data["tp"] == 9 and data["tp_rate"] == pytest.approx(0.75)


class TestSweepStore:
    KEY = {"root_entropy": 5, "content_hash": "abc", "sim_index": 0}
    PAYLOAD = {"n_events": 3, "md": []}

    def test_put_get_round_trip(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        assert store.get("a/b/r0", self.KEY) is None
        path = store.put("a/b/r0", self.KEY, self.PAYLOAD)
        assert path.is_file()
        assert store.get("a/b/r0", self.KEY) == self.PAYLOAD
        assert store.names() == ["a/b/r0"]
        assert len(store) == 1
        assert store.stats.as_dict() == {
            "hits": 1, "misses": 1, "stale": 0, "corrupt": 0,
            "writes": 1, "lookups": 2,
        }

    def test_mismatched_key_is_stale_not_served(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("a", self.KEY, self.PAYLOAD)
        assert store.get("a", {**self.KEY, "content_hash": "DIFFERENT"}) is None
        assert store.get("a", {**self.KEY, "root_entropy": 6}) is None
        assert store.stats.stale == 2
        # The record itself survives: the original sweep still finds it.
        assert store.get("a", self.KEY) == self.PAYLOAD

    def test_distinct_names_never_collide_on_disk(self, tmp_path):
        store = SweepStore(tmp_path)
        # Same sanitised slug, different names.
        store.put("a/b", self.KEY, {"v": 1})
        store.put("a?b", self.KEY, {"v": 2})
        assert store.get("a/b", self.KEY) == {"v": 1}
        assert store.get("a?b", self.KEY) == {"v": 2}
        assert len(store) == 2

    def test_delete_and_clear(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("a", self.KEY, self.PAYLOAD)
        store.put("b", self.KEY, self.PAYLOAD)
        assert store.delete("a") is True
        assert store.delete("a") is False
        assert store.names() == ["b"]
        assert store.clear() == 1
        assert len(store) == 0

    def test_unparseable_record_quarantined(self, tmp_path):
        # Bad bytes are not a miss: the record is counted corrupt and
        # moved aside to a .corrupt file, so the slot recollects cleanly
        # instead of re-reading the same bad file on every resume.
        store = SweepStore(tmp_path)
        store.put("a", self.KEY, self.PAYLOAD)
        store.record_path("a").write_text("{not json", encoding="utf-8")
        assert store.get("a", self.KEY) is None
        assert store.stats.corrupt == 1 and store.stats.misses == 0
        assert not store.record_path("a").exists()
        assert store.quarantine_path("a").read_text() == "{not json"
        assert store.corrupt_files() == [store.quarantine_path("a")]
        assert store.names() == []
        # A fresh put repairs the slot (the quarantined bytes remain for
        # post-mortem).
        store.put("a", self.KEY, self.PAYLOAD)
        assert store.get("a", self.KEY) == self.PAYLOAD

    def test_checksum_mismatch_quarantined(self, tmp_path):
        # A parseable record whose result block was tampered with (or
        # bit-rotted) fails its SHA-256 and is quarantined — it must not
        # be served as a hit, nor linger to be re-read forever.
        store = SweepStore(tmp_path)
        store.put("a", self.KEY, self.PAYLOAD)
        path = store.record_path("a")
        record = json.loads(path.read_text())
        record["result"]["n_events"] = 99  # silent flip, checksum stays old
        path.write_text(json.dumps(record), encoding="utf-8")
        assert store.get("a", self.KEY) is None
        assert store.stats.corrupt == 1 and store.stats.stale == 0
        assert not path.exists()
        assert store.quarantine_path("a").exists()

    def test_missing_checksum_field_is_corrupt(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("a", self.KEY, self.PAYLOAD)
        self._mangle(store, "a", lambda r: r.pop("checksum"))
        assert store.get("a", self.KEY) is None
        assert store.stats.corrupt == 1

    def test_io_error_is_a_miss_and_leaves_the_file(self, tmp_path):
        # A transient read error (injected through the store.read seam)
        # must not quarantine a perfectly good record.
        from repro.reliability import FaultPlan, FaultSpec, STORE_READ

        store = SweepStore(
            tmp_path,
            faults=FaultPlan.of(FaultSpec(point=STORE_READ, hits=(0,))),
        )
        store.put("a", self.KEY, self.PAYLOAD)
        assert store.get("a", self.KEY) is None  # injected EIO
        assert store.stats.misses == 1 and store.stats.corrupt == 0
        assert store.record_path("a").exists()
        assert store.get("a", self.KEY) == self.PAYLOAD  # next read is fine

    def _mangle(self, store, name, mutate):
        path = store.record_path(name)
        record = json.loads(path.read_text())
        mutate(record)
        path.write_text(json.dumps(record), encoding="utf-8")

    def test_missing_fingerprint_block_is_stale(self, tmp_path):
        # A record whose JSON parses but whose fingerprint block is gone
        # must count as stale — not crash, not serve as a hit.
        store = SweepStore(tmp_path)
        store.put("a", self.KEY, self.PAYLOAD)
        self._mangle(store, "a", lambda r: r.pop("key"))
        assert store.get("a", self.KEY) is None
        assert store.stats.as_dict() == {
            "hits": 0, "misses": 0, "stale": 1, "corrupt": 0,
            "writes": 1, "lookups": 1,
        }

    def test_old_format_version_is_stale(self, tmp_path):
        # RECORD_FORMAT's contract: incompatible layouts read as stale
        # (the record *is* this scenario's, just from an older writer).
        store = SweepStore(tmp_path)
        store.put("a", self.KEY, self.PAYLOAD)
        self._mangle(store, "a", lambda r: r.update(format=0))
        assert store.get("a", self.KEY) is None
        assert store.stats.stale == 1 and store.stats.misses == 0

    def test_missing_result_block_is_stale(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("a", self.KEY, self.PAYLOAD)
        self._mangle(store, "a", lambda r: r.pop("result"))
        assert store.get("a", self.KEY) is None
        assert store.stats.stale == 1 and store.stats.misses == 0

    def test_foreign_record_on_the_slot_is_a_miss(self, tmp_path):
        # A file squatting on the scenario's path that is not one of its
        # records (different name, or not a record at all) is a miss: the
        # scenario was never stored.
        store = SweepStore(tmp_path)
        store.put("a", self.KEY, self.PAYLOAD)
        self._mangle(store, "a", lambda r: r.update(name="somebody-else"))
        assert store.get("a", self.KEY) is None
        assert store.stats.misses == 1 and store.stats.stale == 0
        store.record_path("a").write_text("[1, 2, 3]", encoding="utf-8")
        assert store.get("a", self.KEY) is None
        assert store.stats.misses == 2 and store.stats.stale == 0

    def test_lookups_partition_into_hits_misses_stale_corrupt(self, tmp_path):
        # Every get() lands in exactly one counter, so the four always
        # sum to the number of lookups — whatever mix of good, mangled,
        # corrupt, foreign and absent records the store holds.
        store = SweepStore(tmp_path)
        store.put("good", self.KEY, self.PAYLOAD)
        store.put("mangled", self.KEY, self.PAYLOAD)
        self._mangle(store, "mangled", lambda r: r.pop("key"))
        store.put("wrong-key", {**self.KEY, "sim_index": 9}, self.PAYLOAD)
        store.record_path("corrupt").write_text("{not json", encoding="utf-8")
        for name in ("good", "mangled", "wrong-key", "corrupt", "absent"):
            store.get(name, self.KEY)
        stats = store.stats
        assert (
            stats.hits + stats.misses + stats.stale + stats.corrupt
            == 5
            == stats.lookups
        )
        assert stats.as_dict() == {
            "hits": 1, "misses": 1, "stale": 2, "corrupt": 1,
            "writes": 3, "lookups": 5,
        }

    def test_writes_are_atomic_no_temp_leftovers(self, tmp_path):
        store = SweepStore(tmp_path)
        for i in range(5):
            store.put("a", self.KEY, {"v": i})
        leftovers = [p for p in store.path.iterdir() if p.suffix != ".json"]
        assert leftovers == []
        assert store.get("a", self.KEY) == {"v": 4}

    def test_injected_write_and_fsync_failures_leave_store_intact(
        self, tmp_path
    ):
        # Write-path faults must abort the put cleanly: the previous
        # record survives, no temp files leak, and the next put succeeds.
        from repro.reliability import (
            FaultPlan, FaultSpec, STORE_FSYNC, STORE_WRITE,
        )

        store = SweepStore(
            tmp_path,
            faults=FaultPlan.of(
                FaultSpec(point=STORE_WRITE, hits=(1,)),
                # Each point counts its own occurrences; the write-fault
                # put never reaches fsync, so the faulty fsync is the
                # point's second occurrence, not its third.
                FaultSpec(point=STORE_FSYNC, hits=(1,)),
            ),
        )
        store.put("a", self.KEY, {"v": 0})
        with pytest.raises(OSError, match="store.write"):
            store.put("a", self.KEY, {"v": 1})
        with pytest.raises(OSError, match="store.fsync"):
            store.put("a", self.KEY, {"v": 2})
        assert store.get("a", self.KEY) == {"v": 0}
        leftovers = [p for p in store.path.iterdir() if p.suffix != ".json"]
        assert leftovers == []
        store.put("a", self.KEY, {"v": 3})
        assert store.get("a", self.KEY) == {"v": 3}

    def test_injected_corruption_detected_on_next_read(self, tmp_path):
        # store.corrupt mangles the bytes en route to disk; the checksum
        # path must catch it on the next read and quarantine the file.
        from repro.reliability import FaultPlan, FaultSpec, STORE_CORRUPT

        store = SweepStore(
            tmp_path,
            faults=FaultPlan.of(FaultSpec(point=STORE_CORRUPT, hits=(0,))),
        )
        store.put("a", self.KEY, self.PAYLOAD)
        assert store.get("a", self.KEY) is None
        assert store.stats.corrupt == 1
        assert store.quarantine_path("a").exists()
        store.put("a", self.KEY, self.PAYLOAD)  # occurrence 1: clean
        assert store.get("a", self.KEY) == self.PAYLOAD


class TestNameSlug:
    """``record_path`` filename safety: scenario names are arbitrary strings
    (layout/scale/channel/config identifiers joined with ``/``), so the
    on-disk name must be escaped, bounded, collision-free and deterministic.
    """

    def test_deterministic_and_escaped(self):
        assert name_slug("a/b c?d") == name_slug("a/b c?d")
        for hostile in ("../../../etc/passwd", "a/../b", "..", "a\\b", "/x"):
            slug = name_slug(hostile)
            assert os.sep not in slug
            assert not slug.startswith(".")

    def test_traversal_names_stay_inside_the_store(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        path = store.put("../../escape", self.key(), {"v": 1})
        assert path.parent == store.path
        assert store.get("../../escape", self.key()) == {"v": 1}

    def test_long_names_are_bounded_but_distinct(self, tmp_path):
        a, b = "x" * 4000, "x" * 4000 + "y"
        assert len(name_slug(a)) <= 91  # 80-char slug + "-" + 10-hex digest
        assert name_slug(a) != name_slug(b)
        store = SweepStore(tmp_path)
        store.put(a, self.key(), {"v": "a"})
        store.put(b, self.key(), {"v": "b"})
        assert store.get(a, self.key()) == {"v": "a"}
        assert store.get(b, self.key()) == {"v": "b"}

    def test_punctuation_variants_never_collide(self):
        # All of these sanitise to the same character class; the content
        # digest keeps them distinct.
        variants = ["a/b", "a?b", "a b", "a*b", "a:b", "a\nb"]
        slugs = {name_slug(v) for v in variants}
        assert len(slugs) == len(variants)

    def test_dot_only_names_get_a_fallback_slug(self):
        slug = name_slug("...")
        assert slug.startswith("scenario-")

    def test_invalid_names_rejected(self):
        with pytest.raises(TypeError, match="must be a str"):
            name_slug(123)
        with pytest.raises(ValueError, match="empty"):
            name_slug("")
        with pytest.raises(ValueError, match="NUL"):
            name_slug("a\x00b")

    def test_lease_files_coexist_and_stay_invisible(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("a/b", self.key(), {"v": 1})
        store.lease_path("a/b").write_text("{}", encoding="utf-8")
        assert store.names() == ["a/b"]
        # clear() removes leases too but only counts records.
        assert store.clear() == 1
        assert not store.lease_path("a/b").exists()

    @staticmethod
    def key():
        return {"root_entropy": 5, "content_hash": "abc", "sim_index": 0}


class TestStoreStatsConcurrency:
    def test_hammered_counters_still_partition(self, tmp_path):
        # N threads hammer one store with a fixed mix of hit, miss and
        # stale lookups; the bare-int counters used to drop updates under
        # this load, breaking hits + misses + stale == lookups.
        store = SweepStore(tmp_path)
        key = {"root_entropy": 5, "content_hash": "abc", "sim_index": 0}
        store.put("warm", key, {"v": 1})
        n_threads, n_rounds = 8, 200
        barrier = threading.Barrier(n_threads)

        def hammer(i):
            barrier.wait()
            for r in range(n_rounds):
                store.get("warm", key)                          # hit
                store.get(f"absent-{i}-{r}", key)               # miss
                store.get("warm", {**key, "sim_index": 9})      # stale
                store.stats.count_write()

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = store.stats
        total = n_threads * n_rounds
        assert stats.lookups == 3 * total
        assert stats.hits == total
        assert stats.misses == total
        assert stats.stale == total
        assert stats.hits + stats.misses + stats.stale == stats.lookups
        assert stats.writes == total + 1  # the warm-up put

    def test_reclassify_hit_as_stale_preserves_partition(self):
        stats = StoreStats()
        stats.count_hit()
        stats.count_hit()
        stats.reclassify_hit_as_stale()
        assert stats.as_dict() == {
            "hits": 1, "misses": 0, "stale": 1, "corrupt": 0,
            "writes": 0, "lookups": 2,
        }


class TestReportRoundTrip:
    @pytest.fixture(scope="class")
    def report(self):
        # >= 2 replicates so the round trip covers the replicate axis.
        return ScenarioSweepRunner(
            tiny_grid(), seed=13, mode="serial", re_sensor_counts=()
        ).run()

    def test_save_load_compares_equal(self, report, tmp_path):
        path = tmp_path / "report.json"
        report.save(path)
        loaded = SweepReport.load(path)
        assert [r.spec for r in loaded.results] == [
            r.spec for r in report.results
        ]
        for got, want in zip(loaded.results, report.results):
            assert got.md_rows == want.md_rows
            assert [row.rates for row in got.md_rows] == [
                row.rates for row in want.md_rows
            ]
            assert got.re_accuracies == want.re_accuracies
            assert (got.n_events, got.n_departures) == (
                want.n_events, want.n_departures,
            )
            assert got.recording is None
        assert loaded.summary() == report.summary()
        assert loaded.cell_statistics() == report.cell_statistics()
        assert loaded.to_dict() == report.to_dict()
        assert loaded.seed_entropy == 13

    def test_round_trip_with_re_stage_and_dropped_recordings(self, tmp_path):
        grid = ScenarioGrid(
            layouts=[paper_office()],
            scales=[tiny_scale("re-tiny", departures_per_hour=10.0)],
            n_replicates=2,
            sensor_counts=(3, 9),
        )
        report = ScenarioSweepRunner(
            grid, seed=3, mode="serial", keep_recordings=False
        ).run()
        assert all(result.recording is None for result in report.results)
        path = tmp_path / "report.json"
        report.save(path)
        loaded = SweepReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        # RE accuracies survive at full precision (they feed statistics).
        for got, want in zip(loaded.results, report.results):
            assert got.re_accuracies == want.re_accuracies

    def test_spec_round_trip_standalone(self):
        spec = tiny_grid().scenarios()[1]
        back = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.content_hash() == spec.content_hash()

    def test_result_from_dict_reconstructs_counts(self, report):
        result = report.results[0]
        back = ScenarioResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert back.spec == result.spec
        assert back.md_rows == result.md_rows
        assert all(
            isinstance(row.counts, DetectionCounts) for row in back.md_rows
        )


class TestResumableSweep:
    SEED = 5

    def runner(self, grid=None, **kwargs):
        return ScenarioSweepRunner(
            grid if grid is not None else tiny_grid(
                configs={
                    "default": FadewichConfig(),
                    "t6": FadewichConfig().derive(t_delta_s=6.0),
                }
            ),
            seed=self.SEED,
            mode="serial",
            re_sensor_counts=(),
            **kwargs,
        )

    def test_warm_store_zero_day_tasks_bit_identical(
        self, tmp_path, counting_run_tasks
    ):
        store = SweepStore(tmp_path)
        cold_runner = self.runner()
        cold = cold_runner.run(store=store)
        n_cold_tasks = len(counting_run_tasks)
        assert n_cold_tasks > 0
        assert cold_runner.last_run_stats.n_day_tasks == n_cold_tasks
        assert cold_runner.last_run_stats.n_cached == 0

        warm_runner = self.runner()
        warm = warm_runner.run(store=store)
        # The resume-identity contract: zero collection work...
        assert len(counting_run_tasks) == n_cold_tasks
        assert warm_runner.last_run_stats.n_day_tasks == 0
        assert warm_runner.last_run_stats.n_cached == len(warm.results)
        assert warm_runner.last_run_stats.n_analyzed == 0
        # ...and a bit-identical report.
        assert warm.to_dict() == cold.to_dict()

    def test_half_warm_store_recollects_only_missing_simulation(
        self, tmp_path, counting_run_tasks
    ):
        store = SweepStore(tmp_path)
        cold = self.runner().run(store=store)
        del counting_run_tasks[:]

        # Drop one scenario's record; its config-sharing twin stays warm.
        victim = cold.results[0].spec
        assert store.delete(victim.name)
        resumed_runner = self.runner()
        resumed = resumed_runner.run(store=store)

        # Only the victim's simulation was recollected: its n_days tasks,
        # every one belonging to the victim's layout/seed.
        assert len(counting_run_tasks) == victim.scale.n_days
        stats = resumed_runner.last_run_stats
        assert stats.n_simulations == 1
        assert stats.n_analyzed == 1
        assert stats.n_cached == len(cold.results) - 1
        # And the resumed report matches the cold run exactly.
        assert resumed.to_dict() == cold.to_dict()

    def test_changed_config_invalidates_records(self, tmp_path):
        store = SweepStore(tmp_path)
        self.runner().run(store=store)
        n_records = len(store)
        store.reset_stats()

        # Same grid shape and names, different FadewichConfig content:
        # every record must read as stale, nothing may be reused.
        changed = self.runner(
            grid=tiny_grid(
                configs={
                    "default": FadewichConfig().derive(md={"alpha": 2.0}),
                    "t6": FadewichConfig().derive(t_delta_s=6.0),
                }
            )
        )
        report = changed.run(store=store)
        assert store.stats.hits == n_records // 2  # untouched t6 variants
        assert store.stats.stale == n_records // 2
        assert changed.last_run_stats.n_analyzed == n_records // 2
        assert report.n_scenarios == n_records

    def test_changed_seed_invalidates_records(self, tmp_path):
        store = SweepStore(tmp_path)
        self.runner().run(store=store)
        store.reset_stats()
        other = ScenarioSweepRunner(
            tiny_grid(
                configs={
                    "default": FadewichConfig(),
                    "t6": FadewichConfig().derive(t_delta_s=6.0),
                }
            ),
            seed=self.SEED + 1,
            mode="serial",
            re_sensor_counts=(),
        )
        other.run(store=store)
        assert store.stats.hits == 0
        assert store.stats.stale > 0

    def test_grid_reshape_invalidates_shifted_sim_indices(self, tmp_path):
        # Prepending a scale shifts every later scenario's simulation-seed
        # index: surviving names must not reuse records computed under a
        # different derived seed.
        store = SweepStore(tmp_path)
        base_grid = ScenarioGrid(
            layouts=[paper_office()], scales=[tiny_scale()], sensor_counts=(3,)
        )
        ScenarioSweepRunner(
            base_grid, seed=1, mode="serial", re_sensor_counts=()
        ).run(store=store)
        reshaped = ScenarioGrid(
            layouts=[paper_office()],
            scales=[tiny_scale("tiny-first", departures_per_hour=9.0), tiny_scale()],
            sensor_counts=(3,),
        )
        runner = ScenarioSweepRunner(
            reshaped, seed=1, mode="serial", re_sensor_counts=()
        )
        store.reset_stats()
        runner.run(store=store)
        # The surviving name's sim_index moved 0 -> 1: stale, recomputed.
        assert store.stats.hits == 0
        assert store.stats.stale == 1

    def test_library_version_is_part_of_the_key(self, tmp_path):
        import repro

        runner = self.runner()
        spec = runner.specs[0]
        key = runner.store_key(spec)
        assert key["version"] == repro.__version__
        # A record computed by an older library version must read as
        # stale: this repo consciously re-pins analysis semantics across
        # releases, and resuming across that boundary would silently mix
        # old- and new-code numbers in one report.
        store = SweepStore(tmp_path)
        store.put(spec.name, {**key, "version": "0.0.0"}, {"md": []})
        assert store.get(spec.name, key) is None
        assert store.stats.stale == 1

    def test_mangled_payload_recomputed_not_crashed(self, tmp_path):
        # A record whose key matches but whose payload cannot rebuild a
        # ScenarioResult (hand-edited file, foreign writer) must be
        # recomputed — corrupted records read as misses, never crashes.
        runner = self.runner()
        store = SweepStore(tmp_path)
        cold = runner.run(store=store)
        victim = cold.results[0].spec
        store.put(victim.name, runner.store_key(victim), {"bogus": True})
        store.reset_stats()
        resumed_runner = self.runner()
        resumed = resumed_runner.run(store=store)
        assert resumed_runner.last_run_stats.n_analyzed == 1
        assert resumed.to_dict() == cold.to_dict()
        # The mangled record is accounted as stale, not as a reusable hit:
        # hits + misses + stale partitions the lookups.
        stats = store.stats
        assert stats.stale == 1
        assert stats.hits == len(cold.results) - 1
        assert stats.hits + stats.misses + stats.stale == len(cold.results)

    def test_non_dict_result_payload_is_stale(self, tmp_path):
        # The record is recognisably ours (name matches) but its result
        # block is mangled: unusable, so `stale` — and invisible to
        # names(), which only lists well-formed records.
        store = SweepStore(tmp_path)
        store.put("a", TestSweepStore.KEY, {"ok": 1})
        path = store.record_path("a")
        record = json.loads(path.read_text())
        record["result"] = ["not", "a", "dict"]
        path.write_text(json.dumps(record), encoding="utf-8")
        assert store.get("a", TestSweepStore.KEY) is None
        assert store.stats.stale == 1 and store.stats.misses == 0
        assert store.names() == []

    def test_run_without_store_unchanged(self, counting_run_tasks):
        plain = self.runner().run()
        stats = self.runner()
        with_store_none = stats.run(store=None)
        assert with_store_none.to_dict() == plain.to_dict()


class TestCellStatistics:
    def test_replicate_statistics_match_manual(self):
        report = ScenarioSweepRunner(
            tiny_grid(n_replicates=3, sensor_counts=(3,)),
            seed=9,
            mode="serial",
            re_sensor_counts=(),
        ).run()
        cells = report.cell_statistics()
        assert len(cells) == 1
        cell = cells[0]
        assert cell["n_replicates"] == 3
        f_values = [r.md_rows[0].counts.f_measure for r in report.results]
        import numpy as np

        assert cell["f_mean"] == pytest.approx(float(np.mean(f_values)))
        std = float(np.std(f_values, ddof=1))
        assert cell["f_std"] == pytest.approx(std)
        assert cell["f_ci95"] == pytest.approx(1.96 * std / math.sqrt(3))
        # No RE stage ran: RE statistics are NaN, not fabricated zeros.
        assert math.isnan(cell["re_mean"])

    def test_single_replicate_ci95_is_nan(self):
        report = ScenarioSweepRunner(
            tiny_grid(n_replicates=1, sensor_counts=(3,)),
            seed=9,
            mode="serial",
            re_sensor_counts=(),
        ).run()
        cell = report.cell_statistics()[0]
        assert cell["n_replicates"] == 1
        assert not math.isnan(cell["f_mean"])
        assert math.isnan(cell["f_std"])
        assert math.isnan(cell["f_ci95"])
        # Exported as null (strict JSON), rendered as n/a.
        exported = report.to_dict()["cell_statistics"][0]
        assert exported["f_ci95"] is None
        json.dumps(report.to_dict(), allow_nan=False)
        assert "n/a" in report.render()

    def test_cells_split_by_config_and_surface_in_render(self):
        report = ScenarioSweepRunner(
            tiny_grid(
                configs={
                    "default": FadewichConfig(),
                    "t6": FadewichConfig().derive(t_delta_s=6.0),
                },
                n_replicates=2,
                sensor_counts=(3,),
            ),
            seed=11,
            mode="serial",
            re_sensor_counts=(),
        ).run()
        cells = report.cell_statistics()
        assert [(c["config"], c["n_sensors"]) for c in cells] == [
            ("default", 3), ("t6", 3),
        ]
        assert all(c["n_replicates"] == 2 for c in cells)
        text = report.render()
        assert "replicate statistics" in text
        assert "paper-office/tiny/default/t6" in text

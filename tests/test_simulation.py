"""Tests for the simulation harness: clock, collector, datasets."""

import numpy as np
import pytest

from repro.mobility.events import EventKind
from repro.mobility.scheduler import DaySchedule, PlannedMovement
from repro.radio.office import paper_office
from repro.simulation.clock import SimulationClock
from repro.simulation.collector import CampaignCollector
from repro.simulation.dataset import LabeledSample, SampleDataset


class TestSimulationClock:
    def test_dt_and_sample_counts(self):
        clock = SimulationClock(sample_rate_hz=4.0)
        assert clock.dt == pytest.approx(0.25)
        assert clock.n_samples(10.0) == 40

    def test_timestamps_grid(self):
        clock = SimulationClock(sample_rate_hz=2.0, start_time=100.0)
        ts = clock.timestamps(3.0)
        assert ts.shape == (6,)
        assert ts[0] == pytest.approx(100.0)
        assert ts[1] - ts[0] == pytest.approx(0.5)

    def test_index_of(self):
        clock = SimulationClock(sample_rate_hz=4.0)
        assert clock.index_of(2.5) == 10
        assert clock.index_of(-5.0) == 0

    def test_seconds_to_samples_minimum_one(self):
        clock = SimulationClock(sample_rate_hz=4.0)
        assert clock.seconds_to_samples(0.01) == 1

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            SimulationClock(sample_rate_hz=0.0)

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            SimulationClock().n_samples(-1.0)


class TestSampleDataset:
    def _sample(self, label="w1", value=1.0, time=0.0, day=0):
        return LabeledSample(
            features=np.array([value, value + 1.0]), label=label, time=time, day_index=day
        )

    def test_add_and_convert_to_arrays(self):
        ds = SampleDataset(feature_names=("f1", "f2"))
        ds.add(self._sample("w1", 1.0))
        ds.add(self._sample("w2", 2.0))
        X, y = ds.to_arrays()
        assert X.shape == (2, 2)
        assert list(y) == ["w1", "w2"]

    def test_dimension_mismatch_rejected(self):
        ds = SampleDataset(feature_names=("f1", "f2", "f3"))
        with pytest.raises(ValueError):
            ds.add(self._sample())

    def test_label_counts(self):
        ds = SampleDataset(feature_names=("f1", "f2"))
        for label in ["w1", "w1", "w0"]:
            ds.add(self._sample(label))
        assert ds.label_counts() == {"w1": 2, "w0": 1}

    def test_filter_labels(self):
        ds = SampleDataset(feature_names=("f1", "f2"))
        for label in ["w1", "w2", "w0"]:
            ds.add(self._sample(label))
        filtered = ds.filter_labels(["w1", "w2"])
        assert len(filtered) == 2

    def test_column_access(self):
        ds = SampleDataset(feature_names=("f1", "f2"))
        ds.add(self._sample(value=3.0))
        assert ds.column("f2")[0] == pytest.approx(4.0)
        with pytest.raises(KeyError):
            ds.column("missing")

    def test_subset_features(self):
        ds = SampleDataset(feature_names=("f1", "f2"))
        ds.add(self._sample(value=5.0))
        sub = ds.subset_features(["f2"])
        assert sub.feature_names == ("f2",)
        assert sub.samples[0].features[0] == pytest.approx(6.0)

    def test_merged_with_checks_layout(self):
        a = SampleDataset(feature_names=("f1", "f2"))
        b = SampleDataset(feature_names=("f1", "f2"))
        a.add(self._sample("w1"))
        b.add(self._sample("w2"))
        merged = a.merged_with(b)
        assert len(merged) == 2
        c = SampleDataset(feature_names=("x", "y"))
        with pytest.raises(ValueError):
            a.merged_with(c)

    def test_empty_dataset_arrays(self):
        ds = SampleDataset(feature_names=("f1",))
        X, y = ds.to_arrays()
        assert X.shape == (0, 1)
        assert y.shape == (0,)

    def test_invalid_samples_rejected(self):
        with pytest.raises(ValueError):
            LabeledSample(features=np.array([]), label="w1", time=0.0)
        with pytest.raises(ValueError):
            LabeledSample(features=np.array([1.0]), label="", time=0.0)


class TestCampaignCollector:
    @pytest.fixture(scope="class")
    def single_departure_day(self):
        layout = paper_office()
        collector = CampaignCollector(layout, seed=7)
        day = DaySchedule(
            day_index=0,
            duration_s=300.0,
            movements=[
                PlannedMovement(EventKind.DEPARTURE, "u1", "w1", 150.0, absence_s=60.0),
                PlannedMovement(EventKind.ENTRY, "u1", "w1", 240.0),
            ],
        )
        return collector, collector.collect_day(day)

    def test_trace_shape_matches_clock(self, single_departure_day):
        collector, recording = single_departure_day
        expected = collector.clock.n_samples(300.0)
        assert recording.trace.n_samples == expected
        assert len(recording.trace.stream_ids) == 72

    def test_ground_truth_events_recorded(self, single_departure_day):
        _, recording = single_departure_day
        kinds = [e.kind for e in recording.events]
        assert EventKind.DEPARTURE in kinds
        assert EventKind.ENTRY in kinds
        departure = recording.events.departures()[0]
        assert departure.exit_time is not None
        assert departure.exit_time > departure.time

    def test_departure_perturbs_the_radio_channel(self, single_departure_day):
        _, recording = single_departure_day
        trace = recording.trace
        matrix = np.column_stack([trace.streams[s] for s in trace.stream_ids])
        quiet = matrix[(trace.times > 20) & (trace.times < 140)]
        moving = matrix[(trace.times > 150) & (trace.times < 158)]
        assert moving.std(axis=0).sum() > quiet.std(axis=0).sum() * 1.2

    def test_activity_traces_cover_all_workstations(self, single_departure_day):
        collector, recording = single_departure_day
        assert set(recording.activity.keys()) == set(
            collector.layout.workstation_ids
        )

    def test_no_input_at_departed_workstation(self, single_departure_day):
        _, recording = single_departure_day
        # u1 is away from roughly t=150 to t=245; the workstation must be idle.
        trace = recording.activity["w1"]
        assert not trace.has_input_in(165.0, 240.0)

    def test_collect_generated_multi_day(self):
        layout = paper_office()
        collector = CampaignCollector(layout, seed=11)
        recording = collector.collect_generated(n_days=2, day_duration_s=600.0)
        assert recording.n_days == 2
        assert recording.layout is layout

    def test_label_counts_aggregate(self, small_recording):
        counts = small_recording.label_counts()
        assert sum(counts.values()) == small_recording.total_labelled_events()
        assert counts.get("w0", 0) >= small_recording.total_departures() - len(
            small_recording.days
        ) * 3  # each departure is usually followed by a return

    def test_deterministic_given_seed(self):
        layout = paper_office()
        day = DaySchedule(
            day_index=0,
            duration_s=200.0,
            movements=[
                PlannedMovement(EventKind.DEPARTURE, "u2", "w2", 150.0, absence_s=30.0)
            ],
        )
        rec_a = CampaignCollector(layout, seed=5).collect_day(day)
        rec_b = CampaignCollector(layout, seed=5).collect_day(day)
        sid = rec_a.trace.stream_ids[0]
        assert np.allclose(rec_a.trace.streams[sid], rec_b.trace.streams[sid])

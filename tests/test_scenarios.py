"""Tests for the scenario-grid sweep subsystem.

Locks the contracts of :mod:`repro.analysis.scenarios`:

* grid enumeration is the deterministic cartesian product of the axes;
* every scenario's recording is bit-identical to a serial
  ``collect_generated`` with the scenario's derived child seed (so the
  sweep is exactly "many reproduction campaigns", not a new engine);
* config-only variants share one simulated recording;
* the whole sweep is reproducible from a single root seed across
  execution modes;
* the aggregate report renders and round-trips through JSON.
"""

import json

import numpy as np
import pytest

from repro.analysis.campaign import CampaignScale
from repro.analysis.scenarios import (
    ScenarioGrid,
    ScenarioSweepRunner,
    SweepReport,
)
from repro.core.config import FadewichConfig
from repro.radio.channel import ChannelConfig
from repro.radio.office import paper_office, wide_office
from repro.simulation.collector import CampaignCollector


def tiny_scale(name="tiny", **overrides):
    base = CampaignScale.compact().derive(
        name, n_days=2, day_duration_s=600.0
    )
    return base.derive(name, **overrides) if overrides else base


@pytest.fixture(scope="module")
def grid():
    return ScenarioGrid(
        layouts=[paper_office(), wide_office()],
        scales=[tiny_scale(), tiny_scale("tiny-busy", departures_per_hour=10.0)],
        configs={
            "default": FadewichConfig(),
            "t6": FadewichConfig().derive(t_delta_s=6.0),
        },
        sensor_counts=(3, 6, 9),
    )


@pytest.fixture(scope="module")
def report(grid):
    return ScenarioSweepRunner(
        grid, seed=11, mode="serial", re_sensor_counts=()
    ).run()


class TestScenarioGrid:
    def test_cartesian_enumeration(self, grid):
        specs = grid.scenarios()
        assert len(grid) == len(specs) == 2 * 2 * 1 * 2
        assert [spec.index for spec in specs] == list(range(len(specs)))
        names = [spec.name for spec in specs]
        assert len(set(names)) == len(names)
        assert names[0] == "paper-office/tiny/default/default/kde_md/r0"
        # Iteration order is deterministic: layouts, scales, channels,
        # configs, detectors, replicates.
        assert names[1] == "paper-office/tiny/default/t6/kde_md/r0"

    def test_replicates_are_distinct_grid_points(self):
        grid = ScenarioGrid(
            layouts=[paper_office()], scales=[tiny_scale()], n_replicates=3
        )
        specs = grid.scenarios()
        assert len(specs) == 3
        assert [spec.replicate for spec in specs] == [0, 1, 2]
        assert len({spec.simulation_key() for spec in specs}) == 3

    def test_sensor_counts_respect_layout(self, grid):
        assert grid.sensor_counts_for(paper_office()) == [3, 6, 9]
        five = paper_office().with_sensors(["d1", "d2", "d3", "d4", "d5"])
        assert grid.sensor_counts_for(five) == [3]

    def test_default_sensor_counts_full_sweep(self):
        grid = ScenarioGrid(layouts=[paper_office()], scales=[tiny_scale()])
        assert grid.sensor_counts_for(paper_office()) == list(range(3, 10))

    def test_validation(self):
        with pytest.raises(ValueError, match="layout"):
            ScenarioGrid(layouts=[], scales=[tiny_scale()])
        with pytest.raises(ValueError, match="scale"):
            ScenarioGrid(layouts=[paper_office()], scales=[])
        with pytest.raises(ValueError, match="unique"):
            ScenarioGrid(
                layouts=[paper_office(), paper_office()], scales=[tiny_scale()]
            )
        with pytest.raises(ValueError, match="n_replicates"):
            ScenarioGrid(
                layouts=[paper_office()], scales=[tiny_scale()], n_replicates=0
            )

    def test_sensor_counts_normalised_to_sorted_unique(self):
        # Duplicate / unsorted counts ([5, 5, 3]) used to produce duplicate
        # MDTableRows per scenario, double-counting every scenario in
        # SweepReport.summary().
        grid = ScenarioGrid(
            layouts=[paper_office()],
            scales=[tiny_scale()],
            sensor_counts=[5, 5, 3],
        )
        assert grid.sensor_counts == (3, 5)
        assert grid.sensor_counts_for(paper_office()) == [3, 5]
        report = ScenarioSweepRunner(
            grid, seed=7, mode="serial", re_sensor_counts=()
        ).run()
        assert [row.n_sensors for row in report.results[0].md_rows] == [3, 5]
        summary = report.summary()
        assert [row["n_sensors"] for row in summary] == [3, 5]
        # One scenario in the grid: each count must be counted exactly once.
        assert all(row["n_scenarios"] == 1 for row in summary)

    def test_sensor_counts_below_one_rejected(self):
        with pytest.raises(ValueError, match="sensor counts"):
            ScenarioGrid(
                layouts=[paper_office()],
                scales=[tiny_scale()],
                sensor_counts=[0, 3],
            )

    def test_config_derive_axes(self):
        config = FadewichConfig().derive(t_delta_s=6.0, md={"alpha": 2.0})
        assert config.t_delta_s == 6.0
        assert config.md.alpha == 2.0
        assert config.re == FadewichConfig().re
        with pytest.raises(TypeError):
            FadewichConfig().derive(md={"no_such_field": 1})
        with pytest.raises(ValueError):
            FadewichConfig().derive(md={"alpha": -1.0})

    def test_scale_derive(self):
        busy = CampaignScale.compact().derive("busy", departures_per_hour=12.0)
        assert busy.name == "busy"
        assert busy.departures_per_hour == 12.0
        assert busy.n_days == CampaignScale.compact().n_days
        assert CampaignScale.compact().derive(n_days=1).name == "compact+"

    def test_wide_office_is_valid(self):
        layout = wide_office()
        assert layout.name == "wide-office"
        assert len(layout.sensors) == 9
        assert len(layout.workstations) == 4
        assert layout.contains(layout.door)


class TestScenarioSweepRunner:
    def test_recordings_match_serial_collect_generated(self, grid):
        runner = ScenarioSweepRunner(
            grid, seed=11, mode="serial", re_sensor_counts=()
        )
        pairs = runner.collect()
        assert len(pairs) == len(grid)
        for spec, recording in pairs[:3]:
            collector = CampaignCollector(
                spec.layout,
                channel_config=spec.channel_config,
                seed=runner.scenario_seed(spec),
            )
            reference = collector.collect_generated(
                spec.scale.n_days,
                spec.scale.day_duration_s,
                spec.scale.profiles_for(spec.layout),
            )
            assert recording.n_days == reference.n_days == spec.scale.n_days
            for got, want in zip(recording.days, reference.days):
                for sid in want.trace.stream_ids:
                    np.testing.assert_array_equal(
                        got.trace.streams[sid], want.trace.streams[sid]
                    )

    def test_config_variants_share_recording(self, grid):
        pairs = ScenarioSweepRunner(
            grid, seed=11, mode="serial", re_sensor_counts=()
        ).collect()
        by_sim = {}
        for spec, recording in pairs:
            by_sim.setdefault(spec.simulation_key(), set()).add(id(recording))
        # 'default' and 't6' differ only in analysis config.
        assert all(len(ids) == 1 for ids in by_sim.values())
        assert len(by_sim) == len(grid) // 2

    def test_distinct_scenarios_get_distinct_noise(self, report):
        day_a = report.results[0].recording.days[0]
        busy = report.result_for(
            "paper-office/tiny-busy/default/default/kde_md/r0"
        )
        day_b = busy.recording.days[0]
        sid = day_a.trace.stream_ids[0]
        a, b = day_a.trace.streams[sid], day_b.trace.streams[sid]
        n = min(a.shape[0], b.shape[0])
        # Quantised RSSI coincides by chance; shared streams would push
        # agreement far beyond this bound.
        assert (a[:n] == b[:n]).mean() < 0.5

    def test_sweep_reproducible_across_modes(self, grid, report):
        threaded = ScenarioSweepRunner(
            grid, seed=11, mode="thread", max_workers=4, re_sensor_counts=()
        ).run()
        assert threaded.to_json() == report.to_json()

    def test_different_seed_changes_results(self, grid, report):
        other = ScenarioSweepRunner(
            grid, seed=12, mode="serial", re_sensor_counts=()
        ).run()
        assert other.to_json() != report.to_json()

    def test_report_contents(self, grid, report):
        assert isinstance(report, SweepReport)
        assert report.n_scenarios == len(grid)
        for result in report.results:
            assert [row.n_sensors for row in result.md_rows] == list(
                grid.sensor_counts_for(result.spec.layout)
            )
        summary = report.summary()
        assert [row["n_sensors"] for row in summary] == [3, 6, 9]
        assert all(
            0.0 <= row["f_min"] <= row["f_mean"] <= row["f_max"] <= 1.0
            for row in summary
        )
        # Every scenario evaluated 3 sensors; only 9-sensor layouts the rest.
        assert summary[0]["n_scenarios"] == len(grid)
        text = report.render()
        assert "Scenario sweep" in text
        assert "cross-scenario summary" in text
        for spec in grid.scenarios():
            assert spec.name in text
        with pytest.raises(KeyError):
            report.result_for("no/such/scenario")

    def test_json_round_trip(self, report, tmp_path):
        path = tmp_path / "sweep.json"
        report.save(path)
        data = json.loads(path.read_text())
        assert data["n_scenarios"] == report.n_scenarios
        assert data["seed_entropy"] == 11
        assert len(data["scenarios"]) == report.n_scenarios
        first = data["scenarios"][0]
        assert first["scenario"]["name"] == report.results[0].spec.name
        assert {row["n_sensors"] for row in first["md"]} == {3, 6, 9}
        for row in first["md"]:
            # MD scores every labelled event as either TP or FN.
            assert row["tp"] + row["fn"] == first["n_events"]
            assert 0.0 <= row["f_measure"] <= 1.0

    def test_re_accuracy_stage(self):
        grid = ScenarioGrid(
            layouts=[paper_office()],
            scales=[tiny_scale("re-tiny", departures_per_hour=10.0)],
            sensor_counts=(3, 9),
        )
        report = ScenarioSweepRunner(grid, seed=3, mode="serial").run()
        accs = report.results[0].re_accuracies
        # Default RE stage: the scenario's maximum sensor count only.
        assert list(accs) == [9]
        assert 0.0 <= accs[9] <= 1.0
        assert "RE accuracy" in report.render()

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ScenarioSweepRunner([], seed=0)

    def test_scenario_without_applicable_counts_renders(self):
        # Counts exceeding a layout's deployment are skipped; a scenario
        # left with no counts must still report (and not crash render()).
        five = paper_office().with_sensors(["d1", "d2", "d3", "d4", "d5"])
        grid = ScenarioGrid(
            layouts=[five], scales=[tiny_scale()], sensor_counts=(6, 9)
        )
        report = ScenarioSweepRunner(
            grid, seed=1, mode="serial", re_sensor_counts=()
        ).run()
        assert report.results[0].md_rows == []
        assert report.results[0].best_f_measure() is None
        assert "no applicable sensor counts" in report.render()
        assert json.loads(report.to_json())["scenarios"][0]["md"] == []

    def test_conflicting_explicit_specs_rejected(self, grid):
        # Distinctly named specs sharing one simulation key (layout,
        # scale, channel name, replicate) but carrying different
        # simulation inputs must fail loudly instead of silently sharing
        # one recording.
        specs = grid.scenarios()[:1]
        clone = specs[0].__class__(
            **{
                **specs[0].__dict__,
                "index": 1,
                "name": specs[0].name + "-variant",
                "channel_config": ChannelConfig(slow_drift_sigma_db=0.1),
            }
        )
        with pytest.raises(ValueError, match="conflicting"):
            ScenarioSweepRunner([specs[0], clone], seed=0)

    def test_duplicate_scenario_names_rejected(self, grid):
        # Explicit spec lists bypass the grid's uniqueness validation, but
        # SweepReport.result_for and sweep-store records are name-keyed:
        # duplicate names would silently resolve to the first match.
        specs = grid.scenarios()[:1]
        clone = specs[0].__class__(**{**specs[0].__dict__, "index": 1})
        with pytest.raises(ValueError, match="duplicate scenario names"):
            ScenarioSweepRunner([specs[0], clone], seed=0)

    def test_keep_recordings_false_drops_raw_traces(self, grid):
        report = ScenarioSweepRunner(
            grid,
            seed=11,
            mode="serial",
            re_sensor_counts=(),
            keep_recordings=False,
        ).run()
        assert all(result.recording is None for result in report.results)
        assert all(result.n_events >= 0 for result in report.results)
        assert "cross-scenario summary" in report.render()

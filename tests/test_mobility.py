"""Tests for the mobility substrate: people, trajectories, schedules, events."""

import numpy as np
import pytest

from repro.mobility.behavior import AbsenceSampler, BehaviorProfile
from repro.mobility.events import ENTRY_LABEL, EventKind, EventLog, GroundTruthEvent
from repro.mobility.person import Person, PresenceState
from repro.mobility.scheduler import (
    CampaignSchedule,
    DaySchedule,
    PlannedMovement,
    ScheduleGenerator,
)
from repro.mobility.trajectory import (
    Trajectory,
    departure_trajectory,
    entry_trajectory,
    walk_through,
)
from repro.radio.geometry import Point


class TestTrajectory:
    def test_walk_duration_matches_speed(self):
        traj = walk_through([Point(0, 0), Point(2.8, 0)], start_time=0.0, speed_mps=1.4)
        assert traj.duration == pytest.approx(2.0)

    def test_position_before_and_after(self):
        traj = walk_through([Point(0, 0), Point(1, 0)], start_time=10.0)
        assert traj.position_at(0.0) == Point(0, 0)
        assert traj.position_at(100.0) == Point(1, 0)

    def test_position_midway(self):
        traj = walk_through([Point(0, 0), Point(2, 0)], start_time=0.0, speed_mps=1.0)
        mid = traj.position_at(1.0)
        assert mid.x == pytest.approx(1.0)

    def test_pauses_extend_duration(self):
        plain = walk_through([Point(0, 0), Point(1, 0)], 0.0)
        paused = walk_through([Point(0, 0), Point(1, 0)], 0.0, pauses=[2.0])
        assert paused.duration == pytest.approx(plain.duration + 2.0)

    def test_active_at(self):
        traj = walk_through([Point(0, 0), Point(1.4, 0)], start_time=5.0)
        assert traj.active_at(5.5)
        assert not traj.active_at(4.9)
        assert not traj.active_at(20.0)

    def test_departure_trajectory_ends_at_door(self):
        door = Point(0.2, 0.4)
        traj = departure_trajectory(Point(5, 2), door, 0.0)
        assert traj.waypoints[-1] == door
        assert traj.duration > 3.0

    def test_entry_trajectory_starts_at_door_ends_at_seat(self):
        door, seat = Point(0.2, 0.4), Point(5, 2)
        traj = entry_trajectory(door, seat, 0.0)
        assert traj.waypoints[0] == door
        assert traj.waypoints[-1] == seat

    def test_invalid_trajectories_raise(self):
        with pytest.raises(ValueError):
            walk_through([Point(0, 0)], 0.0)
        with pytest.raises(ValueError):
            walk_through([Point(0, 0), Point(1, 0)], 0.0, speed_mps=0.0)
        with pytest.raises(ValueError):
            Trajectory(0.0, (Point(0, 0), Point(1, 0)), (1.0, 2.0))

    def test_via_waypoints_increase_path(self):
        direct = departure_trajectory(Point(5, 2), Point(0.2, 0.4), 0.0)
        detour = departure_trajectory(
            Point(5, 2), Point(0.2, 0.4), 0.0, via=[Point(3, 2.5)]
        )
        assert detour.duration > direct.duration


class TestPerson:
    def test_initially_seated_at_seat(self):
        person = Person("u1", "w1", Point(1, 1))
        assert person.state is PresenceState.SEATED
        assert person.position_at(0.0) == Point(1, 1)

    def test_walk_and_become_absent(self):
        person = Person("u1", "w1", Point(1, 1))
        traj = walk_through([Point(1, 1), Point(0, 0)], start_time=0.0)
        person.start_walk(traj, ends_as=PresenceState.ABSENT)
        assert person.state is PresenceState.WALKING
        person.update(traj.end_time + 1.0)
        assert person.state is PresenceState.ABSENT
        assert person.position_at(traj.end_time + 1.0) is None

    def test_walk_and_sit_down_updates_seat(self):
        person = Person("u1", "w1", Point(1, 1), initial_state=PresenceState.ABSENT)
        traj = walk_through([Point(0, 0), Point(2, 2)], start_time=0.0)
        person.start_walk(traj, ends_as=PresenceState.SEATED)
        person.update(traj.end_time + 0.1)
        assert person.state is PresenceState.SEATED
        assert person.seat == Point(2, 2)

    def test_walk_cannot_end_in_walking(self):
        person = Person("u1", "w1", Point(1, 1))
        traj = walk_through([Point(1, 1), Point(0, 0)], 0.0)
        with pytest.raises(ValueError):
            person.start_walk(traj, ends_as=PresenceState.WALKING)

    def test_fidget_offsets_are_small_and_slowly_varying(self, rng):
        person = Person(
            "u1", "w1", Point(1, 1), fidget_sigma_m=0.05, fidget_interval_s=1000.0
        )
        p1 = person.position_at(0.0, rng)
        positions = [person.position_at(t, rng) for t in (0.25, 0.5, 0.75, 1.0)]
        # Within the same fidget interval the offset is frozen: the seated
        # body is quasi-static, which is what keeps the MD baseline clean.
        resampled = sum(1 for p in positions if p.distance_to(p1) > 1e-12)
        assert resampled == 0
        assert p1.distance_to(Point(1, 1)) < 0.5

    def test_mark_absent_and_seated(self):
        person = Person("u1", "w1", Point(1, 1))
        person.mark_absent()
        assert not person.is_present()
        person.mark_seated(Point(2, 2))
        assert person.is_present()
        assert person.seat == Point(2, 2)

    def test_invalid_fidget_parameters_raise(self):
        with pytest.raises(ValueError):
            Person("u1", "w1", Point(0, 0), fidget_sigma_m=-1.0)
        with pytest.raises(ValueError):
            Person("u1", "w1", Point(0, 0), fidget_interval_s=0.0)


class TestBehavior:
    def test_absence_sampler_respects_minimum(self, rng):
        profile = BehaviorProfile(mean_absence_s=120.0, min_absence_s=60.0)
        sampler = AbsenceSampler(profile, rng)
        assert np.all(sampler.sample_many(200) >= 60.0)

    def test_absence_sampler_mean_roughly_matches(self, rng):
        profile = BehaviorProfile(mean_absence_s=600.0, min_absence_s=1.0)
        sampler = AbsenceSampler(profile, rng)
        mean = sampler.sample_many(3000).mean()
        assert 400.0 < mean < 800.0

    def test_invalid_profile_raises(self):
        with pytest.raises(ValueError):
            BehaviorProfile(departures_per_hour=-1.0)
        with pytest.raises(ValueError):
            BehaviorProfile(mean_absence_s=0.0)
        with pytest.raises(ValueError):
            BehaviorProfile(walking_speed_mps=0.0)


class TestEvents:
    def test_event_labels(self):
        dep = GroundTruthEvent(EventKind.DEPARTURE, 10.0, "u1", "w1", exit_time=15.0)
        ent = GroundTruthEvent(EventKind.ENTRY, 20.0, "u1", "w1")
        move = GroundTruthEvent(EventKind.INTERNAL_MOVE, 30.0, "u1", "w1")
        assert dep.label == "w1"
        assert ent.label == ENTRY_LABEL
        assert move.label is None

    def test_exit_before_event_time_rejected(self):
        with pytest.raises(ValueError):
            GroundTruthEvent(EventKind.DEPARTURE, 10.0, "u1", "w1", exit_time=5.0)

    def test_event_log_ordering_and_counts(self):
        log = EventLog()
        log.add(GroundTruthEvent(EventKind.ENTRY, 20.0, "u1", "w1"))
        log.add(GroundTruthEvent(EventKind.DEPARTURE, 10.0, "u1", "w1", exit_time=14.0))
        assert [e.time for e in log] == [10.0, 20.0]
        assert len(log.departures()) == 1
        assert len(log.entries()) == 1
        assert log.label_counts() == {"w1": 1, "w0": 1}

    def test_event_log_interval_query(self):
        log = EventLog(
            [
                GroundTruthEvent(EventKind.ENTRY, 5.0, "u1", "w1"),
                GroundTruthEvent(EventKind.ENTRY, 50.0, "u2", "w2"),
            ]
        )
        assert len(log.in_interval(0.0, 10.0)) == 1
        with pytest.raises(ValueError):
            log.in_interval(10.0, 0.0)


class TestScheduler:
    def test_generated_day_is_overlap_free(self, layout, rng):
        gen = ScheduleGenerator(layout, min_gap_s=45.0, rng=rng)
        day = gen.generate_day(0, duration_s=4 * 3600.0)
        times = sorted(m.start_time for m in day.movements)
        for a, b in zip(times, times[1:]):
            assert b - a >= 45.0 - 1e-9

    def test_departures_and_entries_alternate_per_user(self, layout, rng):
        gen = ScheduleGenerator(layout, rng=rng)
        day = gen.generate_day(0, duration_s=8 * 3600.0)
        for workstation in layout.workstation_ids:
            user = ScheduleGenerator.user_for(workstation)
            seq = [
                m.kind
                for m in day.movements
                if m.user_id == user and m.kind is not EventKind.INTERNAL_MOVE
            ]
            for first, second in zip(seq, seq[1:]):
                assert (first, second) != (EventKind.DEPARTURE, EventKind.DEPARTURE)

    def test_campaign_has_requested_days(self, layout, rng):
        gen = ScheduleGenerator(layout, rng=rng)
        campaign = gen.generate_campaign(n_days=3, day_duration_s=3600.0)
        assert campaign.n_days == 3
        assert all(isinstance(d, DaySchedule) for d in campaign.days)

    def test_label_counts_shape(self, layout, rng):
        gen = ScheduleGenerator(layout, rng=rng)
        campaign = gen.generate_campaign(n_days=5, day_duration_s=8 * 3600.0)
        counts = campaign.label_counts()
        # Entries and at least one departure label must be present.
        assert counts.get("w0", 0) > 0
        assert any(counts.get(w, 0) > 0 for w in layout.workstation_ids)

    def test_movements_respect_lead_in(self, layout, rng):
        gen = ScheduleGenerator(layout, first_movement_s=300.0, rng=rng)
        day = gen.generate_day(0, duration_s=3600.0)
        assert all(m.start_time >= 300.0 for m in day.movements)

    def test_too_short_day_raises(self, layout, rng):
        gen = ScheduleGenerator(layout, first_movement_s=600.0, rng=rng)
        with pytest.raises(ValueError):
            gen.generate_day(0, duration_s=500.0)

    def test_user_for_mapping(self):
        assert ScheduleGenerator.user_for("w1") == "u1"
        assert ScheduleGenerator.user_for("w3") == "u3"

    def test_planned_movement_validation(self):
        with pytest.raises(ValueError):
            PlannedMovement(EventKind.DEPARTURE, "u1", "w1", start_time=-1.0)
        with pytest.raises(ValueError):
            PlannedMovement(EventKind.DEPARTURE, "u1", "w1", 0.0, absence_s=-5.0)

    def test_campaign_schedule_totals(self):
        day = DaySchedule(
            day_index=0,
            duration_s=100.0,
            movements=[
                PlannedMovement(EventKind.DEPARTURE, "u1", "w1", 10.0, 30.0),
                PlannedMovement(EventKind.ENTRY, "u1", "w1", 40.0),
            ],
        )
        campaign = CampaignSchedule(days=[day])
        assert campaign.total_movements == 2
        assert campaign.label_counts() == {"w1": 1, "w0": 1}

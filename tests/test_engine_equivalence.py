"""Equivalence regression tests: batch engine vs. scalar reference.

The vectorised batch engine (``CampaignCollector.collect_day``,
``RadioChannel.sample_block``) must produce *bit-identical* output to the
per-step reference path (``collect_day_scalar`` / ``sample_vector``): both
consume the same per-purpose random streams in the same order.  These tests
pin that contract across seeds, layouts and schedule shapes, and extend it
to the parallel :class:`~repro.simulation.runner.CampaignRunner`.
"""

import numpy as np
import pytest

from repro.mobility.events import EventKind
from repro.mobility.person import Person, PresenceState
from repro.mobility.scheduler import DaySchedule, PlannedMovement
from repro.mobility.trajectory import walk_through
from repro.radio.channel import RadioChannel
from repro.radio.geometry import Point
from repro.radio.links import LinkSet
from repro.radio.office import paper_office
from repro.simulation.collector import CampaignCollector, derive_seed_sequence
from repro.simulation.runner import CampaignRunner

SEEDS = (0, 7, 1234)


def small_office():
    """The paper office restricted to five sensors (second layout)."""
    return paper_office().with_sensors(["d1", "d2", "d3", "d4", "d5"])


def busy_day(day_index=0):
    """A compact day exercising departures, entries, internal moves and a
    visitor, including back-to-back movements."""
    return DaySchedule(
        day_index=day_index,
        duration_s=360.0,
        movements=[
            PlannedMovement(EventKind.INTERNAL_MOVE, "u2", "w2", 40.0),
            PlannedMovement(EventKind.ENTRY, "guest", "w3", 70.0),
            PlannedMovement(EventKind.DEPARTURE, "u1", "w1", 120.0, absence_s=60.0),
            PlannedMovement(EventKind.ENTRY, "u1", "w1", 200.0),
            PlannedMovement(EventKind.INTERNAL_MOVE, "u3", "w3", 250.0),
            PlannedMovement(EventKind.DEPARTURE, "u2", "w2", 300.0, absence_s=200.0),
        ],
    )


def assert_days_identical(a, b):
    np.testing.assert_array_equal(a.trace.times, b.trace.times)
    assert a.trace.stream_ids == b.trace.stream_ids
    for sid in a.trace.stream_ids:
        np.testing.assert_array_equal(
            a.trace.streams[sid], b.trace.streams[sid], err_msg=f"stream {sid}"
        )
    key = lambda e: (e.kind, e.time, e.user_id, e.workstation_id, e.exit_time)
    assert [key(e) for e in a.events] == [key(e) for e in b.events]
    assert set(a.activity) == set(b.activity)
    for wid in a.activity:
        np.testing.assert_array_equal(
            a.activity[wid].active_bins, b.activity[wid].active_bins
        )
        assert a.activity[wid].bin_seconds == b.activity[wid].bin_seconds
        assert a.activity[wid].start_time == b.activity[wid].start_time


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("make_layout", [paper_office, small_office])
    def test_collect_day_matches_scalar(self, seed, make_layout):
        layout = make_layout()
        batch = CampaignCollector(layout, seed=seed).collect_day(busy_day())
        scalar = CampaignCollector(layout, seed=seed).collect_day_scalar(
            busy_day()
        )
        assert_days_identical(batch, scalar)

    def test_generated_schedule_matches_scalar(self):
        layout = paper_office()
        collector_a = CampaignCollector(layout, seed=99)
        collector_b = CampaignCollector(layout, seed=99)
        from repro.mobility.behavior import BehaviorProfile
        from repro.mobility.scheduler import ScheduleGenerator

        profile = BehaviorProfile(
            departures_per_hour=8.0,
            mean_absence_s=90.0,
            min_absence_s=40.0,
            internal_moves_per_hour=3.0,
        )
        generator = ScheduleGenerator(
            layout,
            {w.workstation_id: profile for w in layout.workstations},
            rng=np.random.default_rng(5),
        )
        day = generator.generate_day(2, 900.0)
        assert_days_identical(
            collector_a.collect_day(day), collector_b.collect_day_scalar(day)
        )

    def test_overlapping_walks_match_scalar(self):
        # Walks replaced mid-flight (no overlap-free guarantee) must still
        # replay identically.
        layout = small_office()
        day = DaySchedule(
            day_index=1,
            duration_s=120.0,
            movements=[
                PlannedMovement(EventKind.DEPARTURE, "u1", "w1", 30.0),
                PlannedMovement(EventKind.ENTRY, "u1", "w1", 32.0),
                PlannedMovement(EventKind.DEPARTURE, "u1", "w1", 33.5),
            ],
        )
        batch = CampaignCollector(layout, seed=3).collect_day(day)
        scalar = CampaignCollector(layout, seed=3).collect_day_scalar(day)
        assert_days_identical(batch, scalar)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_equivalence_holds_without_quantization(self, seed):
        # With quantization disabled nothing rounds away ulp-level drift,
        # so this pins the bit-for-bit contract at full float precision.
        from repro.radio.channel import ChannelConfig

        layout = paper_office()
        config = ChannelConfig(quantization_db=0.0)
        batch = CampaignCollector(
            layout, seed=seed, channel_config=config
        ).collect_day(busy_day())
        scalar = CampaignCollector(
            layout, seed=seed, channel_config=config
        ).collect_day_scalar(busy_day())
        assert_days_identical(batch, scalar)

    def test_duplicate_day_indices_rejected(self):
        # Two days with the same index would silently share random streams.
        from repro.mobility.scheduler import CampaignSchedule

        layout = small_office()
        schedule = CampaignSchedule(days=[busy_day(0), busy_day(0)])
        with pytest.raises(ValueError, match="duplicate day_index"):
            CampaignCollector(layout, seed=1).collect(schedule)
        with pytest.raises(ValueError, match="duplicate day_index"):
            CampaignRunner(layout, seed=1, mode="serial").run(schedule)

    def test_collect_day_is_idempotent(self):
        # Day streams derive from (root entropy, day index): collecting the
        # same day twice, in any order, yields identical recordings.
        layout = paper_office()
        collector = CampaignCollector(layout, seed=21)
        first = collector.collect_day(busy_day(day_index=4))
        collector.collect_day(busy_day(day_index=0))  # interleave another day
        second = collector.collect_day(busy_day(day_index=4))
        assert_days_identical(first, second)


class TestChannelBlockEquivalence:
    def _channel_pair(self, seed=13):
        layout = paper_office()
        links = LinkSet(layout, np.random.default_rng(0))
        root = np.random.SeedSequence(seed)
        mk = lambda: RadioChannel(
            links, sample_interval_s=0.25, seed_seq=derive_seed_sequence(root, 9)
        )
        return mk(), mk()

    def test_sample_block_matches_sample_vector(self):
        ch_block, ch_scalar = self._channel_pair()
        n_steps, n_bodies = 50, 2
        rng = np.random.default_rng(1)
        pos = rng.uniform(0.5, 2.5, size=(n_steps, n_bodies, 2))
        speeds = rng.uniform(0.0, 1.5, size=(n_steps, n_bodies))
        presence = rng.random((n_steps, n_bodies)) < 0.7

        block = ch_block.sample_block(pos, speeds, presence)
        for step in range(n_steps):
            bodies = [
                Point(*pos[step, b]) for b in range(n_bodies) if presence[step, b]
            ]
            sp = [speeds[step, b] for b in range(n_bodies) if presence[step, b]]
            row = ch_scalar.sample_vector(bodies, sp)
            np.testing.assert_array_equal(block[step], row, err_msg=f"step {step}")

    def test_sample_block_chunking_is_transparent(self):
        ch_a, ch_b = self._channel_pair(seed=77)
        n_steps = RadioChannel.BLOCK_CHUNK_STEPS + 37  # straddle a boundary
        pos = np.full((n_steps, 1, 2), 1.5)
        a = ch_a.sample_block(pos)
        b_first = ch_b.sample_block(pos[: n_steps // 2])
        b_second = ch_b.sample_block(pos[n_steps // 2 :])
        np.testing.assert_array_equal(a, np.vstack([b_first, b_second]))

    def test_sample_block_requires_split_streams(self):
        layout = paper_office()
        links = LinkSet(layout, np.random.default_rng(0))
        legacy = RadioChannel(links, rng=np.random.default_rng(1))
        with pytest.raises(RuntimeError, match="seed_seq"):
            legacy.sample_block(np.zeros((4, 1, 2)))

    def test_sample_block_validates_shapes(self):
        ch, _ = self._channel_pair()
        with pytest.raises(ValueError):
            ch.sample_block(np.zeros((4, 1, 3)))
        with pytest.raises(ValueError):
            ch.sample_block(np.zeros((4, 1, 2)), speeds=np.zeros((3, 1)))
        with pytest.raises(ValueError):
            ch.sample_block(np.zeros((4, 1, 2)), presence=np.zeros((4, 2), bool))


class TestPersonReplayEquivalence:
    def test_positions_over_matches_scalar_state_machine(self):
        times = np.arange(0, 120.0, 0.25)
        seat = Point(1.0, 1.0)
        traj_out = walk_through([seat, Point(3.0, 2.0)], 30.0, pauses=[1.0])
        traj_back = walk_through([Point(3.0, 2.0), Point(2.0, 0.5)], 60.0)
        walks = [
            (int(np.searchsorted(times, traj_out.start_time)), traj_out,
             PresenceState.ABSENT),
            (int(np.searchsorted(times, traj_back.start_time)), traj_back,
             PresenceState.SEATED),
        ]
        ss = np.random.SeedSequence(42)
        batch_person = Person("u1", "w1", seat)
        xy, present, walking = batch_person.positions_over(
            times, np.random.default_rng(ss), walks
        )

        scalar_person = Person("u1", "w1", seat)
        rng = np.random.default_rng(ss)
        wi = 0
        for k, t in enumerate(times):
            while wi < len(walks) and walks[wi][0] <= k:
                scalar_person.start_walk(walks[wi][1], walks[wi][2])
                wi += 1
            scalar_person.update(float(t))
            pos = scalar_person.position_at(float(t), rng)
            assert present[k] == (pos is not None)
            assert walking[k] == (
                scalar_person.state is PresenceState.WALKING
            )
            if pos is not None:
                assert xy[k, 0] == pos.x and xy[k, 1] == pos.y


class TestRunnerEquivalence:
    def _schedule(self):
        from repro.mobility.scheduler import CampaignSchedule

        return CampaignSchedule(days=[busy_day(0), busy_day(1), busy_day(2)])

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_runner_matches_serial_collector(self, mode):
        layout = paper_office()
        schedule = self._schedule()
        serial = CampaignCollector(layout, seed=11).collect(schedule)
        parallel = CampaignRunner(layout, seed=11, mode=mode).run(schedule)
        assert parallel.n_days == serial.n_days
        for a, b in zip(serial.days, parallel.days):
            assert_days_identical(a, b)

    def test_run_many_campaigns_reproducible_and_independent(self):
        layout = small_office()
        schedule = self._schedule()
        first = CampaignRunner(layout, seed=5, mode="thread").run_many(
            [schedule, schedule]
        )
        second = CampaignRunner(layout, seed=5, mode="serial").run_many(
            [schedule, schedule]
        )
        for c1, c2 in zip(first, second):
            for a, b in zip(c1.days, c2.days):
                assert_days_identical(a, b)
        # Different campaign indices derive different child seeds.
        sid = first[0].days[0].trace.stream_ids[0]
        assert not np.array_equal(
            first[0].days[0].trace.streams[sid],
            first[1].days[0].trace.streams[sid],
        )

    def test_run_many_matches_seeded_collectors(self):
        layout = small_office()
        schedule = self._schedule()
        runner = CampaignRunner(layout, seed=8, mode="serial")
        results = runner.run_many([schedule])
        direct = runner.collector_for(0).collect(schedule)
        for a, b in zip(direct.days, results[0].days):
            assert_days_identical(a, b)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            CampaignRunner(paper_office(), mode="fork-bomb")

    def test_repeated_generated_campaigns_are_decorrelated(self):
        # Generated campaigns renumber their days from zero; each draw must
        # still get fresh noise streams (regression: repeated campaigns
        # once replayed >50% bit-identical samples).
        from repro.mobility.behavior import BehaviorProfile

        layout = paper_office()
        collector = CampaignCollector(layout, seed=42)
        profiles = {
            w.workstation_id: BehaviorProfile(
                departures_per_hour=6.5,
                mean_absence_s=150.0,
                min_absence_s=45.0,
            )
            for w in layout.workstations
        }
        first = collector.collect_generated(
            n_days=1, day_duration_s=600.0, profiles=profiles
        )
        second = collector.collect_generated(
            n_days=1, day_duration_s=600.0, profiles=profiles
        )
        a = np.column_stack(
            [first.days[0].trace.streams[s] for s in first.days[0].trace.stream_ids]
        )
        b = np.column_stack(
            [second.days[0].trace.streams[s] for s in second.days[0].trace.stream_ids]
        )
        # Quantised RSSI coincides by chance (~20-25%); shared streams would
        # push this beyond 50%.
        assert (a == b).mean() < 0.35

    def test_run_generated_matches_collect_generated(self):
        from repro.mobility.behavior import BehaviorProfile

        layout = small_office()
        profiles = {
            w.workstation_id: BehaviorProfile(
                departures_per_hour=8.0, mean_absence_s=90.0, min_absence_s=40.0
            )
            for w in layout.workstations
        }
        runner = CampaignRunner(layout, seed=9, mode="serial")
        collector = CampaignCollector(layout, seed=9)
        # Two successive draws must match the stateful collector draw for
        # draw (schedule stream and per-campaign seed base both advance).
        for _ in range(2):
            via_runner = runner.run_generated(
                n_days=1, day_duration_s=600.0, profiles=profiles
            )
            direct = collector.collect_generated(
                n_days=1, day_duration_s=600.0, profiles=profiles
            )
            for a, b in zip(direct.days, via_runner.days):
                assert_days_identical(a, b)

    def test_thread_mode_bit_identical_over_multi_day_schedule(self):
        """Thread mode shares one collector across worker threads; that is
        only sound if ``collect_day`` is reentrant (it must never touch the
        structural stream or any other collector state).  Lock bit-identity
        against serial execution over a generated multi-day schedule large
        enough that several threads really interleave."""
        from repro.mobility.behavior import BehaviorProfile
        from repro.mobility.scheduler import ScheduleGenerator

        layout = paper_office()
        profile = BehaviorProfile(
            departures_per_hour=8.0,
            mean_absence_s=90.0,
            min_absence_s=40.0,
            internal_moves_per_hour=3.0,
        )
        schedule = ScheduleGenerator(
            layout,
            {w.workstation_id: profile for w in layout.workstations},
            rng=np.random.default_rng(13),
        ).generate_campaign(6, 500.0)

        serial = CampaignRunner(layout, seed=21, mode="serial").run(schedule)
        threaded = CampaignRunner(
            layout, seed=21, mode="thread", max_workers=4
        ).run(schedule)
        assert threaded.n_days == serial.n_days == 6
        for a, b in zip(serial.days, threaded.days):
            assert_days_identical(a, b)

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_run_tasks_mixes_layouts_and_seeds(self, mode):
        """Heterogeneous day tasks (different layouts, channels and seeds in
        one pool) must each match a dedicated serial collector."""
        from repro.radio.channel import ChannelConfig
        from repro.simulation.runner import DayTask

        big, small = paper_office(), small_office()
        quiet = ChannelConfig(slow_drift_sigma_db=0.1)
        seed_a = np.random.SeedSequence(3)
        seed_b = np.random.SeedSequence(4)
        tasks = [
            DayTask(day=busy_day(0), seed_seq=seed_a, layout=big),
            DayTask(
                day=busy_day(0),
                seed_seq=seed_a,
                layout=small,
                channel_config=quiet,
            ),
            DayTask(day=busy_day(1), seed_seq=seed_b, layout=small),
            DayTask(day=busy_day(2), seed_seq=seed_a, layout=big),
        ]
        runner = CampaignRunner(big, seed=0, mode=mode, max_workers=3)
        results = runner.run_tasks(tasks)
        references = [
            CampaignCollector(big, seed=seed_a).collect_day(busy_day(0)),
            CampaignCollector(
                small, channel_config=quiet, seed=seed_a
            ).collect_day(busy_day(0)),
            CampaignCollector(small, seed=seed_b).collect_day(busy_day(1)),
            CampaignCollector(big, seed=seed_a).collect_day(busy_day(2)),
        ]
        assert len(results) == len(references)
        for got, want in zip(results, references):
            assert_days_identical(got, want)

    def test_thread_mode_accepts_list_entropy_seed(self):
        # SeedSequence([...]) stores its entropy as a list; the thread-mode
        # collector cache must not choke on the unhashable entropy.
        layout = small_office()
        schedule = self._schedule()
        seed = np.random.SeedSequence([1, 2, 3])
        threaded = CampaignRunner(layout, seed=seed, mode="thread").run(schedule)
        serial = CampaignCollector(layout, seed=seed).collect(schedule)
        for a, b in zip(serial.days, threaded.days):
            assert_days_identical(a, b)

"""Golden analysis test: the paper-facing numbers of the default campaign.

Pins Table III (MD detection counts and rates), the Figure 7 F-measure
peaks and the Figure 8 final accuracies for the default seed-42 compact
campaign.  The columnar analysis engine (shared feature matrix, lockstep
profile grid, vectorised CV) sits under all of these, so any refactor that
silently drifts the paper's numbers fails here loudly.  If a change is
*intentional* (e.g. a new seeding or profiling scheme), re-derive the
golden values and update them in the same commit.
"""

import pytest

from repro.analysis.campaign import AnalysisContext, collect_campaign
from repro.analysis.md_performance import compute_fmeasure_curves, compute_md_table
from repro.analysis.re_performance import compute_learning_curves
from repro.core.config import FadewichConfig

GOLDEN_SEED = 42

#: Table III — (tp, fp, fn) per sensor count.  Verified unchanged by the
#: PR-4 threshold-rule re-pin (bracketed bisection -> safeguarded Newton):
#: the per-threshold deltas are bounded by the old ``tol=1e-6`` (measured
#: max 6.3e-7 across random profiles, ``tests/test_properties.py``), and
#: no ``s_t`` observation of the golden campaign sits that close to its
#: threshold, so every decision — and hence every count below, and the
#: Figure 7 peaks — is bit-for-bit identical to the bisection era.
GOLDEN_MD_COUNTS = {
    3: (38, 1, 35),
    4: (44, 2, 29),
    5: (43, 0, 30),
    6: (47, 2, 26),
    7: (56, 6, 17),
    8: (67, 8, 6),
    9: (66, 7, 7),
}

#: Table III — TP/FP/FN fractions per sensor count.
GOLDEN_MD_RATES = {
    3: {"tp": 0.513514, "fp": 0.013514, "fn": 0.472973},
    4: {"tp": 0.586667, "fp": 0.026667, "fn": 0.386667},
    5: {"tp": 0.589041, "fp": 0.000000, "fn": 0.410959},
    6: {"tp": 0.626667, "fp": 0.026667, "fn": 0.346667},
    7: {"tp": 0.708861, "fp": 0.075949, "fn": 0.215190},
    8: {"tp": 0.827160, "fp": 0.098765, "fn": 0.074074},
    9: {"tp": 0.825000, "fp": 0.087500, "fn": 0.087500},
}

#: Figure 7 — (t_delta at peak, peak F-measure) per plotted sensor count.
GOLDEN_F_PEAKS = {
    3: (2.0, 0.8344370860927152),
    5: (3.0, 0.8873239436619719),
    7: (3.5, 0.8767123287671232),
    9: (4.0, 0.912751677852349),
}

#: Figure 8 — final out-of-fold accuracy per sensor count
#: (n_repeats=3, seed=0 keeps the golden run fast but fully pinned).
#: Consciously re-pinned for the shared-Gram learning-curve engine
#: (PR 4): the curve now fixes one StandardScaler and one kernel per
#: (repeat, fold) instead of per training subset — the invariant that
#: makes the fold's Gram matrix shareable across sizes — and the SMO
#: solver (incremental error cache, extremum-based second choice,
#: warm-started prefix fits) reaches tol-equivalent but not bitwise-equal
#: stationary points.  Old values (per-subset scaler, pre-cache SMO):
#: {3: 0.3071428571428571, 9: 0.678949938949939} — the shift is within
#: the curves' own ci95.  The fold splits themselves are unchanged (the
#: fitter consumes the random stream exactly like the per-fit path).
GOLDEN_FINAL_ACCURACY = {
    3: 0.28174603174603174,
    9: 0.6664102564102564,
}


@pytest.fixture(scope="module")
def context():
    recording = collect_campaign(seed=GOLDEN_SEED)
    return AnalysisContext(recording, FadewichConfig(), seed=0)


class TestGoldenAnalysis:
    def test_table3_md_counts_and_rates(self, context):
        rows = compute_md_table(context)
        assert [row.n_sensors for row in rows] == sorted(GOLDEN_MD_COUNTS)
        for row in rows:
            counts = (row.counts.tp, row.counts.fp, row.counts.fn)
            assert counts == GOLDEN_MD_COUNTS[row.n_sensors]
            for key, value in GOLDEN_MD_RATES[row.n_sensors].items():
                assert row.rates[key] == pytest.approx(value, abs=1e-6)

    def test_fig7_fmeasure_peaks(self, context):
        curves = compute_fmeasure_curves(context)
        assert [c.n_sensors for c in curves] == sorted(GOLDEN_F_PEAKS)
        for curve in curves:
            t_peak, f_peak = curve.peak()
            golden_t, golden_f = GOLDEN_F_PEAKS[curve.n_sensors]
            assert t_peak == golden_t
            assert f_peak == pytest.approx(golden_f, abs=1e-9)

    def test_fig8_final_accuracies(self, context):
        curves = compute_learning_curves(
            context, sensor_counts=tuple(sorted(GOLDEN_FINAL_ACCURACY)),
            n_repeats=3, seed=0,
        )
        assert [c.n_sensors for c in curves] == sorted(GOLDEN_FINAL_ACCURACY)
        for curve in curves:
            assert curve.final_accuracy == pytest.approx(
                GOLDEN_FINAL_ACCURACY[curve.n_sensors], abs=1e-9
            )

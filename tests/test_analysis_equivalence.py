"""Equivalence regression tests: columnar analysis engine vs. scalar references.

PR 2's analysis fast paths must be *bit-identical* to their retained scalar
references:

* ``evaluate_md_grid`` / ``evaluate_md`` (shared rolling feature matrix +
  lockstep profile engine) vs. ``evaluate_md_scalar`` (per-count restrict /
  recompute / per-observation profile),
* ``cross_validated_predictions`` (array fold masks) vs.
  ``cross_validated_predictions_scalar`` (per-fold index lists),
* ``FadewichSystem.replay_day`` (array replay) vs. ``replay_day_scalar``
  (per-sample ``process_sample`` loop).

The suite pins those contracts across seeds, layouts and every sensor
count, with exact equality on counts/windows and float tolerance on rates,
plus the ``AnalysisContext`` cache-key regression (stale results after a
config change).
"""

import numpy as np
import pytest

from repro.analysis.campaign import AnalysisContext, CampaignScale, collect_campaign
from repro.core import build_sample_dataset
from repro.core.config import FadewichConfig, MDConfig
from repro.core.evaluation import (
    CampaignStdFeatures,
    cross_validated_predictions,
    cross_validated_predictions_scalar,
    evaluate_md,
    evaluate_md_grid,
    evaluate_md_scalar,
    sensor_subset,
    streams_for_sensors,
)
from repro.core.movement import (
    detect_offline,
    detect_offline_scalar,
    rolling_std_matrix,
    rolling_std_sum,
    window_duration_series,
)
from repro.core.system import FadewichSystem
from repro.radio.office import paper_office

SEEDS = (0, 7, 1234)


def small_office():
    """The paper office restricted to five sensors (second layout)."""
    return paper_office().with_sensors(["d1", "d2", "d3", "d4", "d5"])


def tiny_scale(n_days=2, day_duration_s=600.0):
    """A compact campaign that still exercises every pipeline stage."""
    return CampaignScale(
        name="tiny",
        n_days=n_days,
        day_duration_s=day_duration_s,
        departures_per_hour=8.0,
        mean_absence_s=120.0,
        min_absence_s=40.0,
        internal_moves_per_hour=2.0,
    )


def collect(seed, layout=None, **scale_kwargs):
    return collect_campaign(
        seed=seed, scale=tiny_scale(**scale_kwargs), layout=layout
    )


def assert_md_identical(batch, scalar):
    """Bit-exact agreement of two MD evaluations, plus rate tolerance."""
    assert batch.sensor_ids == scalar.sensor_ids
    assert batch.t_delta_s == scalar.t_delta_s
    # Exact equality on the counts...
    assert batch.counts == scalar.counts
    # ...float tolerance on the derived rates.
    for key, value in batch.counts.rates().items():
        assert value == pytest.approx(scalar.counts.rates()[key], abs=1e-12)
    assert len(batch.days) == len(scalar.days)
    for day_b, day_s in zip(batch.days, scalar.days):
        assert day_b.day_index == day_s.day_index
        assert day_b.counts == day_s.counts
        assert day_b.md_result.windows == day_s.md_result.windows
        np.testing.assert_array_equal(
            day_b.md_result.times, day_s.md_result.times
        )
        np.testing.assert_array_equal(
            day_b.md_result.std_sums, day_s.md_result.std_sums
        )
        np.testing.assert_array_equal(
            day_b.md_result.threshold_trace, day_s.md_result.threshold_trace
        )
        assert [
            (vw.t_start, vw.t_end) for vw, _ in day_b.match.true_positive_pairs
        ] == [
            (vw.t_start, vw.t_end) for vw, _ in day_s.match.true_positive_pairs
        ]


class TestSharedFeatureMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_column_slices_match_restricted_recompute(self, seed):
        recording = collect(seed, n_days=1)
        trace = recording.days[0].trace
        times_full, matrix = rolling_std_matrix(trace, 8)
        columns = {sid: j for j, sid in enumerate(trace.stream_ids)}
        for k in (3, 5, 9):
            stream_ids = streams_for_sensors(
                sensor_subset(recording.layout.sensor_ids, k)
            )
            times, sums = rolling_std_sum(trace.restricted_to(stream_ids), 8)
            sliced = np.ascontiguousarray(
                matrix[:, [columns[s] for s in stream_ids]]
            ).sum(axis=1)
            np.testing.assert_array_equal(times, times_full)
            np.testing.assert_array_equal(sums, sliced)

    def test_campaign_features_are_cached_per_day(self):
        recording = collect(0, n_days=2)
        features = CampaignStdFeatures(recording, FadewichConfig())
        first = features.day_matrix(recording.days[0])
        assert features.day_matrix(recording.days[0]) is first


class TestDetectOfflineEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_matches_scalar(self, seed):
        recording = collect(seed, n_days=1)
        stream_ids = streams_for_sensors(
            sensor_subset(recording.layout.sensor_ids, 4)
        )
        trace = recording.days[0].trace.restricted_to(stream_ids)
        batch = detect_offline(trace, FadewichConfig().md)
        scalar = detect_offline_scalar(trace, FadewichConfig().md)
        assert batch.windows == scalar.windows
        np.testing.assert_array_equal(batch.std_sums, scalar.std_sums)
        np.testing.assert_array_equal(
            batch.threshold_trace, scalar.threshold_trace
        )

    def test_batch_matches_scalar_when_update_outgrows_init(self):
        # batch_size > init_samples flips the engine to its per-column
        # fallback; the contract must hold there too.
        recording = collect(7, n_days=1)
        stream_ids = streams_for_sensors(
            sensor_subset(recording.layout.sensor_ids, 3)
        )
        trace = recording.days[0].trace.restricted_to(stream_ids)
        config = MDConfig(profile_init_s=5.0, batch_size=40)
        batch = detect_offline(trace, config)
        scalar = detect_offline_scalar(trace, config)
        assert batch.windows == scalar.windows
        np.testing.assert_array_equal(
            batch.threshold_trace, scalar.threshold_trace
        )

    def test_batch_does_not_mutate_precomputed_series(self):
        # Regression: the lockstep engine's KDE windows once aliased the
        # caller's std-sum array and slid over it in place.
        recording = collect(0, n_days=1)
        stream_ids = streams_for_sensors(
            sensor_subset(recording.layout.sensor_ids, 3)
        )
        trace = recording.days[0].trace.restricted_to(stream_ids)
        times, std_sums = rolling_std_sum(trace, 8)
        original = std_sums.copy()
        detect_offline(trace, FadewichConfig().md, precomputed=(times, std_sums))
        np.testing.assert_array_equal(std_sums, original)


class TestEvaluateMDGridEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("make_layout", [paper_office, small_office])
    def test_grid_matches_scalar_for_all_sensor_counts(self, seed, make_layout):
        layout = make_layout()
        recording = collect(seed, layout=layout)
        config = FadewichConfig()
        counts = list(range(3, len(layout.sensors) + 1))
        grid = evaluate_md_grid(recording, config, counts)
        assert sorted(grid) == counts
        for n in counts:
            scalar = evaluate_md_scalar(
                recording, config, sensor_subset(layout.sensor_ids, n)
            )
            assert_md_identical(grid[n], scalar)

    def test_single_subset_fast_path_matches_scalar(self):
        recording = collect(7)
        config = FadewichConfig()
        ids = sensor_subset(recording.layout.sensor_ids, 6)
        assert_md_identical(
            evaluate_md(recording, config, ids),
            evaluate_md_scalar(recording, config, ids),
        )

    def test_grid_accepts_shared_features(self):
        recording = collect(0)
        config = FadewichConfig()
        features = CampaignStdFeatures(recording, config)
        first = evaluate_md_grid(recording, config, [3, 5], features=features)
        again = evaluate_md_grid(recording, config, [3, 5], features=features)
        for n in (3, 5):
            assert_md_identical(first[n], again[n])

    def test_grid_dedupes_repeated_counts(self):
        # Regression: a duplicated count once appended its days twice,
        # silently doubling every Table 3 number.
        recording = collect(0)
        config = FadewichConfig()
        duplicated = evaluate_md_grid(recording, config, [5, 5, 5])
        reference = evaluate_md_grid(recording, config, [5])
        assert len(duplicated[5].days) == recording.n_days
        assert duplicated[5].counts == reference[5].counts

    def test_grid_of_empty_sweep_is_empty(self):
        recording = collect(0)
        assert evaluate_md_grid(recording, FadewichConfig(), []) == {}


class TestCrossValidationEquivalence:
    def _dataset(self, seed, n_sensors=9):
        recording = collect(seed, day_duration_s=900.0)
        config = FadewichConfig()
        evaluation = evaluate_md(
            recording, config, sensor_subset(recording.layout.sensor_ids, n_sensors)
        )
        return build_sample_dataset(evaluation, config, random_state=0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_vectorized_matches_scalar(self, seed):
        re_module, dataset = self._dataset(seed)
        vectorized = cross_validated_predictions(
            re_module, dataset, rng=np.random.default_rng(seed)
        )
        scalar = cross_validated_predictions_scalar(
            re_module, dataset, rng=np.random.default_rng(seed)
        )
        assert vectorized == scalar
        if len(dataset) >= 5:
            assert sorted(vectorized) == list(range(len(dataset)))

    def test_small_dataset_in_sample_path_matches(self):
        re_module, dataset = self._dataset(0)
        # Trim below n_folds to hit the in-sample fallback on both paths.
        small = dataset.filter_labels(dataset.labels[:1])
        while len(small) > 3:
            small.samples.pop()
        vectorized = cross_validated_predictions(
            re_module, small, rng=np.random.default_rng(1)
        )
        scalar = cross_validated_predictions_scalar(
            re_module, small, rng=np.random.default_rng(1)
        )
        assert vectorized == scalar


class TestReplayEquivalence:
    def _setup(self, seed, layout):
        recording = collect(seed, layout=layout)
        config = FadewichConfig()
        evaluation = evaluate_md(recording, config, layout.sensor_ids)
        re_module, dataset = build_sample_dataset(
            evaluation, config, random_state=0
        )
        def make_system():
            system = FadewichSystem(
                stream_ids=re_module.stream_ids,
                workstation_ids=layout.workstation_ids,
                config=config,
            )
            if len(dataset):
                system.train(dataset)
            return system
        return recording, make_system

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("make_layout", [paper_office, small_office])
    def test_array_replay_matches_scalar(self, seed, make_layout):
        recording, make_system = self._setup(seed, make_layout())
        day = recording.days[0]
        batch = make_system().replay_day(day)
        scalar = make_system().replay_day_scalar(day)
        assert batch.actions == scalar.actions
        assert batch.final_states == scalar.final_states
        assert batch.deauthentications == scalar.deauthentications
        assert batch.alerts == scalar.alerts
        assert batch.screensavers == scalar.screensavers

    def test_replay_of_inputless_workstation_matches_scalar(self):
        # Regression: the vectorised idle-time lookup crashed on a
        # workstation whose activity trace contains no input at all.
        from repro.workstation.activity import ActivityTrace

        recording, make_system = self._setup(0, small_office())
        day = recording.days[0]
        silent_activity = {
            wid: ActivityTrace(
                bin_seconds=trace.bin_seconds,
                active_bins=np.zeros_like(trace.active_bins),
                start_time=trace.start_time,
            )
            for wid, trace in day.activity.items()
        }
        from dataclasses import replace as dc_replace

        silent_day = dc_replace(day, activity=silent_activity)
        batch = make_system().replay_day(silent_day)
        scalar = make_system().replay_day_scalar(silent_day)
        assert batch.actions == scalar.actions
        assert batch.final_states == scalar.final_states
        assert batch.screensavers == scalar.screensavers

    def test_window_duration_series_matches_online_detector(self):
        # Drive the online detector step by step and compare dW_t.
        from repro.core.movement import MovementDetector

        recording, _ = self._setup(0, small_office())
        day = recording.days[0]
        stream_ids = day.trace.stream_ids
        detector = MovementDetector(stream_ids, FadewichConfig().md, 4.0)
        times = day.trace.times
        matrix = np.column_stack([day.trace.streams[sid] for sid in stream_ids])
        flags = np.zeros(times.shape[0], dtype=bool)
        reference = np.zeros(times.shape[0])
        for i in range(times.shape[0]):
            decision = detector.process(
                float(times[i]), dict(zip(stream_ids, matrix[i]))
            )
            flags[i] = bool(decision)
            reference[i] = detector.current_window_duration(float(times[i]))
        durations = window_duration_series(
            times, flags, FadewichConfig().md.merge_gap_s
        )
        np.testing.assert_array_equal(durations, reference)


class TestAnalysisContextCacheKeys:
    def test_config_change_invalidates_cached_results(self):
        # Regression: the caches were keyed on the bare sensor count, so
        # swapping the public ``config`` attribute kept serving results
        # computed under the old configuration.
        recording = collect(0)
        context = AnalysisContext(recording, FadewichConfig(), seed=0)
        before = context.md_evaluation(3)
        context.config = FadewichConfig(t_delta_s=2.0)
        after = context.md_evaluation(3)
        assert after.t_delta_s == 2.0
        assert after is not before
        # Switching back serves the original cached evaluation again.
        context.config = FadewichConfig()
        assert context.md_evaluation(3) is before

    def test_md_evaluations_batch_is_cached_per_count(self):
        recording = collect(7)
        context = AnalysisContext(recording, FadewichConfig(), seed=0)
        batch = context.md_evaluations([3, 4, 5])
        assert context.md_evaluation(4) is batch[4]

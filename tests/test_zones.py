"""Zone-occupancy inference: geometry, estimator, streaming twin, sweep.

The zone workload rides the same equivalence discipline as the detector
zoo: the streaming :class:`ZoneEngine` must reproduce the offline
:meth:`ZoneOccupancyEstimator.offline_grid` bit for bit under *any*
batch split (hypothesis-random, partial smoothing head and calibration
boundary included), snapshots must round-trip through plain JSON, and
hosting inside :class:`OnlineDetector` / :class:`IngestRouter` must not
perturb a single value.  Accuracy against ground-truth walker
trajectories is pinned as goldens at seed 42, and a noise-free synthetic
channel must be recovered exactly.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.campaign import CampaignScale
from repro.analysis.scenarios import (
    ScenarioGrid,
    ScenarioSweepRunner,
    SweepReport,
)
from repro.core.config import MDConfig
from repro.radio.geometry import Point
from repro.radio.links import enumerate_stream_ids
from repro.radio.office import paper_office
from repro.simulation.collector import CampaignCollector
from repro.streaming import (
    DayRecordingSource,
    IngestRouter,
    OnlineDetector,
    merge_by_time,
)
from repro.zones import (
    AttenuationExtractor,
    Zone,
    ZoneEngine,
    ZoneMap,
    ZoneOccupancyEstimator,
    score_walks,
    stream_segments,
)

RATE = 4.0

#: Trimmed day length for the equivalence tests: long enough to cross
#: the calibration boundary (k=60) with decided instants on both sides.
N_EQ = 400


def split_matrix(matrix, sizes):
    out, pos = [], 0
    for s in sizes:
        out.append(matrix[pos : pos + s])
        pos += s
    assert pos == matrix.shape[0]
    return out


@pytest.fixture(scope="module")
def zone_map(layout):
    return ZoneMap.from_layout(layout)


@pytest.fixture(scope="module")
def estimator(zone_map):
    # Short calibration so the trimmed equivalence traces decide plenty
    # of instants past the boundary.
    return ZoneOccupancyEstimator(zone_map=zone_map, calibration_samples=60)


@pytest.fixture(scope="module")
def day_rssi(small_recording):
    """``(times, rssi, stream_ids)`` of day 0, trimmed to ``N_EQ`` rows."""
    trace = small_recording.days[0].trace
    ids = trace.stream_ids
    rssi = np.column_stack([trace.streams[sid] for sid in ids])[:N_EQ]
    return trace.times[:N_EQ], rssi, ids


@pytest.fixture(scope="module")
def offline_reference(estimator, small_recording, layout, day_rssi):
    """The offline grid over the trimmed day-0 attenuation matrix."""
    _, matrix, columns = estimator.attenuation.day_block(
        small_recording.days[0], layout
    )
    return estimator.offline_grid(matrix[:N_EQ], columns)


class TestZoneMap:
    def test_from_layout_geometry(self, layout, zone_map):
        assert zone_map.n_zones == 3
        assert zone_map.zone_names == ["z1", "z2", "z3"]
        x_min = min(z.x_min for z in zone_map.zones)
        x_max = max(z.x_max for z in zone_map.zones)
        assert x_min == 0.0 and x_max == layout.width
        # Every directed stream crosses at least one zone of a full
        # partition, and zone crossing sets cover all streams exactly.
        all_ids = set(enumerate_stream_ids(layout.sensor_ids))
        covered = set()
        for zone in zone_map.zones:
            covered.update(zone.stream_ids)
        assert covered == all_ids

    def test_crossing_counts_pinned(self, zone_map):
        # paper_office, 3x1 grid: the link-geometry golden.  Moves only
        # if the office layout or the Liang-Barsky clipping changes.
        assert [len(z.stream_ids) for z in zone_map.zones] == [30, 64, 52]

    def test_segments_match_stream_enumeration(self, layout):
        segments = stream_segments(layout)
        assert list(segments) == enumerate_stream_ids(layout.sensor_ids)

    def test_zone_of_boundary_tie_break(self, zone_map):
        # A point on the shared edge of z1/z2 resolves to the lower index
        # — the same tie-break argmax applies to equal zone scores.
        edge_x = zone_map.zones[0].x_max
        assert zone_map.zones[1].x_min == edge_x
        p = Point(edge_x, zone_map.zones[0].y_min + 0.1)
        assert zone_map.zone_of(p) == 0
        outside = Point(-1.0, -1.0)
        assert zone_map.zone_of(outside) == -1

    def test_jsonable_round_trip(self, zone_map):
        data = json.loads(json.dumps(zone_map.to_jsonable()))
        assert ZoneMap.from_jsonable(data) == zone_map

    def test_validation(self):
        with pytest.raises(ValueError, match="empty rectangle"):
            Zone(name="bad", x_min=1.0, y_min=0.0, x_max=1.0, y_max=2.0)
        z = Zone(name="a", x_min=0.0, y_min=0.0, x_max=1.0, y_max=1.0)
        with pytest.raises(ValueError, match="unique"):
            ZoneMap(zones=(z, z))
        with pytest.raises(ValueError, match="at least one zone"):
            ZoneMap(zones=())


class TestAttenuationExtractor:
    def test_day_block_is_baseline_minus_rssi(
        self, small_recording, layout
    ):
        extractor = AttenuationExtractor()
        day = small_recording.days[0]
        times, matrix, columns = extractor.day_block(day, layout)
        trace = day.trace
        assert np.array_equal(times, trace.times)
        expected = extractor.baseline(layout, trace.stream_ids)
        for j, sid in enumerate(trace.stream_ids):
            assert columns[sid] == j
            np.testing.assert_array_equal(
                matrix[:, j], expected[j] - trace.streams[sid]
            )

    def test_quiescent_links_sit_near_zero(self, small_recording, layout):
        # The baseline models the quiescent channel, so median attenuation
        # over a whole day stays within the shadowing scale of zero.
        _, matrix, _ = AttenuationExtractor().day_block(
            small_recording.days[0], layout
        )
        assert float(np.median(np.abs(np.median(matrix, axis=0)))) < 3.0


class TestStreamingEquivalence:
    def engine(self, estimator, layout, ids):
        return estimator.streaming_engine(ids, layout)

    def concat(self, engine, rssi, sizes):
        grids = [engine.extend(b) for b in split_matrix(rssi, sizes)]
        return (
            np.concatenate([g.scores for g in grids]),
            np.concatenate([g.occupied for g in grids]),
        )

    def assert_matches(self, got, reference):
        scores, occupied = got
        np.testing.assert_array_equal(scores, reference.scores)
        np.testing.assert_array_equal(occupied, reference.occupied)

    @pytest.mark.parametrize(
        "sizes",
        [
            [N_EQ],
            [1] * 50 + [N_EQ - 50],
            [3, 1, 59, 1, 128, N_EQ - 192],
            [59, 2, N_EQ - 61],  # straddles the calibration boundary
            [399, 1],
        ],
    )
    def test_fixed_batchings(
        self, estimator, layout, day_rssi, offline_reference, sizes
    ):
        _, rssi, ids = day_rssi
        got = self.concat(self.engine(estimator, layout, ids), rssi, sizes)
        self.assert_matches(got, offline_reference)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_batch_splits(
        self, estimator, layout, day_rssi, offline_reference, data
    ):
        _, rssi, ids = day_rssi
        sizes, left = [], N_EQ
        while left > 0:
            s = data.draw(st.integers(1, left))
            sizes.append(s)
            left -= s
        got = self.concat(self.engine(estimator, layout, ids), rssi, sizes)
        self.assert_matches(got, offline_reference)

    @pytest.mark.parametrize("cut", [17, 59, 60, 250])
    def test_snapshot_round_trip_mid_stream(
        self, estimator, layout, day_rssi, offline_reference, cut
    ):
        # Cut points before, at and after the calibration freeze; the
        # resumed engine must continue bitwise from a JSON checkpoint.
        _, rssi, ids = day_rssi
        engine = self.engine(estimator, layout, ids)
        first = engine.extend(rssi[:cut])
        state = json.loads(json.dumps(engine.snapshot()))
        resumed = ZoneEngine.from_snapshot(state)
        rest = resumed.extend(rssi[cut:])
        got = (
            np.concatenate([first.scores, rest.scores]),
            np.concatenate([first.occupied, rest.occupied]),
        )
        self.assert_matches(got, offline_reference)

    def test_empty_batch_is_identity(self, estimator, layout, day_rssi):
        _, rssi, ids = day_rssi
        engine = self.engine(estimator, layout, ids)
        empty = engine.extend(rssi[:0])
        assert empty.n_samples == 0
        a = engine.extend(rssi[:100])
        engine.extend(rssi[100:0])
        b = engine.extend(rssi[100:200])
        fresh = self.engine(estimator, layout, ids)
        whole = fresh.extend(rssi[:200])
        np.testing.assert_array_equal(
            np.concatenate([a.scores, b.scores]), whole.scores
        )

    def test_calibration_window_is_silent(self, offline_reference, estimator):
        k = estimator.calibration_samples
        assert np.isnan(offline_reference.scores[:k]).all()
        assert (offline_reference.occupied[:k] == -1).all()
        assert np.isfinite(offline_reference.scores[k:]).all()
        # The trimmed day must actually decide something past calibration,
        # or the equivalence tests above prove nothing.
        assert (offline_reference.occupied[k:] >= 0).any()


class TestHosting:
    def test_online_detector_attaches_zone_grid(
        self, estimator, layout, day_rssi, offline_reference
    ):
        times, rssi, ids = day_rssi
        det = OnlineDetector(
            ids,
            MDConfig(profile_init_s=30.0),
            sample_rate_hz=RATE,
            zones=estimator.streaming_engine(ids, layout),
        )
        block = det.process_block(times, rssi)
        np.testing.assert_array_equal(
            block.zone_scores, offline_reference.scores
        )
        np.testing.assert_array_equal(
            block.zone_occupancy, offline_reference.occupied
        )

    def test_without_zones_fields_stay_none(self, day_rssi):
        times, rssi, ids = day_rssi
        det = OnlineDetector(
            ids, MDConfig(profile_init_s=30.0), sample_rate_hz=RATE
        )
        block = det.process_block(times, rssi)
        assert block.zone_scores is None and block.zone_occupancy is None

    def test_stream_id_mismatch_rejected(self, estimator, layout, day_rssi):
        _, _, ids = day_rssi
        engine = estimator.streaming_engine(ids[:4], layout)
        with pytest.raises(ValueError, match="stream ids"):
            OnlineDetector(
                ids,
                MDConfig(profile_init_s=30.0),
                sample_rate_hz=RATE,
                zones=engine,
            )

    def test_detector_snapshot_carries_zone_state(
        self, estimator, layout, day_rssi, offline_reference
    ):
        times, rssi, ids = day_rssi
        cut = 150
        det = OnlineDetector(
            ids,
            MDConfig(profile_init_s=30.0),
            sample_rate_hz=RATE,
            zones=estimator.streaming_engine(ids, layout),
        )
        first = det.process_block(times[:cut], rssi[:cut])
        state = json.loads(json.dumps(det.snapshot()))
        resumed = OnlineDetector.from_snapshot(state)
        assert resumed.zones is not None
        rest = resumed.process_block(times[cut:], rssi[cut:])
        np.testing.assert_array_equal(
            np.concatenate([first.zone_scores, rest.zone_scores]),
            offline_reference.scores,
        )
        np.testing.assert_array_equal(
            np.concatenate([first.zone_occupancy, rest.zone_occupancy]),
            offline_reference.occupied,
        )

    def test_pre_zone_snapshots_still_load(self, day_rssi):
        # PR 9 checkpoints predate the "zones" key: they must restore to
        # a detector with no zone engine, not crash.
        _, _, ids = day_rssi
        det = OnlineDetector(
            ids, MDConfig(profile_init_s=30.0), sample_rate_hz=RATE
        )
        state = det.snapshot()
        state.pop("zones")
        assert OnlineDetector.from_snapshot(state).zones is None

    def test_router_hosts_per_tenant_zone_engines(
        self, estimator, layout, small_recording, offline_reference, day_rssi
    ):
        _, _, ids = day_rssi
        day = small_recording.days[0]
        cfg = MDConfig(profile_init_s=30.0)
        with IngestRouter(
            n_workers=2, config=cfg, sample_rate_hz=RATE
        ) as router:
            router.register(
                "plain", ids
            )
            router.register(
                "zoned", ids, zones=estimator.streaming_engine(ids, layout)
            )
            sources = [
                DayRecordingSource(t, day, stream_ids=ids, batch_samples=64)
                for t in ("plain", "zoned")
            ]
            for batch in merge_by_time(sources):
                router.submit(batch)
            router.drain()
            plain = router.tenant_state("plain").concatenated()
            zoned = router.tenant_state("zoned").concatenated()
        assert plain.zone_scores is None
        np.testing.assert_array_equal(
            zoned.zone_scores[:N_EQ], offline_reference.scores
        )
        np.testing.assert_array_equal(
            zoned.zone_occupancy[:N_EQ], offline_reference.occupied
        )
        # Detection outputs are untouched by the hosted zone engine.
        np.testing.assert_array_equal(plain.std_sums, zoned.std_sums)
        np.testing.assert_array_equal(plain.decisions, zoned.decisions)

    def test_restore_from_forbids_zone_override(
        self, estimator, layout, day_rssi
    ):
        _, _, ids = day_rssi
        det = OnlineDetector(
            ids, MDConfig(profile_init_s=30.0), sample_rate_hz=RATE
        )
        with IngestRouter(n_workers=1) as router:
            with pytest.raises(ValueError, match="restore_from"):
                router.register(
                    "t",
                    ids,
                    restore_from=det.snapshot(),
                    zones=estimator.streaming_engine(ids, layout),
                )


def _synthetic_map(n_zones):
    """Unit-square zones in a row: one private link each + one wall link.

    The wall link crosses every zone (weight ``1/n_zones``), each private
    link only its own (weight 1) — no zone's link set nests inside
    another's, so equal attenuation on exactly one zone's links makes
    that zone the strict argmax.
    """
    zones = tuple(
        Zone(
            name=f"z{i + 1}",
            x_min=float(i),
            y_min=0.0,
            x_max=float(i + 1),
            y_max=1.0,
            stream_ids=("wall", f"p{i}"),
        )
        for i in range(n_zones)
    )
    return ZoneMap(zones=zones)


class TestNoiseFreeRecovery:
    @settings(max_examples=50, deadline=None)
    @given(
        n_zones=st.integers(min_value=2, max_value=4),
        true_zone=st.integers(min_value=0, max_value=3),
        magnitude=st.floats(min_value=1.0, max_value=8.0),
        w=st.integers(min_value=1, max_value=5),
        n_occupied=st.integers(min_value=8, max_value=40),
    )
    def test_exact_recovery(self, n_zones, true_zone, magnitude, w, n_occupied):
        """A noise-free channel recovers the occupied zone exactly.

        Attenuation is zero through calibration, then exactly the true
        zone's crossing links attenuate by a constant.  Once the rolling
        mean settles (w samples), every instant must name the true zone;
        after the walker leaves, occupancy must return to none.
        """
        true_zone = true_zone % n_zones
        zone_map = _synthetic_map(n_zones)
        k = 8
        est = ZoneOccupancyEstimator(
            zone_map=zone_map, smoothing_samples=w, calibration_samples=k
        )
        ids = ["wall"] + [f"p{i}" for i in range(n_zones)]
        columns = {sid: j for j, sid in enumerate(ids)}
        hot = set(zone_map.zones[true_zone].stream_ids)
        n = k + n_occupied + w + 10
        matrix = np.zeros((n, len(ids)))
        occupied_rows = slice(k, k + n_occupied)
        for sid in hot:
            matrix[occupied_rows, columns[sid]] = magnitude
        grid = est.offline_grid(matrix, columns)
        assert (grid.occupied[:k] == -1).all()
        settled = slice(k + w - 1, k + n_occupied)
        assert (grid.occupied[settled] == true_zone).all()
        # Once the step has fully left the smoothing window, quiet again.
        assert (grid.occupied[k + n_occupied + w - 1 :] == -1).all()

    def test_streaming_twin_on_synthetic_channel(self):
        # The same synthetic day through a ZoneEngine (RSSI = -attenuation
        # under zero baselines) stays bitwise equal to the offline grid.
        zone_map = _synthetic_map(3)
        est = ZoneOccupancyEstimator(
            zone_map=zone_map, smoothing_samples=3, calibration_samples=8
        )
        ids = ["wall", "p0", "p1", "p2"]
        columns = {sid: j for j, sid in enumerate(ids)}
        matrix = np.zeros((40, 4))
        matrix[8:30, [0, 2]] = 2.0  # zone z2's links: wall + p1
        reference = est.offline_grid(matrix, columns)
        assert (reference.occupied[10:30] == 1).all()
        engine = ZoneEngine(
            zone_map=zone_map,
            stream_ids=ids,
            baselines={sid: 0.0 for sid in ids},
            smoothing_samples=3,
            calibration_samples=8,
            threshold_db=est.threshold_db,
        )
        grids = [engine.extend(b) for b in split_matrix(-matrix, [5, 8, 27])]
        np.testing.assert_array_equal(
            np.concatenate([g.scores for g in grids]), reference.scores
        )
        np.testing.assert_array_equal(
            np.concatenate([g.occupied for g in grids]), reference.occupied
        )


class TestGoldenAccuracy:
    """Zone accuracy on the seed-42 compact campaign, pinned exactly.

    The counts are integers, so any drift in the channel, the walker
    plans, the attenuation baseline or the estimator shows up as a hard
    failure, not a tolerance creep.
    """

    @pytest.fixture(scope="class")
    def golden_accuracy(self, layout, zone_map):
        scale = CampaignScale.compact().derive(
            "zone-golden", n_days=2, day_duration_s=1200.0
        )
        collector = CampaignCollector(layout, seed=42)
        schedule = collector.make_schedule(
            scale.n_days, scale.day_duration_s, scale.profiles_for(layout)
        )
        base = collector.next_generated_base()
        recording = collector.collect(schedule, seed_base=base)
        est = ZoneOccupancyEstimator(zone_map=zone_map)
        total = None
        for day, day_schedule in zip(recording.days, schedule.days):
            times, grid = est.day_grid(day, layout)
            walks = collector.day_walks(day_schedule, seed_base=base)
            trajectories = [
                traj
                for walk_list in walks.values()
                for (_, traj, _) in walk_list
            ]
            acc = score_walks(zone_map, times, grid.occupied, trajectories)
            total = acc if total is None else total + acc
        return total

    def test_pinned_counts(self, golden_accuracy):
        assert golden_accuracy.n_instants == 178
        assert golden_accuracy.n_predicted == 175
        assert golden_accuracy.n_correct == 106

    def test_derived_rates(self, golden_accuracy):
        assert golden_accuracy.accuracy == pytest.approx(106 / 175)
        assert golden_accuracy.coverage == pytest.approx(175 / 178)
        # Far above the 1/3 chance level of a 3-zone map.
        assert golden_accuracy.accuracy > 0.5


class TestSweepIntegration:
    @pytest.fixture(scope="class")
    def zone_report(self, layout, zone_map):
        scale = CampaignScale.compact().derive(
            "zone-sweep", n_days=1, day_duration_s=600.0
        )
        grid = ScenarioGrid(
            layouts=[layout],
            scales=[scale],
            sensor_counts=(3,),
        )
        est = ZoneOccupancyEstimator(zone_map=zone_map)
        runner = ScenarioSweepRunner(
            grid,
            seed=11,
            mode="serial",
            re_sensor_counts=(),
            zone_estimator=est,
        )
        return runner.run()

    def test_results_carry_zone_accuracy(self, zone_report):
        result = zone_report.results[0]
        assert result.zone_accuracy is not None
        keys = set(result.zone_accuracy)
        assert keys == {
            "n_instants",
            "n_predicted",
            "n_correct",
            "accuracy",
            "coverage",
        }
        assert result.zone_accuracy["n_instants"] > 0

    def test_report_round_trip_and_summary(self, zone_report):
        data = json.loads(json.dumps(zone_report.to_dict()))
        back = SweepReport.from_dict(data)
        assert (
            back.results[0].zone_accuracy
            == zone_report.results[0].zone_accuracy
        )
        summary = zone_report.zone_summary()
        assert len(summary) == len(zone_report.results)
        assert summary[0]["scenario"] == zone_report.results[0].spec.name
        assert "zone accuracy:" in zone_report.render()

    def test_without_estimator_no_zone_payload(self, layout):
        scale = CampaignScale.compact().derive(
            "zone-none", n_days=1, day_duration_s=600.0
        )
        grid = ScenarioGrid(
            layouts=[layout], scales=[scale], sensor_counts=(3,)
        )
        report = ScenarioSweepRunner(
            grid, seed=11, mode="serial", re_sensor_counts=()
        ).run()
        assert report.results[0].zone_accuracy is None
        assert report.zone_summary() == []
        assert "zone accuracy:" not in report.render()

    def test_store_key_fingerprints(self, layout, zone_map):
        scale = CampaignScale.compact().derive(
            "zone-key", n_days=1, day_duration_s=600.0
        )
        grid = ScenarioGrid(
            layouts=[layout], scales=[scale], sensor_counts=(3,)
        )
        est = ZoneOccupancyEstimator(zone_map=zone_map)
        tuned = ZoneOccupancyEstimator(zone_map=zone_map, threshold_db=0.5)

        def key(estimator):
            runner = ScenarioSweepRunner(
                grid,
                seed=11,
                mode="serial",
                re_sensor_counts=(),
                zone_estimator=estimator,
            )
            return runner.store_key(list(grid)[0])

        base, same = key(est), key(est)
        assert same == base
        assert "features" in base and base["features"]
        # An estimator config change must invalidate store records...
        assert key(tuned)["zones"] != base["zones"]
        # ...while detection-only sweeps key with zones=None but keep the
        # feature fingerprint (shared with the zone path's std features).
        none_key = key(None)
        assert none_key["zones"] is None
        assert none_key["features"] == base["features"]


def test_default_profiles_make_walks(layout):
    # Guard for the trap that motivated scale.profiles_for everywhere:
    # compact-scale days actually contain scoreable walker trajectories.
    scale = CampaignScale.compact().derive(
        "walks", n_days=1, day_duration_s=600.0
    )
    collector = CampaignCollector(layout, seed=7)
    schedule = collector.make_schedule(
        1, 600.0, scale.profiles_for(layout)
    )
    base = collector.next_generated_base()
    walks = collector.day_walks(schedule.days[0], seed_base=base)
    assert sum(len(v) for v in walks.values()) > 0

"""Tests for the Movement Detection and Radio Environment modules."""

import numpy as np
import pytest

from repro.core.config import FadewichConfig, MDConfig, REConfig
from repro.core.movement import (
    MovementDetector,
    NormalProfile,
    StdSumTracker,
    detect_offline,
    rolling_std_sum,
)
from repro.core.radio_env import RadioEnvironment, RENotTrainedError
from repro.core.windows import VariationWindow
from repro.radio.trace import RssiTrace
from repro.simulation.dataset import LabeledSample


def synthetic_trace(
    duration_s=200.0,
    rate=4.0,
    streams=("a-b", "b-a"),
    burst=(100.0, 110.0),
    burst_sigma=4.0,
    seed=0,
):
    """A quiet multi-stream trace with one high-fluctuation burst."""
    rng = np.random.default_rng(seed)
    n = int(duration_s * rate)
    times = np.arange(n) / rate
    data = {}
    for sid in streams:
        base = rng.normal(-60.0, 1.0, n)
        mask = (times >= burst[0]) & (times <= burst[1])
        base[mask] += rng.normal(0.0, burst_sigma, mask.sum())
        data[sid] = base
    return RssiTrace(times=times, streams=data)


class TestStdSumTracker:
    def test_returns_none_until_two_samples(self):
        tracker = StdSumTracker(["a-b"], window_samples=4)
        assert tracker.update({"a-b": 1.0}) is None
        assert tracker.update({"a-b": 2.0}) is not None

    def test_constant_streams_give_zero_sum(self):
        tracker = StdSumTracker(["a-b", "b-a"], window_samples=4)
        for _ in range(6):
            value = tracker.update({"a-b": -50.0, "b-a": -55.0})
        assert value == pytest.approx(0.0)

    def test_sum_over_streams(self):
        tracker = StdSumTracker(["a-b", "b-a"], window_samples=2)
        tracker.update({"a-b": 0.0, "b-a": 0.0})
        value = tracker.update({"a-b": 2.0, "b-a": 4.0})
        assert value == pytest.approx(1.0 + 2.0)

    def test_window_size_validation(self):
        with pytest.raises(ValueError):
            StdSumTracker(["a-b"], window_samples=1)


class TestNormalProfile:
    def test_initialisation_then_thresholding(self, rng):
        profile = NormalProfile(MDConfig(), init_samples=50)
        for _ in range(50):
            assert profile.observe(float(rng.normal(10.0, 1.0))) is None or profile.is_ready
        assert profile.is_ready
        assert profile.observe(100.0) is True
        assert profile.observe(10.0) is False

    def test_threshold_near_99th_percentile(self, rng):
        profile = NormalProfile(MDConfig(alpha=1.0), init_samples=300)
        values = rng.normal(50.0, 5.0, 300)
        for v in values:
            profile.observe(float(v))
        assert profile.threshold == pytest.approx(np.percentile(values, 99), abs=3.0)

    def test_profile_adapts_to_slow_drift(self, rng):
        config = MDConfig(batch_size=20, tau=0.5)
        profile = NormalProfile(config, init_samples=100)
        for _ in range(100):
            profile.observe(float(rng.normal(10.0, 1.0)))
        old_threshold = profile.threshold
        # Feed a higher but not anomalous-dominated level repeatedly.
        for _ in range(300):
            profile.observe(float(rng.normal(12.0, 1.0)))
        assert profile.threshold > old_threshold

    def test_anomalous_batches_do_not_poison_profile(self, rng):
        config = MDConfig(batch_size=20, tau=0.25)
        profile = NormalProfile(config, init_samples=100)
        for _ in range(100):
            profile.observe(float(rng.normal(10.0, 1.0)))
        threshold_before = profile.threshold
        for _ in range(100):
            profile.observe(float(rng.normal(200.0, 1.0)))  # wildly anomalous
        assert profile.threshold == pytest.approx(threshold_before, rel=0.2)

    def test_invalid_init_samples(self):
        with pytest.raises(ValueError):
            NormalProfile(MDConfig(), init_samples=1)


class TestOfflineMD:
    def test_rolling_std_sum_detects_burst(self):
        trace = synthetic_trace()
        times, sums = rolling_std_sum(trace, window_samples=8)
        burst_mask = (times >= 102.0) & (times <= 110.0)
        assert sums[burst_mask].mean() > sums[~burst_mask].mean() * 1.5

    def test_rolling_std_sum_too_short_trace_raises(self):
        trace = synthetic_trace(duration_s=1.0)
        with pytest.raises(ValueError):
            rolling_std_sum(trace, window_samples=1000)

    def test_detect_offline_finds_burst_window(self):
        trace = synthetic_trace()
        result = detect_offline(trace, MDConfig(profile_init_s=40.0))
        long_windows = result.windows_at_least(4.0)
        assert any(w.t_start <= 104.0 and w.t_end >= 106.0 for w in long_windows)

    def test_detect_offline_no_movement_no_long_windows(self):
        trace = synthetic_trace(burst_sigma=0.0)
        result = detect_offline(trace, MDConfig(profile_init_s=40.0))
        assert len(result.windows_at_least(4.5)) == 0

    def test_threshold_trace_has_same_length_as_series(self):
        trace = synthetic_trace()
        result = detect_offline(trace, MDConfig(profile_init_s=40.0))
        assert result.threshold_trace.shape == result.std_sums.shape


class TestOnlineMovementDetector:
    def test_online_matches_burst(self):
        trace = synthetic_trace()
        detector = MovementDetector(
            trace.stream_ids, MDConfig(profile_init_s=40.0), sample_rate_hz=4.0
        )
        for i, t in enumerate(trace.times):
            sample = {sid: trace.streams[sid][i] for sid in trace.stream_ids}
            detector.process(float(t), sample)
        detector.finalize(float(trace.times[-1]))
        windows = [w for w in detector.completed_windows if w.duration >= 4.0]
        assert any(w.t_start <= 104.0 and w.t_end >= 106.0 for w in windows)

    def test_current_window_duration_zero_when_quiet(self):
        detector = MovementDetector(["a-b"], MDConfig(profile_init_s=10.0))
        assert detector.current_window_duration(0.0) == 0.0

    def test_out_of_order_samples_rejected(self):
        detector = MovementDetector(["a-b"], MDConfig())
        detector.process(1.0, {"a-b": -50.0})
        with pytest.raises(ValueError):
            detector.process(0.5, {"a-b": -50.0})

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            MovementDetector(["a-b"], sample_rate_hz=0.0)


class TestRadioEnvironment:
    def _dataset(self, re_module, rng, n_per_class=8):
        dataset = re_module.empty_dataset()
        for label, shift in (("w0", 0.0), ("w1", 5.0), ("w2", 10.0)):
            for k in range(n_per_class):
                features = rng.normal(shift, 0.3, re_module.extractor.n_features)
                dataset.add(
                    LabeledSample(
                        features=features, label=label, time=float(k), day_index=0
                    )
                )
        return dataset

    def test_feature_names_cover_streams(self):
        re_module = RadioEnvironment(stream_ids=["a-b", "b-a"])
        assert len(re_module.feature_names) == 6

    def test_fit_and_classify_synthetic(self, rng):
        re_module = RadioEnvironment(stream_ids=["a-b"], config=REConfig())
        dataset = self._dataset(re_module, rng)
        re_module.fit(dataset)
        assert re_module.is_trained
        sample = rng.normal(5.0, 0.3, re_module.extractor.n_features)
        assert re_module.classify(sample) == "w1"

    def test_classify_before_fit_raises(self):
        re_module = RadioEnvironment(stream_ids=["a-b"])
        with pytest.raises(RENotTrainedError):
            re_module.classify(np.zeros(3))

    def test_fit_empty_dataset_raises(self):
        re_module = RadioEnvironment(stream_ids=["a-b"])
        with pytest.raises(ValueError):
            re_module.fit(re_module.empty_dataset())

    def test_extract_sample_from_trace(self):
        trace = synthetic_trace()
        re_module = RadioEnvironment(stream_ids=list(trace.stream_ids))
        window = VariationWindow(100.0, 108.0)
        features = re_module.extract_sample(trace, window, t_delta_s=4.5)
        assert features.shape == (re_module.extractor.n_features,)
        assert np.all(np.isfinite(features))

    def test_extract_sample_missing_stream_raises(self):
        trace = synthetic_trace(streams=("a-b",))
        re_module = RadioEnvironment(stream_ids=["a-b", "b-a"])
        with pytest.raises(KeyError):
            re_module.extract_sample(trace, VariationWindow(100.0, 108.0), 4.5)

    def test_extract_sample_invalid_t_delta(self):
        trace = synthetic_trace()
        re_module = RadioEnvironment(stream_ids=list(trace.stream_ids))
        with pytest.raises(ValueError):
            re_module.extract_sample(trace, VariationWindow(100.0, 108.0), 0.0)

    def test_clone_untrained_preserves_layout(self):
        re_module = RadioEnvironment(stream_ids=["a-b", "b-a"])
        clone = re_module.clone_untrained()
        assert clone.feature_names == re_module.feature_names
        assert not clone.is_trained

    def test_classify_window_end_to_end(self, rng):
        trace = synthetic_trace()
        re_module = RadioEnvironment(stream_ids=list(trace.stream_ids))
        window = VariationWindow(100.0, 108.0)
        sample = re_module.make_sample(trace, window, 4.5, label="w1")
        quiet_window = VariationWindow(20.0, 28.0)
        quiet = re_module.make_sample(trace, quiet_window, 4.5, label="w0")
        dataset = re_module.empty_dataset()
        # duplicate with jitter to get a trainable set
        for base in (sample, quiet):
            for k in range(6):
                dataset.add(
                    LabeledSample(
                        features=base.features + rng.normal(0, 0.01, base.features.shape),
                        label=base.label,
                        time=float(k),
                    )
                )
        re_module.fit(dataset)
        assert re_module.classify_window(trace, window, 4.5) == "w1"
        assert re_module.classify_window(trace, quiet_window, 4.5) == "w0"

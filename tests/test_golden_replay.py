"""Golden end-to-end replay test.

Pins the complete system behaviour — campaign collection, MD-driven sample
labelling, RE training and the online replay with Rules 1/2 — against a
fixed seed.  Any accidental drift anywhere in the pipeline (engine,
seeding scheme, channel model, detector, controller) changes these counts
and fails loudly.  If a change is *intentional* (e.g. a new seeding
scheme), re-derive the golden values and update them in the same commit.
"""

import numpy as np
import pytest

from repro import FadewichConfig, quick_campaign
from repro.core import build_sample_dataset, evaluate_md
from repro.core.system import FadewichSystem
from repro.radio.trace import RssiTrace
from repro.simulation.collector import CampaignRecording, DayRecording

GOLDEN_SEED = 23
GOLDEN_DAY_S = 1500.0


@pytest.fixture(scope="module")
def golden_setup():
    config = FadewichConfig()
    recording = quick_campaign(seed=GOLDEN_SEED, n_days=2, day_duration_s=GOLDEN_DAY_S)
    train_rec = CampaignRecording(days=[recording.days[0]], layout=recording.layout)
    evaluation = evaluate_md(train_rec, config, recording.layout.sensor_ids)
    re_module, dataset = build_sample_dataset(evaluation, config, random_state=0)
    return config, recording, re_module, dataset


class TestGoldenReplay:
    def test_ground_truth_is_pinned(self, golden_setup):
        _, recording, _, dataset = golden_setup
        day = recording.days[1]
        assert recording.days[0].events.label_counts() == {
            "w1": 3,
            "w0": 4,
            "w2": 1,
        }
        assert len(day.events.departures()) == 4
        assert len(day.events.entries()) == 4
        assert len(day.events) == 9
        assert dataset.label_counts() == {"w1": 3, "w0": 2, "w2": 1}

    def test_replay_counts_are_pinned(self, golden_setup):
        config, recording, re_module, dataset = golden_setup
        system = FadewichSystem(
            stream_ids=re_module.stream_ids,
            workstation_ids=recording.layout.workstation_ids,
            config=config,
        ).train(dataset)
        report = system.replay_day(recording.days[1])

        assert report.deauthentications == 2
        assert report.alerts == 9
        assert report.screensavers == 6
        assert len(report.actions) == 11
        assert {w: s.name for w, s in report.final_states.items()} == {
            "w1": "AUTHENTICATED",
            "w2": "AUTHENTICATED",
            "w3": "AUTHENTICATED",
        }
        first = report.actions[0]
        assert first.rule == 1
        assert first.action == "deauthenticate"
        assert first.workstation_id == "w1"
        assert first.time == pytest.approx(260.0)

    def test_replay_is_deterministic(self, golden_setup):
        config, recording, re_module, dataset = golden_setup
        reports = []
        for _ in range(2):
            system = FadewichSystem(
                stream_ids=re_module.stream_ids,
                workstation_ids=recording.layout.workstation_ids,
                config=config,
            ).train(dataset)
            reports.append(system.replay_day(recording.days[1]))
        a, b = reports
        assert [x.time for x in a.actions] == [x.time for x in b.actions]
        assert a.deauthentications == b.deauthentications
        assert a.screensavers == b.screensavers


class TestReplayGuards:
    def _system(self, stream_ids=("d1-d2",)):
        return FadewichSystem(
            stream_ids=list(stream_ids), workstation_ids=["w1"]
        )

    def _day(self, trace):
        return DayRecording(
            day_index=0,
            duration_s=0.0,
            trace=trace,
            events=None,
            activity={},
        )

    def test_replay_of_streamless_trace_raises(self):
        trace = RssiTrace(times=np.arange(4.0), streams={})
        with pytest.raises(ValueError, match="no RSSI streams"):
            self._system().replay_day(self._day(trace))

    def test_replay_of_empty_trace_raises(self):
        trace = RssiTrace(
            times=np.empty(0), streams={"d1-d2": np.empty(0)}
        )
        with pytest.raises(ValueError, match="no samples"):
            self._system().replay_day(self._day(trace))

"""Tests for geometry primitives and the office layout."""

import math

import pytest

from repro.radio.geometry import (
    Point,
    Segment,
    distance,
    excess_path_length,
    interpolate,
    path_length,
    point_segment_distance,
)
from repro.radio.office import OfficeLayout, Sensor, Workstation, paper_office


class TestGeometry:
    def test_point_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_function_matches_method(self):
        a, b = Point(1, 1), Point(4, 5)
        assert distance(a, b) == a.distance_to(b)

    def test_point_translation(self):
        p = Point(1.0, 2.0).translated(0.5, -0.5)
        assert (p.x, p.y) == (1.5, 1.5)

    def test_point_unpacking(self):
        x, y = Point(3.0, 7.0)
        assert (x, y) == (3.0, 7.0)

    def test_segment_length_and_midpoint(self):
        seg = Segment(Point(0, 0), Point(2, 0))
        assert seg.length == pytest.approx(2.0)
        assert seg.midpoint() == Point(1.0, 0.0)

    def test_point_segment_distance_perpendicular(self):
        assert point_segment_distance(Point(1, 1), Point(0, 0), Point(2, 0)) == pytest.approx(1.0)

    def test_point_segment_distance_beyond_endpoint(self):
        assert point_segment_distance(Point(5, 0), Point(0, 0), Point(2, 0)) == pytest.approx(3.0)

    def test_point_segment_distance_degenerate_segment(self):
        assert point_segment_distance(Point(1, 1), Point(0, 0), Point(0, 0)) == pytest.approx(math.sqrt(2))

    def test_excess_path_length_on_the_line_is_zero(self):
        assert excess_path_length(Point(1, 0), Point(0, 0), Point(2, 0)) == pytest.approx(0.0)

    def test_excess_path_length_grows_off_the_line(self):
        near = excess_path_length(Point(1, 0.1), Point(0, 0), Point(2, 0))
        far = excess_path_length(Point(1, 1.0), Point(0, 0), Point(2, 0))
        assert 0 < near < far

    def test_path_length_of_polyline(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1)]
        assert path_length(pts) == pytest.approx(2.0)

    def test_path_length_single_point_is_zero(self):
        assert path_length([Point(0, 0)]) == 0.0

    def test_interpolate_endpoints_and_midpoint(self):
        a, b = Point(0, 0), Point(2, 2)
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b
        assert interpolate(a, b, 0.5) == Point(1, 1)

    def test_interpolate_clamps_fraction(self):
        a, b = Point(0, 0), Point(1, 0)
        assert interpolate(a, b, -1.0) == a
        assert interpolate(a, b, 2.0) == b


class TestOfficeLayout:
    def test_paper_office_has_nine_sensors_three_workstations(self, layout):
        assert len(layout.sensors) == 9
        assert len(layout.workstations) == 3
        assert layout.sensor_ids == [f"d{i}" for i in range(1, 10)]
        assert layout.workstation_ids == ["w1", "w2", "w3"]

    def test_paper_office_dimensions(self, layout):
        assert layout.width == pytest.approx(6.0)
        assert layout.height == pytest.approx(3.0)

    def test_everything_inside_the_office(self, layout):
        for sensor in layout.sensors:
            assert layout.contains(sensor.position)
        for ws in layout.workstations:
            assert layout.contains(ws.position)
            assert layout.contains(ws.seat_position)
        assert layout.contains(layout.door)

    def test_sensor_lookup(self, layout):
        assert layout.sensor("d5").sensor_id == "d5"
        with pytest.raises(KeyError):
            layout.sensor("d42")

    def test_workstation_lookup(self, layout):
        assert layout.workstation("w2").workstation_id == "w2"
        with pytest.raises(KeyError):
            layout.workstation("w9")

    def test_with_sensors_subsets(self, layout):
        sub = layout.with_sensors(["d1", "d2", "d3"])
        assert sub.sensor_ids == ["d1", "d2", "d3"]
        assert sub.workstation_ids == layout.workstation_ids

    def test_duplicate_sensor_ids_rejected(self):
        with pytest.raises(ValueError):
            OfficeLayout(
                width=4,
                height=3,
                sensors=(
                    Sensor("d1", Point(1, 1)),
                    Sensor("d1", Point(2, 2)),
                ),
                workstations=(Workstation("w1", Point(1, 2)),),
                door=Point(0.1, 0.1),
            )

    def test_sensor_outside_office_rejected(self):
        with pytest.raises(ValueError):
            OfficeLayout(
                width=4,
                height=3,
                sensors=(Sensor("d1", Point(10, 1)),),
                workstations=(Workstation("w1", Point(1, 2)),),
                door=Point(0.1, 0.1),
            )

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            OfficeLayout(
                width=0,
                height=3,
                sensors=(Sensor("d1", Point(0, 0)),),
                workstations=(),
                door=Point(0, 0),
            )

    def test_workstation_seat_defaults_to_desk_position(self):
        ws = Workstation("w1", Point(1, 1))
        assert ws.seat_position == Point(1, 1)

    def test_workstations_to_door_distances_are_plausible(self, layout):
        # The paper reports an average seat-to-door walk of roughly 4 m.
        distances = [
            w.seat_position.distance_to(layout.door) for w in layout.workstations
        ]
        assert all(1.5 < d < 6.5 for d in distances)
        assert sum(distances) / len(distances) > 2.5

"""Crash-recovery tests for the distributed sweep queue.

Locks the lease protocol and the cooperative-fill contracts of
:mod:`repro.analysis.sweep_queue`:

* claims are atomic and exclusive — of any number of contenders racing
  one simulation key, exactly one wins; a live foreign lease blocks,
  an expired one (stale heartbeat, e.g. a SIGKILL'd worker) is
  reclaimable by anyone, and completed records supersede claims;
* cooperative fills are bit-identical to solo runs: one worker, two
  threads, or two processes over the same grid all produce a
  ``to_dict()``-identical :class:`SweepReport`, and a warm store needs
  zero claims and zero day tasks;
* killing a worker mid-grid loses nothing: the restarted fleet reclaims
  the orphan lease after its TTL, completes the grid, and the store holds
  exactly one record per scenario;
* :func:`run_prioritized` runs named grids in priority order with
  per-grid stores/logs and one merged JSON report.
"""

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.analysis.campaign import CampaignScale
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.analysis.sweep_queue import (
    GridJob,
    LeaseInfo,
    LeaseManager,
    SweepWorker,
    _worker_entry,
    run_prioritized,
    sim_lease_name,
)
from repro.analysis.sweep_store import SweepStore
from repro.core.config import FadewichConfig
from repro.radio.office import paper_office


def fast_scale(name="queue-tiny"):
    return CampaignScale.compact().derive(
        name, n_days=1, day_duration_s=600.0
    )


def small_grid():
    """4 scenarios over 2 simulation keys (2 replicates x 2 configs)."""
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[fast_scale()],
        configs={
            "default": FadewichConfig(),
            "t6": FadewichConfig().derive(t_delta_s=6.0),
        },
        n_replicates=2,
        sensor_counts=(3,),
    )


def wide_grid():
    """24 scenarios over 8 simulation keys (8 replicates x 3 configs)."""
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[fast_scale()],
        configs={
            "default": FadewichConfig(),
            "t6": FadewichConfig().derive(t_delta_s=6.0),
            "a2": FadewichConfig().derive(md={"alpha": 2.0}),
        },
        n_replicates=8,
        sensor_counts=(3,),
    )


def make_runner(grid):
    return ScenarioSweepRunner(
        grid, seed=11, mode="serial", re_sensor_counts=()
    )


def write_stale_lease(store, name, age_s=3600.0, ttl_s=1.0):
    """Plant the lease a SIGKILL'd worker would leave: old heartbeat."""
    payload = {
        "format": 1,
        "name": name,
        "owner": "dead-worker",
        "pid": 999999,
        "heartbeat": time.time() - age_s,
        "ttl_s": ttl_s,
    }
    with open(store.lease_path(name), "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


class TestLeaseManager:
    def test_acquire_release_roundtrip(self, tmp_path):
        leases = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        assert leases.try_acquire("key")
        assert leases.held() == ["key"]
        info = leases.read("key")
        assert isinstance(info, LeaseInfo)
        assert info.owner == "a"
        assert info.pid == os.getpid()
        assert not info.expired()
        # Re-acquiring a held lease is an idempotent yes.
        assert leases.try_acquire("key")
        leases.release("key")
        assert leases.held() == []
        assert leases.read("key") is None

    def test_live_foreign_lease_blocks(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        b = LeaseManager(tmp_path, owner="b", ttl_s=30.0)
        assert a.try_acquire("key")
        assert not b.try_acquire("key")
        # The loser must not have disturbed the winner's lease.
        assert a.read("key").owner == "a"
        # Releasing someone else's lease is a no-op on disk.
        b.release("key")
        assert a.read("key").owner == "a"

    def test_stale_lease_reclaimed_after_expiry(self, tmp_path):
        store = SweepStore(tmp_path)
        write_stale_lease(store, "key", age_s=3600.0, ttl_s=1.0)
        b = LeaseManager(store, owner="b", ttl_s=30.0)
        assert b.read("key").expired()
        assert b.try_acquire("key")
        assert b.read("key").owner == "b"

    def test_fresh_lease_is_not_reclaimable(self, tmp_path):
        store = SweepStore(tmp_path)
        write_stale_lease(store, "key", age_s=0.0, ttl_s=3600.0)
        b = LeaseManager(store, owner="b", ttl_s=30.0)
        assert not b.try_acquire("key")

    def test_unreadable_lease_ages_by_mtime(self, tmp_path):
        store = SweepStore(tmp_path)
        path = store.lease_path("key")
        path.write_text("not json at all\n", encoding="utf-8")
        b = LeaseManager(store, owner="b", ttl_s=5.0)
        # Fresh junk reads as a live unknown-owner lease: do not break what
        # a competitor may have just written.
        info = b.read("key")
        assert info.owner == "<unreadable>"
        assert not b.try_acquire("key")
        # Old junk is reclaimable like any expired lease.
        old = time.time() - 3600.0
        os.utime(path, (old, old))
        assert b.try_acquire("key")
        assert b.read("key").owner == "b"

    def test_contention_exactly_one_winner(self, tmp_path):
        n_contenders, rounds = 8, 5
        managers = [
            LeaseManager(tmp_path, owner=f"w{i}", ttl_s=30.0)
            for i in range(n_contenders)
        ]
        for round_idx in range(rounds):
            name = f"key-{round_idx}"
            barrier = threading.Barrier(n_contenders)
            wins = []

            def contend(leases, wins=wins, name=name, barrier=barrier):
                barrier.wait()
                if leases.try_acquire(name):
                    wins.append(leases.owner)

            threads = [
                threading.Thread(target=contend, args=(m,)) for m in managers
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(wins) == 1
            assert SweepStore(tmp_path).lease_path(name).exists()

    def test_renew_keeps_lease_live_and_detects_theft(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        assert a.try_acquire("key")
        before = a.read("key").heartbeat
        time.sleep(0.02)
        assert a.renew("key")
        assert a.read("key").heartbeat > before
        # A competitor reclaims the key behind our back (as after expiry):
        # renew must fail and forget rather than steal it back.
        store = SweepStore(tmp_path)
        os.unlink(store.lease_path("key"))
        b = LeaseManager(store, owner="b", ttl_s=30.0)
        assert b.try_acquire("key")
        assert not a.renew("key")
        assert a.held() == []
        assert store.lease_path("key").exists()
        assert b.read("key").owner == "b"

    def test_ttl_validation(self, tmp_path):
        with pytest.raises(ValueError, match="ttl_s must be positive"):
            LeaseManager(tmp_path, ttl_s=0.0)

    def test_lease_files_invisible_to_store_names(self, tmp_path):
        store = SweepStore(tmp_path)
        leases = LeaseManager(store, owner="a")
        assert leases.try_acquire("some/sim/key/r0")
        assert store.names() == []

    def test_sim_lease_name_shape(self):
        assert (
            sim_lease_name(("paper", "tiny", "default", 3))
            == "paper/tiny/default/r3"
        )


class TestCooperativeRun:
    @pytest.fixture(scope="class")
    def serial_dict(self):
        return make_runner(small_grid()).run().to_dict()

    def test_claim_filter_requires_store(self):
        with pytest.raises(ValueError, match="claim_filter"):
            make_runner(small_grid()).run(claim_filter=lambda key: True)

    def test_claim_nothing_is_a_complete_noop(self, tmp_path, serial_dict):
        runner = make_runner(small_grid())
        report = runner.run(store=SweepStore(tmp_path), claim_filter=lambda key: False)
        stats = runner.last_run_stats
        assert stats.n_analyzed == 0 and stats.n_day_tasks == 0
        assert stats.n_unclaimed == len(serial_dict["scenarios"])
        assert not stats.complete
        assert report.n_scenarios == 0

    def test_solo_worker_matches_serial(self, tmp_path, serial_dict):
        worker = SweepWorker(
            make_runner(small_grid()), tmp_path, timeout_s=120.0
        )
        report = worker.run()
        assert report.to_dict() == serial_dict
        stats = worker.last_worker_stats
        assert stats.claims_won == 2  # one per simulation key
        assert stats.scenarios_analyzed == len(serial_dict["scenarios"])
        # All leases released, one record per scenario.
        store = worker.store
        assert len(store.names()) == len(serial_dict["scenarios"])
        assert not list(store.path.glob("*.lease"))

    def test_warm_store_needs_zero_claims(self, tmp_path, serial_dict):
        make_runner(small_grid()).run(store=SweepStore(tmp_path))
        worker = SweepWorker(
            make_runner(small_grid()), tmp_path, timeout_s=120.0
        )
        report = worker.run()
        assert report.to_dict() == serial_dict
        stats = worker.last_worker_stats
        assert stats.passes == 1
        assert stats.claims_won == 0
        assert stats.scenarios_analyzed == 0

    def test_completed_records_supersede_foreign_claims(
        self, tmp_path, serial_dict
    ):
        # A competitor holds every key it finished but crashed before
        # releasing: the records exist, the leases are live.  A fresh
        # worker must serve the grid from the records without waiting for
        # (or breaking) the leases.
        store = SweepStore(tmp_path)
        runner = make_runner(small_grid())
        runner.run(store=store)
        foreign = LeaseManager(store, owner="competitor", ttl_s=3600.0)
        for sim_key in runner._sim_indices:
            assert foreign.try_acquire(sim_lease_name(sim_key))
        worker = SweepWorker(
            make_runner(small_grid()), store, timeout_s=10.0
        )
        report = worker.run()
        assert report.to_dict() == serial_dict
        assert worker.last_worker_stats.claims_won == 0
        # The competitor's leases were honoured, not broken.
        assert foreign.read(
            sim_lease_name(next(iter(runner._sim_indices)))
        ).owner == "competitor"

    def test_two_thread_cooperative_fill_matches_serial(
        self, tmp_path, serial_dict
    ):
        workers = [
            SweepWorker(
                make_runner(small_grid()),
                tmp_path,
                owner=f"thread-{i}",
                poll_interval_s=0.05,
                timeout_s=120.0,
            )
            for i in range(2)
        ]
        reports = [None, None]

        def run(i):
            reports[i] = workers[i].run()

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Both exit with the complete grid, bit-identical to serial.
        assert reports[0].to_dict() == serial_dict
        assert reports[1].to_dict() == serial_dict
        # Claims partitioned the keys: every key won exactly once.
        total_wins = sum(w.last_worker_stats.claims_won for w in workers)
        assert total_wins == 2
        store = SweepStore(tmp_path)
        assert len(store.names()) == len(serial_dict["scenarios"])
        assert not list(store.path.glob("*.lease"))

    def test_worker_timeout_on_permanently_held_key(self, tmp_path):
        store = SweepStore(tmp_path)
        runner = make_runner(small_grid())
        hog = LeaseManager(store, owner="hog", ttl_s=3600.0)
        assert hog.try_acquire(sim_lease_name(next(iter(runner._sim_indices))))
        worker = SweepWorker(
            runner, store, poll_interval_s=0.05, timeout_s=1.5
        )
        with pytest.raises(TimeoutError, match="unclaimed"):
            worker.run()
        # Our own leases were cleaned up on the way out.
        assert [p.name for p in store.path.glob("*.lease")] == [
            store.lease_path(
                sim_lease_name(next(iter(runner._sim_indices)))
            ).name
        ]


class TestCrashRecovery:
    def test_stale_lease_from_killed_worker_is_reclaimed(self, tmp_path):
        # The on-disk state a worker SIGKILL'd mid-claim leaves behind: a
        # cold key whose lease has a dead owner and an expired heartbeat.
        store = SweepStore(tmp_path)
        runner = make_runner(small_grid())
        for sim_key in runner._sim_indices:
            write_stale_lease(
                store, sim_lease_name(sim_key), age_s=3600.0, ttl_s=2.0
            )
        serial_dict = make_runner(small_grid()).run().to_dict()
        worker = SweepWorker(
            make_runner(small_grid()), store, timeout_s=120.0
        )
        report = worker.run()
        assert report.to_dict() == serial_dict
        assert worker.last_worker_stats.claims_won == 2
        assert not list(store.path.glob("*.lease"))

    def test_sigkill_mid_grid_then_restarted_fleet_completes(self, tmp_path):
        serial_dict = make_runner(wide_grid()).run().to_dict()
        store_dir = tmp_path / "store"
        store = SweepStore(store_dir)
        job = GridJob(name="wide", grid=wide_grid(), seed=11,
                      re_sensor_counts=())
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(
            target=_worker_entry,
            args=(job, str(store.path), "victim", 2.0, 0.05, 1, 120.0, None),
        )
        victim.start()
        # Let it land at least one record, then kill it without cleanup.
        deadline = time.monotonic() + 60.0
        while not store.names():
            assert victim.is_alive(), "victim finished before the kill"
            assert time.monotonic() < deadline
            time.sleep(0.02)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        assert victim.exitcode == -signal.SIGKILL
        n_after_kill = len(store.names())
        assert n_after_kill < len(serial_dict["scenarios"])
        # Restarted fleet: the orphan lease (if the victim died mid-claim)
        # expires within its 2 s TTL and the grid completes with no record
        # lost and none duplicated.
        worker = SweepWorker(
            GridJob(name="wide", grid=wide_grid(), seed=11,
                    re_sensor_counts=()).make_runner(),
            store,
            poll_interval_s=0.05,
            lease_ttl_s=2.0,
            timeout_s=300.0,
        )
        report = worker.run()
        assert report.to_dict() == serial_dict
        assert len(store.names()) == len(serial_dict["scenarios"])
        assert not list(store.path.glob("*.lease"))

    def test_two_process_run_prioritized_matches_serial(self, tmp_path):
        serial_dict = make_runner(wide_grid()).run().to_dict()
        result = run_prioritized(
            [GridJob(name="wide", grid=wide_grid(), seed=11,
                     re_sensor_counts=())],
            tmp_path / "store",
            workers=2,
            lease_ttl_s=10.0,
            poll_interval_s=0.05,
            worker_timeout_s=300.0,
            log_dir=tmp_path / "logs",
            report_path=tmp_path / "SWEEP_report.json",
            mp_context="fork",
        )
        assert result.order == ["wide"]
        assert result.reports["wide"].to_dict() == serial_dict
        # The merged JSON on disk is exactly to_dict().
        with open(result.report_path, encoding="utf-8") as handle:
            assert json.load(handle) == result.to_dict()
        log_text = result.log_paths["wide"].read_text(encoding="utf-8")
        assert "[driver] grid 'wide'" in log_text
        assert "worker exit codes [0, 0]" in log_text


class TestRunPrioritized:
    def test_priority_order_and_per_grid_stores(self, tmp_path):
        grids = {"first": small_grid(), "second": small_grid()}
        result = run_prioritized(
            grids,
            tmp_path / "store",
            workers=1,
            log_dir=tmp_path / "logs",
            report_path=tmp_path / "SWEEP_report.json",
        )
        assert result.order == ["first", "second"]
        # Same grid, same default seed: the two reports agree, from two
        # disjoint store subdirectories.
        assert (
            result.reports["first"].to_dict()
            == result.reports["second"].to_dict()
        )
        for name in grids:
            sub = [
                p for p in (tmp_path / "store").iterdir()
                if p.is_dir() and p.name.startswith(name)
            ]
            assert len(sub) == 1
            assert list(sub[0].glob("*.json"))
            assert (tmp_path / "logs" / f"{sub[0].name}.log").exists()
        merged = json.loads(
            (tmp_path / "SWEEP_report.json").read_text(encoding="utf-8")
        )
        assert merged["order"] == ["first", "second"]
        assert set(merged["grids"]) == {"first", "second"}

    def test_second_invocation_is_warm(self, tmp_path, counting_run_tasks):
        store = tmp_path / "store"
        first = run_prioritized(
            {"g": small_grid()}, store, workers=1, report_path=None
        )
        n_cold_tasks = len(counting_run_tasks)
        assert n_cold_tasks > 0
        second = run_prioritized(
            {"g": small_grid()}, store, workers=1, report_path=None
        )
        assert len(counting_run_tasks) == n_cold_tasks  # zero new day tasks
        assert second.reports["g"].to_dict() == first.reports["g"].to_dict()

    def test_duplicate_names_rejected(self, tmp_path):
        jobs = [
            GridJob(name="g", grid=small_grid()),
            GridJob(name="g", grid=small_grid()),
        ]
        with pytest.raises(ValueError, match="unique"):
            run_prioritized(jobs, tmp_path, report_path=None)

    def test_empty_batch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one grid"):
            run_prioritized({}, tmp_path, report_path=None)

    def test_worker_count_validated(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            run_prioritized(
                {"g": small_grid()}, tmp_path, workers=0, report_path=None
            )

    def test_claim_chunk_validated(self, tmp_path):
        with pytest.raises(ValueError, match="claim_chunk"):
            SweepWorker(make_runner(small_grid()), tmp_path, claim_chunk=0)


@pytest.fixture
def counting_run_tasks(monkeypatch):
    """Counts every DayTask executed through CampaignRunner.run_tasks."""
    from repro.simulation.runner import CampaignRunner

    executed = []
    original = CampaignRunner.run_tasks

    def counting(self, tasks):
        tasks = list(tasks)
        executed.extend(tasks)
        return original(self, tasks)

    monkeypatch.setattr(CampaignRunner, "run_tasks", counting)
    return executed

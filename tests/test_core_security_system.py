"""Tests for the controller, security model, adversaries, baseline, usability
and the assembled system / evaluation pipeline."""

import numpy as np
import pytest

from repro.core.adversary import COWORKER, INSIDER, Adversary, attack_opportunities
from repro.core.baseline import TimeoutBaseline
from repro.core.config import FadewichConfig
from repro.core.controller import ControllerState, FadewichController
from repro.core.evaluation import (
    build_sample_dataset,
    cross_validated_predictions,
    departure_outcomes,
    evaluate_md,
    sensor_subset,
    streams_for_sensors,
)
from repro.core.kma import KeyboardMouseActivity
from repro.core.security import (
    DeauthCase,
    case_counts,
    classify_outcome,
    deauthentication_curve,
    median_deauthentication_time,
    vulnerable_time_seconds,
)
from repro.core.usability import UsabilityDayInput, UsabilitySimulator
from repro.core.windows import VariationWindow
from repro.mobility.events import EventKind, GroundTruthEvent
from repro.workstation.idle import IdleTracker
from repro.workstation.session import SessionState, WorkstationSession


def departure(t=100.0, exit_time=106.0, workstation="w1"):
    return GroundTruthEvent(
        EventKind.DEPARTURE, t, "u1", workstation, exit_time=exit_time
    )


class TestSecurityModel:
    def test_case_a_correct_classification(self, config):
        window = VariationWindow(100.5, 108.0)
        outcome = classify_outcome(departure(), window, "w1", config)
        assert outcome.case is DeauthCase.CORRECT
        assert outcome.elapsed_s == pytest.approx(0.5 + config.t_delta_s)

    def test_case_b_misclassification(self, config):
        window = VariationWindow(100.5, 108.0)
        outcome = classify_outcome(departure(), window, "w2", config)
        assert outcome.case is DeauthCase.MISCLASSIFIED
        assert outcome.elapsed_s == pytest.approx(8.0)

    def test_case_c_missed_detection(self, config):
        outcome = classify_outcome(departure(), None, None, config)
        assert outcome.case is DeauthCase.MISSED
        assert outcome.elapsed_s == pytest.approx(config.timeout_s)

    def test_deauthentication_curve_monotone(self, config):
        outcomes = [
            classify_outcome(departure(), VariationWindow(100.0, 108.0), "w1", config),
            classify_outcome(departure(200.0, 206.0), None, None, config),
        ]
        times, percent = deauthentication_curve(outcomes, max_time_s=10.0)
        assert np.all(np.diff(percent) >= 0)
        assert percent[-1] == pytest.approx(50.0)

    def test_case_counts_and_median(self, config):
        outcomes = [
            classify_outcome(departure(), VariationWindow(100.0, 108.0), "w1", config),
            classify_outcome(departure(), VariationWindow(100.0, 108.0), "w2", config),
            classify_outcome(departure(), None, None, config),
        ]
        counts = case_counts(outcomes)
        assert counts[DeauthCase.CORRECT] == 1
        assert counts[DeauthCase.MISCLASSIFIED] == 1
        assert counts[DeauthCase.MISSED] == 1
        assert median_deauthentication_time(outcomes) == pytest.approx(8.0)

    def test_vulnerable_time_capped_by_absence(self, config):
        outcome = classify_outcome(departure(), None, None, config)
        total = vulnerable_time_seconds([outcome], absence_lookup=lambda e: 60.0)
        assert total == pytest.approx(60.0)


class TestAdversaries:
    def test_insider_slower_than_coworker(self):
        assert INSIDER.reach_delay_s > COWORKER.reach_delay_s

    def test_fast_deauth_denies_both_adversaries(self, config):
        window = VariationWindow(100.2, 108.0)
        outcome = classify_outcome(departure(), window, "w1", config)
        assert attack_opportunities([outcome], INSIDER) == []
        assert attack_opportunities([outcome], COWORKER) == []

    def test_missed_detection_gives_opportunity(self, config):
        outcome = classify_outcome(departure(), None, None, config)
        assert len(attack_opportunities([outcome], INSIDER)) == 1
        assert len(attack_opportunities([outcome], COWORKER)) == 1

    def test_case_b_exploitable_only_by_coworker(self, config):
        # Deauth at t+8; the co-worker reaches the desk at exit (t+6), the
        # insider at exit+4 (t+10).
        window = VariationWindow(100.2, 108.0)
        outcome = classify_outcome(departure(), window, "w2", config)
        assert len(attack_opportunities([outcome], COWORKER)) == 1
        assert len(attack_opportunities([outcome], INSIDER)) == 0

    def test_negative_reach_delay_rejected(self):
        with pytest.raises(ValueError):
            Adversary("bad", -1.0)


class TestTimeoutBaseline:
    def test_every_departure_is_an_opportunity(self):
        baseline = TimeoutBaseline(timeout_s=300.0)
        departures = [departure(t=100.0 * i, exit_time=100.0 * i + 6) for i in range(1, 6)]
        assert baseline.attack_opportunity_count(departures, INSIDER) == 5
        assert baseline.attack_opportunity_count(departures, COWORKER) == 5

    def test_vulnerable_time_capped_by_timeout_and_absence(self):
        baseline = TimeoutBaseline(timeout_s=300.0)
        departures = [departure(), departure(1000.0, 1006.0)]
        total = baseline.vulnerable_time_seconds(departures, [60.0, 600.0])
        assert total == pytest.approx(60.0 + 300.0)

    def test_outcomes_are_case_c(self):
        baseline = TimeoutBaseline(timeout_s=120.0)
        outcomes = baseline.outcomes([departure()])
        assert outcomes[0].case is DeauthCase.MISSED
        assert outcomes[0].elapsed_s == pytest.approx(120.0)

    def test_zero_user_cost(self):
        assert TimeoutBaseline().user_cost_seconds == 0.0

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            TimeoutBaseline(timeout_s=0.0)


class TestController:
    def _make(self, config):
        tracker = IdleTracker(["w1", "w2"], start_time=0.0)
        kma = KeyboardMouseActivity(tracker)
        sessions = {
            "w1": WorkstationSession("w1", t_id_s=config.t_id_s),
            "w2": WorkstationSession("w2", t_id_s=config.t_id_s),
        }
        controller = FadewichController(config=config, kma=kma, sessions=sessions)
        return tracker, controller, sessions

    def test_rule1_deauthenticates_idle_classified_workstation(self, config):
        tracker, controller, sessions = self._make(config)
        tracker.record_input("w2", 99.0)  # w2 active, w1 idle since 0
        state = controller.step(104.5, current_window_duration=4.5,
                                classify_current_window=lambda: "w1")
        assert state is ControllerState.NOISY
        assert sessions["w1"].state is SessionState.DEAUTHENTICATED
        assert sessions["w2"].state is not SessionState.DEAUTHENTICATED

    def test_rule1_skips_active_workstation(self, config):
        tracker, controller, sessions = self._make(config)
        tracker.record_input("w1", 104.0)  # w1 active right now
        controller.step(104.5, 4.5, lambda: "w1")
        assert sessions["w1"].state is SessionState.AUTHENTICATED

    def test_entry_label_never_deauthenticates(self, config):
        _, controller, sessions = self._make(config)
        controller.step(104.5, 4.5, lambda: "w0")
        assert all(s.state is SessionState.AUTHENTICATED for s in sessions.values())

    def test_rule2_alerts_idle_workstations_in_noisy_state(self, config):
        tracker, controller, sessions = self._make(config)
        controller.step(104.5, 4.5, lambda: "w1")       # -> NOISY
        tracker.record_input("w2", 104.6)
        controller.step(105.0, 5.0, lambda: "w1")       # rule 2 applies
        # w2 typed 0.4 s ago -> not alerted; w1 is deauthenticated already.
        assert sessions["w2"].state is SessionState.AUTHENTICATED
        controller.step(110.0, 10.0, lambda: "w1")
        assert sessions["w2"].state is SessionState.ALERT

    def test_returns_to_quiet_when_window_closes(self, config):
        _, controller, _ = self._make(config)
        controller.step(104.5, 4.5, lambda: "w0")
        assert controller.state is ControllerState.NOISY
        controller.step(120.0, 0.0, lambda: "w0")
        assert controller.state is ControllerState.QUIET

    def test_action_log_counts(self, config):
        tracker, controller, _ = self._make(config)
        controller.step(104.5, 4.5, lambda: "w1")
        assert controller.deauthentication_count() == 1
        assert len(controller.actions) >= 1


class TestUsabilitySimulator:
    def test_no_decisions_no_cost(self, config):
        day = UsabilityDayInput(
            decisions=(),
            presence={"w1": ((0.0, 1000.0),)},
            duration_s=1000.0,
        )
        result = UsabilitySimulator(config, rng=np.random.default_rng(0)).run([day], 5)
        assert result.cost_per_day_s == 0.0

    def test_misclassified_window_costs_reauth_when_present(self, config):
        window = VariationWindow(100.0, 108.0)
        day = UsabilityDayInput(
            decisions=((window, "w1"),),
            presence={"w1": ((0.0, 1000.0),)},  # w1's user is at the desk
            duration_s=1000.0,
        )
        sim = UsabilitySimulator(config, activity_prob=0.0, rng=np.random.default_rng(0))
        result = sim.run([day], n_draws=3)
        assert result.deauthentications_per_day == pytest.approx(1.0)
        assert result.cost_per_day_s >= config.reauth_cost_s

    def test_active_user_never_wrongly_deauthenticated(self, config):
        window = VariationWindow(100.0, 108.0)
        day = UsabilityDayInput(
            decisions=((window, "w1"),),
            presence={"w1": ((0.0, 1000.0),)},
            duration_s=1000.0,
        )
        sim = UsabilitySimulator(config, activity_prob=1.0, rng=np.random.default_rng(0))
        result = sim.run([day], n_draws=3)
        assert result.deauthentications_per_day == pytest.approx(0.0)

    def test_absent_user_costs_nothing(self, config):
        window = VariationWindow(100.0, 108.0)
        day = UsabilityDayInput(
            decisions=((window, "w1"),),
            presence={"w1": ()},  # user not at the desk
            duration_s=1000.0,
        )
        sim = UsabilitySimulator(config, activity_prob=0.0, rng=np.random.default_rng(0))
        result = sim.run([day], n_draws=3)
        assert result.cost_per_day_s == pytest.approx(0.0)

    def test_run_requires_days_and_draws(self, config):
        sim = UsabilitySimulator(config)
        with pytest.raises(ValueError):
            sim.run([], 10)


class TestEvaluationPipeline:
    def test_sensor_subset_and_streams(self, layout):
        ids = sensor_subset(layout.sensor_ids, 3)
        assert ids == ["d1", "d2", "d3"]
        assert len(streams_for_sensors(ids)) == 6
        with pytest.raises(ValueError):
            sensor_subset(layout.sensor_ids, 1)
        with pytest.raises(ValueError):
            sensor_subset(layout.sensor_ids, 20)

    def test_evaluate_md_on_recording(self, small_recording, config):
        evaluation = evaluate_md(
            small_recording, config, small_recording.layout.sensor_ids
        )
        counts = evaluation.counts
        assert counts.total_events > 0
        assert counts.recall > 0.5  # 9 sensors detect most movements

    def test_rematch_with_larger_t_delta_reduces_recall(self, analysis_context):
        evaluation = analysis_context.md_evaluation(9)
        loose = evaluation.rematch(2.0, analysis_context.config.true_window_slack_s)
        strict = evaluation.rematch(8.0, analysis_context.config.true_window_slack_s)
        assert strict.counts.recall <= loose.counts.recall

    def test_dataset_labels_come_from_ground_truth(self, analysis_context):
        _, dataset = analysis_context.sample_dataset(9)
        valid_labels = {"w0", "w1", "w2", "w3"}
        assert set(dataset.labels) <= valid_labels
        assert len(dataset) > 0

    def test_cross_validated_predictions_cover_dataset(self, analysis_context):
        re_module, dataset = analysis_context.sample_dataset(9)
        predictions = analysis_context.re_predictions(9)
        assert set(predictions.keys()) == set(range(len(dataset)))
        assert set(predictions.values()) <= {"w0", "w1", "w2", "w3"}

    def test_departure_outcomes_cover_all_departures(self, analysis_context):
        outcomes = analysis_context.outcomes(9)
        n_departures = sum(
            len(day.events.departures()) for day in analysis_context.recording.days
        )
        assert len(outcomes) == n_departures

    def test_more_sensors_do_not_hurt_recall(self, analysis_context):
        few = analysis_context.md_evaluation(3).counts.recall
        many = analysis_context.md_evaluation(9).counts.recall
        assert many >= few - 0.1

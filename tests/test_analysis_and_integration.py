"""Tests for the analysis harness and end-to-end integration of the system."""

import numpy as np
import pytest

from repro.analysis import (
    compute_attack_opportunities,
    compute_deauth_curves,
    compute_event_table,
    compute_fmeasure_curves,
    compute_learning_curves,
    compute_md_table,
    compute_rmi_ranking,
    compute_std_profile,
    compute_stream_importance,
    compute_tradeoff,
    compute_usability_table,
    compute_variance_correlations,
    render_attack_opportunities,
    render_deauth_curves,
    render_event_table,
    render_fmeasure_curves,
    render_learning_curves,
    render_md_table,
    render_rmi_table,
    render_std_profile,
    render_stream_importance,
    render_tradeoff,
    render_usability_table,
    render_variance_correlations,
)
from repro.analysis.campaign import CampaignScale, collect_campaign
from repro.core.system import FadewichSystem
from repro.core.controller import ControllerState


class TestCampaignScales:
    def test_compact_scale_parameters(self):
        scale = CampaignScale.compact()
        assert scale.n_days == 5
        assert scale.day_duration_s < 3600.0

    def test_paper_scale_parameters(self):
        scale = CampaignScale.paper()
        assert scale.day_duration_s == pytest.approx(8 * 3600.0)

    def test_collect_campaign_is_deterministic(self):
        a = collect_campaign(seed=9, scale=CampaignScale(
            name="tiny", n_days=1, day_duration_s=400.0,
            departures_per_hour=6.0, mean_absence_s=60.0, min_absence_s=30.0,
            internal_moves_per_hour=0.0))
        b = collect_campaign(seed=9, scale=CampaignScale(
            name="tiny", n_days=1, day_duration_s=400.0,
            departures_per_hour=6.0, mean_absence_s=60.0, min_absence_s=30.0,
            internal_moves_per_hour=0.0))
        assert a.label_counts() == b.label_counts()


class TestEventTable:
    def test_counts_and_balance(self, small_recording):
        table = compute_event_table(small_recording)
        assert table.total == small_recording.total_labelled_events()
        assert 0.0 <= table.departure_balance() <= 1.0
        text = render_event_table(table)
        assert "Table II" in text


class TestMDAnalyses:
    def test_md_table_rows_and_rendering(self, analysis_context):
        rows = compute_md_table(analysis_context, sensor_counts=[3, 9])
        assert [r.n_sensors for r in rows] == [3, 9]
        # More sensors must not lose detections.
        assert rows[1].counts.tp >= rows[0].counts.tp
        assert "Table III" in render_md_table(rows)

    def test_fmeasure_curves_shape(self, analysis_context):
        curves = compute_fmeasure_curves(
            analysis_context, t_deltas=[2.0, 4.5, 7.0], sensor_counts=[3, 9]
        )
        assert len(curves) == 2
        for curve in curves:
            assert len(curve.f_measures) == 3
            assert all(0.0 <= f <= 1.0 for f in curve.f_measures)
        assert "Figure 7" in render_fmeasure_curves(curves)

    def test_fmeasure_render_aligns_ragged_curves(self):
        from repro.analysis import FMeasureCurve

        # Caller-supplied curves on different t_delta grids used to be
        # indexed with the first curve's grid: IndexError on shorter
        # curves, silently misaligned columns on shifted ones.
        long = FMeasureCurve(
            n_sensors=3, t_deltas=(2.0, 4.5, 7.0), f_measures=(0.5, 0.7, 0.6)
        )
        short = FMeasureCurve(
            n_sensors=9, t_deltas=(4.5, 8.0), f_measures=(0.9, 0.8)
        )
        text = render_fmeasure_curves([long, short])
        lines = text.splitlines()
        # Rows span the union grid; missing cells render blank, and each
        # value lands on its own t_delta row.
        assert sum(line.lstrip().startswith(("2.0", "4.5", "7.0", "8.0"))
                   for line in lines) == 4
        row_45 = next(line for line in lines if line.lstrip().startswith("4.5"))
        assert "0.700" in row_45 and "0.900" in row_45
        row_20 = next(line for line in lines if line.lstrip().startswith("2.0"))
        assert "0.500" in row_20 and "-" in row_20
        # Peaks are still reported per curve.
        assert "peak (9 sensors): F=0.900 at t_delta=4.5 s" in text

    def test_fmeasure_render_rejects_malformed_curve(self):
        from repro.analysis import FMeasureCurve

        broken = FMeasureCurve(
            n_sensors=3, t_deltas=(2.0, 4.5), f_measures=(0.5,)
        )
        with pytest.raises(ValueError, match="2 t_deltas but 1"):
            render_fmeasure_curves([broken])
        # Duplicate t_deltas would silently keep only the last value in a
        # t_delta-keyed table.
        duplicated = FMeasureCurve(
            n_sensors=3, t_deltas=(2.0, 2.0), f_measures=(0.1, 0.9)
        )
        with pytest.raises(ValueError, match="duplicate t_deltas"):
            render_fmeasure_curves([duplicated])

    def test_std_profile_separates_walking_from_normal(self, small_recording, config):
        result = compute_std_profile(small_recording, config, day_index=0)
        assert result.separation > 0
        assert result.percentile_99 > float(np.median(result.normal_values))
        assert "Figure 2" in render_std_profile(result)


class TestREAnalysis:
    def test_learning_curve_accuracy_bounds(self, analysis_context):
        curves = compute_learning_curves(
            analysis_context,
            sensor_counts=[9],
            train_sizes=[10, 30],
            n_repeats=2,
        )
        assert len(curves) == 1
        acc = curves[0].result.mean_accuracy
        assert np.nanmax(acc) <= 1.0
        assert np.nanmin(acc) >= 0.0
        assert "Figure 8" in render_learning_curves(curves)

    def test_learning_curve_template_stateless(self, analysis_context):
        """The shared RE template is never trained by the curve fits.

        ``compute_learning_curves`` hands every fit an adapter around the
        *same* RE module; each fit must go through ``clone_untrained()``,
        leaving the template untouched so fits cannot leak into one another
        — identical repeated runs are the observable consequence.
        """
        re_module, _ = analysis_context.sample_dataset(9)
        assert not re_module.is_trained
        first = compute_learning_curves(
            analysis_context, sensor_counts=[9], train_sizes=[10], n_repeats=2
        )
        assert not re_module.is_trained, "learning curve trained the template"
        second = compute_learning_curves(
            analysis_context, sensor_counts=[9], train_sizes=[10], n_repeats=2
        )
        np.testing.assert_array_equal(
            first[0].result.all_scores, second[0].result.all_scores
        )


class TestSecurityAnalyses:
    def test_deauth_curves_monotone_in_sensors(self, analysis_context):
        curves = compute_deauth_curves(analysis_context, sensor_counts=[3, 9])
        by_sensors = {c.n_sensors: c for c in curves}
        assert by_sensors[9].percent_within(10.0) >= by_sensors[3].percent_within(10.0) - 10.0
        assert "Figure 9" in render_deauth_curves(curves)

    def test_attack_opportunities_timeout_is_worst(self, analysis_context):
        rows = compute_attack_opportunities(analysis_context, sensor_counts=[3, 9])
        timeout_row = rows[0]
        assert timeout_row.label == "timeout"
        assert timeout_row.insider_pct == pytest.approx(100.0)
        best = rows[-1]
        assert best.insider_pct <= timeout_row.insider_pct
        assert "Figure 10" in render_attack_opportunities(rows)

    def test_coworker_at_least_as_dangerous_as_insider(self, analysis_context):
        rows = compute_attack_opportunities(analysis_context, sensor_counts=[9])
        for row in rows:
            assert row.coworker_pct >= row.insider_pct - 1e-9


class TestUsabilityAndTradeoff:
    def test_usability_table_costs_are_bounded(self, analysis_context):
        rows = compute_usability_table(
            analysis_context, sensor_counts=[9], n_draws=5
        )
        assert len(rows) == 1
        result = rows[0].result
        assert result.cost_per_day_s >= 0.0
        assert result.cost_per_day_s < 600.0
        assert "Table IV" in render_usability_table(rows)

    def test_tradeoff_fadewich_less_vulnerable_than_timeout(self, analysis_context):
        points = compute_tradeoff(analysis_context, sensor_counts=[9], n_draws=3)
        timeout = points[0]
        fadewich = points[-1]
        assert timeout.total_cost_min == pytest.approx(0.0)
        assert fadewich.vulnerable_time_min < timeout.vulnerable_time_min
        assert "Figure 13" in render_tradeoff(points)


class TestFeatureAnalyses:
    def test_variance_correlations(self, analysis_context):
        result = compute_variance_correlations(analysis_context)
        n_streams = len(result.stream_ids)
        assert result.correlation.matrix.shape == (n_streams, n_streams)
        assert 0.0 <= result.mean_absolute_correlation() <= 1.0
        assert "Figure 11" in render_variance_correlations(result)

    def test_rmi_ranking_and_table(self, analysis_context):
        ranked = compute_rmi_ranking(analysis_context)
        assert all(0.0 <= fi.rmi <= 1.0 for fi in ranked)
        assert all(
            ranked[i].rmi >= ranked[i + 1].rmi for i in range(len(ranked) - 1)
        )
        assert "Table V" in render_rmi_table(ranked)

    def test_stream_importance_map(self, analysis_context):
        result = compute_stream_importance(analysis_context)
        assert len(result.scores) > 0
        assert "Figure 12" in render_stream_importance(result)


class TestFullSystemReplay:
    def test_replay_day_detects_and_deauthenticates(self, analysis_context):
        context = analysis_context
        recording = context.recording
        re_module, dataset = context.sample_dataset(9)
        system = FadewichSystem(
            stream_ids=re_module.stream_ids,
            workstation_ids=recording.layout.workstation_ids,
            config=context.config,
        )
        if len(set(dataset.labels)) >= 2:
            system.train(dataset)
        report = system.replay_day(recording.days[0])
        n_departures = len(recording.days[0].events.departures())
        # The live system must have reacted to the day's activity.
        assert report.alerts + report.deauthentications > 0
        assert report.deauthentications <= n_departures + len(
            recording.days[0].events.entries()
        ) + 5
        assert system.controller_state in (ControllerState.QUIET, ControllerState.NOISY)

    def test_process_sample_requires_idle_provider(self, analysis_context):
        re_module, _ = analysis_context.sample_dataset(9)
        system = FadewichSystem(
            stream_ids=re_module.stream_ids, workstation_ids=["w1", "w2", "w3"]
        )
        with pytest.raises(RuntimeError):
            system.process_sample(0.0, {sid: -60.0 for sid in re_module.stream_ids})

"""The reusable feature pipeline: registry, fingerprints, cached store.

Locks the PR 10 refactor contract: ``repro.features`` serves per-day
``(times, matrix, columns)`` blocks keyed by (recording identity,
extractor content fingerprint), `CampaignStdFeatures` is the rolling-std
extractor viewed through a store (bit-identical to the historical
expression — the golden/equivalence suites run unchanged), and the
day-membership regression (a foreign recording's day silently returning
the wrong matrix) stays fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np
import pytest

from repro.core.config import FadewichConfig
from repro.core.evaluation import CampaignStdFeatures
from repro.core.movement import rolling_std_matrix
from repro.features import (
    FeatureStore,
    RollingStdExtractor,
    extractor_fingerprint,
    extractor_names,
    get_extractor,
    register_extractor,
)
from repro.mobility.behavior import BehaviorProfile
from repro.simulation.collector import CampaignCollector
from repro.zones import AttenuationExtractor


@pytest.fixture(scope="module")
def other_recording(layout):
    """A second, distinct recording whose days alias day indices 0/1."""
    collector = CampaignCollector(layout, seed=99)
    profile = BehaviorProfile(
        departures_per_hour=8.0,
        mean_absence_s=120.0,
        min_absence_s=40.0,
        internal_moves_per_hour=2.0,
    )
    profiles = {w.workstation_id: profile for w in layout.workstations}
    return collector.collect_generated(
        n_days=1, day_duration_s=600.0, profiles=profiles
    )


class TestRegistry:
    def test_builtin_extractors_registered(self):
        names = extractor_names()
        assert "rolling_std" in names
        assert "attenuation" in names
        assert names == sorted(names)

    def test_get_extractor_resolution(self):
        by_name = get_extractor("rolling_std")
        assert isinstance(by_name, RollingStdExtractor)
        assert get_extractor(RollingStdExtractor) == by_name
        tuned = RollingStdExtractor(std_window_s=8.0)
        assert get_extractor(tuned) is tuned

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown extractor"):
            get_extractor("no-such-extractor")

    def test_register_requires_named_dataclass(self):
        class NotADataclass:
            name = "nope"

        with pytest.raises(TypeError):
            register_extractor(NotADataclass)

        @dataclass(frozen=True)
        class Unnamed:
            pass

        with pytest.raises(TypeError, match="class-level 'name'"):
            register_extractor(Unnamed)

    def test_name_collision_rejected(self):
        @dataclass(frozen=True)
        class Impostor:
            name: ClassVar[str] = "rolling_std"

            def day_block(self, day, layout):
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_extractor(Impostor)

    def test_reregistration_is_idempotent(self):
        assert register_extractor(RollingStdExtractor) is RollingStdExtractor


class TestFingerprint:
    def test_equal_configs_share_fingerprints(self):
        a = RollingStdExtractor(std_window_s=4.0)
        b = RollingStdExtractor(std_window_s=4.0)
        assert a is not b
        assert extractor_fingerprint(a) == extractor_fingerprint(b)

    def test_config_changes_move_the_fingerprint(self):
        base = extractor_fingerprint(RollingStdExtractor())
        assert extractor_fingerprint(RollingStdExtractor(std_window_s=8.0)) != base
        assert extractor_fingerprint(AttenuationExtractor()) != base

    def test_nested_dataclasses_fingerprint(self):
        a = AttenuationExtractor(exponent=2.5)
        b = AttenuationExtractor(exponent=3.0)
        assert extractor_fingerprint(a) != extractor_fingerprint(b)


class TestFeatureStore:
    def test_cache_hit_on_equal_config(self, small_recording):
        store = FeatureStore(small_recording)
        day = small_recording.days[0]
        first = store.day_block(RollingStdExtractor(std_window_s=4.0), day)
        again = store.day_block(RollingStdExtractor(std_window_s=4.0), day)
        # Same cached block object: equal frozen configs share the entry.
        assert again[1] is first[1]
        assert store.hits == 1
        assert store.misses == 1

    def test_config_change_invalidates(self, small_recording):
        store = FeatureStore(small_recording)
        day = small_recording.days[0]
        _, narrow, _ = store.day_block(
            RollingStdExtractor(std_window_s=4.0), day
        )
        _, wide, _ = store.day_block(
            RollingStdExtractor(std_window_s=8.0), day
        )
        assert store.misses == 2 and store.hits == 0
        # Fresh matrices: the wider window trims more rows and smooths
        # differently — nothing of the 4 s block is served for the 8 s one.
        assert narrow.shape != wide.shape or not np.array_equal(narrow, wide)

    def test_extractors_share_one_store(self, small_recording, layout):
        store = FeatureStore(small_recording)
        day = small_recording.days[0]
        store.day_block(RollingStdExtractor(), day)
        _, att, _ = store.day_block(AttenuationExtractor(), day)
        assert store.misses == 2
        # The attenuation block is cached independently of the std block.
        assert store.day_block(AttenuationExtractor(), day)[1] is att
        assert store.hits == 1

    def test_foreign_day_rejected(self, small_recording, other_recording):
        # Regression: keying by day_index alone served recording A's matrix
        # for recording B's day of the same index.
        store = FeatureStore(small_recording)
        foreign = other_recording.days[0]
        assert foreign.day_index == small_recording.days[0].day_index
        with pytest.raises(ValueError, match="does not belong"):
            store.day_block(RollingStdExtractor(), foreign)


class TestCampaignStdFeatures:
    def test_matches_historical_expression(self, small_recording, config):
        features = CampaignStdFeatures(small_recording, config)
        day = small_recording.days[0]
        times, matrix, columns = features.day_matrix(day)
        trace = day.trace
        rate = 1.0 / trace.sample_interval
        window = max(int(round(config.md.std_window_s * rate)), 2)
        want_times, want = rolling_std_matrix(trace, window)
        assert np.array_equal(times, want_times)
        assert np.array_equal(matrix, want)
        assert columns == {s: j for j, s in enumerate(trace.stream_ids)}

    def test_shared_store(self, small_recording, config):
        store = FeatureStore(small_recording)
        a = CampaignStdFeatures(small_recording, config, store=store)
        b = CampaignStdFeatures(small_recording, config, store=store)
        day = small_recording.days[0]
        assert b.day_matrix(day)[1] is a.day_matrix(day)[1]
        assert store.hits == 1

    def test_foreign_store_rejected(
        self, small_recording, other_recording, config
    ):
        store = FeatureStore(other_recording)
        with pytest.raises(ValueError, match="different recording"):
            CampaignStdFeatures(small_recording, config, store=store)

    def test_foreign_day_rejected(
        self, small_recording, other_recording, config
    ):
        features = CampaignStdFeatures(small_recording, config)
        with pytest.raises(ValueError, match="does not belong"):
            features.day_matrix(other_recording.days[0])

    def test_window_config_feeds_extractor(self, small_recording):
        wide = CampaignStdFeatures(
            small_recording, FadewichConfig().derive(md={"std_window_s": 8.0})
        )
        narrow = CampaignStdFeatures(small_recording, FadewichConfig())
        day = small_recording.days[0]
        assert not np.array_equal(
            wide.day_matrix(day)[1], narrow.day_matrix(day)[1]
        )

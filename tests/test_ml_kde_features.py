"""Tests for the KDE estimator and the RE window features."""

import numpy as np
import pytest

from repro.ml.features import (
    FeatureExtractor,
    stream_features,
    window_autocorrelation,
    window_entropy,
    window_variance,
)
from repro.ml.kde import GaussianKDE, scott_bandwidth, silverman_bandwidth
from repro.ml.scaling import MinMaxScaler, StandardScaler


class TestGaussianKDE:
    def test_pdf_integrates_to_one(self, rng):
        data = rng.normal(10.0, 2.0, size=200)
        kde = GaussianKDE(data)
        grid = np.linspace(0.0, 20.0, 2000)
        integral = np.trapezoid(kde.pdf(grid), grid)
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_cdf_is_monotone(self, rng):
        kde = GaussianKDE(rng.normal(size=100))
        grid = np.linspace(-4, 4, 50)
        cdf = kde.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_cdf_limits(self, rng):
        kde = GaussianKDE(rng.normal(size=100))
        assert kde.cdf(-100.0)[0] == pytest.approx(0.0, abs=1e-6)
        assert kde.cdf(100.0)[0] == pytest.approx(1.0, abs=1e-6)

    def test_percentile_inverts_cdf(self, rng):
        kde = GaussianKDE(rng.normal(5.0, 1.0, size=300))
        for q in (10.0, 50.0, 90.0, 99.0):
            x = kde.percentile(q)
            assert kde.cdf(x)[0] == pytest.approx(q / 100.0, abs=1e-3)

    def test_percentile_is_monotone_in_q(self, rng):
        kde = GaussianKDE(rng.normal(size=200))
        assert kde.percentile(99.0) > kde.percentile(50.0) > kde.percentile(1.0)

    def test_percentile_out_of_range_raises(self, rng):
        kde = GaussianKDE(rng.normal(size=10))
        with pytest.raises(ValueError):
            kde.percentile(101.0)

    def test_empty_data_raises(self):
        with pytest.raises(ValueError):
            GaussianKDE([])

    def test_invalid_bandwidth_raises(self):
        with pytest.raises(ValueError):
            GaussianKDE([1.0, 2.0], bandwidth=0.0)
        with pytest.raises(ValueError):
            GaussianKDE([1.0, 2.0], bandwidth="unknown")

    def test_updated_keeps_size_when_dropping_same_amount(self, rng):
        kde = GaussianKDE(rng.normal(size=50))
        updated = kde.updated(rng.normal(size=10), drop_oldest=10)
        assert updated.n == 50

    def test_updated_shifts_towards_new_data(self, rng):
        kde = GaussianKDE(rng.normal(0.0, 1.0, size=100))
        updated = kde.updated(np.full(100, 50.0), drop_oldest=100)
        assert updated.percentile(50.0) > 40.0

    def test_sample_draws_near_data(self, rng):
        kde = GaussianKDE(rng.normal(100.0, 1.0, size=200))
        samples = kde.sample(500, rng)
        assert abs(np.mean(samples) - 100.0) < 1.0

    def test_sample_requires_explicit_rng(self, rng):
        # Library code must never silently fall back to a fresh global
        # generator; every draw belongs to an explicit seed stream.
        kde = GaussianKDE(rng.normal(size=20))
        with pytest.raises(TypeError):
            kde.sample(5)
        with pytest.raises(TypeError):
            kde.sample(5, None)

    def test_sample_is_reproducible_per_seed(self, rng):
        kde = GaussianKDE(rng.normal(size=50))
        a = kde.sample(20, np.random.default_rng(7))
        b = kde.sample(20, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_percentile_warm_start_matches_cold(self, rng):
        kde = GaussianKDE(rng.normal(10.0, 2.0, size=100))
        cold = kde.percentile(99.0)
        warm = kde.percentile(99.0, x0=cold + 0.3)
        assert warm == pytest.approx(cold, abs=2e-6)

    def test_percentile_of_invalid_profile_raises(self):
        # The bracket guard: non-finite profile data must raise loudly
        # instead of silently iterating on a [NaN, NaN] bracket (the old
        # expansion loops exhausted their 64 steps and proceeded anyway).
        kde = GaussianKDE([1.0, 2.0, 3.0])
        kde._data[1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            kde.percentile(99.0)

    def test_mixture_quantiles_validates_shapes(self, rng):
        from repro.ml.kde import mixture_quantiles

        data = rng.normal(size=(3, 10))
        with pytest.raises(ValueError, match="one value per profile"):
            mixture_quantiles(data, np.ones(2), 50.0)
        with pytest.raises(ValueError, match="matrix"):
            mixture_quantiles(data[0], np.ones(1), 50.0)
        with pytest.raises(ValueError, match="within"):
            mixture_quantiles(data, np.ones(3), 101.0)

    def test_bandwidth_rules_positive(self, rng):
        data = rng.normal(size=100)
        assert scott_bandwidth(data) > 0
        assert silverman_bandwidth(data) > 0

    def test_bandwidth_rules_handle_constant_data(self):
        assert scott_bandwidth(np.ones(10)) == 1.0
        assert silverman_bandwidth(np.ones(10)) == 1.0


class TestWindowFeatures:
    def test_variance_of_constant_window_is_zero(self):
        assert window_variance([5.0] * 10) == pytest.approx(0.0)

    def test_variance_matches_numpy(self, rng):
        window = rng.normal(size=64)
        assert window_variance(window) == pytest.approx(float(np.var(window)))

    def test_entropy_of_constant_window_is_zero(self):
        assert window_entropy([3.0] * 20) == pytest.approx(0.0)

    def test_entropy_increases_with_spread(self, rng):
        narrow = rng.normal(0.0, 0.001, size=200)
        uniform = rng.uniform(-10, 10, size=200)
        assert window_entropy(uniform, bins=16) > window_entropy(narrow, bins=2)

    def test_entropy_bounded_by_log_bins(self, rng):
        window = rng.uniform(size=1000)
        assert window_entropy(window, bins=8) <= np.log(8) + 1e-9

    def test_autocorrelation_of_constant_window_is_one(self):
        assert window_autocorrelation([2.0] * 10) == pytest.approx(1.0)

    def test_autocorrelation_of_alternating_signal_is_negative(self):
        window = [1.0, -1.0] * 20
        assert window_autocorrelation(window, lag=1) < -0.9

    def test_autocorrelation_lag_beyond_window_is_zero(self):
        assert window_autocorrelation([1.0, 2.0, 3.0], lag=10) == 0.0

    def test_autocorrelation_of_smooth_signal_is_positive(self):
        window = np.sin(np.linspace(0, np.pi, 50))
        assert window_autocorrelation(window, lag=1) > 0.8

    def test_empty_window_raises(self):
        with pytest.raises(ValueError):
            window_variance([])
        with pytest.raises(ValueError):
            window_entropy([])
        with pytest.raises(ValueError):
            window_autocorrelation([])

    def test_stream_features_returns_triplet(self, rng):
        var, ent, ac = stream_features(rng.normal(size=30))
        assert var >= 0
        assert ent >= 0
        assert -1.0 - 1e-9 <= ac <= 1.0 + 1e-9


class TestFeatureExtractor:
    def test_feature_vector_layout(self, rng):
        extractor = FeatureExtractor(stream_ids=("d1-d2", "d2-d1"))
        windows = {"d1-d2": rng.normal(size=20), "d2-d1": rng.normal(size=20)}
        vec = extractor.extract(windows)
        assert vec.shape == (6,)
        assert extractor.n_features == 6

    def test_feature_names_follow_paper_convention(self):
        extractor = FeatureExtractor(stream_ids=("d1-d2",))
        assert extractor.feature_names() == ["d1-d2-var", "d1-d2-ent", "d1-d2-ac"]

    def test_missing_stream_raises(self, rng):
        extractor = FeatureExtractor(stream_ids=("d1-d2", "d2-d1"))
        with pytest.raises(KeyError):
            extractor.extract({"d1-d2": rng.normal(size=10)})

    def test_duplicate_stream_ids_raise(self):
        with pytest.raises(ValueError):
            FeatureExtractor(stream_ids=("d1-d2", "d1-d2"))

    def test_empty_stream_ids_raise(self):
        with pytest.raises(ValueError):
            FeatureExtractor(stream_ids=())

    def test_extract_many_stacks_samples(self, rng):
        extractor = FeatureExtractor(stream_ids=("a-b",))
        samples = [{"a-b": rng.normal(size=10)} for _ in range(4)]
        X = extractor.extract_many(samples)
        assert X.shape == (4, 3)

    def test_extract_many_empty_returns_empty_matrix(self):
        extractor = FeatureExtractor(stream_ids=("a-b",))
        assert extractor.extract_many([]).shape == (0, 3)


class TestScalers:
    def test_standard_scaler_zero_mean_unit_std(self, rng):
        X = rng.normal(5.0, 3.0, size=(100, 4))
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Xs.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_feature_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Xs = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xs))

    def test_standard_scaler_inverse_transform_roundtrip(self, rng):
        X = rng.normal(size=(20, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_standard_scaler_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_minmax_scaler_maps_to_unit_interval(self, rng):
        X = rng.normal(size=(50, 3)) * 10
        Xs = MinMaxScaler().fit_transform(X)
        assert Xs.min() >= -1e-12
        assert Xs.max() <= 1.0 + 1e-12

    def test_minmax_scaler_empty_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.empty((0, 2)))

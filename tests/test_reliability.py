"""The reliability layer: deterministic faults, checkpoints, self-healing.

Locks the contracts of :mod:`repro.reliability` and the seams threaded
through the sweep and streaming stacks:

* fault plans are validated, deterministic and picklable — the same plan
  realises the same fire sequence in every process that evaluates it,
  explicit hits never re-time the Bernoulli stream, and crash kinds
  escape ``except Exception`` recovery;
* every streaming engine checkpoint (``snapshot()`` → JSON →
  ``restore()``) is *bit-preserving*: a detector killed at a
  hypothesis-random cut point and restored from its serialised snapshot
  finishes the stream bitwise-identically to one that never stopped —
  for the paper's KDE path and every registered zoo detector, partial
  window head included;
* the lease protocol under injected clock skew, heartbeat stalls and
  unlink races; heartbeat theft propagates to the worker, which discards
  the stolen key's in-flight result instead of racing the thief's put;
* a SIGTERM'd worker releases its held leases on the way out;
* the router's failure policies: ``restart_shard`` recovers injected
  shard deaths bitwise-identically from per-batch checkpoints (within
  its restart budget), ``quarantine`` isolates a poison tenant behind
  dead-letter records without touching its shard neighbours, and
  ``checkpoint_tenants``/``restore_from`` hand a live stream across
  router generations without losing a bit.
"""

import json
import multiprocessing
import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.campaign import CampaignScale
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.analysis.sweep_queue import (
    LeaseManager,
    SweepWorker,
    _Heartbeat,
    sim_lease_name,
)
from repro.analysis.sweep_store import SweepStore
from repro.core.config import FadewichConfig, MDConfig
from repro.detectors import detector_names, get_detector
from repro.radio.office import paper_office
from repro.reliability import (
    HARD_CRASH_EXIT_CODE,
    KNOWN_POINTS,
    LEASE_CLOCK_SKEW,
    LEASE_HEARTBEAT_STALL,
    LEASE_UNLINK_RACE,
    ROUTER_SHARD_DEATH,
    SOURCE_DROP_BATCH,
    STORE_READ,
    WORKER_CRASH_AFTER_PUT,
    WORKER_CRASH_BEFORE_PUT,
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    as_injector,
    dumps_snapshot,
    loads_snapshot,
)
from repro.streaming import (
    DayRecordingSource,
    IngestRouter,
    OnlineDetector,
    OnlineStdSum,
    SampleBatch,
)

RATE = 4.0


# --------------------------------------------------------------------------- #
# Fault plans and injectors
# --------------------------------------------------------------------------- #


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultSpec(point="store.reed", hits=(0,))

    def test_never_firing_spec_rejected(self):
        with pytest.raises(ValueError, match="can never fire"):
            FaultSpec(point=STORE_READ)

    def test_invalid_probability_and_hits_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(point=STORE_READ, probability=1.5)
        with pytest.raises(ValueError, match="hits must be >= 0"):
            FaultSpec(point=STORE_READ, hits=(-1,))
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(point=STORE_READ, hits=(0,), max_fires=0)

    def test_explicit_hits_fire_at_exact_occurrences(self):
        inj = FaultPlan.of(
            FaultSpec(point=STORE_READ, hits=(0, 3))
        ).injector()
        fired = [inj.fired(STORE_READ) is not None for _ in range(6)]
        assert fired == [True, False, False, True, False, False]
        assert inj.occurrences(STORE_READ) == 6
        assert inj.fires(STORE_READ) == 2

    def test_unplanned_point_never_fires_nor_counts(self):
        inj = FaultPlan.of(FaultSpec(point=STORE_READ, hits=(0,))).injector()
        assert inj.fired(SOURCE_DROP_BATCH) is None
        assert inj.occurrences(SOURCE_DROP_BATCH) == 0

    def test_bernoulli_realisation_is_seed_deterministic(self):
        plan = FaultPlan.of(
            FaultSpec(point=SOURCE_DROP_BATCH, probability=0.3), seed=42
        )
        seq_a = [
            plan.injector().fired(SOURCE_DROP_BATCH) is not None
            for _ in range(1)
        ]
        runs = []
        for _ in range(2):
            inj = plan.injector()
            runs.append(
                [inj.fired(SOURCE_DROP_BATCH) is not None for _ in range(200)]
            )
        assert runs[0] == runs[1]
        assert any(runs[0]) and not all(runs[0])
        # A different seed realises a different sequence.
        other = FaultPlan.of(
            FaultSpec(point=SOURCE_DROP_BATCH, probability=0.3), seed=43
        ).injector()
        assert [
            other.fired(SOURCE_DROP_BATCH) is not None for _ in range(200)
        ] != runs[0]
        assert seq_a  # seq_a only exists to pin the first-draw shape

    def test_pickled_plan_realises_identically(self):
        plan = FaultPlan.of(
            FaultSpec(point=STORE_READ, hits=(2,), probability=0.2),
            FaultSpec(point=ROUTER_SHARD_DEATH, probability=0.1),
            seed=7,
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        a, b = plan.injector(), clone.injector()
        for _ in range(300):
            for point in (STORE_READ, ROUTER_SHARD_DEATH):
                assert (a.fired(point) is None) == (b.fired(point) is None)

    def test_explicit_hit_does_not_retime_bernoulli_stream(self):
        # Adding a hit index must not shift when the probabilistic fires
        # land: the Bernoulli draw is consumed on every occurrence.
        base = FaultPlan.of(
            FaultSpec(point=STORE_READ, probability=0.25), seed=5
        ).injector()
        with_hit = FaultPlan.of(
            FaultSpec(point=STORE_READ, hits=(10,), probability=0.25), seed=5
        ).injector()
        base_fires = [
            i for i in range(200) if base.fired(STORE_READ) is not None
        ]
        hit_fires = [
            i for i in range(200) if with_hit.fired(STORE_READ) is not None
        ]
        assert set(hit_fires) == set(base_fires) | {10}

    def test_max_fires_caps_the_spec(self):
        inj = FaultPlan.of(
            FaultSpec(point=STORE_READ, hits=(0, 1, 2, 3), max_fires=2)
        ).injector()
        fired = [inj.fired(STORE_READ) is not None for _ in range(4)]
        assert fired == [True, True, False, False]
        assert inj.fires(STORE_READ) == 2

    def test_first_firing_spec_wins_in_plan_order(self):
        first = FaultSpec(point=STORE_READ, hits=(0,), payload=1.0)
        second = FaultSpec(point=STORE_READ, hits=(0, 1), payload=2.0)
        inj = FaultPlan.of(first, second).injector()
        assert inj.fired(STORE_READ) is first
        assert inj.fired(STORE_READ) is second

    def test_check_raises_injected_fault(self):
        inj = FaultPlan.of(FaultSpec(point=STORE_READ, hits=(0,))).injector()
        with pytest.raises(InjectedFault, match="store.read"):
            inj.check(STORE_READ)
        inj.check(STORE_READ)  # occurrence 1: silent

    def test_soft_crash_escapes_except_exception(self):
        inj = FaultPlan.of(
            FaultSpec(point=WORKER_CRASH_BEFORE_PUT, hits=(0,), kind="crash")
        ).injector()
        with pytest.raises(InjectedCrash):
            try:
                inj.check(WORKER_CRASH_BEFORE_PUT)
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("InjectedCrash must not be caught as Exception")

    def test_stats_counters(self):
        inj = FaultPlan.of(
            FaultSpec(point=STORE_READ, hits=(1,)),
            FaultSpec(point=SOURCE_DROP_BATCH, hits=(0,)),
        ).injector()
        inj.fired(STORE_READ)
        inj.fired(STORE_READ)
        inj.fired(SOURCE_DROP_BATCH)
        assert inj.stats() == {
            STORE_READ: {"occurrences": 2, "fires": 1},
            SOURCE_DROP_BATCH: {"occurrences": 1, "fires": 1},
        }

    def test_as_injector_normalisation(self):
        plan = FaultPlan.of(FaultSpec(point=STORE_READ, hits=(0,)))
        inj = plan.injector()
        assert as_injector(None) is None
        assert as_injector(inj) is inj
        assert isinstance(as_injector(plan), FaultInjector)
        with pytest.raises(TypeError, match="FaultPlan or FaultInjector"):
            as_injector("chaos")

    def test_constant_reads_without_counting(self):
        spec = FaultSpec(
            point=LEASE_CLOCK_SKEW, hits=(0,), kind="skew", payload=12.5
        )
        inj = FaultPlan.of(spec).injector()
        assert inj.constant(LEASE_CLOCK_SKEW) is spec
        assert inj.constant(STORE_READ) is None
        assert inj.occurrences(LEASE_CLOCK_SKEW) == 0

    def test_known_points_cover_all_module_constants(self):
        assert STORE_READ in KNOWN_POINTS
        assert len(KNOWN_POINTS) == 11


# --------------------------------------------------------------------------- #
# Checkpoint serialisation
# --------------------------------------------------------------------------- #


class TestCheckpointStore:
    def test_json_round_trip_preserves_float_bits(self):
        state = {
            "pi": 0.1 + 0.2,
            "tiny": 5e-324,
            "nan": float("nan"),
            "inf": float("inf"),
            "list": [1.0 / 3.0, -0.0],
        }
        back = loads_snapshot(dumps_snapshot(state))
        assert back["pi"] == state["pi"]
        assert back["tiny"] == state["tiny"]
        assert np.isnan(back["nan"])
        assert back["inf"] == float("inf")
        assert back["list"][0] == state["list"][0]
        assert np.signbit(back["list"][1])

    def test_non_dict_snapshot_rejected(self):
        with pytest.raises(ValueError, match="decode to a dict"):
            loads_snapshot("[1, 2]")

    def test_save_load_keys_delete(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.load("absent") is None
        store.save("tenant/0", {"x": float("nan"), "n": 3})
        store.save("tenant/1", {"x": 1.5})
        assert store.keys() == ["tenant/0", "tenant/1"]
        back = store.load("tenant/0")
        assert set(back) == {"x", "n"}
        assert np.isnan(back["x"]) and back["n"] == 3
        assert store.delete("tenant/0")
        assert not store.delete("tenant/0")
        assert store.keys() == ["tenant/1"]

    def test_hostile_keys_stay_inside_the_directory(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        for key in ("../escape", "a/b/c", "x" * 300):
            path = store.save(key, {"v": 1})
            assert path.parent == store.path
            assert store.load(key) == {"v": 1}

    def test_save_overwrites_atomically(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("k", {"v": 1})
        store.save("k", {"v": 2})
        assert store.load("k") == {"v": 2}
        leftovers = [
            p for p in store.path.iterdir() if p.suffix not in (".json",)
        ]
        assert leftovers == []


# --------------------------------------------------------------------------- #
# Streaming checkpoint/restore bit-identity
# --------------------------------------------------------------------------- #


def anomalous_day(seed, n=600, k=3):
    rng = np.random.default_rng(seed)
    times = np.arange(n) / RATE
    matrix = rng.normal(0.0, 2.0, size=(n, k))
    matrix[n // 3 : n // 3 + 30] += rng.normal(0.0, 8.0, size=(30, k))
    matrix[2 * n // 3 : 2 * n // 3 + 8] += 15.0
    matrix[-3:] += 20.0
    return times, matrix


def run_stream(det, times, matrix, sizes):
    blocks, pos = [], 0
    for s in sizes:
        blocks.append(det.process_block(times[pos : pos + s], matrix[pos : pos + s]))
        pos += s
    return {
        "std_sums": np.concatenate([b.std_sums for b in blocks]),
        "decisions": np.concatenate([b.decisions for b in blocks]),
        "thresholds": np.concatenate([b.thresholds for b in blocks]),
        "durations": np.concatenate([b.durations for b in blocks]),
    }


def assert_streams_equal(got, want):
    np.testing.assert_array_equal(got["std_sums"], want["std_sums"])
    np.testing.assert_array_equal(got["decisions"], want["decisions"])
    # Thresholds are NaN during profile initialisation.
    np.testing.assert_array_equal(
        np.asarray(got["thresholds"]), np.asarray(want["thresholds"])
    )
    np.testing.assert_array_equal(got["durations"], want["durations"])


class TestSnapshotRoundTrip:
    @given(cut=st.integers(min_value=1, max_value=199), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_online_std_sum_cut_anywhere(self, cut, data):
        w = data.draw(st.integers(min_value=2, max_value=16))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(200, 2)) * 3.0
        whole = OnlineStdSum(2, w)
        want = whole.extend(matrix)
        head = OnlineStdSum(2, w)
        got_head = head.extend(matrix[:cut])
        state = loads_snapshot(dumps_snapshot(head.snapshot()))
        tail = OnlineStdSum(2, w)
        tail.restore(state)
        got_tail = tail.extend(matrix[cut:])
        np.testing.assert_array_equal(
            np.concatenate([got_head, got_tail]), want
        )

    @pytest.mark.parametrize(
        "detector", [None] + sorted(detector_names())
    )
    @given(cut=st.integers(min_value=1, max_value=599))
    @settings(max_examples=12, deadline=None)
    def test_online_detector_cut_anywhere_bitwise(self, detector, cut):
        # The acceptance criterion: kill the stream at an arbitrary point,
        # round-trip the snapshot through JSON, restore, finish — and be
        # indistinguishable from a stream that never stopped.  ``cut``
        # values below the profile-initialisation samples exercise the
        # partial-window / warm-up head.
        times, matrix = anomalous_day(seed=1234)
        cfg = MDConfig(profile_init_s=15.0, batch_size=10, merge_gap_s=2.0)
        ids = [f"s{j}" for j in range(matrix.shape[1])]
        zoo = None if detector is None else get_detector(detector)
        uncut = OnlineDetector(ids, cfg, sample_rate_hz=RATE, detector=zoo)
        want = run_stream(uncut, times, matrix, [77] * 7 + [61])
        uncut.finalize()

        zoo2 = None if detector is None else get_detector(detector)
        head = OnlineDetector(ids, cfg, sample_rate_hz=RATE, detector=zoo2)
        got_head = run_stream(head, times[:cut], matrix[:cut], _sizes(cut))
        state = loads_snapshot(dumps_snapshot(head.snapshot()))
        restored = OnlineDetector.from_snapshot(state)
        got_tail = run_stream(
            restored, times[cut:], matrix[cut:], _sizes(600 - cut)
        )
        restored.finalize()
        got = {
            key: np.concatenate([got_head[key], got_tail[key]])
            for key in want
        }
        assert_streams_equal(got, want)
        assert restored.completed_windows == uncut.completed_windows

    def test_snapshot_format_guard(self):
        ids = ["a", "b"]
        det = OnlineDetector(ids, MDConfig(), sample_rate_hz=RATE)
        state = det.snapshot()
        state["format"] = 99
        with pytest.raises(ValueError, match="snapshot format"):
            OnlineDetector.from_snapshot(state)

    def test_snapshot_carries_detector_spec(self):
        det = OnlineDetector(
            ["a"],
            MDConfig(),
            sample_rate_hz=RATE,
            detector=get_detector("ema_mad"),
        )
        state = det.snapshot()
        assert state["detector"]["name"] == "ema_mad"
        restored = OnlineDetector.from_snapshot(
            loads_snapshot(dumps_snapshot(state))
        )
        assert restored._detector.name == "ema_mad"


def _sizes(n, chunk=37):
    """Split ``n`` samples into ragged batches (chunk, ..., remainder)."""
    sizes = [chunk] * (n // chunk)
    if n % chunk:
        sizes.append(n % chunk)
    return sizes


# --------------------------------------------------------------------------- #
# Lease protocol under injected faults
# --------------------------------------------------------------------------- #


class TestLeaseFaults:
    def test_clock_skew_makes_live_leases_look_expired(self, tmp_path):
        honest = LeaseManager(tmp_path, owner="honest", ttl_s=5.0)
        assert honest.try_acquire("key")
        # A manager whose clock runs 60 s fast judges the fresh 5 s lease
        # expired and steals it — the cross-host drift hazard.
        skewed = LeaseManager(
            tmp_path,
            owner="skewed",
            ttl_s=5.0,
            faults=FaultPlan.of(
                FaultSpec(
                    point=LEASE_CLOCK_SKEW, hits=(0,), kind="skew",
                    payload=60.0,
                )
            ),
        )
        assert skewed.try_acquire("key")
        assert skewed.owns("key")
        assert not honest.owns("key")

    def test_clock_skew_stamps_heartbeats_too(self, tmp_path):
        skewed = LeaseManager(
            tmp_path,
            owner="skewed",
            ttl_s=30.0,
            faults=FaultPlan.of(
                FaultSpec(
                    point=LEASE_CLOCK_SKEW, hits=(0,), kind="skew",
                    payload=-3600.0,
                )
            ),
        )
        assert skewed.try_acquire("key")
        # The lease lands with an hour-old heartbeat: an honest manager
        # immediately sees it as expired and reclaims it.
        honest = LeaseManager(tmp_path, owner="honest", ttl_s=30.0)
        info = honest.read("key")
        assert info.expired()
        assert honest.try_acquire("key")
        assert honest.owns("key")

    def test_heartbeat_stall_lets_competitors_steal(self, tmp_path):
        stalled = LeaseManager(
            tmp_path,
            owner="stalled",
            ttl_s=0.6,
            faults=FaultPlan.of(
                FaultSpec(point=LEASE_HEARTBEAT_STALL, probability=1.0)
            ),
        )
        assert stalled.try_acquire("key")
        beat = _Heartbeat(stalled)
        beat.start()
        try:
            deadline = time.monotonic() + 10.0
            competitor = LeaseManager(tmp_path, owner="thief", ttl_s=0.6)
            while not competitor.try_acquire("key"):
                assert time.monotonic() < deadline
                time.sleep(0.05)
        finally:
            beat.stop()
        assert competitor.owns("key")
        assert not stalled.owns("key")
        # The stalled owner's renew notices the theft and forgets the key.
        assert not stalled.renew("key")
        assert stalled.held() == []

    def test_healthy_heartbeat_keeps_short_leases_alive(self, tmp_path):
        owner = LeaseManager(tmp_path, owner="owner", ttl_s=0.6)
        assert owner.try_acquire("key")
        beat = _Heartbeat(owner)
        beat.start()
        try:
            time.sleep(1.5)  # several TTLs: renewals must keep it live
            competitor = LeaseManager(tmp_path, owner="thief", ttl_s=0.6)
            assert not competitor.try_acquire("key")
        finally:
            beat.stop()
        assert owner.owns("key")

    def test_unlink_race_loses_to_the_planted_competitor(self, tmp_path):
        store = SweepStore(tmp_path)
        # An expired foreign lease on disk...
        with open(store.lease_path("key"), "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "format": 1, "name": "key", "owner": "dead", "pid": 1,
                    "heartbeat": time.time() - 3600.0, "ttl_s": 1.0,
                },
                handle,
            )
        racer = LeaseManager(
            store,
            owner="racer",
            ttl_s=30.0,
            faults=FaultPlan.of(
                FaultSpec(point=LEASE_UNLINK_RACE, hits=(0,))
            ),
        )
        # The breaker unlinks the expired lease, but an injected
        # competitor wins the re-link race.
        assert not racer.try_acquire("key")
        assert racer.read("key").owner == "<injected-competitor>"
        assert racer.held() == []
        # Next attempt (no fault at occurrence 1, competitor still live).
        assert not racer.try_acquire("key")

    def test_owns_reflects_disk_truth(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        assert not a.owns("key")
        assert a.try_acquire("key")
        assert a.owns("key")
        # A foreign overwrite (what a thief's reclaim leaves behind).
        store = SweepStore(tmp_path)
        with open(store.lease_path("key"), "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "format": 1, "name": "key", "owner": "thief", "pid": 2,
                    "heartbeat": time.time(), "ttl_s": 30.0,
                },
                handle,
            )
        assert not a.owns("key")


# --------------------------------------------------------------------------- #
# Sweep workers under injected faults
# --------------------------------------------------------------------------- #


def fast_scale(name="chaos-tiny"):
    return CampaignScale.compact().derive(
        name, n_days=1, day_duration_s=600.0
    )


def small_grid():
    """4 scenarios over 2 simulation keys (2 replicates x 2 configs)."""
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[fast_scale()],
        configs={
            "default": FadewichConfig(),
            "t6": FadewichConfig().derive(t_delta_s=6.0),
        },
        n_replicates=2,
        sensor_counts=(3,),
    )


def make_runner(grid):
    return ScenarioSweepRunner(
        grid, seed=11, mode="serial", re_sensor_counts=()
    )


def _sigterm_worker_entry(store_dir):
    worker = SweepWorker(
        make_runner(small_grid()),
        SweepStore(store_dir),
        owner="victim",
        lease_ttl_s=3600.0,  # leases never expire: only release frees them
        poll_interval_s=0.05,
        timeout_s=120.0,
    )
    worker.run()


class TestWorkerFaults:
    @pytest.fixture(scope="class")
    def serial_dict(self):
        return make_runner(small_grid()).run().to_dict()

    def test_crash_before_put_loses_work_not_records(
        self, tmp_path, serial_dict
    ):
        store = SweepStore(tmp_path)
        victim = SweepWorker(
            make_runner(small_grid()),
            store,
            owner="victim",
            lease_ttl_s=1.0,
            poll_interval_s=0.05,
            timeout_s=120.0,
            faults=FaultPlan.of(
                FaultSpec(
                    point=WORKER_CRASH_BEFORE_PUT, hits=(0,), kind="crash"
                )
            ),
        )
        with pytest.raises(InjectedCrash):
            victim.run()
        # The analysed result died with the worker: nothing was persisted,
        # and the worker's unwind released its leases.
        assert store.names() == []
        assert not list(store.path.glob("*.lease"))
        # A clean successor completes the grid bit-identically.
        successor = SweepWorker(
            make_runner(small_grid()), store,
            poll_interval_s=0.05, lease_ttl_s=1.0, timeout_s=120.0,
        )
        assert successor.run().to_dict() == serial_dict

    def test_crash_after_put_keeps_the_record_once(
        self, tmp_path, serial_dict
    ):
        store = SweepStore(tmp_path)
        victim = SweepWorker(
            make_runner(small_grid()),
            store,
            owner="victim",
            lease_ttl_s=1.0,
            poll_interval_s=0.05,
            timeout_s=120.0,
            faults=FaultPlan.of(
                FaultSpec(
                    point=WORKER_CRASH_AFTER_PUT, hits=(0,), kind="crash"
                )
            ),
        )
        with pytest.raises(InjectedCrash):
            victim.run()
        n_after_crash = len(store.names())
        assert n_after_crash >= 1
        successor = SweepWorker(
            make_runner(small_grid()), store,
            poll_interval_s=0.05, lease_ttl_s=1.0, timeout_s=120.0,
        )
        report = successor.run()
        assert report.to_dict() == serial_dict
        assert len(store.names()) == len(serial_dict["scenarios"])
        # The successor reused the crash survivor instead of redoing it.
        assert (
            successor.last_worker_stats.scenarios_analyzed
            == len(serial_dict["scenarios"]) - n_after_crash
        )

    def test_stolen_lease_discards_in_flight_result(
        self, tmp_path, serial_dict
    ):
        # Regression: a worker whose lease is stolen mid-collect must
        # never put the stolen key's result.  A thief thread rewrites the
        # lease to a foreign owner as soon as it appears (what a
        # reclaim-after-expiry leaves on disk); the worker's put gate
        # checks disk ownership and discards.
        store = SweepStore(tmp_path)
        stolen = threading.Event()
        stop = threading.Event()

        def thief():
            lease_paths = {
                store.lease_path(sim_lease_name(key))
                for key in make_runner(small_grid())._sim_indices
            }
            while not stop.is_set():
                for path in lease_paths:
                    if path.exists() and not stolen.is_set():
                        with open(path, "w", encoding="utf-8") as handle:
                            json.dump(
                                {
                                    "format": 1, "name": path.stem,
                                    "owner": "thief", "pid": 999,
                                    "heartbeat": time.time() - 3600.0,
                                    "ttl_s": 0.5,
                                },
                                handle,
                            )
                        stolen.set()
                        return
                time.sleep(0.002)

        thread = threading.Thread(target=thief)
        thread.start()
        try:
            worker = SweepWorker(
                make_runner(small_grid()),
                store,
                owner="worker",
                lease_ttl_s=2.0,
                poll_interval_s=0.05,
                timeout_s=120.0,
            )
            report = worker.run()
        finally:
            stop.set()
            thread.join()
        assert stolen.is_set(), "the thief never saw a lease file"
        # The stolen key's first result was discarded, then redone after
        # the thief's (expired) lease was broken — and the final report
        # is still bit-identical to the serial run.
        assert worker.last_worker_stats.puts_discarded >= 1
        assert report.to_dict() == serial_dict
        assert len(store.names()) == len(serial_dict["scenarios"])
        assert not list(store.path.glob("*.lease"))

    def test_superseded_claim_is_released_and_not_counted(
        self, tmp_path, serial_dict
    ):
        # Deterministic replay of the claim-supersede race: a competitor
        # finishes a key between this worker's store load and its lease
        # acquisition.  The claim must be released immediately and move
        # to claims_superseded — wins exactly partition the keys the
        # fleet actually collected, however the race times out.
        donor_store = SweepStore(tmp_path / "donor")
        donor = make_runner(small_grid())
        donor.run(store=donor_store)

        store = SweepStore(tmp_path / "store")
        runner = make_runner(small_grid())
        keys = list(runner._sim_indices)
        raced_key = keys[0]
        by_key = {}
        for spec in runner._specs:
            by_key.setdefault(spec.simulation_key(), []).append(spec)

        worker = SweepWorker(
            runner, store,
            poll_interval_s=0.05, lease_ttl_s=30.0, timeout_s=120.0,
        )
        inner_claim = None

        def racing_claim(sim_key):
            # The "competitor" lands the key's completed records after
            # the load pass but before this worker's claim is granted.
            if sim_key == raced_key:
                for spec in by_key[sim_key]:
                    key = runner.store_key(spec)
                    result = donor_store.get(spec.name, key)
                    store.put(spec.name, key, result)
            return inner_claim(sim_key)

        original_run = runner.run

        def wrapped_run(store=None, *, claim_filter=None, **kwargs):
            nonlocal inner_claim
            inner_claim = claim_filter
            return original_run(
                store=store, claim_filter=racing_claim, **kwargs
            )

        runner.run = wrapped_run
        report = worker.run()
        assert report.to_dict() == serial_dict
        stats = worker.last_worker_stats
        assert stats.claims_superseded == 1
        # Exactly the other key was actually won and collected.
        assert stats.claims_won == len(keys) - 1
        assert not list(store.path.glob("*.lease"))

    def test_sigterm_releases_held_leases(self, tmp_path):
        store = SweepStore(tmp_path)
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(
            target=_sigterm_worker_entry, args=(str(store.path),)
        )
        victim.start()
        deadline = time.monotonic() + 60.0
        # Wait until the worker actually holds a lease...
        while not list(store.path.glob("*.lease")):
            assert victim.is_alive(), "victim finished before the SIGTERM"
            assert time.monotonic() < deadline
            time.sleep(0.02)
        os.kill(victim.pid, signal.SIGTERM)
        victim.join(60.0)
        # ...then SIGTERM unwinds through SystemExit(143) and the
        # worker's finally releases everything it held.  With a 1 h TTL,
        # only an explicit release can explain the empty directory.
        assert victim.exitcode == 143
        assert not list(store.path.glob("*.lease"))


class TestSourceFaults:
    def test_dropped_batches_are_counted_and_skipped(self, small_recording):
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:3]
        clean = list(
            DayRecordingSource("t", day, stream_ids=ids, batch_samples=256)
        )
        lossy_source = DayRecordingSource(
            "t",
            day,
            stream_ids=ids,
            batch_samples=256,
            faults=FaultPlan.of(
                FaultSpec(point=SOURCE_DROP_BATCH, hits=(1, 3))
            ),
        )
        lossy = list(lossy_source)
        assert lossy_source.dropped_batches == 2
        assert len(lossy) == len(clean) - 2
        kept = [clean[i] for i in range(len(clean)) if i not in (1, 3)]
        for got, want in zip(lossy, kept):
            np.testing.assert_array_equal(got.times, want.times)
        # A detector downstream keeps working across the gaps.
        det = OnlineDetector(
            ids, MDConfig(profile_init_s=30.0), sample_rate_hz=RATE
        )
        for batch in lossy:
            det.process_block(batch.times, batch.samples)


# --------------------------------------------------------------------------- #
# Router failure policies
# --------------------------------------------------------------------------- #


def day_batches(day, ids, batch_samples=128):
    return list(
        DayRecordingSource(
            "office", day, stream_ids=ids, batch_samples=batch_samples
        )
    )


def standalone_stream(day, ids, cfg):
    det = OnlineDetector(ids, cfg, sample_rate_hz=RATE)
    trace = day.trace.restricted_view(ids)
    matrix = np.column_stack([trace.streams[sid] for sid in ids])
    block = det.process_block(trace.times, matrix)
    det.finalize()
    return block, det.completed_windows


class TestRouterPolicies:
    CFG = MDConfig(profile_init_s=30.0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="failure_policy"):
            IngestRouter(failure_policy="retry")

    def test_default_policy_keeps_reliability_counters_empty(
        self, small_recording
    ):
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:3]
        with IngestRouter(
            n_workers=2, config=self.CFG, sample_rate_hz=RATE
        ) as router:
            router.register("office", ids)
            for batch in day_batches(day, ids):
                router.submit(batch)
            router.drain()
        assert router.stats.shard_restarts == {}
        assert router.stats.shard_quarantines == {}
        assert router.stats.dead_letters == {}
        assert router.stats.tenants_quarantined == 0

    def test_restart_shard_recovers_bitwise_identically(
        self, small_recording
    ):
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:3]
        router = IngestRouter(
            n_workers=1,
            config=self.CFG,
            sample_rate_hz=RATE,
            failure_policy="restart_shard",
            faults=FaultPlan.of(
                FaultSpec(point=ROUTER_SHARD_DEATH, hits=(2, 5))
            ),
        )
        with router:
            state = router.register("office", ids)
            for batch in day_batches(day, ids):
                router.submit(batch)
            router.drain()
            got = state.concatenated()
        want, want_windows = standalone_stream(day, ids, self.CFG)
        np.testing.assert_array_equal(got.std_sums, want.std_sums)
        np.testing.assert_array_equal(got.decisions, want.decisions)
        np.testing.assert_array_equal(got.durations, want.durations)
        assert state.detector.completed_windows == want_windows
        assert router.stats.shard_restarts == {0: 2}
        assert state.restores == 2
        assert (
            router.stats.batches_processed == router.stats.batches_submitted
        )

    def test_restart_budget_exhaustion_fails_fast(self, small_recording):
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:3]
        router = IngestRouter(
            n_workers=1,
            config=self.CFG,
            sample_rate_hz=RATE,
            failure_policy="restart_shard",
            max_shard_restarts=1,
            faults=FaultPlan.of(
                FaultSpec(point=ROUTER_SHARD_DEATH, hits=(1, 3))
            ),
        )
        router.register("office", ids)
        for batch in day_batches(day, ids):
            router.submit(batch)
        with pytest.raises(RuntimeError, match="ingest worker failed"):
            router.drain()
        assert router.stats.shard_restarts == {0: 1}
        with pytest.raises(RuntimeError):
            router.close()

    def test_quarantine_isolates_the_poison_tenant(self, small_recording):
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:3]
        router = IngestRouter(
            n_workers=1,  # both tenants share the shard: isolation matters
            config=self.CFG,
            sample_rate_hz=RATE,
            failure_policy="quarantine",
        )
        with router:
            router.register("healthy", ids)
            poison_state = router.register("poison", ids)
            healthy_batches = day_batches(day, ids)
            for i, batch in enumerate(healthy_batches):
                router.submit(
                    SampleBatch(
                        tenant="healthy",
                        times=batch.times,
                        samples=batch.samples,
                    )
                )
                if i == 1:
                    # Out-of-order times: poison's second batch replays
                    # its first — the detector rejects it.
                    first = healthy_batches[0]
                    router.submit(
                        SampleBatch(
                            tenant="poison",
                            times=first.times,
                            samples=first.samples,
                        )
                    )
                    router.submit(
                        SampleBatch(
                            tenant="poison",
                            times=first.times,
                            samples=first.samples,
                        )
                    )
            router.drain()
            healthy_state = router.tenant_state("healthy")
            got = healthy_state.concatenated()
        # The healthy shard-neighbour is untouched — bit-identical.
        want, _ = standalone_stream(day, ids, self.CFG)
        np.testing.assert_array_equal(got.std_sums, want.std_sums)
        np.testing.assert_array_equal(got.decisions, want.decisions)
        # The poison tenant is quarantined behind dead letters: the
        # failing batch plus every subsequent one.
        assert poison_state.quarantined
        assert len(poison_state.dead_letters) == 1
        assert "strictly increasing" in poison_state.dead_letters[0].error
        assert router.stats.tenants_quarantined == 1
        assert router.stats.shard_quarantines == {0: 1}
        assert router.stats.dead_letters == {"poison": 1}
        # Post-quarantine submissions dead-letter without processing.
        # (The router is closed now, so count via the recorded state.)
        assert poison_state.n_batches == 1  # only its first batch landed

    def test_quarantined_tenant_keeps_dead_lettering(self, small_recording):
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:3]
        batches = day_batches(day, ids)
        router = IngestRouter(
            n_workers=1, config=self.CFG, sample_rate_hz=RATE,
            failure_policy="quarantine",
        )
        with router:
            router.register("office", ids)
            router.submit(batches[0])
            router.submit(batches[0])  # replay: poison
            router.submit(batches[1])  # post-quarantine: dead letter
            router.drain()
            state = router.tenant_state("office")
        assert state.quarantined
        assert len(state.dead_letters) == 2
        assert state.dead_letters[1].error == "tenant is quarantined"
        assert router.stats.dead_letters == {"office": 2}
        assert router.stats.tenants_quarantined == 1

    def test_checkpoint_tenants_hand_over_bitwise(self, small_recording):
        # Kill-and-restore across router generations: half the stream in
        # router A, checkpoint, the other half in router B — bitwise
        # identical to one uninterrupted stream.
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:3]
        batches = day_batches(day, ids)
        half = len(batches) // 2
        first = IngestRouter(
            n_workers=2, config=self.CFG, sample_rate_hz=RATE
        )
        state_a = first.register("office", ids)
        for batch in batches[:half]:
            first.submit(batch)
        snapshots = first.checkpoint_tenants()
        blocks_a = list(state_a.blocks)
        first.close()

        second = IngestRouter(
            n_workers=2, config=self.CFG, sample_rate_hz=RATE
        )
        with second:
            state_b = second.register(
                "office", ids, restore_from=snapshots["office"]
            )
            for batch in batches[half:]:
                second.submit(batch)
            second.drain()
            blocks_b = list(state_b.blocks)
        want, want_windows = standalone_stream(day, ids, self.CFG)
        blocks = blocks_a + blocks_b
        np.testing.assert_array_equal(
            np.concatenate([b.std_sums for b in blocks]), want.std_sums
        )
        np.testing.assert_array_equal(
            np.concatenate([b.decisions for b in blocks]), want.decisions
        )
        np.testing.assert_array_equal(
            np.concatenate([b.durations for b in blocks]), want.durations
        )
        assert state_b.detector.completed_windows == want_windows

    def test_restore_from_rejects_overrides_and_mismatches(
        self, small_recording
    ):
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:3]
        donor = OnlineDetector(ids, self.CFG, sample_rate_hz=RATE)
        snap = donor.snapshot()
        router = IngestRouter(n_workers=1)
        try:
            with pytest.raises(ValueError, match="restore_from"):
                router.register(
                    "t", ids, restore_from=snap, config=self.CFG
                )
            with pytest.raises(ValueError, match="stream ids"):
                router.register("t", ids[:2], restore_from=snap)
            router.register("t", ids, restore_from=snap)
        finally:
            router.close()

"""Tests for metrics, cross-validation, mutual information and correlation."""

import numpy as np
import pytest

from repro.ml.correlation import correlation_matrix, most_correlated_pairs
from repro.ml.metrics import (
    DetectionCounts,
    accuracy,
    confusion_matrix,
    f_measure,
    precision,
    recall,
)
from repro.ml.multiclass import OneVsOneSVC
from repro.ml.mutual_info import (
    conditional_entropy,
    marginal_entropy,
    quantize,
    rank_features_by_rmi,
    relative_mutual_information,
    stream_importance,
)
from repro.ml.validation import (
    SVCFoldFitter,
    cross_val_scores,
    kfold_indices,
    learning_curve,
    stratified_kfold_indices,
    train_test_split,
)


class TestDetectionCounts:
    def test_precision_recall_fmeasure(self):
        counts = DetectionCounts(tp=8, fp=2, fn=2)
        assert counts.precision == pytest.approx(0.8)
        assert counts.recall == pytest.approx(0.8)
        assert counts.f_measure == pytest.approx(0.8)

    def test_zero_positives_give_zero_metrics(self):
        counts = DetectionCounts(tp=0, fp=0, fn=5)
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f_measure == 0.0

    def test_rates_sum_to_one(self):
        counts = DetectionCounts(tp=3, fp=1, fn=6)
        rates = counts.rates()
        assert sum(rates.values()) == pytest.approx(1.0)

    def test_addition_aggregates_counts(self):
        total = DetectionCounts(1, 2, 3) + DetectionCounts(4, 5, 6)
        assert (total.tp, total.fp, total.fn) == (5, 7, 9)

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            DetectionCounts(-1, 0, 0)

    def test_convenience_functions(self):
        assert precision(4, 1) == pytest.approx(0.8)
        assert recall(4, 1) == pytest.approx(0.8)
        assert f_measure(4, 1, 1) == pytest.approx(0.8)


class TestAccuracyConfusion:
    def test_accuracy_perfect_and_zero(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0
        assert accuracy([1, 2, 3], [3, 1, 2]) == 0.0

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_accuracy_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])

    def test_confusion_matrix_diagonal(self):
        mat = confusion_matrix(["a", "b", "a"], ["a", "b", "a"])
        assert np.array_equal(mat, np.array([[2, 0], [0, 1]]))

    def test_confusion_matrix_off_diagonal(self):
        mat = confusion_matrix(["a", "a", "b"], ["b", "a", "b"], labels=["a", "b"])
        assert mat[0, 1] == 1
        assert mat[0, 0] == 1
        assert mat[1, 1] == 1

    def test_confusion_matrix_total_equals_samples(self):
        y_true = ["x", "y", "z", "x", "y"]
        y_pred = ["x", "z", "z", "y", "y"]
        assert confusion_matrix(y_true, y_pred).sum() == 5


class TestCrossValidation:
    def test_kfold_covers_all_samples_exactly_once(self, rng):
        seen = []
        for _, test_idx in kfold_indices(20, 5, rng):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(20))

    def test_kfold_train_test_disjoint(self, rng):
        for train_idx, test_idx in kfold_indices(15, 3, rng):
            assert set(train_idx).isdisjoint(set(test_idx))

    def test_kfold_invalid_folds_raise(self, rng):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1, rng))
        with pytest.raises(ValueError):
            list(kfold_indices(3, 5, rng))

    def test_stratified_kfold_preserves_class_presence(self, rng):
        y = np.array([0] * 10 + [1] * 10)
        for train_idx, _ in stratified_kfold_indices(y, 5, rng):
            assert set(y[train_idx]) == {0, 1}

    def test_stratified_kfold_covers_all_samples(self, rng):
        y = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2, 2])
        seen = []
        for _, test_idx in stratified_kfold_indices(y, 3, rng):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(10))

    def test_train_test_split_sizes(self, rng):
        train, test = train_test_split(50, test_fraction=0.2, rng=rng)
        assert len(test) == 10
        assert len(train) == 40
        assert set(train).isdisjoint(set(test))

    def test_train_test_split_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=1.5, rng=rng)

    def test_cross_val_scores_on_separable_data(self, rng):
        X = np.vstack([rng.normal(-3, 0.3, (20, 2)), rng.normal(3, 0.3, (20, 2))])
        y = np.array([0] * 20 + [1] * 20)
        scores = cross_val_scores(
            lambda: OneVsOneSVC(kernel="linear"), X, y, n_folds=4, rng=rng
        )
        assert scores.shape == (4,)
        assert scores.mean() > 0.9

    def test_learning_curve_improves_with_more_data(self, rng):
        X = np.vstack([rng.normal(-2, 1.0, (60, 2)), rng.normal(2, 1.0, (60, 2))])
        y = np.array([0] * 60 + [1] * 60)
        result = learning_curve(
            lambda: OneVsOneSVC(kernel="linear"),
            X,
            y,
            train_sizes=[4, 60],
            n_folds=4,
            n_repeats=3,
            rng=rng,
        )
        assert result.mean_accuracy[-1] >= result.mean_accuracy[0] - 0.05
        assert np.all(result.ci95 >= 0)

    def test_learning_curve_requires_positive_sizes(self, rng):
        with pytest.raises(ValueError):
            learning_curve(
                lambda: OneVsOneSVC(), np.zeros((4, 1)), [0, 1, 0, 1], train_sizes=[]
            )

    def test_learning_curve_skips_single_class_subsets(self):
        """Single-class training subsets are skipped, not fit (regression).

        With one minority sample, every size-1 subset (and most size-2
        subsets) is single-class; the old ``< 1`` guard was dead code, so a
        degenerate constant classifier was silently scored.  Record every
        fit's training labels and assert each saw at least two classes.
        """
        fitted_label_sets = []

        class RecordingEstimator:
            def fit(self, X, y):
                fitted_label_sets.append(set(np.asarray(y).tolist()))
                self._majority = max(set(y), key=list(y).count)
                return self

            def predict(self, X):
                return np.full(np.atleast_2d(X).shape[0], self._majority)

        X = np.arange(24, dtype=float).reshape(12, 2)
        y = np.array(["a"] * 11 + ["b"])
        result = learning_curve(
            RecordingEstimator,
            X,
            y,
            train_sizes=[1, 2, 8],
            n_folds=3,
            n_repeats=4,
            rng=np.random.default_rng(0),
        )
        assert fitted_label_sets, "no fit ever ran"
        assert all(len(labels) >= 2 for labels in fitted_label_sets)
        # Size 1 can never contain two classes: NaN mean AND NaN ci95.
        assert np.isnan(result.mean_accuracy[0])
        assert np.isnan(result.ci95[0])

    def test_learning_curve_nan_ci95_for_empty_sizes(self):
        """Sizes with zero valid repeats report NaN ci95, not 0 (regression).

        The old code clamped the repeat count to 1, reporting a confident
        ``ci95 = 0`` next to a NaN mean.
        """
        rng = np.random.default_rng(1)
        X = rng.normal(size=(10, 2))
        y = np.array(["a"] * 9 + ["b"])
        result = learning_curve(
            lambda: OneVsOneSVC(kernel="linear"),
            X,
            y,
            train_sizes=[1, 5],
            n_folds=2,
            n_repeats=2,
            rng=rng,
        )
        empty = np.isnan(result.all_scores).all(axis=1)
        assert empty[0], "size 1 should have no valid repeats"
        assert np.isnan(result.ci95[empty]).all()
        assert np.isnan(result.mean_accuracy[empty]).all()
        # Sizes that did produce scores keep finite statistics.
        if (~empty).any():
            assert np.isfinite(result.ci95[~empty]).all()


class TestMutualInformation:
    def test_quantize_range(self, rng):
        q = quantize(rng.normal(size=100), bins=16)
        assert q.min() >= 0
        assert q.max() <= 15

    def test_quantize_constant_feature(self):
        q = quantize(np.ones(10), bins=256)
        assert np.all(q == 0)

    def test_quantize_rejects_nan_and_inf(self):
        for poison in (np.nan, np.inf, -np.inf):
            with pytest.raises(ValueError, match="non-finite"):
                quantize(np.array([1.0, poison, 2.0]))

    def test_marginal_entropy_nonnegative(self, rng):
        assert marginal_entropy(rng.normal(size=200)) >= 0

    def test_conditional_entropy_not_above_marginal(self, rng):
        x = rng.normal(size=200)
        y = (x > 0).astype(int)
        assert conditional_entropy(x, y) <= marginal_entropy(x) + 1e-9

    def test_rmi_informative_feature_beats_noise(self, rng):
        y = np.repeat([0, 1], 100)
        informative = y * 10.0 + rng.normal(0, 0.1, 200)
        noise = rng.normal(size=200)
        assert relative_mutual_information(informative, y) > relative_mutual_information(
            noise, y
        )

    def test_rmi_in_unit_interval(self, rng):
        y = np.repeat([0, 1], 50)
        x = rng.normal(size=100)
        assert 0.0 <= relative_mutual_information(x, y) <= 1.0

    def test_rmi_constant_feature_is_zero(self):
        y = np.repeat([0, 1], 5)
        assert relative_mutual_information(np.ones(10), y) == 0.0

    def test_rank_features_by_rmi_orders_descending(self, rng):
        y = np.repeat([0, 1], 100)
        X = np.column_stack([rng.normal(size=200), y * 5 + rng.normal(0, 0.1, 200)])
        ranked = rank_features_by_rmi(X, y, ["noise", "signal"])
        assert ranked[0].name == "signal"
        assert ranked[0].rmi >= ranked[1].rmi

    def test_rank_features_drops_highly_correlated(self, rng):
        y = np.repeat([0, 1], 100)
        signal = y * 5.0 + rng.normal(0, 0.1, 200)
        X = np.column_stack([signal, signal * 1.0001, rng.normal(size=200)])
        ranked = rank_features_by_rmi(
            X, y, ["s1", "s2", "noise"], drop_correlated_above=0.99
        )
        names = [fi.name for fi in ranked]
        assert not ("s1" in names and "s2" in names)

    def test_stream_importance_aggregates_by_stream(self):
        from repro.ml.mutual_info import FeatureImportance

        ranked = [
            FeatureImportance("d1-d2-var", 0.5),
            FeatureImportance("d1-d2-ent", 0.3),
            FeatureImportance("d2-d3-ac", 0.2),
        ]
        scores = stream_importance(ranked)
        assert scores[("d1", "d2")] == pytest.approx(0.5)
        assert scores[("d2", "d3")] == pytest.approx(0.2)


class TestCorrelation:
    def test_correlation_matrix_diagonal_is_one(self, rng):
        X = rng.normal(size=(30, 4))
        result = correlation_matrix(X, ["a", "b", "c", "d"])
        assert np.allclose(np.diag(result.matrix), 1.0)

    def test_perfectly_correlated_columns(self, rng):
        x = rng.normal(size=50)
        result = correlation_matrix(np.column_stack([x, 2 * x]), ["a", "b"])
        assert result.value("a", "b") == pytest.approx(1.0)

    def test_anticorrelated_columns(self, rng):
        x = rng.normal(size=50)
        result = correlation_matrix(np.column_stack([x, -x]), ["a", "b"])
        assert result.value("a", "b") == pytest.approx(-1.0)

    def test_constant_column_yields_zero_offdiagonal(self, rng):
        X = np.column_stack([np.ones(20), rng.normal(size=20)])
        result = correlation_matrix(X, ["const", "x"])
        assert result.value("const", "x") == pytest.approx(0.0)

    def test_names_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            correlation_matrix(rng.normal(size=(10, 3)), ["a", "b"])

    def test_most_correlated_pairs_sorted(self, rng):
        x = rng.normal(size=100)
        X = np.column_stack([x, x + rng.normal(0, 0.01, 100), rng.normal(size=100)])
        result = correlation_matrix(X, ["a", "b", "c"])
        pairs = most_correlated_pairs(result, top_k=3)
        assert pairs[0][:2] == ("a", "b")
        assert abs(pairs[0][2]) >= abs(pairs[-1][2])


class TestSVCFoldFitter:
    """Shared-Gram / warm-start learning-curve fitters."""

    def _data(self, seed=0, n_per=30, d=8):
        rng = np.random.default_rng(seed)
        X = np.vstack([rng.normal(c, 1.2, size=(n_per, d)) for c in (0.0, 2.0, 4.0)])
        y = np.repeat(np.array(["a", "b", "c"]), n_per)
        return X, y

    def _curve(self, X, y, fitter, seed=1):
        return learning_curve(
            None, X, y, [6, 12, 24, 48], n_folds=3, n_repeats=2,
            rng=np.random.default_rng(seed), fitter=fitter,
        )

    def test_shared_gram_bit_identical_to_per_fit_reference(self):
        X, y = self._data()
        shared = self._curve(
            X, y, SVCFoldFitter(kernel="rbf", random_state=0,
                                shared_gram=True, warm_start=False)
        )
        perfit = self._curve(
            X, y, SVCFoldFitter(kernel="rbf", random_state=0,
                                shared_gram=False, warm_start=False)
        )
        np.testing.assert_array_equal(
            shared.all_scores, perfit.all_scores
        )

    def test_fitter_and_estimator_paths_share_the_random_stream(self):
        # Same rng, same folds: a fitter curve and an estimator curve must
        # evaluate the identical sizes (NaN pattern) even though the
        # estimators differ.
        X, y = self._data()
        fitted = self._curve(X, y, SVCFoldFitter(kernel="linear", random_state=0))
        plain = learning_curve(
            lambda: OneVsOneSVC(kernel="linear", random_state=0),
            X, y, [6, 12, 24, 48], n_folds=3, n_repeats=2,
            rng=np.random.default_rng(1),
        )
        np.testing.assert_array_equal(
            np.isnan(fitted.all_scores), np.isnan(plain.all_scores)
        )

    def test_warm_start_curve_close_to_cold(self):
        X, y = self._data()
        warm = self._curve(X, y, SVCFoldFitter(kernel="linear", random_state=0,
                                               warm_start=True))
        cold = self._curve(X, y, SVCFoldFitter(kernel="linear", random_state=0,
                                               warm_start=False))
        # tol-equivalent stationary points: close scores, not bitwise.
        assert np.nanmax(np.abs(warm.all_scores - cold.all_scores)) <= 0.15

    def test_reference_error_cache_off_close_to_fast(self):
        X, y = self._data()
        fast = self._curve(X, y, SVCFoldFitter(kernel="linear", random_state=0))
        baseline = self._curve(
            X, y, SVCFoldFitter(kernel="linear", random_state=0,
                                shared_gram=False, warm_start=False,
                                error_cache=False)
        )
        assert np.nanmax(np.abs(fast.all_scores - baseline.all_scores)) <= 0.2

    def test_empty_test_folds_are_skipped(self):
        # Regression: 9 samples over 5 stratified folds leaves fold 4
        # empty (round-robin per class); the curve must skip it instead of
        # crashing on the accuracy of an empty prediction set.
        rng = np.random.default_rng(3)
        X = rng.normal(size=(9, 3))
        y = np.array(["a"] * 4 + ["b"] * 3 + ["c"] * 2)
        result = learning_curve(
            None, X, y, [4, 7], n_folds=5, n_repeats=2,
            rng=np.random.default_rng(0),
            fitter=SVCFoldFitter(kernel="linear", random_state=0),
        )
        assert np.isfinite(result.mean_accuracy).any()

    def test_learning_curve_requires_exactly_one_strategy(self):
        X, y = self._data()
        with pytest.raises(ValueError, match="exactly one"):
            learning_curve(None, X, y, [4], rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="exactly one"):
            learning_curve(
                lambda: OneVsOneSVC(), X, y, [4],
                rng=np.random.default_rng(0), fitter=SVCFoldFitter(),
            )

    def test_fitter_rejects_precomputed_kernel_name(self):
        X, y = self._data()
        with pytest.raises(ValueError, match="underlying kernel"):
            self._curve(X, y, SVCFoldFitter(kernel="precomputed"))

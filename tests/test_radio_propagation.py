"""Tests for path loss, fading, shadowing, links, channel and traces."""

import numpy as np
import pytest

from repro.radio.channel import ChannelConfig, RadioChannel
from repro.radio.fading import LinkFadeLevel, QuiescentNoise, SkewLaplace
from repro.radio.geometry import Point
from repro.radio.links import LinkSet, enumerate_stream_ids, stream_id
from repro.radio.office import paper_office
from repro.radio.pathloss import FreeSpacePathLoss, LogDistancePathLoss
from repro.radio.shadowing import BodyShadowingModel, ShadowingEffect
from repro.radio.trace import RssiTrace, StreamBuffer


class TestPathLoss:
    def test_loss_increases_with_distance(self):
        model = LogDistancePathLoss(exponent=3.0)
        assert model.loss_db(4.0) > model.loss_db(2.0) > model.loss_db(1.0)

    def test_reference_loss_at_reference_distance(self):
        model = LogDistancePathLoss(reference_loss_db=40.0, reference_distance=1.0)
        assert model.loss_db(1.0) == pytest.approx(40.0)

    def test_mean_rssi_decreases_with_distance(self):
        model = LogDistancePathLoss()
        assert model.mean_rssi_dbm(1.0) > model.mean_rssi_dbm(5.0)

    def test_higher_exponent_means_more_loss(self):
        lossy = LogDistancePathLoss(exponent=4.0)
        mild = LogDistancePathLoss(exponent=2.0)
        assert lossy.loss_db(5.0) > mild.loss_db(5.0)

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss().loss_db(-1.0)

    def test_invalid_exponent_raises(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)

    def test_free_space_matches_friis_at_2_4ghz(self):
        model = FreeSpacePathLoss(frequency_hz=2.4e9)
        # Friis at 1 m, 2.4 GHz is almost exactly 40 dB.
        assert model.loss_db(1.0) == pytest.approx(40.05, abs=0.1)

    def test_free_space_less_lossy_than_indoor_at_distance(self):
        indoor = LogDistancePathLoss(exponent=3.5)
        free = FreeSpacePathLoss()
        assert indoor.loss_db(10.0) > free.loss_db(10.0)


class TestFading:
    def test_skew_laplace_negative_bias(self, rng):
        dist = SkewLaplace(mode=0.0, lam_neg=0.4, lam_pos=1.2)
        samples = dist.sample(rng, size=5000)
        # The attenuation tail is heavier, so the mean is negative.
        assert samples.mean() < 0
        assert dist.mean() < 0

    def test_skew_laplace_scalar_sample(self, rng):
        value = SkewLaplace().sample(rng)
        assert isinstance(value, float)

    def test_skew_laplace_invalid_rates_raise(self):
        with pytest.raises(ValueError):
            SkewLaplace(lam_neg=0.0)

    def test_fade_level_draw_within_range(self, rng):
        for _ in range(20):
            fade = LinkFadeLevel.draw(rng, min_sensitivity=0.5, max_sensitivity=1.5)
            assert 0.5 <= fade.sensitivity <= 1.5

    def test_fade_level_negative_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            LinkFadeLevel(sensitivity=-0.1)

    def test_quiescent_noise_scale(self, rng):
        noise = QuiescentNoise(base_sigma_db=1.0, outlier_prob=0.0)
        samples = noise.sample(rng, fade_sensitivity=1.0, size=5000)
        assert np.std(samples) == pytest.approx(1.0, abs=0.1)

    def test_quiescent_noise_sensitivity_scaling(self, rng):
        noise = QuiescentNoise(base_sigma_db=1.0, outlier_prob=0.0)
        quiet = np.std(noise.sample(rng, 0.5, size=3000))
        loud = np.std(noise.sample(rng, 2.0, size=3000))
        assert loud > quiet

    def test_quiescent_noise_invalid_prob_raises(self):
        with pytest.raises(ValueError):
            QuiescentNoise(outlier_prob=1.5)


class TestShadowing:
    def test_body_on_line_of_sight_attenuates_most(self):
        model = BodyShadowingModel()
        on_los = model.single_body_effect(Point(1, 0), Point(0, 0), Point(2, 0))
        off_los = model.single_body_effect(Point(1, 0.5), Point(0, 0), Point(2, 0))
        assert on_los.attenuation_db > off_los.attenuation_db
        assert on_los.obstructed

    def test_far_body_has_no_effect(self):
        model = BodyShadowingModel()
        effect = model.single_body_effect(Point(1, 5.0), Point(0, 0), Point(2, 0))
        assert effect == ShadowingEffect.none()

    def test_combined_effect_adds_attenuations(self):
        model = BodyShadowingModel()
        one = model.single_body_effect(Point(1, 0), Point(0, 0), Point(2, 0))
        both = model.combined_effect(
            [Point(0.7, 0), Point(1.3, 0)], Point(0, 0), Point(2, 0)
        )
        assert both.attenuation_db > one.attenuation_db

    def test_fade_sensitivity_scales_attenuation(self):
        model = BodyShadowingModel()
        weak = model.single_body_effect(Point(1, 0), Point(0, 0), Point(2, 0), 0.5)
        strong = model.single_body_effect(Point(1, 0), Point(0, 0), Point(2, 0), 1.5)
        assert strong.attenuation_db > weak.attenuation_db

    def test_motion_effect_zero_for_static_body(self):
        model = BodyShadowingModel()
        assert model.motion_effect(Point(1, 0.5), 0.0, Point(0, 0), Point(2, 0)) == 0.0

    def test_motion_effect_grows_with_speed_until_saturation(self):
        model = BodyShadowingModel()
        slow = model.motion_effect(Point(1, 0.5), 0.3, Point(0, 0), Point(2, 0))
        walk = model.motion_effect(Point(1, 0.5), 1.4, Point(0, 0), Point(2, 0))
        sprint = model.motion_effect(Point(1, 0.5), 10.0, Point(0, 0), Point(2, 0))
        assert slow < walk <= sprint
        assert sprint <= model.motion_sigma_db * 1.5 + 1e-9

    def test_motion_effect_decays_with_distance(self):
        model = BodyShadowingModel()
        near = model.motion_effect(Point(1, 0.2), 1.4, Point(0, 0), Point(2, 0))
        far = model.motion_effect(Point(1, 2.5), 1.4, Point(0, 0), Point(2, 0))
        assert near > far

    def test_negative_speed_raises(self):
        with pytest.raises(ValueError):
            BodyShadowingModel().motion_effect(Point(0, 0), -1.0, Point(0, 0), Point(1, 0))

    def test_sensitive_region_width_grows_with_link_length(self):
        model = BodyShadowingModel()
        assert model.sensitive_region_width(6.0) > model.sensitive_region_width(1.0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            BodyShadowingModel(lambda_m=0.0)
        with pytest.raises(ValueError):
            BodyShadowingModel(sigma_reach_multiplier=0.5)


class TestLinks:
    def test_stream_id_format(self):
        assert stream_id("d1", "d2") == "d1-d2"

    def test_stream_id_same_sensor_raises(self):
        with pytest.raises(ValueError):
            stream_id("d1", "d1")

    def test_enumerate_stream_ids_count(self):
        ids = enumerate_stream_ids(["d1", "d2", "d3"])
        assert len(ids) == 6
        assert len(set(ids)) == 6

    def test_linkset_has_m_times_m_minus_one_streams(self, layout, rng):
        links = LinkSet(layout, rng)
        assert len(links) == 9 * 8

    def test_linkset_reciprocal_fade_levels(self, layout, rng):
        links = LinkSet(layout, rng)
        assert links.get("d1-d2").fade.sensitivity == links.get("d2-d1").fade.sensitivity

    def test_linkset_lookup_unknown_stream_raises(self, layout, rng):
        links = LinkSet(layout, rng)
        with pytest.raises(KeyError):
            links.get("d1-d99")

    def test_linkset_needs_two_sensors(self, layout, rng):
        single = layout.with_sensors(["d1"])
        with pytest.raises(ValueError):
            LinkSet(single, rng)

    def test_stream_length_matches_geometry(self, layout, rng):
        links = LinkSet(layout, rng)
        s = links.get("d2-d3")
        expected = layout.sensor("d2").position.distance_to(layout.sensor("d3").position)
        assert s.length == pytest.approx(expected)


class TestRadioChannel:
    @pytest.fixture()
    def channel(self, layout, rng):
        links = LinkSet(layout, rng)
        return RadioChannel(links, ChannelConfig(), rng, sample_interval_s=0.25)

    def test_sample_returns_all_streams(self, channel):
        sample = channel.sample([])
        assert set(sample.keys()) == set(channel.stream_ids)

    def test_rssi_values_plausible(self, channel):
        sample = channel.sample([])
        for value in sample.values():
            assert -95.0 <= value <= 10.0

    def test_quantization_to_integer_dbm(self, channel):
        sample = channel.sample([])
        for value in sample.values():
            assert value == pytest.approx(round(value))

    def test_moving_body_increases_fluctuation(self, layout):
        rng = np.random.default_rng(7)
        links = LinkSet(layout, rng)
        channel = RadioChannel(links, ChannelConfig(), rng)
        quiet = np.array([channel.sample_vector([]) for _ in range(80)])
        path = [Point(0.5 + 0.05 * i, 1.5) for i in range(80)]
        moving = np.array(
            [channel.sample_vector([p], [1.4]) for p in path]
        )
        assert moving.std(axis=0).sum() > quiet.std(axis=0).sum()

    def test_static_body_changes_mean_not_variance_much(self, layout):
        rng = np.random.default_rng(8)
        links = LinkSet(layout, rng)
        channel = RadioChannel(links, ChannelConfig(), rng)
        quiet = np.array([channel.sample_vector([]) for _ in range(100)])
        body = Point(3.0, 1.5)
        occupied = np.array([channel.sample_vector([body], [0.0]) for _ in range(100)])
        # The mean RSSI of obstructed links drops...
        assert occupied.mean() < quiet.mean()
        # ...but the total fluctuation level stays comparable.
        assert occupied.std(axis=0).sum() < quiet.std(axis=0).sum() * 1.3

    def test_speeds_length_mismatch_raises(self, channel):
        with pytest.raises(ValueError):
            channel.sample_vector([Point(1, 1)], [1.0, 2.0])

    def test_mean_rssi_longer_links_weaker(self, channel, layout):
        short = channel.mean_rssi("d2-d3")
        long = channel.mean_rssi("d2-d6")
        d_short = layout.sensor("d2").position.distance_to(layout.sensor("d3").position)
        d_long = layout.sensor("d2").position.distance_to(layout.sensor("d6").position)
        assert d_short < d_long
        assert short > long

    def test_reset_clears_drift(self, channel):
        for _ in range(10):
            channel.sample([])
        channel.reset()
        assert channel._drift == 0.0


class TestTraces:
    def test_stream_buffer_window(self):
        buf = StreamBuffer(["a", "b"], maxlen=4)
        for i in range(6):
            buf.append({"a": float(i), "b": float(-i)})
        assert buf.fill_level() == 4
        assert list(buf.window("a")) == [2.0, 3.0, 4.0, 5.0]
        assert list(buf.window("a", 2)) == [4.0, 5.0]

    def test_stream_buffer_missing_stream_raises(self):
        buf = StreamBuffer(["a"], maxlen=3)
        with pytest.raises(KeyError):
            buf.append({"b": 1.0})

    def test_stream_buffer_invalid_args(self):
        with pytest.raises(ValueError):
            StreamBuffer(["a"], maxlen=0)
        with pytest.raises(ValueError):
            StreamBuffer([], maxlen=3)

    def test_trace_from_samples_roundtrip(self):
        times = [0.0, 0.25, 0.5]
        samples = [{"a-b": 1.0, "b-a": 2.0} for _ in times]
        trace = RssiTrace.from_samples(times, samples)
        assert trace.n_samples == 3
        assert trace.stream_ids == ["a-b", "b-a"]
        assert trace.duration == pytest.approx(0.5)

    def test_trace_slice_time(self):
        times = np.arange(0, 10, 0.5)
        trace = RssiTrace(times=times, streams={"s": np.arange(times.shape[0], dtype=float)})
        sliced = trace.slice_time(2.0, 4.0)
        assert sliced.times.min() >= 2.0
        assert sliced.times.max() <= 4.0

    def test_trace_restricted_to_subset(self):
        times = np.arange(5, dtype=float)
        trace = RssiTrace(
            times=times,
            streams={"a-b": np.zeros(5), "b-a": np.ones(5), "a-c": np.ones(5)},
        )
        sub = trace.restricted_to(["a-b", "b-a"])
        assert sub.stream_ids == ["a-b", "b-a"]
        with pytest.raises(KeyError):
            trace.restricted_to(["missing"])

    def test_trace_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            RssiTrace(times=np.arange(3, dtype=float), streams={"s": np.zeros(4)})

    def test_trace_non_monotone_times_raise(self):
        with pytest.raises(ValueError):
            RssiTrace(times=np.array([0.0, 1.0, 0.5]), streams={"s": np.zeros(3)})

    def test_trace_sample_interval(self):
        times = np.arange(0, 2, 0.25)
        trace = RssiTrace(times=times, streams={"s": np.zeros(times.shape[0])})
        assert trace.sample_interval == pytest.approx(0.25)

"""Batch vs. streaming bit-identity of the detection kernel.

Extends the repo's equivalence discipline (``tests/test_analysis_equivalence.py``)
to the streaming engine of :mod:`repro.streaming`:

* :class:`OnlineStdSum` emits exactly the ``s_t`` series of
  :func:`online_std_sum_series` — partial-window head included — whatever
  the arrival batching (single samples, ragged batches, one big block);
* :class:`OnlineProfile` reproduces the scalar :class:`NormalProfile`
  chain (decisions and warm-started thresholds) bit for bit;
* :class:`OnlineDetector` matches both the columnar offline kernel and the
  per-sample :class:`MovementDetector` on the same trace: every ``s_t``,
  anomaly decision, threshold and window duration equal;
* merge-gap boundary cases (a run ending exactly ``merge_gap_s`` before
  the next, an anomalous final sample leaving a window open at EOF)
  produce the same durations in the scalar, columnar and streaming paths;
* the multi-tenant :class:`IngestRouter` never reorders a tenant's
  decision stream: per-tenant concatenated output is bit-identical to a
  standalone detector fed the same day, for any worker/queue geometry.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MDConfig
from repro.core.movement import (
    MovementDetector,
    NormalProfile,
    StdSumTracker,
    online_std_sum_series,
    run_profile_grid,
    variation_windows_from_flags,
    window_duration_series,
)
from repro.radio.trace import StreamBuffer
from repro.streaming import (
    DayRecordingSource,
    IngestRouter,
    OnlineDetector,
    OnlineProfile,
    OnlineStdSum,
    SampleBatch,
    WindowTracker,
    merge_by_time,
)

RATE = 4.0


def split_matrix(matrix, sizes):
    """Split a sample matrix into consecutive row batches of given sizes."""
    out, pos = [], 0
    for s in sizes:
        out.append(matrix[pos : pos + s])
        pos += s
    assert pos == matrix.shape[0]
    return out


def stream_std_sums(matrix, window_samples, sizes):
    tracker = OnlineStdSum(matrix.shape[1], window_samples)
    return np.concatenate(
        [tracker.extend(b) for b in split_matrix(matrix, sizes)]
    )


class TestOnlineStdSum:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 8, 9, 20, 100])
    @pytest.mark.parametrize("k", [1, 3])
    def test_single_sample_feed_matches_offline_series(self, rng, n, k):
        matrix = rng.normal(size=(n, k)) * 3.0
        ref = online_std_sum_series(matrix, 8)
        got = stream_std_sums(matrix, 8, [1] * n)
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize(
        "sizes",
        [[40], [1] * 40, [3, 7, 1, 9, 20], [5, 35], [39, 1], [2, 2, 36]],
    )
    def test_any_batching_matches_offline_series(self, rng, sizes):
        matrix = rng.normal(size=(40, 4)) * 2.0
        ref = online_std_sum_series(matrix, 8)
        np.testing.assert_array_equal(stream_std_sums(matrix, 8, sizes), ref)

    def test_partial_window_head_regression(self, rng):
        # S1 regression: fewer samples than the std window have arrived.
        # The streaming head must equal the offline partial-window values
        # AND the per-sample tracker's, at every instant — batched or not.
        k, w = 3, 12
        matrix = rng.normal(size=(7, k))
        ids = [f"s{j}" for j in range(k)]
        scalar_tracker = StdSumTracker(ids, w)
        scalar = np.array(
            [
                np.nan if v is None else v
                for v in (
                    scalar_tracker.update(dict(zip(ids, row)))
                    for row in matrix
                )
            ]
        )
        ref = online_std_sum_series(matrix, w)
        np.testing.assert_array_equal(scalar, ref)
        for sizes in ([7], [1] * 7, [2, 5], [6, 1]):
            np.testing.assert_array_equal(
                stream_std_sums(matrix, w, sizes), ref
            )

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=60),
        k=st.integers(min_value=1, max_value=4),
        w=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    def test_batch_split_invariance(self, n, k, w, seed, data):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(0.0, 5.0, size=(n, k))
        ref = online_std_sum_series(matrix, w)
        sizes, left = [], n
        while left > 0:
            s = data.draw(st.integers(min_value=1, max_value=left))
            sizes.append(s)
            left -= s
        np.testing.assert_array_equal(stream_std_sums(matrix, w, sizes), ref)

    def test_empty_batch_is_a_no_op(self, rng):
        matrix = rng.normal(size=(10, 2))
        tracker = OnlineStdSum(2, 4)
        parts = [
            tracker.extend(matrix[:5]),
            tracker.extend(matrix[:0]),
            tracker.extend(matrix[5:]),
        ]
        assert parts[1].shape == (0,)
        np.testing.assert_array_equal(
            np.concatenate([parts[0], parts[2]]),
            online_std_sum_series(matrix, 4),
        )

    def test_rejects_wrong_shapes(self):
        tracker = OnlineStdSum(3, 4)
        with pytest.raises(ValueError, match="sample batch"):
            tracker.extend(np.zeros((5, 2)))
        with pytest.raises(ValueError, match="sample batch"):
            tracker.extend(np.zeros(5))
        with pytest.raises(ValueError, match="n_streams"):
            OnlineStdSum(0, 4)
        with pytest.raises(ValueError, match="window_samples"):
            OnlineStdSum(3, 1)


class TestOnlineProfile:
    CFG = MDConfig(profile_init_s=5.0, batch_size=16)

    def profile_series(self, rng, n):
        values = np.abs(rng.normal(2.0, 0.5, n))
        values[n // 2 :: 7] += 4.0  # sprinkle anomalies
        return values

    @pytest.mark.parametrize("sizes", [[200], [1] * 200, [13, 50, 137], [37] * 5 + [15]])
    def test_matches_scalar_normal_profile(self, rng, sizes):
        values = self.profile_series(rng, 200)
        init_samples = max(int(round(self.CFG.profile_init_s * RATE)), 2)

        scalar = NormalProfile(self.CFG, init_samples)
        want = np.array(
            [
                -1 if d is None else int(d)
                for d in (scalar.observe(float(v)) for v in values)
            ],
            dtype=np.int8,
        )

        online = OnlineProfile(self.CFG, init_samples)
        got = np.concatenate(
            [online.extend(b)[0] for b in split_matrix(values, sizes)]
        )
        np.testing.assert_array_equal(got, want)
        assert online.threshold == scalar.threshold

    def test_threshold_trace_matches_profile_grid(self, rng):
        values = self.profile_series(rng, 300)
        init_samples = max(int(round(self.CFG.profile_init_s * RATE)), 2)
        grid = run_profile_grid(values[:, np.newaxis], self.CFG, init_samples)

        online = OnlineProfile(self.CFG, init_samples)
        decisions, thresholds = online.extend(values)
        np.testing.assert_array_equal(
            decisions == 1, grid.decisions[:, 0] == 1
        )
        np.testing.assert_array_equal(thresholds, grid.thresholds[:, 0])

    def test_batch_size_larger_than_init_matches_scalar(self, rng):
        # The columnar grid falls back to a scalar drive in this regime;
        # the streaming profile handles it uniformly — pin it to the
        # scalar reference directly.
        cfg = MDConfig(profile_init_s=3.0, batch_size=50)
        init_samples = max(int(round(cfg.profile_init_s * RATE)), 2)
        values = self.profile_series(rng, 180)
        scalar = NormalProfile(cfg, init_samples)
        want = np.array(
            [
                -1 if d is None else int(d)
                for d in (scalar.observe(float(v)) for v in values)
            ],
            dtype=np.int8,
        )
        online = OnlineProfile(cfg, init_samples)
        got = np.concatenate(
            [online.extend(b)[0] for b in split_matrix(values, [90, 90])]
        )
        np.testing.assert_array_equal(got, want)
        assert online.threshold == scalar.threshold


def detector_pair(k=4, cfg=None):
    cfg = cfg if cfg is not None else MDConfig(
        profile_init_s=15.0, batch_size=10, merge_gap_s=2.0
    )
    ids = [f"s{j}" for j in range(k)]
    return ids, cfg


def anomalous_day(rng, n=1200, k=4):
    times = np.arange(n) / RATE
    matrix = rng.normal(0.0, 2.0, size=(n, k))
    matrix[n // 3 : n // 3 + 40] += rng.normal(0.0, 8.0, size=(40, k))
    matrix[2 * n // 3 : 2 * n // 3 + 10] += 15.0
    matrix[-3:] += 20.0
    return times, matrix


class TestOnlineDetector:
    def columnar_reference(self, times, matrix, cfg):
        n = times.shape[0]
        w = max(int(round(cfg.std_window_s * RATE)), 2)
        ini = max(int(round(cfg.profile_init_s * RATE)), 2)
        std_sums = online_std_sum_series(matrix, w)
        anomalous = np.zeros(n, dtype=bool)
        grid = run_profile_grid(std_sums[1:, np.newaxis], cfg, ini)
        anomalous[1:] = grid.decisions[:, 0] == 1
        durations = window_duration_series(times, anomalous, cfg.merge_gap_s)
        return std_sums, anomalous, grid.thresholds[:, 0], durations

    @pytest.mark.parametrize(
        "sizes", [None, [1200], [1, 7, 64, 256] * 4 + [1200 - 4 * 328]]
    )
    def test_matches_columnar_kernel(self, rng, sizes):
        ids, cfg = detector_pair()
        times, matrix = anomalous_day(rng)
        std_sums, anomalous, thresholds, durations = self.columnar_reference(
            times, matrix, cfg
        )
        det = OnlineDetector(ids, cfg, sample_rate_hz=RATE)
        if sizes is None:
            sizes = [1] * times.shape[0]
        blocks, pos = [], 0
        for s in sizes:
            blocks.append(
                det.process_block(times[pos : pos + s], matrix[pos : pos + s])
            )
            pos += s
        got_ss = np.concatenate([b.std_sums for b in blocks])
        got_anom = np.concatenate([b.anomalous for b in blocks])
        got_th = np.concatenate([b.thresholds for b in blocks])
        got_dur = np.concatenate([b.durations for b in blocks])
        np.testing.assert_array_equal(got_ss, std_sums)
        np.testing.assert_array_equal(got_anom, anomalous)
        np.testing.assert_array_equal(got_th[1:], thresholds)
        np.testing.assert_array_equal(got_dur, durations)

    def test_per_sample_process_matches_movement_detector(self, rng):
        ids, cfg = detector_pair(k=3)
        times, matrix = anomalous_day(rng, n=800, k=3)
        md = MovementDetector(ids, cfg, sample_rate_hz=RATE)
        online = OnlineDetector(ids, cfg, sample_rate_hz=RATE)
        for i, t in enumerate(times):
            sample = dict(zip(ids, matrix[i]))
            assert md.process(float(t), sample) == online.process(
                float(t), sample
            )
            assert md.current_window_duration(
                float(t)
            ) == online.current_window_duration(float(t))
        md.finalize(float(times[-1]))
        online.finalize()
        assert online.completed_windows == md.completed_windows

    def test_replayed_recording_day_matches_columnar_kernel(
        self, small_recording
    ):
        # The acceptance-criterion case: a real recorded DayRecording.
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:5]
        cfg = MDConfig(profile_init_s=30.0)
        trace = day.trace.restricted_view(ids)
        matrix = np.column_stack([trace.streams[sid] for sid in ids])
        std_sums, anomalous, thresholds, durations = self.columnar_reference(
            trace.times, matrix, cfg
        )
        det = OnlineDetector(ids, cfg, sample_rate_hz=RATE)
        blocks = [
            det.process_block(batch.times, batch.samples)
            for batch in DayRecordingSource(
                "office-0", day, stream_ids=ids, batch_samples=97
            )
        ]
        np.testing.assert_array_equal(
            np.concatenate([b.std_sums for b in blocks]), std_sums
        )
        np.testing.assert_array_equal(
            np.concatenate([b.anomalous for b in blocks]), anomalous
        )
        np.testing.assert_array_equal(
            np.concatenate([b.durations for b in blocks]), durations
        )

    def test_rejects_non_increasing_times(self, rng):
        ids, cfg = detector_pair(k=2)
        det = OnlineDetector(ids, cfg, sample_rate_hz=RATE)
        det.process_block(np.array([0.0, 0.25]), rng.normal(size=(2, 2)))
        with pytest.raises(ValueError, match="strictly increasing"):
            det.process_block(np.array([0.25]), rng.normal(size=(1, 2)))
        with pytest.raises(ValueError, match="strictly increasing"):
            det.process_block(
                np.array([0.5, 0.5]), rng.normal(size=(2, 2))
            )

    def test_recent_window_head_matches_stream_buffer(self, rng):
        # S1: the array replay's classification windows at stream start
        # (`col[i + 1 - fill : i + 1]` with fill = min(i + 1, maxlen))
        # must hold exactly the samples the online StreamBuffer holds.
        ids = ["a", "b"]
        maxlen = 6
        matrix = rng.normal(size=(10, 2))
        cols = [np.ascontiguousarray(matrix[:, j]) for j in range(2)]
        buf = StreamBuffer(ids, maxlen=maxlen)
        for i in range(matrix.shape[0]):
            buf.append(dict(zip(ids, matrix[i])))
            assert buf.fill_level() == min(i + 1, maxlen)
            fill = min(i + 1, maxlen)
            array_windows = {
                sid: col[i + 1 - fill : i + 1]
                for sid, col in zip(ids, cols)
            }
            online_windows = buf.windows()
            for sid in ids:
                np.testing.assert_array_equal(
                    online_windows[sid], array_windows[sid]
                )


class TestMergeGapBoundaries:
    """S2: merge-gap edge cases agree across scalar, columnar and streaming."""

    GAP = 2.0

    def all_paths_durations(self, times, flags):
        """(scalar WindowTracker, columnar, streaming) duration series."""
        tracker = WindowTracker(self.GAP)
        scalar = np.array(
            [tracker.update(float(t), bool(f)) for t, f in zip(times, flags)]
        )
        columnar = window_duration_series(
            times, np.asarray(flags, dtype=bool), self.GAP
        )
        return tracker, scalar, columnar

    def streaming_durations(self, times, flags):
        # Drive an OnlineDetector-like composition: the WindowTracker *is*
        # the streaming path's bookkeeping; re-run it batched to show
        # batching cannot matter for a per-step automaton.
        tracker = WindowTracker(self.GAP)
        out = []
        for lo in range(0, len(times), 3):
            for t, f in zip(times[lo : lo + 3], flags[lo : lo + 3]):
                out.append(tracker.update(float(t), bool(f)))
        return tracker, np.array(out)

    def assert_all_equal(self, times, flags):
        tracker, scalar, columnar = self.all_paths_durations(times, flags)
        s_tracker, streamed = self.streaming_durations(times, flags)
        np.testing.assert_array_equal(scalar, columnar)
        np.testing.assert_array_equal(streamed, columnar)
        # Completed windows agree with the columnar closed form once the
        # stream is finalised (EOF closes any open window).
        tracker.finalize()
        s_tracker.finalize()
        want = variation_windows_from_flags(
            times, np.asarray(flags, dtype=bool), self.GAP
        )
        assert tuple(tracker.completed_windows) == want
        assert tuple(s_tracker.completed_windows) == want

    def test_run_ending_exactly_merge_gap_before_next_merges(self):
        # The non-anomalous instant right before the second run arrives
        # exactly GAP after the first run's last anomalous sample: the
        # close rule is strictly `>`, so the runs must merge.
        times = np.array([0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0])
        flags = [False, True, False, False, False, False, True, True, False]
        # times[6-1] - times[1] = 2.5 - 0.5 = GAP exactly.
        assert times[5] - times[1] == self.GAP
        self.assert_all_equal(times, flags)
        want = variation_windows_from_flags(
            times, np.asarray(flags, dtype=bool), self.GAP
        )
        assert len(want) == 1  # merged, not split
        assert want[0].t_start == 0.5 and want[0].t_end == 3.5

    def test_gap_one_sample_beyond_threshold_splits(self):
        times = np.arange(10) * 0.75
        flags = [False, True, False, False, False, False, True, True, False, False]
        # times[5] - times[1] = 3.0 > GAP: the window closed before the
        # second run, so two windows result.
        assert times[5] - times[1] > self.GAP
        self.assert_all_equal(times, flags)
        want = variation_windows_from_flags(
            times, np.asarray(flags, dtype=bool), self.GAP
        )
        assert len(want) == 2

    def test_anomalous_final_sample_leaves_window_open_at_eof(self):
        times = np.arange(8) * 0.25
        flags = [False] * 6 + [True, True]
        tracker, scalar, columnar = self.all_paths_durations(times, flags)
        np.testing.assert_array_equal(scalar, columnar)
        # The window is still open at EOF: dW grows through the last sample.
        assert scalar[-1] == pytest.approx(times[-1] - times[6])
        assert tracker.window_start == times[6]
        # Finalizing closes it at the last anomalous instant, exactly like
        # MovementDetector.finalize and the columnar closed form.
        tracker.finalize()
        want = variation_windows_from_flags(
            times, np.asarray(flags, dtype=bool), self.GAP
        )
        assert tuple(tracker.completed_windows) == want
        assert tracker.completed_windows[-1].t_end == times[-1]
        assert tracker.window_start is None

    def test_day_of_single_anomalous_sample(self):
        times = np.array([0.0])
        flags = [True]
        self.assert_all_equal(times, flags)

    def test_zero_merge_gap(self):
        times = np.arange(12) * 0.25
        flags = [bool(i % 2) for i in range(12)]
        tracker = WindowTracker(0.0)
        scalar = np.array(
            [tracker.update(float(t), bool(f)) for t, f in zip(times, flags)]
        )
        columnar = window_duration_series(
            times, np.asarray(flags, dtype=bool), 0.0
        )
        np.testing.assert_array_equal(scalar, columnar)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=50),
        gap_steps=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_random_flag_series_agree_everywhere(self, n, gap_steps, seed):
        rng = np.random.default_rng(seed)
        times = np.cumsum(rng.uniform(0.1, 0.6, n))
        flags = rng.random(n) < 0.4
        gap = gap_steps * 0.25
        tracker = WindowTracker(gap)
        scalar = np.array(
            [tracker.update(float(t), bool(f)) for t, f in zip(times, flags)]
        )
        columnar = window_duration_series(times, flags, gap)
        np.testing.assert_array_equal(scalar, columnar)
        tracker.finalize()
        assert tuple(tracker.completed_windows) == variation_windows_from_flags(
            times, flags, gap
        )


class TestStreamSources:
    def test_day_recording_source_covers_trace_exactly(self, small_recording):
        day = small_recording.days[0]
        ids = day.trace.stream_ids[:3]
        source = DayRecordingSource(
            "t0", day, stream_ids=ids, batch_samples=100
        )
        batches = list(source)
        assert sum(b.n_samples for b in batches) == day.trace.n_samples
        np.testing.assert_array_equal(
            np.concatenate([b.times for b in batches]), day.trace.times
        )
        matrix = np.column_stack([day.trace.streams[sid] for sid in ids])
        np.testing.assert_array_equal(
            np.vstack([b.samples for b in batches]), matrix
        )
        assert all(b.tenant == "t0" for b in batches)

    def test_sample_batch_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            SampleBatch("t", np.array([0.0, 0.0]), np.zeros((2, 1)))
        with pytest.raises(ValueError, match="equal length"):
            SampleBatch("t", np.array([0.0]), np.zeros((2, 1)))
        with pytest.raises(ValueError, match="empty"):
            SampleBatch("t", np.empty(0), np.zeros((0, 1)))

    def test_merge_by_time_preserves_per_tenant_order(self, small_recording):
        sources = [
            DayRecordingSource(
                f"office-{i}",
                small_recording.days[i % small_recording.n_days],
                batch_samples=64 + 13 * i,
            )
            for i in range(4)
        ]
        merged = list(merge_by_time(sources))
        assert len(merged) == sum(
            len(list(DayRecordingSource(
                f"office-{i}",
                small_recording.days[i % small_recording.n_days],
                batch_samples=64 + 13 * i,
            )))
            for i in range(4)
        )
        # Global interleave is ordered by batch start time...
        starts = [b.t_first for b in merged]
        assert starts == sorted(starts)
        # ...and every tenant's own batches remain in time order.
        for i in range(4):
            own = [b for b in merged if b.tenant == f"office-{i}"]
            own_times = np.concatenate([b.times for b in own])
            assert np.all(np.diff(own_times) > 0)


class TestIngestRouter:
    N_TENANTS = 8

    def tenant_feeds(self, small_recording, rng):
        """Eight offices with distinct sensor subsets over the recording."""
        feeds = []
        for i in range(self.N_TENANTS):
            day = small_recording.days[i % small_recording.n_days]
            all_ids = day.trace.stream_ids
            ids = list(
                rng.choice(all_ids, size=3 + (i % 3), replace=False)
            )
            feeds.append((f"office-{i}", day, ids))
        return feeds

    def standalone_reference(self, day, ids, cfg):
        det = OnlineDetector(ids, cfg, sample_rate_hz=RATE)
        trace = day.trace.restricted_view(ids)
        matrix = np.column_stack([trace.streams[sid] for sid in ids])
        block = det.process_block(trace.times, matrix)
        det.finalize()
        return block, det.completed_windows

    @pytest.mark.parametrize("n_workers,queue_capacity", [(1, 64), (3, 2), (4, 8)])
    def test_eight_tenants_bit_identical_to_standalone(
        self, small_recording, rng, n_workers, queue_capacity
    ):
        cfg = MDConfig(profile_init_s=30.0)
        feeds = self.tenant_feeds(small_recording, rng)
        with IngestRouter(
            n_workers=n_workers,
            queue_capacity=queue_capacity,
            config=cfg,
            sample_rate_hz=RATE,
        ) as router:
            for tenant, day, ids in feeds:
                router.register(tenant, ids)
            sources = [
                DayRecordingSource(
                    tenant, day, stream_ids=ids, batch_samples=128
                )
                for tenant, day, ids in feeds
            ]
            for batch in merge_by_time(sources):
                router.submit(batch)
            router.drain()
            assert (
                router.stats.batches_processed
                == router.stats.batches_submitted
            )
            states = {
                tenant: router.tenant_state(tenant)
                for tenant, _, _ in feeds
            }
        # Router closed: every tenant's stream equals a standalone replay.
        for tenant, day, ids in feeds:
            state = states[tenant]
            got = state.concatenated()
            want, want_windows = self.standalone_reference(day, ids, cfg)
            np.testing.assert_array_equal(got.std_sums, want.std_sums)
            np.testing.assert_array_equal(got.decisions, want.decisions)
            np.testing.assert_array_equal(got.durations, want.durations)
            assert state.detector.completed_windows == want_windows
            assert state.n_samples == day.trace.n_samples

    def test_round_robin_sharding(self):
        router = IngestRouter(n_workers=3)
        try:
            shards = [
                router.register(f"t{i}", ["a", "b"]).shard for i in range(7)
            ]
            assert shards == [0, 1, 2, 0, 1, 2, 0]
            assert router.stats.n_tenants == 7
        finally:
            router.close()

    def test_unknown_tenant_rejected(self):
        with IngestRouter(n_workers=1) as router:
            with pytest.raises(KeyError, match="not registered"):
                router.submit(
                    SampleBatch("ghost", np.array([0.0]), np.zeros((1, 2)))
                )

    def test_duplicate_registration_rejected(self):
        with IngestRouter(n_workers=1) as router:
            router.register("t0", ["a"])
            with pytest.raises(ValueError, match="already registered"):
                router.register("t0", ["a"])

    def test_worker_failure_surfaces_on_drain(self):
        router = IngestRouter(n_workers=1, queue_capacity=4)
        router.register("t0", ["a", "b"])
        router.submit(
            SampleBatch("t0", np.array([0.0, 0.25]), np.zeros((2, 2)))
        )
        # Time goes backwards: the worker hits the detector's validation
        # error, which must surface on the control thread, not vanish.
        router.submit(SampleBatch("t0", np.array([0.1]), np.zeros((1, 2))))
        with pytest.raises(RuntimeError, match="ingest worker failed"):
            router.drain()
            router.close()

    def test_backpressure_blocks_submitters(self):
        # A router whose single worker is stalled by a slow first batch:
        # submits beyond queue_capacity must block until it drains.
        cfg = MDConfig(profile_init_s=5.0)
        router = IngestRouter(
            n_workers=1, queue_capacity=2, config=cfg, sample_rate_hz=RATE
        )
        try:
            router.register("t0", ["a"])
            n_batches, batch = 12, 25
            times = np.arange(n_batches * batch) / RATE
            progressed = []

            def producer():
                for i in range(n_batches):
                    lo = i * batch
                    router.submit(
                        SampleBatch(
                            "t0",
                            times[lo : lo + batch],
                            np.random.default_rng(i).normal(
                                size=(batch, 1)
                            ),
                        )
                    )
                    progressed.append(i)

            thread = threading.Thread(target=producer)
            thread.start()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            router.drain()
            state = router.tenant_state("t0")
            assert state.n_batches == n_batches
            # The bounded queue never held more than its capacity.
            assert router.stats.max_queue_depth <= 2
        finally:
            router.close()


class TestIngestRouterLifecycle:
    """Regression tests for the router's close/failure edges.

    Before the fix, ``submit()`` racing ``close()`` could land a batch on a
    queue whose worker had already exited — a later ``drain()`` then hung
    forever on ``Queue.join`` — and ``close()``/``drain()`` after a worker
    failure raised only on the first call, so callers could miss it.
    """

    @staticmethod
    def one_batch(tenant="t0", t0=0.0):
        return SampleBatch(
            tenant, np.array([t0, t0 + 0.25]), np.zeros((2, 2))
        )

    @staticmethod
    def poison_router():
        """A router whose single worker has recorded a failure."""
        router = IngestRouter(n_workers=1, queue_capacity=4)
        router.register("t0", ["a", "b"])
        router.submit(
            SampleBatch("t0", np.array([0.0, 0.25]), np.zeros((2, 2)))
        )
        # Time goes backwards within the tenant's stream: the detector's
        # validation error becomes the router's recorded failure.
        router.submit(SampleBatch("t0", np.array([0.1]), np.zeros((1, 2))))
        for q in router._queues:
            q.join()
        assert router._failure is not None
        return router

    def test_submit_after_close_raises(self):
        router = IngestRouter(n_workers=2)
        router.register("t0", ["a", "b"])
        router.close()
        with pytest.raises(RuntimeError, match="router is closed"):
            router.submit(self.one_batch())

    def test_register_after_close_raises(self):
        router = IngestRouter(n_workers=1)
        router.close()
        with pytest.raises(RuntimeError, match="router is closed"):
            router.register("late", ["a"])

    def test_drain_after_close_is_noop(self):
        router = IngestRouter(n_workers=2)
        router.register("t0", ["a", "b"])
        router.submit(self.one_batch())
        router.close()
        # Must return immediately (the workers are gone — a q.join that
        # still expected work would hang), and be repeatable.
        router.drain()
        router.drain()

    def test_double_drain_and_double_close_are_idempotent(self):
        router = IngestRouter(n_workers=1)
        router.register("t0", ["a", "b"])
        router.submit(self.one_batch())
        router.drain()
        router.drain()
        router.close()
        router.close()
        assert router.stats.batches_processed == 1

    def test_close_after_failure_raises_every_time(self):
        router = self.poison_router()
        for _ in range(3):
            with pytest.raises(RuntimeError, match="ingest worker failed"):
                router.close()

    def test_drain_after_failed_close_still_raises(self):
        router = self.poison_router()
        with pytest.raises(RuntimeError, match="ingest worker failed"):
            router.close()
        with pytest.raises(RuntimeError, match="ingest worker failed"):
            router.drain()

    def test_submit_and_register_after_failure_raise(self):
        router = self.poison_router()
        with pytest.raises(RuntimeError, match="ingest worker failed"):
            router.submit(self.one_batch(t0=10.0))
        with pytest.raises(RuntimeError, match="ingest worker failed"):
            router.register("t1", ["a"])
        with pytest.raises(RuntimeError, match="ingest worker failed"):
            router.close()

    def test_submit_racing_close_never_hangs_drain(self):
        # Hammer the submit/close race: producers submit as fast as they
        # can while the control thread closes.  Every submit must either
        # be fully processed or raise "router is closed" — none may land
        # on a dead queue (which would make drain()/close() hang).
        for attempt in range(5):
            router = IngestRouter(n_workers=2, queue_capacity=8)
            router.register("t0", ["a", "b"])
            router.register("t1", ["a", "b"])
            start = threading.Event()
            outcomes = []

            def producer(tenant, outcomes=outcomes):
                start.wait()
                t = 0.0
                while True:
                    try:
                        router.submit(
                            SampleBatch(
                                tenant,
                                np.array([t, t + 0.1]),
                                np.zeros((2, 2)),
                            )
                        )
                        outcomes.append("ok")
                    except RuntimeError:
                        outcomes.append("closed")
                        return
                    t += 1.0

            threads = [
                threading.Thread(target=producer, args=(f"t{i}",))
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            start.set()
            closer = threading.Thread(target=router.close)
            closer.start()
            closer.join(timeout=30.0)
            assert not closer.is_alive(), "close() hung"
            for thread in threads:
                thread.join(timeout=30.0)
                assert not thread.is_alive(), "producer hung"
            # Every producer eventually observed the close...
            assert outcomes.count("closed") == 2
            # ...and every accepted batch was actually processed.
            assert (
                router.stats.batches_processed
                == router.stats.batches_submitted
                == outcomes.count("ok")
            )

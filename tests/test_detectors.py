"""The detector zoo: registry, bit-identity, codec and sweep-axis contracts.

Extends the repo's equivalence discipline to :mod:`repro.detectors`:

* the registry resolves names / classes / instances and rejects anything
  that is not a frozen-config detector, with actionable errors;
* **every registered detector** (and tuned variants) has a streaming
  engine bitwise-identical to its offline reference grid under
  hypothesis-generated random batch splits — partial-window head
  included — the same contract ``OnlineStdSum``/``OnlineProfile`` set;
* ``KdeMdDetector`` is a pure port: its grids equal
  :func:`repro.core.movement.run_profile_grid` exactly, so the golden
  numbers cannot move;
* detector configs round-trip through the sweep-store component codec;
* *detector* works as a first-class :class:`ScenarioGrid` axis: shared
  recordings, per-detector store records (warm resume of one detector
  leaves the others' holes intact), KDE rows of a zoo sweep identical to
  a KDE-only sweep, and a ragged-tolerant comparison table.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.campaign import CampaignScale
from repro.analysis.md_performance import MDTableRow
from repro.analysis.scenarios import (
    ScenarioGrid,
    ScenarioResult,
    ScenarioSpec,
    ScenarioSweepRunner,
    SweepReport,
)
from repro.analysis.sweep_store import (
    SweepStore,
    component_from_dict,
    component_to_dict,
)
from repro.core.config import FadewichConfig, MDConfig
from repro.core.movement import online_std_sum_series, run_profile_grid
from repro.detectors import (
    DetectionGrid,
    EmaMadDetector,
    KdeMdDetector,
    VarianceThresholdDetector,
    detector_names,
    get_detector,
    register_detector,
)
from repro.detectors import base as detector_base
from repro.ml.metrics import DetectionCounts
from repro.radio.office import paper_office
from repro.streaming import IngestRouter, OnlineDetector, SampleBatch

RATE = 4.0

# Tuned variants exercise the small-window/short-init code paths the
# defaults (short_window=30, long_window=120, window=10) rarely reach on
# compact test series.
TUNED_EMA = EmaMadDetector(
    ema_alpha=0.5,
    short_window=4,
    long_window=9,
    min_long=3,
    threshold_scale=2.0,
    dev_factor=2.0,
    down_ratio=0.5,
)
TUNED_VARIANCE = VarianceThresholdDetector(window=3, threshold_scale=2.0)


def zoo_variants():
    """Every registered detector (default config) plus tuned variants."""
    variants = [(name, get_detector(name)) for name in detector_names()]
    variants += [("ema_mad-tuned", TUNED_EMA), ("variance-tuned", TUNED_VARIANCE)]
    return variants


def variant_params():
    return [pytest.param(det, id=label) for label, det in zoo_variants()]


def split_series(values, sizes):
    out, pos = [], 0
    for s in sizes:
        out.append(values[pos : pos + s])
        pos += s
    assert pos == values.shape[0]
    return out


def stream_grid(detector, values, config, init_samples, sizes):
    """Run a detector's streaming engine over ``values`` in given splits."""
    engine = detector.streaming_engine(config, init_samples)
    decisions, thresholds = [], []
    for batch in split_series(values, sizes):
        d, th = engine.extend(batch)
        decisions.append(d)
        thresholds.append(th)
    return np.concatenate(decisions), np.concatenate(thresholds)


def anomaly_series(rng, n):
    values = np.abs(rng.normal(2.0, 0.5, n))
    values[n // 2 :: 5] += 4.0
    return values


# --------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_names_sorted(self):
        names = detector_names()
        assert names == sorted(names)
        assert {"ema_mad", "kde_md", "variance"} <= set(names)

    def test_get_detector_resolves_name_class_and_instance(self):
        assert get_detector("kde_md") == KdeMdDetector()
        assert get_detector(EmaMadDetector) == EmaMadDetector()
        tuned = VarianceThresholdDetector(window=5)
        assert get_detector(tuned) is tuned

    def test_unknown_name_lists_registered_detectors(self):
        with pytest.raises(ValueError, match="kde_md"):
            get_detector("kalman")

    def test_rejects_non_detector_objects(self):
        with pytest.raises(TypeError, match="registered name"):
            get_detector(42)
        with pytest.raises(TypeError, match="register_detector"):
            get_detector(MDConfig)  # a dataclass, but not a detector class

    def test_register_rejects_malformed_detectors(self):
        with pytest.raises(TypeError, match="dataclass"):
            register_detector(object)

        @dataclasses.dataclass(frozen=True)
        class NoName:
            pass

        with pytest.raises(TypeError, match="name"):
            register_detector(NoName)

        @dataclasses.dataclass(frozen=True)
        class NoEngines:
            name = "no-engines"

        with pytest.raises(TypeError, match="offline_grid"):
            register_detector(NoEngines)

    def test_register_name_collision_and_reregister_no_op(self):
        @dataclasses.dataclass(frozen=True)
        class Impostor:
            name = "kde_md"

            def offline_grid(self, std_sums, config, init_samples):
                raise NotImplementedError

            def streaming_engine(self, config, init_samples):
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_detector(Impostor)
        # Re-registering the real class is a no-op, not a collision.
        assert register_detector(KdeMdDetector) is KdeMdDetector
        assert detector_base._DETECTORS["kde_md"] is KdeMdDetector

    def test_custom_registration_round_trip(self):
        @dataclasses.dataclass(frozen=True)
        class Custom:
            name = "custom-zoo-test"
            scale: float = 1.0

            def offline_grid(self, std_sums, config, init_samples):
                raise NotImplementedError

            def streaming_engine(self, config, init_samples):
                raise NotImplementedError

        try:
            register_detector(Custom)
            assert "custom-zoo-test" in detector_names()
            assert get_detector("custom-zoo-test") == Custom()
            assert get_detector(Custom) == Custom()
        finally:
            detector_base._DETECTORS.pop("custom-zoo-test", None)
        assert "custom-zoo-test" not in detector_names()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ema_alpha": 0.0},
            {"ema_alpha": 1.5},
            {"short_window": 1},
            {"short_window": 10, "long_window": 5},
            {"min_long": 1},
            {"long_window": 20, "min_long": 30},
            {"threshold_scale": 0.0},
            {"dev_factor": -1.0},
            {"down_ratio": 0.0},
            {"down_ratio": 1.5},
        ],
    )
    def test_ema_mad_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            EmaMadDetector(**kwargs)

    @pytest.mark.parametrize(
        "kwargs", [{"window": 1}, {"threshold_scale": 0.0}]
    )
    def test_variance_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            VarianceThresholdDetector(**kwargs)

    def test_detection_grid_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="share a shape"):
            DetectionGrid(
                decisions=np.zeros((4, 2), dtype=np.int8),
                thresholds=np.zeros((4, 3)),
            )


class TestComponentCodec:
    @pytest.mark.parametrize(
        "det",
        [
            KdeMdDetector(),
            EmaMadDetector(),
            TUNED_EMA,
            VarianceThresholdDetector(),
            TUNED_VARIANCE,
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_round_trip_through_json(self, det):
        back = component_from_dict(json.loads(json.dumps(component_to_dict(det))))
        assert type(back) is type(det)
        assert back == det

    def test_variants_encode_distinctly(self):
        assert component_to_dict(EmaMadDetector()) != component_to_dict(TUNED_EMA)
        assert component_to_dict(VarianceThresholdDetector()) != component_to_dict(
            TUNED_VARIANCE
        )


# --------------------------------------------------------------------- #
class TestOfflineStreamingIdentity:
    """The zoo-wide bit-identity contract, enforced per registry entry."""

    CFG = MDConfig(profile_init_s=5.0, batch_size=16)

    @pytest.mark.parametrize("det", variant_params())
    @pytest.mark.parametrize("init_samples", [2, 8, 40])
    def test_single_sample_feed_matches_offline_grid(self, rng, det, init_samples):
        values = anomaly_series(rng, 120)
        ref = det.offline_grid(values[:, np.newaxis], self.CFG, init_samples)
        dec, th = stream_grid(det, values, self.CFG, init_samples, [1] * 120)
        np.testing.assert_array_equal(dec, ref.decisions[:, 0])
        np.testing.assert_array_equal(th, ref.thresholds[:, 0])

    @pytest.mark.parametrize("det", variant_params())
    @pytest.mark.parametrize(
        "sizes",
        [[120], [3, 117], [1, 1, 118], [13, 50, 57], [119, 1], [2] * 60],
    )
    def test_fixed_splits_match_offline_grid(self, rng, det, sizes):
        # [1, 1, 118] and [2] * 60 start below every window length, so the
        # partial-window head crosses a batch boundary.
        values = anomaly_series(rng, 120)
        ref = det.offline_grid(values[:, np.newaxis], self.CFG, 20)
        dec, th = stream_grid(det, values, self.CFG, 20, sizes)
        np.testing.assert_array_equal(dec, ref.decisions[:, 0])
        np.testing.assert_array_equal(th, ref.thresholds[:, 0])

    @pytest.mark.parametrize("det", variant_params())
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=90),
        init_samples=st.sampled_from([2, 3, 8, 40]),
        seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    def test_random_batch_splits_are_bitwise_identical(
        self, det, n, init_samples, seed, data
    ):
        rng = np.random.default_rng(seed)
        values = anomaly_series(rng, n)
        ref = det.offline_grid(values[:, np.newaxis], self.CFG, init_samples)
        sizes, left = [], n
        while left > 0:
            s = data.draw(st.integers(min_value=1, max_value=left))
            sizes.append(s)
            left -= s
        dec, th = stream_grid(det, values, self.CFG, init_samples, sizes)
        np.testing.assert_array_equal(dec, ref.decisions[:, 0])
        np.testing.assert_array_equal(th, ref.thresholds[:, 0])

    @pytest.mark.parametrize("det", variant_params())
    def test_empty_batch_is_a_no_op(self, rng, det):
        values = anomaly_series(rng, 40)
        ref = det.offline_grid(values[:, np.newaxis], self.CFG, 12)
        engine = det.streaming_engine(self.CFG, 12)
        d1, t1 = engine.extend(values[:15])
        d_empty, t_empty = engine.extend(values[:0])
        d2, t2 = engine.extend(values[15:])
        assert d_empty.shape == (0,) and t_empty.shape == (0,)
        np.testing.assert_array_equal(
            np.concatenate([d1, d2]), ref.decisions[:, 0]
        )
        np.testing.assert_array_equal(
            np.concatenate([t1, t2]), ref.thresholds[:, 0]
        )

    def test_kde_offline_is_a_pure_port_of_run_profile_grid(self, rng):
        # The zoo wrapper must not perturb a single bit of the paper's
        # engine — this is what keeps the golden numbers pinned.
        matrix = np.abs(rng.normal(2.0, 0.8, size=(160, 3)))
        matrix[60::7, :] += 5.0
        ref = run_profile_grid(matrix, self.CFG, 20)
        got = KdeMdDetector().offline_grid(matrix, self.CFG, 20)
        assert isinstance(got, DetectionGrid)
        np.testing.assert_array_equal(got.decisions, ref.decisions)
        np.testing.assert_array_equal(got.thresholds, ref.thresholds)

    @pytest.mark.parametrize(
        "det",
        [TUNED_EMA, TUNED_VARIANCE],
        ids=["ema_mad", "variance"],
    )
    def test_columns_are_independent_chains(self, rng, det):
        matrix = np.abs(rng.normal(2.0, 0.8, size=(80, 3)))
        matrix[40::6, :] += 5.0
        grid = det.offline_grid(matrix, self.CFG, 12)
        assert grid.decisions.shape == matrix.shape
        for j in range(matrix.shape[1]):
            col = det.offline_grid(matrix[:, j : j + 1], self.CFG, 12)
            np.testing.assert_array_equal(
                col.decisions[:, 0], grid.decisions[:, j]
            )
            np.testing.assert_array_equal(
                col.thresholds[:, 0], grid.thresholds[:, j]
            )

    @pytest.mark.parametrize("det", variant_params())
    def test_decisions_follow_the_grid_conventions(self, rng, det):
        values = anomaly_series(rng, 100)
        grid = det.offline_grid(values[:, np.newaxis], self.CFG, 30)
        dec, th = grid.decisions[:, 0], grid.thresholds[:, 0]
        assert dec.dtype == np.int8
        assert set(np.unique(dec)) <= {-1, 0, 1}
        # Initialisation phase: undecided, no threshold before init-1.
        assert np.all(dec[:29] == -1)
        assert np.all(np.isnan(th[:29]))
        # The threshold first materialises at row init_samples - 1.
        assert np.isfinite(th[29:]).all()
        assert np.all(dec[30:] >= 0)


# --------------------------------------------------------------------- #
def tiny_scale(name="tiny", **overrides):
    base = CampaignScale.compact().derive(name, n_days=2, day_duration_s=400.0)
    return base.derive(name, **overrides) if overrides else base


ZOO = {
    "kde_md": KdeMdDetector(),
    "ema_mad": EmaMadDetector(),
    "variance": VarianceThresholdDetector(),
}


def zoo_grid(detectors=ZOO):
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[tiny_scale()],
        sensor_counts=(3,),
        detectors=detectors,
    )


class TestGridDetectorAxis:
    def test_default_axis_is_the_paper_detector(self):
        grid = ScenarioGrid(layouts=[paper_office()], scales=[tiny_scale()])
        assert grid.detectors == {"kde_md": KdeMdDetector()}
        spec = grid.scenarios()[0]
        assert spec.detector_name == "kde_md"
        assert spec.detector == KdeMdDetector()
        assert "/kde_md/" in spec.name

    def test_detector_axis_multiplies_grid_points(self):
        grid = zoo_grid()
        assert len(grid) == 3
        specs = grid.scenarios()
        assert [s.detector_name for s in specs] == ["kde_md", "ema_mad", "variance"]
        assert [s.name for s in specs] == [
            "paper-office/tiny/default/default/kde_md/r0",
            "paper-office/tiny/default/default/ema_md/r0".replace("ema_md", "ema_mad"),
            "paper-office/tiny/default/default/variance/r0",
        ]
        # Detector variants share one simulated campaign.
        assert len({s.simulation_key() for s in specs}) == 1
        assert len({s.index for s in specs}) == 3

    def test_sequence_entries_label_by_registry_name(self):
        grid = zoo_grid(detectors=["variance", KdeMdDetector(), TUNED_EMA])
        assert list(grid.detectors) == ["variance", "kde_md", "ema_mad"]
        assert grid.detectors["ema_mad"] is TUNED_EMA

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="at least one detector"):
            zoo_grid(detectors={})
        with pytest.raises(ValueError, match="kde_md"):
            zoo_grid(detectors=["no-such-detector"])
        with pytest.raises(ValueError, match="mapping"):
            zoo_grid(detectors=[EmaMadDetector(), TUNED_EMA])
        with pytest.raises(ValueError, match="identical configs"):
            zoo_grid(detectors={"a": VarianceThresholdDetector(),
                                "b": VarianceThresholdDetector()})

    def test_content_hash_distinguishes_detectors(self):
        hashes = {
            spec.detector_name: spec.content_hash()
            for spec in zoo_grid().scenarios()
        }
        assert len(set(hashes.values())) == 3
        tuned = zoo_grid(detectors={"ema_mad": TUNED_EMA}).scenarios()[0]
        default = zoo_grid(detectors={"ema_mad": EmaMadDetector()}).scenarios()[0]
        assert tuned.name == default.name
        assert tuned.content_hash() != default.content_hash()

    def test_spec_round_trip_carries_the_detector(self):
        spec = zoo_grid(detectors={"ema_mad": TUNED_EMA}).scenarios()[0]
        back = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.detector == TUNED_EMA
        assert back.content_hash() == spec.content_hash()

    def test_spec_from_dict_defaults_old_records_to_kde(self):
        spec = ScenarioGrid(
            layouts=[paper_office()], scales=[tiny_scale()]
        ).scenarios()[0]
        data = spec.to_dict()
        del data["detector"], data["detector_name"]
        back = ScenarioSpec.from_dict(data)
        assert back.detector_name == "kde_md"
        assert back.detector == KdeMdDetector()


class TestDetectorSweep:
    SEED = 11

    @pytest.fixture(scope="class")
    def zoo_report(self):
        return ScenarioSweepRunner(
            zoo_grid(), seed=self.SEED, mode="serial", re_sensor_counts=()
        ).run()

    def test_zoo_kde_rows_identical_to_kde_only_sweep(self, zoo_report):
        kde_only = ScenarioSweepRunner(
            zoo_grid(detectors={"kde_md": KdeMdDetector()}),
            seed=self.SEED,
            mode="serial",
            re_sensor_counts=(),
        ).run()
        assert kde_only.n_scenarios == 1
        want = kde_only.results[0]
        got = zoo_report.result_for(want.spec.name)
        assert got.to_dict() == want.to_dict()

    def test_detector_variants_share_one_recording(self, zoo_report):
        recordings = {id(r.recording) for r in zoo_report.results}
        assert len(recordings) == 1
        assert zoo_report.results[0].recording is not None

    def test_report_detector_surfaces(self, zoo_report):
        assert zoo_report.detector_names() == ["ema_mad", "kde_md", "variance"]
        cells = zoo_report.cell_statistics()
        assert {cell["detector"] for cell in cells} == {
            "ema_mad", "kde_md", "variance",
        }
        comparison = zoo_report.detector_comparison()
        assert len(comparison) == 1
        row = comparison[0]
        assert set(row["f_mean_by_detector"]) == {"ema_mad", "kde_md", "variance"}
        assert row["best_detector"] in row["f_mean_by_detector"]
        for f in row["f_mean_by_detector"].values():
            assert 0.0 <= f <= 1.0
        rendered = zoo_report.render()
        assert "detector comparison" in rendered
        # to_dict carries the same table (floats quantized for export).
        exported = zoo_report.to_dict()["detector_comparison"]
        assert [r["best_detector"] for r in exported] == [
            r["best_detector"] for r in comparison
        ]
        for got, want in zip(exported, comparison):
            assert got["f_mean_by_detector"] == {
                k: round(v, 6) for k, v in want["f_mean_by_detector"].items()
            }

    def test_round_trip_preserves_detector_sections(self, zoo_report, tmp_path):
        path = tmp_path / "report.json"
        zoo_report.save(path)
        loaded = SweepReport.load(path)
        assert loaded.to_dict() == zoo_report.to_dict()
        assert loaded.detector_comparison() == zoo_report.detector_comparison()

    def test_store_records_are_keyed_per_detector(self, tmp_path):
        def runner():
            return ScenarioSweepRunner(
                zoo_grid(), seed=self.SEED, mode="serial", re_sensor_counts=()
            )

        store = SweepStore(tmp_path)
        cold = runner().run(store=store)
        assert len(store) == 3

        # Punch a hole in exactly one detector's record...
        victim = cold.result_for(
            "paper-office/tiny/default/default/ema_mad/r0"
        ).spec
        assert store.delete(victim.name)

        # ...and resume: only that scenario is re-analysed, the other two
        # detectors' records stay warm (their holes are left intact).
        resumed_runner = runner()
        resumed = resumed_runner.run(store=store)
        stats = resumed_runner.last_run_stats
        assert stats.n_analyzed == 1
        assert stats.n_cached == 2
        assert resumed.to_dict() == cold.to_dict()

    def test_tuned_variant_invalidates_only_its_own_record(self, tmp_path):
        store = SweepStore(tmp_path)
        ScenarioSweepRunner(
            zoo_grid(), seed=self.SEED, mode="serial", re_sensor_counts=()
        ).run(store=store)
        store.reset_stats()

        # Same labels, one detector's config changed: its record reads as
        # stale while the other two hit.
        tuned = dict(ZOO, ema_mad=TUNED_EMA)
        tuned_runner = ScenarioSweepRunner(
            zoo_grid(detectors=tuned),
            seed=self.SEED,
            mode="serial",
            re_sensor_counts=(),
        )
        tuned_runner.run(store=store)
        assert tuned_runner.last_run_stats.n_analyzed == 1
        assert tuned_runner.last_run_stats.n_cached == 2
        assert store.stats.stale == 1
        assert store.stats.hits == 2


class TestRaggedComparisonRender:
    """Satellite: a detector absent from a cell renders blank, not a crash."""

    @staticmethod
    def ragged_report():
        specs = zoo_grid(
            detectors={"kde_md": KdeMdDetector(), "variance": VarianceThresholdDetector()}
        ).scenarios()
        results = [
            ScenarioResult(
                spec=specs[0],
                n_events=6,
                n_departures=4,
                md_rows=[
                    MDTableRow(3, DetectionCounts(tp=4, fp=1, fn=1)),
                    MDTableRow(6, DetectionCounts(tp=5, fp=0, fn=1)),
                ],
            ),
            # The second detector evaluated a different sensor count, so
            # cells (3,) and (6,) miss it and cell (9,) misses kde_md.
            ScenarioResult(
                spec=specs[1],
                n_events=6,
                n_departures=4,
                md_rows=[MDTableRow(9, DetectionCounts(tp=3, fp=2, fn=2))],
            ),
        ]
        return SweepReport(results, seed_entropy=0)

    def test_missing_cells_are_blank_not_fabricated(self):
        report = self.ragged_report()
        comparison = report.detector_comparison()
        by_count = {row["n_sensors"]: row for row in comparison}
        assert set(by_count) == {3, 6, 9}
        assert set(by_count[3]["f_mean_by_detector"]) == {"kde_md"}
        assert set(by_count[9]["f_mean_by_detector"]) == {"variance"}
        assert by_count[9]["best_detector"] == "variance"

    def test_render_survives_ragged_cells(self):
        rendered = self.ragged_report().render()
        assert "detector comparison" in rendered
        # Missing metrics render as '-' placeholders in the table body.
        comparison_section = rendered[rendered.index("detector comparison") :]
        assert "-" in comparison_section

    def test_single_detector_report_omits_comparison_section(self):
        report = self.ragged_report()
        solo = SweepReport(report.results[:1], seed_entropy=0)
        assert "detector comparison" not in solo.render()


# --------------------------------------------------------------------- #
class TestStreamingIntegration:
    CFG = MDConfig(std_window_s=2.0, profile_init_s=5.0, batch_size=16)

    def day_matrix(self, rng, n=160, k=3):
        matrix = rng.normal(-50.0, 1.0, size=(n, k))
        matrix[n // 2 : n // 2 + 20] += rng.normal(0.0, 6.0, size=(20, k))
        return np.arange(n) / RATE, matrix

    def offline_reference(self, det, matrix):
        window = max(int(round(self.CFG.std_window_s * RATE)), 2)
        init = max(int(round(self.CFG.profile_init_s * RATE)), 2)
        s = online_std_sum_series(matrix, window)
        defined = ~np.isnan(s)
        grid = det.offline_grid(s[defined][:, np.newaxis], self.CFG, init)
        decisions = np.full(s.shape[0], -1, dtype=np.int8)
        thresholds = np.full(s.shape[0], np.nan)
        decisions[defined] = grid.decisions[:, 0]
        thresholds[defined] = grid.thresholds[:, 0]
        return decisions, thresholds

    @pytest.mark.parametrize(
        "det",
        [KdeMdDetector(), TUNED_EMA, TUNED_VARIANCE],
        ids=["kde_md", "ema_mad", "variance"],
    )
    def test_online_detector_hosts_any_zoo_member(self, rng, det):
        times, matrix = self.day_matrix(rng)
        want_dec, want_th = self.offline_reference(det, matrix)
        od = OnlineDetector(
            ["s0", "s1", "s2"], self.CFG, sample_rate_hz=RATE, detector=det
        )
        assert od.detector is det
        blocks, pos = [], 0
        for size in [1, 2, 37, 60, 60]:
            blocks.append(
                od.process_block(
                    times[pos : pos + size], matrix[pos : pos + size]
                )
            )
            pos += size
        assert pos == matrix.shape[0]
        np.testing.assert_array_equal(
            np.concatenate([b.decisions for b in blocks]), want_dec
        )
        np.testing.assert_array_equal(
            np.concatenate([b.thresholds for b in blocks]), want_th
        )

    def test_kde_member_matches_the_default_path_bitwise(self, rng):
        times, matrix = self.day_matrix(rng)
        default = OnlineDetector(["s0", "s1", "s2"], self.CFG, sample_rate_hz=RATE)
        zoo = OnlineDetector(
            ["s0", "s1", "s2"],
            self.CFG,
            sample_rate_hz=RATE,
            detector=KdeMdDetector(),
        )
        a = default.process_block(times, matrix)
        b = zoo.process_block(times, matrix)
        np.testing.assert_array_equal(a.decisions, b.decisions)
        np.testing.assert_array_equal(a.thresholds, b.thresholds)
        np.testing.assert_array_equal(a.durations, b.durations)

    def test_router_hosts_heterogeneous_tenants(self, rng):
        times, matrix = self.day_matrix(rng)
        ids = ["s0", "s1", "s2"]
        tenant_detectors = {
            "kde-office": None,
            "ema-office": TUNED_EMA,
            "var-office": TUNED_VARIANCE,
        }
        router = IngestRouter(
            n_workers=2, config=self.CFG, sample_rate_hz=RATE,
            detector=KdeMdDetector(),
        )
        with router:
            for tenant, det in tenant_detectors.items():
                router.register(tenant, ids, detector=det)
            for start in range(0, matrix.shape[0], 40):
                for tenant in tenant_detectors:
                    router.submit(
                        SampleBatch(
                            tenant=tenant,
                            times=times[start : start + 40],
                            samples=matrix[start : start + 40],
                        )
                    )
            router.drain()
        for tenant, det in tenant_detectors.items():
            # None falls back to the router default (the KDE zoo member).
            ref_det = det if det is not None else KdeMdDetector()
            want_dec, want_th = self.offline_reference(ref_det, matrix)
            got = router.tenant_state(tenant).concatenated()
            np.testing.assert_array_equal(got.decisions, want_dec)
            np.testing.assert_array_equal(got.thresholds, want_th)
        # The per-tenant engines really are distinct zoo members.
        assert router.tenant_state("ema-office").detector.detector is TUNED_EMA
        assert router.tenant_state("var-office").detector.detector is TUNED_VARIANCE

"""Human-body shadowing model.

The physical effect FADEWICH exploits: a human body near the line of sight
of a transmitter-receiver pair attenuates and perturbs the received signal.
Device-free localisation models this with the *excess path length* of the
body relative to the link: the body affects the link when the path
transmitter -> body -> receiver is at most ``lambda`` metres longer than the
direct path — i.e. when the body is inside a thin ellipse whose foci are
the two sensors.

The model here produces, for one link and one set of body positions:

* a deterministic mean attenuation (dB), strongest when the body is exactly
  on the line of sight and decaying with excess path length, and
* an extra fluctuation standard deviation (dB), because a body *near* the
  link also scatters multipath components and makes the RSSI noisier even
  when the mean barely changes.

Both effects scale with the link's fade-level sensitivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from .geometry import Point, excess_path_length

__all__ = ["BodyShadowingModel", "ShadowingEffect"]


@dataclass(frozen=True)
class ShadowingEffect:
    """The aggregate effect of all bodies on one link at one instant.

    Attributes
    ----------
    attenuation_db:
        Mean RSSI drop (positive number of dB to subtract).
    extra_sigma_db:
        Additional standard deviation of the RSSI fluctuation.
    obstructed:
        Whether at least one body lies within the link's sensitive ellipse.
    """

    attenuation_db: float
    extra_sigma_db: float
    obstructed: bool

    @staticmethod
    def none() -> "ShadowingEffect":
        """The null effect (no bodies near the link)."""
        return ShadowingEffect(0.0, 0.0, False)


@dataclass(frozen=True)
class BodyShadowingModel:
    """Excess-path-length ellipse model of body-induced shadowing.

    Parameters
    ----------
    lambda_m:
        Ellipse width parameter (metres of excess path length).  Bodies with
        excess path length below ``lambda_m`` count as obstructing the link.
    max_attenuation_db:
        Mean attenuation when the body sits exactly on the line of sight.
    attenuation_decay:
        Exponential decay rate of the attenuation with excess path length,
        normalised by ``lambda_m``.
    max_extra_sigma_db:
        Extra fluctuation (std-dev, dB) injected when the body is on the
        line of sight.  Kept deliberately small: the dominant fluctuation
        signature of a *moving* body is the change of the mean attenuation
        as it crosses link ellipses, not extra per-sample noise — a person
        sitting still barely increases the short-window variance, which is
        what lets MD's normal profile stay valid while users are seated.
    sigma_reach_multiplier:
        Bodies up to ``sigma_reach_multiplier * lambda_m`` of excess path
        length still inject some extra fluctuation (scattering reaches
        further than the mean obstruction).
    motion_sigma_db:
        Peak extra fluctuation (std-dev, dB) injected on a link by a body
        *moving* right on top of it.  A moving scatterer perturbs the
        multipath structure of most links in a small room — this is the
        dominant detection signal of device-free systems (and of FADEWICH's
        MD module) — whereas a static body leaves the fluctuation level
        almost unchanged.
    motion_range_m:
        Exponential decay length (metres, measured from the body to the
        link segment) of the motion-induced fluctuation.
    motion_reference_speed:
        Body speed (m/s) at which the motion effect saturates; walking at
        1.4 m/s is full strength, a slow shuffle contributes
        proportionally less.
    """

    lambda_m: float = 0.35
    max_attenuation_db: float = 8.0
    attenuation_decay: float = 3.0
    max_extra_sigma_db: float = 0.8
    sigma_reach_multiplier: float = 3.0
    motion_sigma_db: float = 3.5
    motion_range_m: float = 1.2
    motion_reference_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.lambda_m <= 0:
            raise ValueError("lambda_m must be positive")
        if self.max_attenuation_db < 0 or self.max_extra_sigma_db < 0:
            raise ValueError("attenuation and sigma must be non-negative")
        if self.sigma_reach_multiplier < 1.0:
            raise ValueError("sigma_reach_multiplier must be >= 1")
        if self.motion_sigma_db < 0:
            raise ValueError("motion_sigma_db must be non-negative")
        if self.motion_range_m <= 0 or self.motion_reference_speed <= 0:
            raise ValueError("motion range and reference speed must be positive")

    # ------------------------------------------------------------------ #
    def single_body_effect(
        self, body: Point, tx: Point, rx: Point, fade_sensitivity: float = 1.0
    ) -> ShadowingEffect:
        """Effect of a single body at ``body`` on the link ``tx -> rx``."""
        delta = excess_path_length(body, tx, rx)
        if delta < 0:
            delta = 0.0
        reach = self.lambda_m * self.sigma_reach_multiplier
        if delta > reach:
            return ShadowingEffect.none()

        obstructed = delta <= self.lambda_m
        # Mean attenuation decays exponentially with normalised excess path.
        atten = (
            self.max_attenuation_db
            * math.exp(-self.attenuation_decay * delta / self.lambda_m)
            * fade_sensitivity
        )
        # Extra fluctuation decays more slowly (scattering has longer reach).
        sigma = (
            self.max_extra_sigma_db
            * math.exp(-delta / self.lambda_m)
            * fade_sensitivity
        )
        return ShadowingEffect(
            attenuation_db=atten, extra_sigma_db=sigma, obstructed=obstructed
        )

    def motion_effect(
        self,
        body: Point,
        speed_mps: float,
        tx: Point,
        rx: Point,
        fade_sensitivity: float = 1.0,
    ) -> float:
        """Extra fluctuation (std-dev, dB) caused by a *moving* body.

        The effect decays exponentially with the distance from the body to
        the link segment and scales with the body speed up to
        ``motion_reference_speed``.
        """
        if speed_mps < 0:
            raise ValueError("speed must be non-negative")
        if speed_mps == 0 or self.motion_sigma_db == 0:
            return 0.0
        from .geometry import point_segment_distance

        dist = point_segment_distance(body, tx, rx)
        speed_factor = min(speed_mps / self.motion_reference_speed, 1.5)
        return (
            self.motion_sigma_db
            * speed_factor
            * math.exp(-dist / self.motion_range_m)
            * fade_sensitivity
        )

    def combined_effect(
        self,
        bodies: Iterable[Point],
        tx: Point,
        rx: Point,
        fade_sensitivity: float = 1.0,
    ) -> ShadowingEffect:
        """Aggregate effect of several bodies on one link.

        Mean attenuations add in dB (each body removes signal energy along
        the path); extra fluctuation variances add (independent scattering),
        so the standard deviations combine in quadrature.
        """
        total_atten = 0.0
        total_var = 0.0
        obstructed = False
        for body in bodies:
            eff = self.single_body_effect(body, tx, rx, fade_sensitivity)
            total_atten += eff.attenuation_db
            total_var += eff.extra_sigma_db ** 2
            obstructed = obstructed or eff.obstructed
        return ShadowingEffect(
            attenuation_db=total_atten,
            extra_sigma_db=math.sqrt(total_var),
            obstructed=obstructed,
        )

    def sensitive_region_width(self, link_length: float) -> float:
        """Approximate half-width (metres) of the ellipse at its centre.

        For a thin ellipse with foci separated by ``d`` and excess path
        ``lambda``, the semi-minor axis is roughly ``sqrt(lambda * d / 2 +
        lambda^2 / 4)``; useful for sanity checks and documentation plots.
        """
        if link_length < 0:
            raise ValueError("link length must be non-negative")
        return math.sqrt(
            self.lambda_m * link_length / 2.0 + self.lambda_m ** 2 / 4.0
        )

"""Composite channel model: from body positions to RSSI samples.

Ties together the large-scale path loss, the per-link fade level, the
quiescent noise and the body-shadowing model.  Given the positions of all
people in the office at a sampling instant, :class:`RadioChannel` produces
one quantised RSSI sample (dBm) per directed stream — the quantity the
paper's sensors report.

Two sampling modes
------------------

* **Scalar** — :meth:`RadioChannel.sample_vector` / :meth:`RadioChannel.sample`
  produce one multi-stream sample per call, advancing the channel state one
  timestep.  This is the reference path used by
  ``CampaignCollector.collect_day_scalar`` and by the online examples.
* **Batch** — :meth:`RadioChannel.sample_block` computes a whole
  ``(n_steps, n_streams)`` chunk of samples in one vectorised pass.  It is
  the hot path of the batch campaign engine.

Seeding scheme
--------------

When constructed with ``seed_seq`` (a :class:`numpy.random.SeedSequence`),
the channel spawns one child generator per stochastic purpose — slow drift,
quiescent noise, outlier indicators, outlier magnitudes and shadowing
fluctuation.  Each purpose consumes a fixed number of draws per timestep
from its own stream, so drawing ``n`` values step by step (scalar mode) or
``(k, n)`` values at once (batch mode) yields *identical* numbers: the two
modes are bit-for-bit equivalent.  When constructed with a plain ``rng``
the channel keeps the historical single-stream draw order; that mode cannot
be batched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from .fading import QuiescentNoise
from .geometry import Point
from .links import LinkSet
from .pathloss import LogDistancePathLoss
from .shadowing import BodyShadowingModel

__all__ = ["ChannelConfig", "RadioChannel"]


@dataclass(frozen=True)
class ChannelConfig:
    """Configuration of the composite radio channel.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power of the sensor radios.
    pathloss:
        Large-scale path-loss model.
    noise:
        Quiescent (no-motion) noise model.
    shadowing:
        Human-body shadowing model.
    quantization_db:
        RSSI register resolution; real radios report integer dBm, i.e. 1.0.
        Set to 0 to disable quantisation.
    rssi_floor_dbm:
        Sensitivity floor below which measurements saturate.
    slow_drift_sigma_db:
        Standard deviation of a slow random-walk drift common to the whole
        environment (temperature, interference level changing over minutes).
    slow_drift_tau_s:
        Mean-reversion time constant of the drift (Ornstein-Uhlenbeck).
    """

    tx_power_dbm: float = 4.0
    pathloss: LogDistancePathLoss = field(default_factory=LogDistancePathLoss)
    noise: QuiescentNoise = field(default_factory=QuiescentNoise)
    shadowing: BodyShadowingModel = field(default_factory=BodyShadowingModel)
    quantization_db: float = 1.0
    rssi_floor_dbm: float = -95.0
    slow_drift_sigma_db: float = 0.5
    slow_drift_tau_s: float = 120.0


class RadioChannel:
    """Stateful radio channel producing per-stream RSSI samples.

    The channel holds a small amount of state: the slow environmental drift
    (an Ornstein-Uhlenbeck process shared by all links, representing slowly
    varying interference and temperature effects) so that consecutive
    samples are realistically correlated over minutes.

    Parameters
    ----------
    links:
        The deployment's directed streams.
    config:
        Channel configuration.
    rng:
        Random generator for all stochastic components (legacy single-stream
        mode; ignored when ``seed_seq`` is given).
    sample_interval_s:
        Time between consecutive samples (used to scale the drift process).
    seed_seq:
        A :class:`numpy.random.SeedSequence` from which one child generator
        per stochastic purpose is spawned.  Required for
        :meth:`sample_block`; makes scalar and batch sampling bit-identical.
    """

    #: How many timesteps :meth:`sample_block` processes per vectorised
    #: chunk.  Bounds the working-set size (chunk x bodies x streams) while
    #: keeping per-chunk numpy overhead negligible.
    BLOCK_CHUNK_STEPS = 1024

    def __init__(
        self,
        links: LinkSet,
        config: Optional[ChannelConfig] = None,
        rng: Optional[np.random.Generator] = None,
        sample_interval_s: float = 0.25,
        seed_seq: Optional[np.random.SeedSequence] = None,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self._links = links
        self._config = config if config is not None else ChannelConfig()
        self._dt = sample_interval_s
        self._drift = 0.0
        if seed_seq is not None:
            (
                drift_ss,
                noise_ss,
                outlier_u_ss,
                outlier_n_ss,
                extra_ss,
            ) = seed_seq.spawn(5)
            self._drift_rng = np.random.default_rng(drift_ss)
            self._noise_rng = np.random.default_rng(noise_ss)
            self._outlier_u_rng = np.random.default_rng(outlier_u_ss)
            self._outlier_n_rng = np.random.default_rng(outlier_n_ss)
            self._extra_rng = np.random.default_rng(extra_ss)
            # No legacy generator in split mode: an accidental legacy draw
            # would silently desynchronise the per-purpose streams, so fail
            # fast instead.
            self._rng = None
            self._split = True
        else:
            self._rng = rng if rng is not None else np.random.default_rng()
            self._split = False
        # Pre-compute the static mean RSSI of every stream.
        self._mean_rssi: Dict[str, float] = {
            s.id: self._config.pathloss.mean_rssi_dbm(
                s.length, tx_power_dbm=self._config.tx_power_dbm
            )
            for s in links
        }
        # Vectorised per-stream arrays used by the fast sampling paths.
        self._stream_order = links.stream_ids
        self._tx_xy = np.asarray(
            [[s.tx_position.x, s.tx_position.y] for s in links], dtype=float
        )
        self._rx_xy = np.asarray(
            [[s.rx_position.x, s.rx_position.y] for s in links], dtype=float
        )
        self._link_len = np.linalg.norm(self._tx_xy - self._rx_xy, axis=1)
        self._sensitivity = np.asarray(
            [s.fade.sensitivity for s in links], dtype=float
        )
        self._mean_vec = np.asarray(
            [self._mean_rssi[sid] for sid in self._stream_order], dtype=float
        )

    # ------------------------------------------------------------------ #
    @property
    def links(self) -> LinkSet:
        return self._links

    @property
    def config(self) -> ChannelConfig:
        return self._config

    @property
    def stream_ids(self):
        """Stream ids in the channel's enumeration order."""
        return self._links.stream_ids

    @property
    def is_split(self) -> bool:
        """Whether the channel uses per-purpose random streams."""
        return self._split

    def mean_rssi(self, sid: str) -> float:
        """The undisturbed mean RSSI of a stream (dBm)."""
        return self._mean_rssi[sid]

    # ------------------------------------------------------------------ #
    def _drift_theta(self) -> float:
        cfg = self._config
        return self._dt / max(cfg.slow_drift_tau_s, self._dt)

    def _advance_drift(self) -> float:
        cfg = self._config
        if cfg.slow_drift_sigma_db <= 0:
            return 0.0
        theta = self._drift_theta()
        if self._split:
            c = cfg.slow_drift_sigma_db * np.sqrt(theta)
            z = self._drift_rng.standard_normal()
            self._drift = c * z + (1.0 - theta) * self._drift
        else:
            self._drift += -theta * self._drift + self._rng.normal(
                0.0, cfg.slow_drift_sigma_db * np.sqrt(theta)
            )
        return self._drift

    def _drift_block(self, n_steps: int) -> np.ndarray:
        """The next ``n_steps`` values of the drift process (split mode).

        The AR(1) recurrence is evaluated with exactly the expression the
        scalar path uses (``c * z + (1 - theta) * drift``), so consecutive
        scalar calls and one block call produce bit-identical series.
        """
        cfg = self._config
        if cfg.slow_drift_sigma_db <= 0:
            return np.zeros(n_steps)
        theta = self._drift_theta()
        c = cfg.slow_drift_sigma_db * np.sqrt(theta)
        z = self._drift_rng.standard_normal(n_steps)
        out = np.empty(n_steps)
        drift = self._drift
        scale = 1.0 - theta
        for i in range(n_steps):
            drift = c * z[i] + scale * drift
            out[i] = drift
        self._drift = drift
        return out

    # ------------------------------------------------------------------ #
    def _shadowing_block(
        self,
        body_xy: np.ndarray,
        speeds: np.ndarray,
        mask: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-step, per-stream ``(attenuation_db, extra_sigma_db)``.

        Parameters
        ----------
        body_xy:
            ``(n_steps, n_bodies, 2)`` positions.  Rows masked out may hold
            any finite placeholder.
        speeds:
            ``(n_steps, n_bodies)`` instantaneous speeds (m/s).
        mask:
            ``(n_steps, n_bodies)`` presence mask; masked bodies contribute
            exactly zero, so a block over all persons equals a scalar call
            over only the present ones.

        Returns
        -------
        (attenuation, extra_sigma):
            Two ``(n_steps, n_streams)`` arrays, applying the same
            attenuation / static-sigma / motion-sigma profile as
            :class:`~repro.radio.shadowing.BodyShadowingModel`.
        """
        n_steps = body_xy.shape[0]
        n_streams = self._tx_xy.shape[0]
        if body_xy.shape[1] == 0 or not mask.any():
            zeros = np.zeros((n_steps, n_streams))
            return zeros, zeros.copy()
        sh = self._config.shadowing
        mask3 = mask[:, :, None]
        bx = body_xy[:, :, 0][:, :, None]  # (k, b, 1)
        by = body_xy[:, :, 1][:, :, None]
        txx, txy = self._tx_xy[:, 0], self._tx_xy[:, 1]  # (s,)
        rxx, rxy = self._rx_xy[:, 0], self._rx_xy[:, 1]
        # Distances body -> tx and body -> rx, shape (k, b, s).
        dxt, dyt = bx - txx, by - txy
        d_tx = np.sqrt(dxt * dxt + dyt * dyt)
        dxr, dyr = bx - rxx, by - rxy
        d_rx = np.sqrt(dxr * dxr + dyr * dyr)
        delta = np.maximum(d_tx + d_rx - self._link_len, 0.0)
        reach = sh.lambda_m * sh.sigma_reach_multiplier
        within = (delta <= reach) & mask3
        atten = np.where(
            within,
            sh.max_attenuation_db
            * np.exp(-sh.attenuation_decay * delta / sh.lambda_m),
            0.0,
        )
        sigma = np.where(
            within, sh.max_extra_sigma_db * np.exp(-delta / sh.lambda_m), 0.0
        )
        # Motion-induced fluctuation: distance from each body to each link
        # segment, speed-scaled exponential decay.
        vx, vy = rxx - txx, rxy - txy  # (s,)
        link_len_sq = np.maximum(self._link_len ** 2, 1e-12)
        t_par = np.clip((dxt * vx + dyt * vy) / link_len_sq, 0.0, 1.0)
        cx = txx + t_par * vx
        cy = txy + t_par * vy
        sdx, sdy = bx - cx, by - cy
        seg_dist = np.sqrt(sdx * sdx + sdy * sdy)
        speed_factor = np.minimum(
            speeds / sh.motion_reference_speed, 1.5
        )[:, :, None]
        motion_sigma = np.where(
            mask3,
            sh.motion_sigma_db
            * speed_factor
            * np.exp(-seg_dist / sh.motion_range_m),
            0.0,
        )
        total_atten = atten.sum(axis=1) * self._sensitivity
        total_sigma = (
            np.sqrt((sigma ** 2).sum(axis=1) + (motion_sigma ** 2).sum(axis=1))
            * self._sensitivity
        )
        return total_atten, total_sigma

    def _shadowing_vectors(self, bodies, speeds) -> np.ndarray:
        """Per-stream ``(attenuation_db, extra_sigma_db)`` for one instant.

        Thin single-step wrapper over :meth:`_shadowing_block`, so the
        scalar and batch paths share one implementation.
        """
        n = self._tx_xy.shape[0]
        if not bodies:
            return np.zeros((2, n))
        body_xy = np.asarray([[b.x, b.y] for b in bodies], dtype=float)
        sp = np.asarray(speeds, dtype=float)
        atten, sigma = self._shadowing_block(
            body_xy[None, :, :],
            sp[None, :],
            np.ones((1, body_xy.shape[0]), dtype=bool),
        )
        return np.vstack([atten[0], sigma[0]])

    # ------------------------------------------------------------------ #
    def sample_vector(
        self,
        body_positions: Iterable[Point],
        body_speeds: Optional[Iterable[float]] = None,
    ) -> np.ndarray:
        """One RSSI sample per stream as an array in stream-id order.

        Parameters
        ----------
        body_positions:
            Positions of every person inside the office.
        body_speeds:
            Their instantaneous speeds (m/s), in the same order.  Omitted
            speeds default to zero (static bodies).

        This is the per-step path used by ``collect_day_scalar`` and the
        online examples; :meth:`sample` wraps it into a dictionary and
        :meth:`sample_block` is its vectorised batch counterpart.
        """
        bodies = list(body_positions)
        if body_speeds is None:
            speeds = [0.0] * len(bodies)
        else:
            speeds = [float(s) for s in body_speeds]
        if len(speeds) != len(bodies):
            raise ValueError("body_speeds must match body_positions in length")
        cfg = self._config
        drift = self._advance_drift()
        n = self._mean_vec.shape[0]

        atten, extra_sigma = self._shadowing_vectors(bodies, speeds)
        if self._split:
            noise = self._noise_rng.standard_normal(n) * (
                cfg.noise.base_sigma_db * self._sensitivity
            )
            if cfg.noise.outlier_prob > 0:
                outliers = self._outlier_u_rng.random(n) < cfg.noise.outlier_prob
                noise = noise + outliers * (
                    self._outlier_n_rng.standard_normal(n)
                    * cfg.noise.outlier_scale_db
                )
            extra = np.where(
                extra_sigma > 0,
                self._extra_rng.standard_normal(n) * extra_sigma,
                0.0,
            )
        else:
            noise = self._rng.normal(
                0.0, cfg.noise.base_sigma_db * self._sensitivity
            )
            if cfg.noise.outlier_prob > 0:
                outliers = self._rng.random(n) < cfg.noise.outlier_prob
                noise = noise + outliers * self._rng.normal(
                    0.0, cfg.noise.outlier_scale_db, n
                )
            extra = np.where(
                extra_sigma > 0, self._rng.normal(0.0, 1.0, n) * extra_sigma, 0.0
            )
        rssi = self._mean_vec - atten + noise + extra + drift
        rssi = np.maximum(rssi, cfg.rssi_floor_dbm)
        if cfg.quantization_db > 0:
            rssi = np.round(rssi / cfg.quantization_db) * cfg.quantization_db
        return rssi

    def sample_block(
        self,
        positions: np.ndarray,
        speeds: Optional[np.ndarray] = None,
        presence: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """A whole chunk of RSSI samples in one vectorised pass.

        Parameters
        ----------
        positions:
            ``(n_steps, n_bodies, 2)`` body positions (``(n_steps, 2)`` is
            accepted for a single body).  Rows of absent bodies may hold any
            finite placeholder — they are masked by ``presence``.
        speeds:
            ``(n_steps, n_bodies)`` speeds (m/s); zero when omitted.
        presence:
            ``(n_steps, n_bodies)`` boolean mask; all-present when omitted.

        Returns
        -------
        ndarray of shape ``(n_steps, n_streams)``
            One quantised RSSI sample per step and stream, advancing the
            drift state across the block.  Requires a channel built with
            ``seed_seq``; the result is bit-identical to ``n_steps``
            successive :meth:`sample_vector` calls with the present bodies.
        """
        if not self._split:
            raise RuntimeError(
                "sample_block requires a channel constructed with seed_seq= "
                "(per-purpose random streams); the legacy single-rng draw "
                "order cannot be batched"
            )
        pos = np.asarray(positions, dtype=float)
        if pos.ndim == 2:
            pos = pos[:, None, :]
        if pos.ndim != 3 or pos.shape[-1] != 2:
            raise ValueError("positions must have shape (n_steps, n_bodies, 2)")
        n_steps, n_bodies = pos.shape[0], pos.shape[1]
        if speeds is None:
            sp = np.zeros((n_steps, n_bodies))
        else:
            sp = np.asarray(speeds, dtype=float)
            if sp.ndim == 1:
                sp = sp[:, None]
            if sp.shape != (n_steps, n_bodies):
                raise ValueError("speeds must have shape (n_steps, n_bodies)")
        if presence is None:
            mask = np.ones((n_steps, n_bodies), dtype=bool)
        else:
            mask = np.asarray(presence, dtype=bool)
            if mask.ndim == 1:
                mask = mask[:, None]
            if mask.shape != (n_steps, n_bodies):
                raise ValueError("presence must have shape (n_steps, n_bodies)")

        cfg = self._config
        n = self._mean_vec.shape[0]
        out = np.empty((n_steps, n))
        base_sigma = cfg.noise.base_sigma_db * self._sensitivity

        # Shadowing geometry is a pure function of (positions, speeds,
        # presence); most of a working day is motionless (seated spans are
        # piecewise-constant between fidget resamples), so evaluate it only
        # at change points and fan the rows back out.  Identical inputs
        # yield identical outputs, keeping the scalar equivalence exact.
        if n_steps > 1 and n_bodies > 0:
            unchanged = (
                np.all(pos[1:] == pos[:-1], axis=(1, 2))
                & np.all(sp[1:] == sp[:-1], axis=1)
                & np.all(mask[1:] == mask[:-1], axis=1)
            )
            run_starts = np.concatenate(
                [[0], np.flatnonzero(~unchanged) + 1]
            )
        else:
            run_starts = np.array([0]) if n_steps else np.empty(0, dtype=int)
        n_unique = run_starts.shape[0]
        atten_u = np.empty((n_unique, n))
        sigma_u = np.empty((n_unique, n))
        for ustart in range(0, n_unique, self.BLOCK_CHUNK_STEPS):
            ustop = min(ustart + self.BLOCK_CHUNK_STEPS, n_unique)
            idx = run_starts[ustart:ustop]
            atten_u[ustart:ustop], sigma_u[ustart:ustop] = self._shadowing_block(
                pos[idx], sp[idx], mask[idx]
            )
        run_lens = np.diff(np.concatenate([run_starts, [n_steps]]))
        step_to_unique = np.repeat(np.arange(n_unique), run_lens)

        for start in range(0, n_steps, self.BLOCK_CHUNK_STEPS):
            stop = min(start + self.BLOCK_CHUNK_STEPS, n_steps)
            k = stop - start
            atten = atten_u[step_to_unique[start:stop]]
            extra_sigma = sigma_u[step_to_unique[start:stop]]
            drift = self._drift_block(k)
            noise = self._noise_rng.standard_normal((k, n)) * base_sigma
            if cfg.noise.outlier_prob > 0:
                outliers = (
                    self._outlier_u_rng.random((k, n)) < cfg.noise.outlier_prob
                )
                noise = noise + outliers * (
                    self._outlier_n_rng.standard_normal((k, n))
                    * cfg.noise.outlier_scale_db
                )
            extra = np.where(
                extra_sigma > 0,
                self._extra_rng.standard_normal((k, n)) * extra_sigma,
                0.0,
            )
            rssi = self._mean_vec - atten + noise + extra + drift[:, None]
            rssi = np.maximum(rssi, cfg.rssi_floor_dbm)
            if cfg.quantization_db > 0:
                rssi = np.round(rssi / cfg.quantization_db) * cfg.quantization_db
            out[start:stop] = rssi
        return out

    def sample(
        self,
        body_positions: Iterable[Point],
        body_speeds: Optional[Iterable[float]] = None,
    ) -> Dict[str, float]:
        """One RSSI sample per stream, given current body positions.

        Parameters
        ----------
        body_positions:
            Positions of every person currently inside the office.  People
            sitting at their desks count too — they are simply far from most
            links' sensitive ellipses and mostly contribute nothing.
        body_speeds:
            Their instantaneous speeds (m/s); zero (static) when omitted.

        Returns
        -------
        dict
            Mapping stream id -> RSSI sample in dBm.
        """
        values = self.sample_vector(body_positions, body_speeds)
        return {
            sid: float(values[i]) for i, sid in enumerate(self._stream_order)
        }

    def reset(self) -> None:
        """Reset the slow drift state (e.g. between independent campaigns)."""
        self._drift = 0.0

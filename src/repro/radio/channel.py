"""Composite channel model: from body positions to RSSI samples.

Ties together the large-scale path loss, the per-link fade level, the
quiescent noise and the body-shadowing model.  Given the positions of all
people in the office at a sampling instant, :class:`RadioChannel` produces
one quantised RSSI sample (dBm) per directed stream — the quantity the
paper's sensors report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from .fading import QuiescentNoise
from .geometry import Point
from .links import LinkSet
from .pathloss import LogDistancePathLoss
from .shadowing import BodyShadowingModel

__all__ = ["ChannelConfig", "RadioChannel"]


@dataclass(frozen=True)
class ChannelConfig:
    """Configuration of the composite radio channel.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power of the sensor radios.
    pathloss:
        Large-scale path-loss model.
    noise:
        Quiescent (no-motion) noise model.
    shadowing:
        Human-body shadowing model.
    quantization_db:
        RSSI register resolution; real radios report integer dBm, i.e. 1.0.
        Set to 0 to disable quantisation.
    rssi_floor_dbm:
        Sensitivity floor below which measurements saturate.
    slow_drift_sigma_db:
        Standard deviation of a slow random-walk drift common to the whole
        environment (temperature, interference level changing over minutes).
    slow_drift_tau_s:
        Mean-reversion time constant of the drift (Ornstein-Uhlenbeck).
    """

    tx_power_dbm: float = 4.0
    pathloss: LogDistancePathLoss = field(default_factory=LogDistancePathLoss)
    noise: QuiescentNoise = field(default_factory=QuiescentNoise)
    shadowing: BodyShadowingModel = field(default_factory=BodyShadowingModel)
    quantization_db: float = 1.0
    rssi_floor_dbm: float = -95.0
    slow_drift_sigma_db: float = 0.5
    slow_drift_tau_s: float = 120.0


class RadioChannel:
    """Stateful radio channel producing per-stream RSSI samples.

    The channel holds a small amount of state: the slow environmental drift
    (an Ornstein-Uhlenbeck process shared by all links, representing slowly
    varying interference and temperature effects) so that consecutive
    samples are realistically correlated over minutes.

    Parameters
    ----------
    links:
        The deployment's directed streams.
    config:
        Channel configuration.
    rng:
        Random generator for all stochastic components.
    sample_interval_s:
        Time between consecutive calls to :meth:`sample` (used to scale the
        drift process).
    """

    def __init__(
        self,
        links: LinkSet,
        config: Optional[ChannelConfig] = None,
        rng: Optional[np.random.Generator] = None,
        sample_interval_s: float = 0.25,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self._links = links
        self._config = config if config is not None else ChannelConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._dt = sample_interval_s
        self._drift = 0.0
        # Pre-compute the static mean RSSI of every stream.
        self._mean_rssi: Dict[str, float] = {
            s.id: self._config.pathloss.mean_rssi_dbm(
                s.length, tx_power_dbm=self._config.tx_power_dbm
            )
            for s in links
        }
        # Vectorised per-stream arrays used by the fast sampling path.
        self._stream_order = links.stream_ids
        self._tx_xy = np.asarray(
            [[s.tx_position.x, s.tx_position.y] for s in links], dtype=float
        )
        self._rx_xy = np.asarray(
            [[s.rx_position.x, s.rx_position.y] for s in links], dtype=float
        )
        self._link_len = np.linalg.norm(self._tx_xy - self._rx_xy, axis=1)
        self._sensitivity = np.asarray(
            [s.fade.sensitivity for s in links], dtype=float
        )
        self._mean_vec = np.asarray(
            [self._mean_rssi[sid] for sid in self._stream_order], dtype=float
        )

    # ------------------------------------------------------------------ #
    @property
    def links(self) -> LinkSet:
        return self._links

    @property
    def config(self) -> ChannelConfig:
        return self._config

    @property
    def stream_ids(self):
        """Stream ids in the channel's enumeration order."""
        return self._links.stream_ids

    def mean_rssi(self, sid: str) -> float:
        """The undisturbed mean RSSI of a stream (dBm)."""
        return self._mean_rssi[sid]

    # ------------------------------------------------------------------ #
    def _advance_drift(self) -> float:
        cfg = self._config
        if cfg.slow_drift_sigma_db <= 0:
            return 0.0
        theta = self._dt / max(cfg.slow_drift_tau_s, self._dt)
        self._drift += -theta * self._drift + self._rng.normal(
            0.0, cfg.slow_drift_sigma_db * np.sqrt(theta)
        )
        return self._drift

    def _shadowing_vectors(self, bodies, speeds) -> np.ndarray:
        """Per-stream ``(attenuation_db, extra_sigma_db)`` for the given bodies.

        Vectorised over streams: the excess path length and segment distance
        of every body with respect to every link are computed with numpy
        expressions, applying the same attenuation / static-sigma / motion-
        sigma profile as :class:`~repro.radio.shadowing.BodyShadowingModel`.
        """
        n = self._tx_xy.shape[0]
        if not bodies:
            return np.zeros((2, n))
        sh = self._config.shadowing
        body_xy = np.asarray([[b.x, b.y] for b in bodies], dtype=float)
        speeds = np.asarray(speeds, dtype=float)
        # distances body -> tx and body -> rx, shape (n_bodies, n_streams)
        d_tx = np.linalg.norm(body_xy[:, None, :] - self._tx_xy[None, :, :], axis=2)
        d_rx = np.linalg.norm(body_xy[:, None, :] - self._rx_xy[None, :, :], axis=2)
        delta = np.maximum(d_tx + d_rx - self._link_len[None, :], 0.0)
        reach = sh.lambda_m * sh.sigma_reach_multiplier
        within = delta <= reach
        atten = np.where(
            within,
            sh.max_attenuation_db
            * np.exp(-sh.attenuation_decay * delta / sh.lambda_m),
            0.0,
        )
        sigma = np.where(
            within, sh.max_extra_sigma_db * np.exp(-delta / sh.lambda_m), 0.0
        )
        # Motion-induced fluctuation: distance from each body to each link
        # segment, speed-scaled exponential decay.
        link_vec = self._rx_xy - self._tx_xy  # (n_streams, 2)
        link_len_sq = np.maximum(self._link_len ** 2, 1e-12)
        rel = body_xy[:, None, :] - self._tx_xy[None, :, :]
        t_par = np.clip(
            np.einsum("bsd,sd->bs", rel, link_vec) / link_len_sq, 0.0, 1.0
        )
        closest = self._tx_xy[None, :, :] + t_par[:, :, None] * link_vec[None, :, :]
        seg_dist = np.linalg.norm(body_xy[:, None, :] - closest, axis=2)
        speed_factor = np.minimum(
            speeds / sh.motion_reference_speed, 1.5
        )[:, None]
        motion_sigma = (
            sh.motion_sigma_db * speed_factor * np.exp(-seg_dist / sh.motion_range_m)
        )
        total_atten = atten.sum(axis=0) * self._sensitivity
        total_sigma = (
            np.sqrt((sigma ** 2).sum(axis=0) + (motion_sigma ** 2).sum(axis=0))
            * self._sensitivity
        )
        return np.vstack([total_atten, total_sigma])

    def sample_vector(
        self,
        body_positions: Iterable[Point],
        body_speeds: Optional[Iterable[float]] = None,
    ) -> np.ndarray:
        """One RSSI sample per stream as an array in stream-id order.

        Parameters
        ----------
        body_positions:
            Positions of every person inside the office.
        body_speeds:
            Their instantaneous speeds (m/s), in the same order.  Omitted
            speeds default to zero (static bodies).

        This is the fast path used by the campaign collector; :meth:`sample`
        wraps it into a dictionary.
        """
        bodies = list(body_positions)
        if body_speeds is None:
            speeds = [0.0] * len(bodies)
        else:
            speeds = [float(s) for s in body_speeds]
        if len(speeds) != len(bodies):
            raise ValueError("body_speeds must match body_positions in length")
        cfg = self._config
        drift = self._advance_drift()
        n = self._mean_vec.shape[0]

        atten, extra_sigma = self._shadowing_vectors(bodies, speeds)
        noise = self._rng.normal(0.0, cfg.noise.base_sigma_db * self._sensitivity)
        if cfg.noise.outlier_prob > 0:
            outliers = self._rng.random(n) < cfg.noise.outlier_prob
            noise = noise + outliers * self._rng.normal(
                0.0, cfg.noise.outlier_scale_db, n
            )
        extra = np.where(
            extra_sigma > 0, self._rng.normal(0.0, 1.0, n) * extra_sigma, 0.0
        )
        rssi = self._mean_vec - atten + noise + extra + drift
        rssi = np.maximum(rssi, cfg.rssi_floor_dbm)
        if cfg.quantization_db > 0:
            rssi = np.round(rssi / cfg.quantization_db) * cfg.quantization_db
        return rssi

    def sample(
        self,
        body_positions: Iterable[Point],
        body_speeds: Optional[Iterable[float]] = None,
    ) -> Dict[str, float]:
        """One RSSI sample per stream, given current body positions.

        Parameters
        ----------
        body_positions:
            Positions of every person currently inside the office.  People
            sitting at their desks count too — they are simply far from most
            links' sensitive ellipses and mostly contribute nothing.
        body_speeds:
            Their instantaneous speeds (m/s); zero (static) when omitted.

        Returns
        -------
        dict
            Mapping stream id -> RSSI sample in dBm.
        """
        values = self.sample_vector(body_positions, body_speeds)
        return {
            sid: float(values[i]) for i, sid in enumerate(self._stream_order)
        }

    def reset(self) -> None:
        """Reset the slow drift state (e.g. between independent campaigns)."""
        self._drift = 0.0

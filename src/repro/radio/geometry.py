"""Planar geometry primitives for the office radio simulator.

The simulated office is a 2-D floor plan: sensors, workstations, the door
and walking users all live in the plane (the paper mounts all sensors at the
same height — one metre, desk level — so a 2-D model captures the relevant
line-of-sight geometry).

Provides points, segments, distance computations and the excess-path-length
test used by the body-shadowing model: a human body affects a link when it
lies inside the thin ellipse whose foci are the link's endpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = [
    "Point",
    "Segment",
    "distance",
    "point_segment_distance",
    "excess_path_length",
    "path_length",
    "interpolate",
]


@dataclass(frozen=True)
class Point:
    """A point in the office plane, coordinates in metres."""

    x: float
    y: float

    def __iter__(self):
        yield self.x
        yield self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Segment:
    """A line segment between two points (e.g. a sensor-to-sensor link)."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        """Length of the segment in metres."""
        return self.a.distance_to(self.b)

    def midpoint(self) -> Point:
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def distance_to_point(self, p: Point) -> float:
        """Shortest distance from ``p`` to the segment."""
        return point_segment_distance(p, self.a, self.b)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from point ``p`` to segment ``ab``.

    Degenerate segments (``a == b``) reduce to point-to-point distance.
    """
    ax, ay = a.x, a.y
    bx, by = b.x, b.y
    px, py = p.x, p.y
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq <= 1e-18:
        return p.distance_to(a)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = min(1.0, max(0.0, t))
    closest = Point(ax + t * dx, ay + t * dy)
    return p.distance_to(closest)


def excess_path_length(p: Point, a: Point, b: Point) -> float:
    """Excess path length of point ``p`` relative to link ``ab``.

    Defined as ``|pa| + |pb| - |ab|``: how much longer the bent path through
    ``p`` is than the direct path.  Device-free localisation models (Patwari
    & Wilson) treat a link as obstructed when a body's excess path length is
    below a small threshold ``lambda`` — i.e. the body lies inside the thin
    ellipse with foci ``a`` and ``b``.
    """
    return p.distance_to(a) + p.distance_to(b) - a.distance_to(b)


def path_length(points: Iterable[Point]) -> float:
    """Total polyline length through the given waypoints."""
    pts: List[Point] = list(points)
    if len(pts) < 2:
        return 0.0
    return sum(pts[i].distance_to(pts[i + 1]) for i in range(len(pts) - 1))


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Point a fraction of the way from ``a`` to ``b`` (fraction in [0, 1])."""
    fraction = min(1.0, max(0.0, fraction))
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)

"""Large-scale path-loss models.

The mean received power of a link is governed by distance-dependent path
loss.  The simulator uses the standard log-distance model

.. math:: PL(d) = PL(d_0) + 10 n \\log_{10}(d / d_0)

with a path-loss exponent ``n`` typical of cluttered indoor offices
(2.5-4).  The mean RSSI of a link is then ``P_tx + G - PL(d)``.

Absolute values only need to be plausible (the FADEWICH pipeline works on
fluctuations, not absolute RSSI), but keeping the model physical makes the
simulated traces realistic: longer links are weaker, closer to the noise
floor and relatively noisier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LogDistancePathLoss", "FreeSpacePathLoss"]


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path loss with configurable exponent.

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n``; 2.0 is free space, 3.0-4.0 is a cluttered
        indoor office.
    reference_distance:
        ``d_0`` in metres.
    reference_loss_db:
        ``PL(d_0)`` in dB.  The default of 40 dB at 1 m roughly matches
        2.4 GHz hardware.
    """

    exponent: float = 3.0
    reference_distance: float = 1.0
    reference_loss_db: float = 40.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if self.reference_distance <= 0:
            raise ValueError("reference distance must be positive")

    def loss_db(self, dist: float) -> float:
        """Path loss in dB at the given distance (metres)."""
        if dist < 0:
            raise ValueError("distance must be non-negative")
        d = max(dist, self.reference_distance * 1e-3)
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(
            d / self.reference_distance
        )

    def mean_rssi_dbm(self, dist: float, tx_power_dbm: float = 4.0,
                      antenna_gain_db: float = 0.0) -> float:
        """Mean RSSI (dBm) of a link at the given distance."""
        return tx_power_dbm + antenna_gain_db - self.loss_db(dist)


@dataclass(frozen=True)
class FreeSpacePathLoss:
    """Free-space (Friis) path loss, mostly useful as a sanity baseline.

    .. math:: PL(d) = 20 \\log_{10}(d) + 20 \\log_{10}(f) - 147.55

    with ``f`` in Hz and ``d`` in metres.
    """

    frequency_hz: float = 2.4e9

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    def loss_db(self, dist: float) -> float:
        """Free-space path loss in dB at the given distance (metres)."""
        if dist < 0:
            raise ValueError("distance must be non-negative")
        d = max(dist, 1e-3)
        return (
            20.0 * math.log10(d)
            + 20.0 * math.log10(self.frequency_hz)
            - 147.55
        )

    def mean_rssi_dbm(self, dist: float, tx_power_dbm: float = 4.0,
                      antenna_gain_db: float = 0.0) -> float:
        """Mean RSSI (dBm) of a link at the given distance."""
        return tx_power_dbm + antenna_gain_db - self.loss_db(dist)

"""Radio propagation substrate: the simulated office testbed.

The paper's evaluation runs on nine physical wireless sensors in a 6 m x 3 m
office.  This package replaces that hardware with a physics-inspired
simulator (see DESIGN.md, substitution table):

* :mod:`~repro.radio.geometry` — planar geometry primitives,
* :mod:`~repro.radio.office` — the office layout (sensors d1..d9,
  workstations w1..w3, the single door), including :func:`paper_office`,
* :mod:`~repro.radio.pathloss` — log-distance / free-space path loss,
* :mod:`~repro.radio.fading` — quiescent noise and per-link fade levels,
* :mod:`~repro.radio.shadowing` — the human-body obstruction model,
* :mod:`~repro.radio.links` — the m*(m-1) directed stream enumeration,
* :mod:`~repro.radio.channel` — the composite channel producing RSSI samples,
* :mod:`~repro.radio.trace` — stream buffers and full trace containers.
"""

from .channel import ChannelConfig, RadioChannel
from .fading import LinkFadeLevel, QuiescentNoise, SkewLaplace
from .geometry import (
    Point,
    Segment,
    distance,
    excess_path_length,
    interpolate,
    path_length,
    point_segment_distance,
)
from .links import LinkSet, Stream, enumerate_stream_ids, stream_id
from .office import OfficeLayout, Sensor, Workstation, paper_office
from .pathloss import FreeSpacePathLoss, LogDistancePathLoss
from .shadowing import BodyShadowingModel, ShadowingEffect
from .trace import RssiTrace, StreamBuffer

__all__ = [
    "BodyShadowingModel",
    "ChannelConfig",
    "FreeSpacePathLoss",
    "LinkFadeLevel",
    "LinkSet",
    "LogDistancePathLoss",
    "OfficeLayout",
    "Point",
    "QuiescentNoise",
    "RadioChannel",
    "RssiTrace",
    "Segment",
    "Sensor",
    "ShadowingEffect",
    "SkewLaplace",
    "Stream",
    "StreamBuffer",
    "Workstation",
    "distance",
    "enumerate_stream_ids",
    "excess_path_length",
    "interpolate",
    "paper_office",
    "path_length",
    "point_segment_distance",
    "stream_id",
]

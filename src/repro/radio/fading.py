"""Small-scale fading and measurement noise models.

In a cluttered office, RSSI fluctuates even when nothing moves: thermal
noise, quantisation, interference and residual multipath variation produce
a quiescent jitter of roughly 0.5-2 dB.  When a body moves near a link the
multipath structure is disturbed and the fluctuation grows by several dB.

Two pieces live here:

* :class:`QuiescentNoise` — the per-link noise floor when nobody moves.  The
  per-link magnitude is drawn from a *fade level* distribution: deep-fade
  links are intrinsically noisier and also more sensitive to motion
  (Patwari & Wilson's skew-Laplace fade-level observation).
* :class:`SkewLaplace` — the skew-Laplace distribution itself, used both to
  draw fade levels and as a heavy-tailed perturbation when links are
  disturbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SkewLaplace", "QuiescentNoise", "LinkFadeLevel"]


@dataclass(frozen=True)
class SkewLaplace:
    """Skew-Laplace distribution.

    Density (up to normalisation): exponential decay with rate ``lam_neg``
    below the mode and ``lam_pos`` above it.  Used by Patwari & Wilson to
    model RSSI changes on obstructed links: obstruction mostly attenuates
    (long negative tail) but can occasionally enhance via constructive
    multipath (short positive tail).

    Parameters
    ----------
    mode:
        Location of the distribution's peak (dB).
    lam_neg:
        Decay rate of the negative (attenuation) side; smaller = heavier tail.
    lam_pos:
        Decay rate of the positive (enhancement) side.
    """

    mode: float = 0.0
    lam_neg: float = 0.4
    lam_pos: float = 1.2

    def __post_init__(self) -> None:
        if self.lam_neg <= 0 or self.lam_pos <= 0:
            raise ValueError("decay rates must be positive")

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        """Draw samples.  Negative-side mass is lam_pos/(lam_neg+lam_pos)."""
        p_neg = self.lam_pos / (self.lam_neg + self.lam_pos)
        n = 1 if size is None else int(size)
        below = rng.random(n) < p_neg
        mags = np.where(
            below,
            -rng.exponential(1.0 / self.lam_neg, n),
            rng.exponential(1.0 / self.lam_pos, n),
        )
        out = self.mode + mags
        if size is None:
            return float(out[0])
        return out

    def mean(self) -> float:
        """Analytical mean of the distribution."""
        p_neg = self.lam_pos / (self.lam_neg + self.lam_pos)
        return self.mode - p_neg / self.lam_neg + (1 - p_neg) / self.lam_pos


@dataclass(frozen=True)
class LinkFadeLevel:
    """Static per-link fade level.

    Each link in a multipath-rich room sits at a different point of its
    small-scale fading pattern.  Links in a deep fade ("anti-fade" in the
    Patwari-Wilson terminology) respond strongly to nearby motion; links at
    a fading peak barely react.  The fade level is a unitless sensitivity in
    ``[min_sensitivity, max_sensitivity]`` drawn once per link.
    """

    sensitivity: float

    def __post_init__(self) -> None:
        if self.sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")

    @staticmethod
    def draw(
        rng: np.random.Generator,
        min_sensitivity: float = 0.6,
        max_sensitivity: float = 1.6,
    ) -> "LinkFadeLevel":
        """Draw a random per-link fade level uniformly in the given range."""
        if min_sensitivity < 0 or max_sensitivity < min_sensitivity:
            raise ValueError("invalid sensitivity range")
        return LinkFadeLevel(
            sensitivity=float(rng.uniform(min_sensitivity, max_sensitivity))
        )


@dataclass(frozen=True)
class QuiescentNoise:
    """The per-sample RSSI jitter of an undisturbed link.

    Modelled as Gaussian noise with a per-link standard deviation equal to
    ``base_sigma_db * fade_sensitivity``, plus an occasional heavy-tailed
    outlier (packet collisions, interference bursts) with probability
    ``outlier_prob``.
    """

    base_sigma_db: float = 0.9
    outlier_prob: float = 0.01
    outlier_scale_db: float = 3.0

    def __post_init__(self) -> None:
        if self.base_sigma_db < 0:
            raise ValueError("base sigma must be non-negative")
        if not 0.0 <= self.outlier_prob <= 1.0:
            raise ValueError("outlier probability must be in [0, 1]")

    def sample(
        self,
        rng: np.random.Generator,
        fade_sensitivity: float = 1.0,
        size: Optional[int] = None,
    ) -> np.ndarray:
        """Draw noise samples for a link with the given fade sensitivity."""
        n = 1 if size is None else int(size)
        noise = rng.normal(0.0, self.base_sigma_db * fade_sensitivity, n)
        if self.outlier_prob > 0:
            outliers = rng.random(n) < self.outlier_prob
            noise = noise + outliers * rng.normal(0.0, self.outlier_scale_db, n)
        if size is None:
            return float(noise[0])
        return noise

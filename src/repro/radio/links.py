"""Link and stream enumeration for a sensor deployment.

With ``m`` sensors, FADEWICH observes ``m * (m - 1)`` directed streams: for
every ordered pair ``(d_i, d_j)`` the receiver ``d_j`` reports the RSSI of
packets transmitted by ``d_i`` (paper Section III, item 2).  Although the
propagation path of ``d_i -> d_j`` and ``d_j -> d_i`` is geometrically the
same, real hardware measures them independently (different radios,
different interference), so the two directed streams share a mean but have
independent noise.

This module provides the stream naming convention (``"d1-d2"`` = transmitter
d1, receiver d2), the enumeration order (fixed, so feature vectors align),
and a container binding each stream to its geometry and per-link fade level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .fading import LinkFadeLevel
from .geometry import Point, Segment
from .office import OfficeLayout

__all__ = ["Stream", "LinkSet", "stream_id", "enumerate_stream_ids"]


def stream_id(tx: str, rx: str) -> str:
    """Canonical stream identifier, matching the paper's ``di-dj`` notation."""
    if tx == rx:
        raise ValueError("a stream requires distinct transmitter and receiver")
    return f"{tx}-{rx}"


def enumerate_stream_ids(sensor_ids: List[str]) -> List[str]:
    """All ``m * (m - 1)`` directed stream ids in a stable order."""
    ids: List[str] = []
    for tx in sensor_ids:
        for rx in sensor_ids:
            if tx != rx:
                ids.append(stream_id(tx, rx))
    return ids


@dataclass(frozen=True)
class Stream:
    """One directed RSSI stream between two sensors.

    Attributes
    ----------
    tx_id, rx_id:
        Transmitter and receiver sensor ids.
    tx_position, rx_position:
        Their positions in the office plane.
    fade:
        The static per-link fade level governing this stream's sensitivity
        to motion and its quiescent noise.
    """

    tx_id: str
    rx_id: str
    tx_position: Point
    rx_position: Point
    fade: LinkFadeLevel

    @property
    def id(self) -> str:
        return stream_id(self.tx_id, self.rx_id)

    @property
    def segment(self) -> Segment:
        return Segment(self.tx_position, self.rx_position)

    @property
    def length(self) -> float:
        """Link length in metres."""
        return self.tx_position.distance_to(self.rx_position)


class LinkSet:
    """The full set of directed streams of a sensor deployment.

    Fade levels for the two directions of the same sensor pair are drawn to
    be equal (the physical channel is reciprocal) while measurement noise is
    applied independently downstream.

    Parameters
    ----------
    layout:
        The office layout whose sensors define the streams.
    rng:
        Random generator used to draw per-link fade levels.
    min_sensitivity, max_sensitivity:
        Range of the fade-level sensitivities.
    """

    def __init__(
        self,
        layout: OfficeLayout,
        rng: np.random.Generator,
        *,
        min_sensitivity: float = 0.6,
        max_sensitivity: float = 1.6,
    ) -> None:
        if len(layout.sensors) < 2:
            raise ValueError("a LinkSet needs at least two sensors")
        self._layout = layout
        positions = layout.sensor_positions()
        pair_fades: Dict[Tuple[str, str], LinkFadeLevel] = {}
        streams: List[Stream] = []
        for tx in layout.sensor_ids:
            for rx in layout.sensor_ids:
                if tx == rx:
                    continue
                key = (min(tx, rx), max(tx, rx))
                if key not in pair_fades:
                    pair_fades[key] = LinkFadeLevel.draw(
                        rng,
                        min_sensitivity=min_sensitivity,
                        max_sensitivity=max_sensitivity,
                    )
                streams.append(
                    Stream(
                        tx_id=tx,
                        rx_id=rx,
                        tx_position=positions[tx],
                        rx_position=positions[rx],
                        fade=pair_fades[key],
                    )
                )
        self._streams = tuple(streams)
        self._by_id = {s.id: s for s in self._streams}

    # ------------------------------------------------------------------ #
    @property
    def layout(self) -> OfficeLayout:
        return self._layout

    @property
    def streams(self) -> Tuple[Stream, ...]:
        """All streams in enumeration order."""
        return self._streams

    @property
    def stream_ids(self) -> List[str]:
        """Stream ids in enumeration order (feature-vector order)."""
        return [s.id for s in self._streams]

    def __len__(self) -> int:
        return len(self._streams)

    def __iter__(self):
        return iter(self._streams)

    def get(self, sid: str) -> Stream:
        """Look up a stream by its ``"di-dj"`` id."""
        if sid not in self._by_id:
            raise KeyError(f"no stream {sid!r}")
        return self._by_id[sid]

    def subset(self, sensor_ids: List[str], rng: np.random.Generator) -> "LinkSet":
        """A new LinkSet over a subset of sensors (fresh fade levels)."""
        return LinkSet(self._layout.with_sensors(sensor_ids), rng)

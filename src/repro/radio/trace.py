"""RSSI trace containers.

The MD and RE modules consume *streams of RSSI measurements*.  These classes
store them efficiently (one ring-buffer-backed array per stream), provide
the sliding-window views both modules need, and support building full
offline traces for the campaign-level evaluation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["StreamBuffer", "RssiTrace"]


class StreamBuffer:
    """Bounded per-stream buffer of the most recent RSSI measurements.

    Used by the online system (MD keeps a sliding window of ``d`` seconds of
    data per stream).  Appending beyond ``maxlen`` discards the oldest
    samples.
    """

    def __init__(self, stream_ids: Sequence[str], maxlen: int) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        if len(stream_ids) == 0:
            raise ValueError("at least one stream id is required")
        self._maxlen = int(maxlen)
        self._buffers: Dict[str, deque] = {
            sid: deque(maxlen=self._maxlen) for sid in stream_ids
        }

    @property
    def stream_ids(self) -> List[str]:
        return list(self._buffers.keys())

    @property
    def maxlen(self) -> int:
        return self._maxlen

    def append(self, sample: Mapping[str, float]) -> None:
        """Append one multi-stream sample (stream id -> RSSI)."""
        for sid, buf in self._buffers.items():
            if sid not in sample:
                raise KeyError(f"sample is missing stream {sid!r}")
            buf.append(float(sample[sid]))

    def window(self, sid: str, size: Optional[int] = None) -> np.ndarray:
        """The most recent ``size`` samples of one stream (all if ``None``)."""
        buf = self._buffers[sid]
        data = np.asarray(buf, dtype=float)
        if size is None or size >= data.shape[0]:
            return data
        return data[-size:]

    def windows(self, size: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Per-stream windows of the most recent ``size`` samples."""
        return {sid: self.window(sid, size) for sid in self._buffers}

    def fill_level(self) -> int:
        """Number of samples currently stored per stream."""
        first = next(iter(self._buffers.values()))
        return len(first)

    def is_full(self) -> bool:
        return self.fill_level() >= self._maxlen

    def clear(self) -> None:
        for buf in self._buffers.values():
            buf.clear()


@dataclass
class RssiTrace:
    """A complete, timestamped multi-stream RSSI recording.

    Attributes
    ----------
    times:
        Sample timestamps in seconds, strictly increasing.
    streams:
        Mapping stream id -> array of RSSI samples, one per timestamp.
    """

    times: np.ndarray
    streams: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        n = self.times.shape[0]
        for sid, arr in list(self.streams.items()):
            arr = np.asarray(arr, dtype=float)
            if arr.shape[0] != n:
                raise ValueError(
                    f"stream {sid!r} has {arr.shape[0]} samples, expected {n}"
                )
            self.streams[sid] = arr
        if n > 1 and np.any(np.diff(self.times) <= 0):
            raise ValueError("timestamps must be strictly increasing")

    # ------------------------------------------------------------------ #
    @property
    def stream_ids(self) -> List[str]:
        return list(self.streams.keys())

    @property
    def n_samples(self) -> int:
        return int(self.times.shape[0])

    @property
    def duration(self) -> float:
        """Trace duration in seconds (0 for traces with fewer than 2 samples)."""
        if self.n_samples < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def sample_interval(self) -> float:
        """Median interval between consecutive samples."""
        if self.n_samples < 2:
            raise ValueError("need at least two samples to infer the interval")
        return float(np.median(np.diff(self.times)))

    def slice_time(self, t_start: float, t_end: float) -> "RssiTrace":
        """Sub-trace with timestamps in ``[t_start, t_end]`` (inclusive)."""
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        mask = (self.times >= t_start) & (self.times <= t_end)
        return RssiTrace(
            times=self.times[mask],
            streams={sid: arr[mask] for sid, arr in self.streams.items()},
        )

    def window_at(
        self, t_start: float, t_end: float
    ) -> Dict[str, np.ndarray]:
        """Per-stream measurement windows for ``[t_start, t_end]``."""
        sliced = self.slice_time(t_start, t_end)
        return dict(sliced.streams)

    def restricted_to(self, stream_ids: Iterable[str]) -> "RssiTrace":
        """A trace containing only the named streams (independent copies)."""
        wanted = list(stream_ids)
        missing = [sid for sid in wanted if sid not in self.streams]
        if missing:
            raise KeyError(f"missing streams: {missing}")
        return RssiTrace(
            times=self.times.copy(),
            streams={sid: self.streams[sid].copy() for sid in wanted},
        )

    def restricted_view(self, stream_ids: Iterable[str]) -> "RssiTrace":
        """Zero-copy variant of :meth:`restricted_to` for read-only use.

        The returned trace *shares* the timestamp and stream arrays with
        this one and skips re-validation (this trace was already checked on
        construction).  The evaluation pipeline restricts each recorded day
        once per sensor subset, so the copies and the strictly-increasing
        re-check of :meth:`restricted_to` are pure overhead there; use the
        copying variant whenever the result may be mutated.
        """
        wanted = list(stream_ids)
        missing = [sid for sid in wanted if sid not in self.streams]
        if missing:
            raise KeyError(f"missing streams: {missing}")
        trace = RssiTrace.__new__(RssiTrace)
        trace.times = self.times
        trace.streams = {sid: self.streams[sid] for sid in wanted}
        return trace

    @staticmethod
    def from_samples(
        times: Sequence[float], samples: Sequence[Mapping[str, float]]
    ) -> "RssiTrace":
        """Build a trace from a list of per-instant sample dictionaries."""
        times = np.asarray(times, dtype=float)
        if len(samples) != times.shape[0]:
            raise ValueError("times and samples must have equal length")
        if len(samples) == 0:
            raise ValueError("cannot build an empty trace")
        stream_ids = list(samples[0].keys())
        streams = {
            sid: np.asarray([s[sid] for s in samples], dtype=float)
            for sid in stream_ids
        }
        return RssiTrace(times=times, streams=streams)

"""Office layout: the experiment room of the paper.

The paper's testbed is a 6 m x 3 m office with three workstations (w1, w2,
w3), a single door, and nine wireless sensors (d1..d9) placed along the
walls about one metre above the floor (Figure 6).  This module describes the
layout as data: sensor positions, workstation positions and seat locations,
and the door position, with a factory reproducing the paper's office and a
generic constructor for "future work" style what-if layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .geometry import Point

__all__ = ["Sensor", "Workstation", "OfficeLayout", "paper_office", "wide_office"]


@dataclass(frozen=True)
class Sensor:
    """A wireless sensor node.

    Attributes
    ----------
    sensor_id:
        Identifier such as ``"d1"``.
    position:
        Mounting position in the office plane (metres).
    """

    sensor_id: str
    position: Point


@dataclass(frozen=True)
class Workstation:
    """A workstation with its seat position.

    Attributes
    ----------
    workstation_id:
        Identifier such as ``"w1"``.
    position:
        Desk position in the plane.
    seat:
        Where the assigned user sits (used as the origin of departure
        trajectories).  Defaults to the desk position.
    """

    workstation_id: str
    position: Point
    seat: Optional[Point] = None

    @property
    def seat_position(self) -> Point:
        return self.seat if self.seat is not None else self.position


@dataclass(frozen=True)
class OfficeLayout:
    """An office floor plan with sensors, workstations and one door.

    The paper's system model assumes a single entrance; the layout therefore
    carries exactly one door point.
    """

    width: float
    height: float
    sensors: Tuple[Sensor, ...]
    workstations: Tuple[Workstation, ...]
    door: Point
    name: str = "office"

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("office dimensions must be positive")
        ids = [s.sensor_id for s in self.sensors]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate sensor ids")
        wids = [w.workstation_id for w in self.workstations]
        if len(set(wids)) != len(wids):
            raise ValueError("duplicate workstation ids")
        for s in self.sensors:
            if not self.contains(s.position):
                raise ValueError(f"sensor {s.sensor_id} lies outside the office")
        for w in self.workstations:
            if not self.contains(w.position):
                raise ValueError(
                    f"workstation {w.workstation_id} lies outside the office"
                )

    # ------------------------------------------------------------------ #
    def contains(self, p: Point, margin: float = 1e-9) -> bool:
        """Whether a point lies inside the office rectangle."""
        return (
            -margin <= p.x <= self.width + margin
            and -margin <= p.y <= self.height + margin
        )

    @property
    def sensor_ids(self) -> List[str]:
        return [s.sensor_id for s in self.sensors]

    @property
    def workstation_ids(self) -> List[str]:
        return [w.workstation_id for w in self.workstations]

    def sensor(self, sensor_id: str) -> Sensor:
        """Look up a sensor by id."""
        for s in self.sensors:
            if s.sensor_id == sensor_id:
                return s
        raise KeyError(f"no sensor named {sensor_id!r}")

    def workstation(self, workstation_id: str) -> Workstation:
        """Look up a workstation by id."""
        for w in self.workstations:
            if w.workstation_id == workstation_id:
                return w
        raise KeyError(f"no workstation named {workstation_id!r}")

    def sensor_positions(self) -> Dict[str, Point]:
        return {s.sensor_id: s.position for s in self.sensors}

    def grid_zones(
        self, nx: int, ny: int = 1
    ) -> List[Tuple[str, float, float, float, float]]:
        """Partition the office rectangle into an ``nx`` x ``ny`` zone grid.

        Returns ``(name, x_min, y_min, x_max, y_max)`` tuples in row-major
        order (left to right, bottom to top), named ``z1``, ``z2``, ...
        This is pure floor-plan geometry; which radio links cross which
        zone is derived on top by :class:`repro.zones.ZoneMap`.
        """
        if nx < 1 or ny < 1:
            raise ValueError("zone grid needs at least one cell per axis")
        cells: List[Tuple[str, float, float, float, float]] = []
        for iy in range(ny):
            for ix in range(nx):
                cells.append(
                    (
                        f"z{iy * nx + ix + 1}",
                        self.width * ix / nx,
                        self.height * iy / ny,
                        self.width * (ix + 1) / nx,
                        self.height * (iy + 1) / ny,
                    )
                )
        return cells

    def with_sensors(self, sensor_ids: Sequence[str]) -> "OfficeLayout":
        """A copy of the layout restricted to a subset of sensors.

        The evaluation sweeps the number of sensors from 3 to 9 (Table III,
        Figures 7-10); subsets are taken in the given order.
        """
        selected = tuple(self.sensor(sid) for sid in sensor_ids)
        return OfficeLayout(
            width=self.width,
            height=self.height,
            sensors=selected,
            workstations=self.workstations,
            door=self.door,
            name=f"{self.name}[{len(selected)} sensors]",
        )


def paper_office() -> OfficeLayout:
    """The 6 m x 3 m office of the paper's experiment (Figure 6).

    Sensor and workstation coordinates are read off the published floor
    plan: d2..d5 along the bottom wall, d1 on the right wall, d6..d9 along
    the top wall / left side, workstations w1 (right), w2 (middle-top), w3
    (left), door at the bottom-left corner.
    """
    width, height = 6.0, 3.0
    sensors = (
        Sensor("d1", Point(5.9, 1.5)),
        Sensor("d2", Point(1.0, 0.1)),
        Sensor("d3", Point(2.3, 0.1)),
        Sensor("d4", Point(3.6, 0.1)),
        Sensor("d5", Point(4.9, 0.1)),
        Sensor("d6", Point(5.4, 2.9)),
        Sensor("d7", Point(4.0, 2.9)),
        Sensor("d8", Point(2.6, 2.9)),
        Sensor("d9", Point(1.2, 2.9)),
    )
    workstations = (
        Workstation("w1", Point(5.3, 2.2), seat=Point(5.0, 1.9)),
        Workstation("w2", Point(3.3, 2.4), seat=Point(3.3, 2.0)),
        Workstation("w3", Point(1.4, 2.3), seat=Point(1.6, 1.9)),
    )
    door = Point(0.2, 0.4)
    return OfficeLayout(
        width=width,
        height=height,
        sensors=sensors,
        workstations=workstations,
        door=door,
        name="paper-office",
    )


def wide_office() -> OfficeLayout:
    """A larger 8 m x 4 m office with four workstations.

    A "future work" what-if deployment for scenario sweeps: the same nine
    sensors spread along the walls of a wider room, one extra workstation,
    and longer workstation-to-door walks.  Compared with the paper's office
    the links are longer and the desks sit further from the door, so MD
    sees weaker per-crossing attenuation — a useful stress variant.
    """
    width, height = 8.0, 4.0
    sensors = (
        Sensor("d1", Point(7.9, 2.0)),
        Sensor("d2", Point(1.3, 0.1)),
        Sensor("d3", Point(3.1, 0.1)),
        Sensor("d4", Point(4.9, 0.1)),
        Sensor("d5", Point(6.7, 0.1)),
        Sensor("d6", Point(7.2, 3.9)),
        Sensor("d7", Point(5.3, 3.9)),
        Sensor("d8", Point(3.4, 3.9)),
        Sensor("d9", Point(1.5, 3.9)),
    )
    workstations = (
        Workstation("w1", Point(7.2, 3.0), seat=Point(6.8, 2.7)),
        Workstation("w2", Point(5.2, 3.2), seat=Point(5.2, 2.8)),
        Workstation("w3", Point(3.2, 3.2), seat=Point(3.2, 2.8)),
        Workstation("w4", Point(1.4, 3.0), seat=Point(1.7, 2.7)),
    )
    door = Point(0.2, 0.5)
    return OfficeLayout(
        width=width,
        height=height,
        sensors=sensors,
        workstations=workstations,
        door=door,
        name="wide-office",
    )

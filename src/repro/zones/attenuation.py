"""Per-link attenuation features: expected baseline minus observed RSSI.

The senseye exemplars estimate free-space RSSI from link geometry and
read body shadowing as the gap between that baseline and the observation.
This extractor does the same against the repository's log-distance model:
for every directed stream the expected quiescent RSSI is
``mean_rssi_dbm(link_length)`` under a configured
:class:`~repro.radio.pathloss.LogDistancePathLoss`, and the feature is
``expected - observed`` in dB — positive when a body (or noise) eats
signal, near zero on an idle link.

Registered as the ``"attenuation"`` feature extractor, so its per-day
blocks share a :class:`~repro.features.store.FeatureStore` with the
rolling-std features that feed detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Sequence

import numpy as np

from ..features.base import FeatureBlock, register_extractor
from ..radio.office import OfficeLayout
from ..radio.pathloss import LogDistancePathLoss
from .map import stream_segments

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..simulation.collector import DayRecording

__all__ = ["AttenuationExtractor"]


@register_extractor
@dataclass(frozen=True)
class AttenuationExtractor:
    """Observed RSSI shortfall against the log-distance baseline.

    The path-loss parameters default to the simulator's channel defaults
    (exponent 3.0, 40 dB at 1 m, 4 dBm transmit power), so on a clean
    channel the extracted attenuation of an idle link is exactly the
    injected noise.
    """

    name: ClassVar[str] = "attenuation"

    tx_power_dbm: float = 4.0
    exponent: float = 3.0
    reference_distance: float = 1.0
    reference_loss_db: float = 40.0

    def __post_init__(self) -> None:
        if not self.reference_distance > 0:
            raise ValueError("reference_distance must be positive")

    def baseline(self, layout: OfficeLayout, stream_ids: Sequence[str]) -> np.ndarray:
        """Expected quiescent RSSI (dBm) per stream, in the given order."""
        pathloss = LogDistancePathLoss(
            exponent=self.exponent,
            reference_distance=self.reference_distance,
            reference_loss_db=self.reference_loss_db,
        )
        segments = stream_segments(layout)
        expected = np.empty(len(stream_ids))
        for j, sid in enumerate(stream_ids):
            if sid not in segments:
                raise KeyError(f"stream {sid!r} has no link in this layout")
            a, b = segments[sid]
            expected[j] = pathloss.mean_rssi_dbm(
                a.distance_to(b), tx_power_dbm=self.tx_power_dbm
            )
        return expected

    def day_block(self, day: "DayRecording", layout: OfficeLayout) -> FeatureBlock:
        """Attenuation block for one day, columns in trace stream order."""
        trace = day.trace
        stream_ids = trace.stream_ids
        expected = self.baseline(layout, stream_ids)
        matrix = np.empty((trace.n_samples, len(stream_ids)))
        for j, sid in enumerate(stream_ids):
            # Per-column scalar subtraction: the exact expression the
            # streaming engine applies per batch, so offline and online
            # attenuation agree bitwise.
            matrix[:, j] = expected[j] - trace.streams[sid]
        columns = {sid: j for j, sid in enumerate(stream_ids)}
        return trace.times, matrix, columns

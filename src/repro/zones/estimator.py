"""Zone-occupancy estimation from per-link attenuation.

Offline estimator and its bounded-state streaming twin, under the same
equivalence contract as the detector zoo: the concatenated outputs of
:class:`ZoneEngine` over *any* batch split of a day — partial smoothing
head included — are bitwise identical to :meth:`ZoneOccupancyEstimator.
offline_grid` over the full matrix.

The inference pipeline (the paper's "future work" localisation sketched
by the senseye exemplars, adapted to a room with *seated* occupants
whose bodies shadow desk-adjacent links permanently):

1. smooth each link's attenuation with a short rolling mean;
2. calibrate each link's quiescent level as the median of its first
   ``calibration_samples`` smoothed values, and rectify the excess
   (``max(smoothed - calib, 0)``) so a departing occupant's *removed*
   seat shadow cannot drag zone scores negative;
3. average the rectified excess of the links crossing each zone,
   weighting every link by ``1 / (number of zones it crosses)`` — a
   wall-to-wall link that crosses the whole office says little about
   *where* the body is, a short link crossing one zone says a lot;
4. declare the argmax zone occupied when its score clears
   ``threshold_db``.  Equal scores resolve to the lowest zone index —
   the same tie-break :meth:`~repro.zones.map.ZoneMap.zone_of` applies
   to boundary points.

Like the detector engines, nothing is declared during the calibration
window: scores are NaN and occupancy is ``-1`` for the first
``calibration_samples`` instants on *both* paths (the offline grid is
causal by construction, so the streaming twin can match it bitwise).

Bitwise-equivalence notes (mirroring ``OnlineStdSum``): the engine keeps
the last ``w - 1`` attenuation samples per link contiguous in arrival
order and re-materialises ``concat(tail, batch)``, so every full rolling
window reduces over the same contiguous memory as the offline
``sliding_window_view`` row, and every partial head is a prefix-slice
``np.mean`` over the same values.  The calibration median is an order
statistic — value-deterministic, so the engine computes it from its own
buffered copy of the first smoothed values.  Per-zone averaging
accumulates link columns in the zone's declared stream order with
identical scalar weights on both paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..radio.geometry import Point
from ..radio.office import OfficeLayout
from .attenuation import AttenuationExtractor
from .map import ZoneMap

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..features.store import FeatureStore
    from ..simulation.collector import DayRecording

__all__ = [
    "ZoneGrid",
    "ZoneAccuracy",
    "ZoneOccupancyEstimator",
    "ZoneEngine",
    "score_walks",
]


@dataclass(frozen=True)
class ZoneGrid:
    """Per-instant zone scores and the occupancy decision.

    ``scores`` is ``(n, n_zones)`` calibrated excess attenuation (dB)
    per zone, NaN inside the calibration window where it is undefined;
    ``occupied`` is int64 with the winning zone index, ``-1`` where no
    zone clears the threshold (including the calibration window).
    """

    scores: np.ndarray
    occupied: np.ndarray

    def __post_init__(self) -> None:
        if self.scores.shape[:1] != self.occupied.shape:
            raise ValueError(
                "scores and occupied must agree on the instant count, got "
                f"{self.scores.shape} vs {self.occupied.shape}"
            )

    @property
    def n_samples(self) -> int:
        return int(self.occupied.shape[0])


@dataclass(frozen=True)
class ZoneAccuracy:
    """Zone-occupancy score against ground-truth walker positions.

    Counts accumulate over the *scoreable* instants: timestamps covered
    by exactly one active trajectory (multi-walker instants are ambiguous
    for a single-occupant estimator and are excluded).
    """

    n_instants: int = 0
    n_predicted: int = 0
    n_correct: int = 0

    def __add__(self, other: "ZoneAccuracy") -> "ZoneAccuracy":
        return ZoneAccuracy(
            n_instants=self.n_instants + other.n_instants,
            n_predicted=self.n_predicted + other.n_predicted,
            n_correct=self.n_correct + other.n_correct,
        )

    @property
    def accuracy(self) -> float:
        """Fraction of occupancy predictions naming the true zone."""
        return self.n_correct / self.n_predicted if self.n_predicted else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of scoreable instants with an occupancy prediction."""
        return self.n_predicted / self.n_instants if self.n_instants else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "n_instants": int(self.n_instants),
            "n_predicted": int(self.n_predicted),
            "n_correct": int(self.n_correct),
            "accuracy": float(self.accuracy),
            "coverage": float(self.coverage),
        }


def _smooth_column(col: np.ndarray, w: int) -> np.ndarray:
    """Rolling mean with a prefix-mean head — the offline reference.

    ``col`` must be contiguous; the first ``w - 1`` outputs average the
    prefix seen so far (the partial-window head the streaming contract
    covers), the rest are full ``w``-sample windows.
    """
    n = col.shape[0]
    out = np.empty(n)
    for i in range(min(w - 1, n)):
        out[i] = np.mean(col[: i + 1])
    if n >= w:
        out[w - 1 :] = np.mean(sliding_window_view(col, w), axis=1)
    return out


def _score_matrix(
    excess: Mapping[str, np.ndarray],
    zone_streams: Sequence[Sequence[str]],
    weights: Mapping[str, float],
    n: int,
) -> np.ndarray:
    """``(n, n_zones)`` weighted-mean zone scores from per-link excess.

    Shared verbatim by the offline grid and the streaming engine so the
    accumulation order (zone stream order, left to right) and the scalar
    weights are identical.
    """
    scores = np.zeros((n, len(zone_streams)))
    for z, sids in enumerate(zone_streams):
        if not sids:
            continue
        acc: Optional[np.ndarray] = None
        denom = 0.0
        for sid in sids:
            term = excess[sid] * weights[sid]
            acc = term if acc is None else acc + term
            denom += weights[sid]
        scores[:, z] = acc / denom
    return scores


def _decide(scores: np.ndarray, threshold_db: float) -> np.ndarray:
    """Occupancy decisions for calibrated score rows (int64, -1 = none)."""
    n = scores.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    best = np.argmax(scores, axis=1)
    top = scores[np.arange(n), best]
    return np.where(top > threshold_db, best, -1).astype(np.int64)


def _crossing_counts(zone_map: ZoneMap) -> Dict[str, int]:
    """How many zones of the map each declared stream crosses."""
    counts: Dict[str, int] = {}
    for zone in zone_map.zones:
        for sid in zone.stream_ids:
            counts[sid] = counts.get(sid, 0) + 1
    return counts


@dataclass(frozen=True)
class ZoneOccupancyEstimator:
    """Which zone is occupied, inferred from crossing-link attenuation.

    Parameters
    ----------
    zone_map:
        The zones and their crossing links
        (:meth:`~repro.zones.map.ZoneMap.from_layout`).
    attenuation:
        Baseline model turning raw RSSI into per-link attenuation.
    smoothing_samples:
        Rolling-mean window (samples) applied per link before zoning.
    calibration_samples:
        Leading smoothed samples whose per-link median defines the
        quiescent level; no occupancy is declared inside this window.
    threshold_db:
        Minimum weighted zone excess to declare occupancy.
    """

    zone_map: ZoneMap
    attenuation: AttenuationExtractor = field(
        default_factory=AttenuationExtractor
    )
    smoothing_samples: int = 4
    calibration_samples: int = 120
    threshold_db: float = 0.25

    def __post_init__(self) -> None:
        if self.smoothing_samples < 1:
            raise ValueError("smoothing_samples must be at least 1")
        if self.calibration_samples < 1:
            raise ValueError("calibration_samples must be at least 1")

    def _zone_streams(self, available: Sequence[str]) -> List[List[str]]:
        """Per-zone crossing streams restricted to the available ones."""
        present = set(available)
        return [
            [sid for sid in zone.stream_ids if sid in present]
            for zone in self.zone_map.zones
        ]

    def _weights(self) -> Dict[str, float]:
        """Per-link exclusivity weight: ``1 / zones crossed`` (static)."""
        return {
            sid: 1.0 / c for sid, c in _crossing_counts(self.zone_map).items()
        }

    def offline_grid(
        self, matrix: np.ndarray, columns: Mapping[str, int]
    ) -> ZoneGrid:
        """Zone occupancy over a full ``(n, n_streams)`` attenuation matrix."""
        w = self.smoothing_samples
        k = self.calibration_samples
        n = matrix.shape[0]
        n_zones = self.zone_map.n_zones
        zone_streams = self._zone_streams(list(columns))
        scores = np.full((n, n_zones), np.nan)
        occupied = np.full(n, -1, dtype=np.int64)
        if n <= k:
            return ZoneGrid(scores=scores, occupied=occupied)
        weights = self._weights()
        excess: Dict[str, np.ndarray] = {}
        for sids in zone_streams:
            for sid in sids:
                if sid not in excess:
                    col = np.ascontiguousarray(matrix[:, columns[sid]])
                    smoothed = _smooth_column(col, w)
                    calib = float(np.median(smoothed[:k]))
                    excess[sid] = np.maximum(smoothed[k:] - calib, 0.0)
        scores[k:] = _score_matrix(excess, zone_streams, weights, n - k)
        occupied[k:] = _decide(scores[k:], self.threshold_db)
        return ZoneGrid(scores=scores, occupied=occupied)

    def day_grid(
        self,
        day: "DayRecording",
        layout: OfficeLayout,
        store: Optional["FeatureStore"] = None,
    ) -> Tuple[np.ndarray, ZoneGrid]:
        """``(times, grid)`` for one recorded day via the feature store."""
        if store is not None:
            times, matrix, columns = store.day_block(self.attenuation, day)
        else:
            times, matrix, columns = self.attenuation.day_block(day, layout)
        return times, self.offline_grid(matrix, columns)

    def streaming_engine(
        self, stream_ids: Sequence[str], layout: OfficeLayout
    ) -> "ZoneEngine":
        """A fresh bounded-state twin for the given stream order."""
        zone_streams = self._zone_streams(stream_ids)
        needed: List[str] = []
        for sids in zone_streams:
            for sid in sids:
                if sid not in needed:
                    needed.append(sid)
        expected = self.attenuation.baseline(layout, needed)
        baselines = {sid: float(expected[j]) for j, sid in enumerate(needed)}
        return ZoneEngine(
            zone_map=self.zone_map,
            stream_ids=stream_ids,
            baselines=baselines,
            smoothing_samples=self.smoothing_samples,
            calibration_samples=self.calibration_samples,
            threshold_db=self.threshold_db,
        )


class ZoneEngine:
    """Streaming zone-occupancy engine, bitwise-identical to offline.

    Bounded state: the last ``smoothing_samples - 1`` attenuation values
    per needed link (arrival order), up to ``calibration_samples``
    smoothed values per link while calibrating, the per-link calibration
    medians once frozen, and a sample counter.  Hosted per-tenant by
    :class:`~repro.streaming.detector.OnlineDetector`.
    """

    def __init__(
        self,
        zone_map: ZoneMap,
        stream_ids: Sequence[str],
        baselines: Mapping[str, float],
        smoothing_samples: int,
        calibration_samples: int,
        threshold_db: float,
    ) -> None:
        if smoothing_samples < 1:
            raise ValueError("smoothing_samples must be at least 1")
        if calibration_samples < 1:
            raise ValueError("calibration_samples must be at least 1")
        self.zone_map = zone_map
        self.stream_ids = list(stream_ids)
        self.smoothing_samples = int(smoothing_samples)
        self.calibration_samples = int(calibration_samples)
        self.threshold_db = float(threshold_db)
        present = set(self.stream_ids)
        self._zone_streams = [
            [sid for sid in zone.stream_ids if sid in present]
            for zone in zone_map.zones
        ]
        self._weights = {
            sid: 1.0 / c for sid, c in _crossing_counts(zone_map).items()
        }
        self._needed: List[str] = []
        for sids in self._zone_streams:
            for sid in sids:
                if sid not in self._needed:
                    self._needed.append(sid)
        missing = [sid for sid in self._needed if sid not in baselines]
        if missing:
            raise ValueError(f"missing baselines for streams {missing!r}")
        self._baselines = {sid: float(baselines[sid]) for sid in self._needed}
        col_of = {sid: j for j, sid in enumerate(self.stream_ids)}
        self._col_of = {sid: col_of[sid] for sid in self._needed}
        self._count = 0
        self._tails: Dict[str, np.ndarray] = {
            sid: np.empty(0) for sid in self._needed
        }
        self._calib_buf: Dict[str, np.ndarray] = {
            sid: np.empty(0) for sid in self._needed
        }
        self._calib: Optional[Dict[str, float]] = None

    def extend(self, matrix: np.ndarray) -> ZoneGrid:
        """Consume an ``(m, n_streams)`` RSSI batch, return its grid."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.stream_ids):
            raise ValueError(
                f"expected a (m, {len(self.stream_ids)}) matrix, "
                f"got shape {matrix.shape}"
            )
        m = matrix.shape[0]
        w = self.smoothing_samples
        k = self.calibration_samples
        c0 = self._count
        n_zones = self.zone_map.n_zones
        if m == 0:
            return ZoneGrid(
                scores=np.full((0, n_zones), np.nan),
                occupied=np.empty(0, dtype=np.int64),
            )
        smoothed: Dict[str, np.ndarray] = {}
        for sid in self._needed:
            col = self._baselines[sid] - np.ascontiguousarray(
                matrix[:, self._col_of[sid]]
            )
            tail = self._tails[sid]
            ext = np.concatenate((tail, col)) if tail.size else col
            lt = ext.shape[0] - m
            out = np.empty(m)
            # Partial-window head: while fewer than w samples have ever
            # arrived the tail holds the entire history, so each prefix
            # slice is the same contiguous array the offline head averages.
            for i in range(min(m, max(0, (w - 1) - c0))):
                out[i] = np.mean(ext[: lt + i + 1])
            i0 = max(0, (w - 1) - c0)
            if i0 < m:
                out[i0:] = np.mean(sliding_window_view(ext, w), axis=1)
            smoothed[sid] = out
            nt = min(c0 + m, w - 1)
            self._tails[sid] = np.ascontiguousarray(ext[ext.shape[0] - nt :])
        if self._calib is None:
            take = min(m, k - c0)
            if take > 0:
                for sid in self._needed:
                    self._calib_buf[sid] = np.concatenate(
                        (self._calib_buf[sid], smoothed[sid][:take])
                    )
            if c0 + m >= k:
                # The calibration median is an order statistic of each
                # link's first k smoothed values — value-deterministic,
                # so computing it from this buffered copy matches the
                # offline ``np.median(smoothed[:k])`` bitwise.
                self._calib = {
                    sid: float(np.median(self._calib_buf[sid]))
                    for sid in self._needed
                }
                self._calib_buf = {
                    sid: np.empty(0) for sid in self._needed
                }
        scores = np.full((m, n_zones), np.nan)
        occupied = np.full(m, -1, dtype=np.int64)
        j0 = max(0, k - c0)
        if self._calib is not None and j0 < m:
            excess = {
                sid: np.maximum(smoothed[sid][j0:] - self._calib[sid], 0.0)
                for sid in self._needed
            }
            scores[j0:] = _score_matrix(
                excess, self._zone_streams, self._weights, m - j0
            )
            occupied[j0:] = _decide(scores[j0:], self.threshold_db)
        self._count = c0 + m
        return ZoneGrid(scores=scores, occupied=occupied)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Plain-JSON state: config, baselines, tails and calibration."""
        return {
            "count": int(self._count),
            "stream_ids": list(self.stream_ids),
            "smoothing_samples": int(self.smoothing_samples),
            "calibration_samples": int(self.calibration_samples),
            "threshold_db": float(self.threshold_db),
            "zones": self.zone_map.to_jsonable(),
            "baselines": dict(self._baselines),
            "tails": {sid: tail.tolist() for sid, tail in self._tails.items()},
            "calib_buf": {
                sid: buf.tolist() for sid, buf in self._calib_buf.items()
            },
            "calib": dict(self._calib) if self._calib is not None else None,
        }

    @classmethod
    def from_snapshot(cls, state: Mapping[str, object]) -> "ZoneEngine":
        engine = cls(
            zone_map=ZoneMap.from_jsonable(state["zones"]),
            stream_ids=list(state["stream_ids"]),
            baselines=dict(state["baselines"]),
            smoothing_samples=int(state["smoothing_samples"]),
            calibration_samples=int(state["calibration_samples"]),
            threshold_db=float(state["threshold_db"]),
        )
        tails = state["tails"]
        if set(tails) != set(engine._needed):
            raise ValueError("snapshot tails do not match the needed streams")
        engine._count = int(state["count"])
        for sid in engine._needed:
            engine._tails[sid] = np.asarray(tails[sid], dtype=float)
        for sid, buf in state["calib_buf"].items():
            engine._calib_buf[sid] = np.asarray(buf, dtype=float)
        calib = state.get("calib")
        engine._calib = (
            None if calib is None else {s: float(v) for s, v in calib.items()}
        )
        return engine


def score_walks(
    zone_map: ZoneMap,
    times: np.ndarray,
    occupied: np.ndarray,
    trajectories: Sequence[object],
) -> ZoneAccuracy:
    """Score zone occupancy against ground-truth walker trajectories.

    ``trajectories`` are :class:`~repro.mobility.trajectory.Trajectory`
    objects (any walker, any day); instants covered by exactly one active
    trajectory are scored against
    :meth:`~repro.mobility.trajectory.Trajectory.positions_at`.
    """
    times = np.asarray(times, dtype=float)
    occupied = np.asarray(occupied)
    n = times.shape[0]
    if occupied.shape[0] != n:
        raise ValueError("times and occupied must have equal length")
    active = np.zeros(n, dtype=np.int64)
    masks = []
    for traj in trajectories:
        mask = (times >= traj.start_time) & (times <= traj.end_time)
        masks.append(mask)
        active += mask
    total = ZoneAccuracy()
    for traj, mask in zip(trajectories, masks):
        idx = np.flatnonzero(mask & (active == 1))
        if idx.size == 0:
            continue
        pos = traj.positions_at(times[idx])
        truth = np.fromiter(
            (zone_map.zone_of(Point(float(x), float(y))) for x, y in pos),
            dtype=np.int64,
            count=idx.size,
        )
        pred = occupied[idx]
        has_pred = pred >= 0
        total = total + ZoneAccuracy(
            n_instants=int(idx.size),
            n_predicted=int(has_pred.sum()),
            n_correct=int((has_pred & (pred == truth)).sum()),
        )
    return total

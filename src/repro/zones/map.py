"""Zone geometry: which radio links cross which part of the office.

The paper's localisation idea (and the senseye exemplars' zone beliefs)
rests on one geometric fact: a person standing in a zone attenuates
exactly the links whose line-of-sight segment crosses that zone.  A
:class:`ZoneMap` binds a rectangular partition of the office floor plan
(:meth:`repro.radio.office.OfficeLayout.grid_zones`) to the directed
streams crossing each cell, computed by Liang-Barsky segment clipping
over the full ``m * (m - 1)`` stream enumeration.

Zones are frozen dataclasses of JSON primitives, so a map round-trips
through the sweep-store component codec and through plain-JSON streaming
snapshots (:meth:`ZoneMap.to_jsonable`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..radio.geometry import Point
from ..radio.links import stream_id
from ..radio.office import OfficeLayout

__all__ = ["Zone", "ZoneMap", "stream_segments"]


def stream_segments(
    layout: OfficeLayout, sensor_ids: Optional[Sequence[str]] = None
) -> Dict[str, Tuple[Point, Point]]:
    """Endpoint pair of every directed stream between the given sensors.

    Enumeration order matches :func:`repro.radio.links.enumerate_stream_ids`
    (all ordered transmitter/receiver pairs), which is also the column
    order of recorded traces.
    """
    ids = list(sensor_ids) if sensor_ids is not None else layout.sensor_ids
    positions = layout.sensor_positions()
    segments: Dict[str, Tuple[Point, Point]] = {}
    for tx in ids:
        for rx in ids:
            if tx != rx:
                segments[stream_id(tx, rx)] = (positions[tx], positions[rx])
    return segments


def _segment_crosses_rect(
    a: Point,
    b: Point,
    x_min: float,
    y_min: float,
    x_max: float,
    y_max: float,
) -> bool:
    """Liang-Barsky test: does segment ``a->b`` intersect the closed rect?"""
    t0, t1 = 0.0, 1.0
    dx = b.x - a.x
    dy = b.y - a.y
    for p, q in (
        (-dx, a.x - x_min),
        (dx, x_max - a.x),
        (-dy, a.y - y_min),
        (dy, y_max - a.y),
    ):
        if p == 0.0:
            if q < 0.0:
                return False
        else:
            r = q / p
            if p < 0.0:
                if r > t1:
                    return False
                if r > t0:
                    t0 = r
            else:
                if r < t1:
                    t1 = r
                if r < t0:
                    return False
    return t0 <= t1


@dataclass(frozen=True)
class Zone:
    """One rectangular zone and the directed streams crossing it."""

    name: str
    x_min: float
    y_min: float
    x_max: float
    y_max: float
    stream_ids: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not (self.x_max > self.x_min and self.y_max > self.y_min):
            raise ValueError(f"zone {self.name!r} has an empty rectangle")

    def contains(self, p: Point) -> bool:
        """Whether a point lies in the closed zone rectangle."""
        return (
            self.x_min <= p.x <= self.x_max and self.y_min <= p.y <= self.y_max
        )


@dataclass(frozen=True)
class ZoneMap:
    """An ordered set of zones partitioning (part of) the office floor."""

    zones: Tuple[Zone, ...]

    def __post_init__(self) -> None:
        if not self.zones:
            raise ValueError("a zone map needs at least one zone")
        names = [z.name for z in self.zones]
        if len(set(names)) != len(names):
            raise ValueError("zone names must be unique")

    @classmethod
    def from_layout(
        cls,
        layout: OfficeLayout,
        nx: int = 3,
        ny: int = 1,
        sensor_ids: Optional[Sequence[str]] = None,
    ) -> "ZoneMap":
        """Grid partition of the office with per-zone crossing links.

        A stream belongs to every zone its sensor-to-sensor segment
        intersects (closed intersection, so wall-hugging links count for
        the cells they run along).
        """
        segments = stream_segments(layout, sensor_ids)
        zones = []
        for name, x0, y0, x1, y1 in layout.grid_zones(nx, ny):
            crossing = tuple(
                sid
                for sid, (a, b) in segments.items()
                if _segment_crosses_rect(a, b, x0, y0, x1, y1)
            )
            zones.append(
                Zone(
                    name=name,
                    x_min=x0,
                    y_min=y0,
                    x_max=x1,
                    y_max=y1,
                    stream_ids=crossing,
                )
            )
        return cls(zones=tuple(zones))

    @property
    def n_zones(self) -> int:
        return len(self.zones)

    @property
    def zone_names(self) -> List[str]:
        return [z.name for z in self.zones]

    def zone_of(self, p: Point) -> int:
        """Index of the first zone containing ``p``; ``-1`` if none.

        On shared cell edges the lowest zone index wins — the same
        tie-break :func:`numpy.argmax` applies to equal zone scores, so
        ground truth and estimate agree on boundaries by construction.
        """
        for i, z in enumerate(self.zones):
            if z.contains(p):
                return i
        return -1

    # ------------------------------------------------------------------ #
    # Plain-JSON round-trip for streaming snapshots (codec-independent).
    def to_jsonable(self) -> List[Dict[str, object]]:
        return [
            {
                "name": z.name,
                "bounds": [z.x_min, z.y_min, z.x_max, z.y_max],
                "stream_ids": list(z.stream_ids),
            }
            for z in self.zones
        ]

    @classmethod
    def from_jsonable(cls, data: Sequence[Mapping[str, object]]) -> "ZoneMap":
        zones = tuple(
            Zone(
                name=str(entry["name"]),
                x_min=float(entry["bounds"][0]),
                y_min=float(entry["bounds"][1]),
                x_max=float(entry["bounds"][2]),
                y_max=float(entry["bounds"][3]),
                stream_ids=tuple(entry["stream_ids"]),
            )
            for entry in data
        )
        return cls(zones=zones)

"""Zone-occupancy inference — the paper's localisation "future work".

Built on the reusable feature pipeline: the ``"attenuation"`` extractor
turns raw per-link RSSI into expected-minus-observed attenuation, a
:class:`ZoneMap` derived from the office layout knows which links cross
which zone, and :class:`ZoneOccupancyEstimator` (with its bitwise-
identical streaming twin :class:`ZoneEngine`) turns crossing-link
attenuation into a per-instant occupied-zone estimate, scored against
ground-truth walker trajectories.
"""

from .attenuation import AttenuationExtractor
from .estimator import (
    ZoneAccuracy,
    ZoneEngine,
    ZoneGrid,
    ZoneOccupancyEstimator,
    score_walks,
)
from .map import Zone, ZoneMap, stream_segments

__all__ = [
    "AttenuationExtractor",
    "Zone",
    "ZoneAccuracy",
    "ZoneEngine",
    "ZoneGrid",
    "ZoneMap",
    "ZoneOccupancyEstimator",
    "score_walks",
    "stream_segments",
]

"""Simulation harness: clocks, campaign collection and labelled datasets.

* :mod:`~repro.simulation.clock` — the fixed-rate simulation clock,
* :mod:`~repro.simulation.collector` — executes movement schedules against
  the simulated office and records RSSI traces, ground-truth events and
  input activity (the paper's five-day measurement campaign); hosts both
  the vectorised batch engine (``collect_day``) and the per-step reference
  engine (``collect_day_scalar``),
* :mod:`~repro.simulation.runner` — parallel execution of independent days
  and campaigns via ``concurrent.futures``,
* :mod:`~repro.simulation.dataset` — labelled RE sample datasets.
"""

from .clock import SimulationClock
from .collector import (
    CampaignCollector,
    CampaignRecording,
    DayRecording,
    derive_seed_sequence,
)
from .dataset import LabeledSample, SampleDataset
from .runner import CampaignRunner, DayTask

__all__ = [
    "CampaignCollector",
    "CampaignRecording",
    "CampaignRunner",
    "DayRecording",
    "DayTask",
    "LabeledSample",
    "SampleDataset",
    "SimulationClock",
    "derive_seed_sequence",
]

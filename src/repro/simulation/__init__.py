"""Simulation harness: clocks, campaign collection and labelled datasets.

* :mod:`~repro.simulation.clock` — the fixed-rate simulation clock,
* :mod:`~repro.simulation.collector` — executes movement schedules against
  the simulated office and records RSSI traces, ground-truth events and
  input activity (the paper's five-day measurement campaign),
* :mod:`~repro.simulation.dataset` — labelled RE sample datasets.
"""

from .clock import SimulationClock
from .collector import CampaignCollector, CampaignRecording, DayRecording
from .dataset import LabeledSample, SampleDataset

__all__ = [
    "CampaignCollector",
    "CampaignRecording",
    "DayRecording",
    "LabeledSample",
    "SampleDataset",
    "SimulationClock",
]

"""Campaign data collection.

Plays the role of the paper's five-day measurement campaign: it executes a
:class:`~repro.mobility.scheduler.CampaignSchedule` against the simulated
office, producing for every day

* the multi-stream RSSI trace recorded by the sensors,
* the ground-truth event log (the "human supervisor" of the paper),
* the per-workstation keyboard/mouse activity traces.

The collector is deterministic given its random generator, so experiments
and benchmarks are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..mobility.behavior import BehaviorProfile
from ..mobility.events import EventKind, EventLog, GroundTruthEvent
from ..mobility.person import Person, PresenceState
from ..mobility.scheduler import CampaignSchedule, DaySchedule, ScheduleGenerator
from ..mobility.trajectory import (
    Trajectory,
    departure_trajectory,
    entry_trajectory,
    walk_through,
)
from ..radio.channel import ChannelConfig, RadioChannel
from ..radio.geometry import Point
from ..radio.links import LinkSet
from ..radio.office import OfficeLayout
from ..radio.trace import RssiTrace
from ..workstation.activity import ActivityTrace, InputActivityModel
from .clock import SimulationClock

__all__ = ["DayRecording", "CampaignRecording", "CampaignCollector"]


@dataclass
class DayRecording:
    """Everything recorded during one simulated working day."""

    day_index: int
    duration_s: float
    trace: RssiTrace
    events: EventLog
    activity: Dict[str, ActivityTrace]

    @property
    def n_events(self) -> int:
        return len(self.events)


@dataclass
class CampaignRecording:
    """A full multi-day campaign recording."""

    days: List[DayRecording]
    layout: OfficeLayout

    @property
    def n_days(self) -> int:
        return len(self.days)

    def label_counts(self) -> Dict[str, int]:
        """Aggregate Table-II-style label histogram over all days."""
        counts: Dict[str, int] = {}
        for day in self.days:
            for label, n in day.events.label_counts().items():
                counts[label] = counts.get(label, 0) + n
        return counts

    def total_labelled_events(self) -> int:
        return sum(len(day.events.labelled()) for day in self.days)

    def total_departures(self) -> int:
        return sum(len(day.events.departures()) for day in self.days)


class CampaignCollector:
    """Executes movement schedules against the simulated office.

    Parameters
    ----------
    layout:
        The office.
    clock:
        Sampling clock (default 4 Hz).
    channel_config:
        Radio channel configuration.
    seed:
        Seed of the campaign's random generator; every stochastic component
        (fade levels, noise, input activity, schedules drawn through
        :meth:`collect_generated`) derives from it.
    """

    def __init__(
        self,
        layout: OfficeLayout,
        *,
        clock: Optional[SimulationClock] = None,
        channel_config: Optional[ChannelConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self._layout = layout
        self._clock = clock if clock is not None else SimulationClock()
        self._rng = np.random.default_rng(seed)
        self._links = LinkSet(layout, self._rng)
        self._channel_config = (
            channel_config if channel_config is not None else ChannelConfig()
        )
        self._activity_model = InputActivityModel(rng=self._rng)

    # ------------------------------------------------------------------ #
    @property
    def layout(self) -> OfficeLayout:
        return self._layout

    @property
    def links(self) -> LinkSet:
        return self._links

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    # ------------------------------------------------------------------ #
    def _make_people(self) -> Dict[str, Person]:
        people: Dict[str, Person] = {}
        for w in self._layout.workstations:
            user_id = ScheduleGenerator.user_for(w.workstation_id)
            people[user_id] = Person(
                user_id=user_id,
                workstation_id=w.workstation_id,
                seat=w.seat_position,
            )
        return people

    def _desk_detour(self, seat: Point) -> Point:
        """A waypoint stepping away from the desk towards the room centre.

        Users do not walk in a straight line from their chair to the door:
        they push the chair back and step around the desk first.  The detour
        also makes every departure last roughly the five seconds the paper
        reports as the average workstation-to-door walking time.
        """
        cx, cy = self._layout.width / 2.0, self._layout.height / 2.0
        dx, dy = cx - seat.x, cy - seat.y
        norm = float(np.hypot(dx, dy))
        if norm < 1e-9:
            return seat
        step = 0.8
        return Point(seat.x + step * dx / norm, seat.y + step * dy / norm)

    def _trajectory_for(
        self, movement, person: Person
    ) -> Tuple[Trajectory, PresenceState]:
        door = self._layout.door
        if movement.kind is EventKind.DEPARTURE:
            traj = departure_trajectory(
                person.seat,
                door,
                movement.start_time,
                stand_up_s=1.5,
                door_open_s=1.5,
                via=[self._desk_detour(person.seat)],
            )
            return traj, PresenceState.ABSENT
        if movement.kind is EventKind.ENTRY:
            seat = self._layout.workstation(movement.workstation_id).seat_position
            traj = entry_trajectory(
                door,
                seat,
                movement.start_time,
                door_open_s=1.5,
                sit_down_s=1.5,
                via=[self._desk_detour(seat)],
            )
            return traj, PresenceState.SEATED
        # Internal move: a short excursion near the seat (reaching a shelf,
        # turning to a colleague) that perturbs nearby links briefly without
        # being a departure.  Kept within ~1 m so the resulting variation
        # window is shorter than typical t_delta values.
        offset = self._rng.uniform(0.5, 1.0)
        angle = self._rng.uniform(0.0, 2.0 * np.pi)
        target = Point(
            float(
                np.clip(
                    person.seat.x + offset * np.cos(angle),
                    0.3,
                    self._layout.width - 0.3,
                )
            ),
            float(
                np.clip(
                    person.seat.y + offset * np.sin(angle),
                    0.3,
                    self._layout.height - 0.3,
                )
            ),
        )
        traj = walk_through(
            [person.seat, target, person.seat],
            movement.start_time,
            pauses=[0.0, 0.5],
        )
        return traj, PresenceState.SEATED

    def _presence_intervals(
        self, day: DaySchedule
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Per-workstation intervals during which the assigned user is at the desk."""
        intervals: Dict[str, List[Tuple[float, float]]] = {}
        for w in self._layout.workstations:
            user_id = ScheduleGenerator.user_for(w.workstation_id)
            user_moves = sorted(
                (m for m in day.movements if m.user_id == user_id),
                key=lambda m: m.start_time,
            )
            present_since: Optional[float] = 0.0
            user_intervals: List[Tuple[float, float]] = []
            for m in user_moves:
                if m.kind is EventKind.DEPARTURE:
                    if present_since is not None:
                        user_intervals.append((present_since, m.start_time))
                        present_since = None
                elif m.kind is EventKind.ENTRY:
                    seat = self._layout.workstation(m.workstation_id).seat_position
                    traj = entry_trajectory(self._layout.door, seat, m.start_time)
                    if present_since is None:
                        present_since = traj.end_time
                elif m.kind is EventKind.INTERNAL_MOVE:
                    if present_since is not None:
                        traj, _ = self._trajectory_for(
                            m,
                            Person(
                                user_id=user_id,
                                workstation_id=w.workstation_id,
                                seat=w.seat_position,
                            ),
                        )
                        user_intervals.append((present_since, m.start_time))
                        present_since = traj.end_time
            if present_since is not None:
                user_intervals.append((present_since, day.duration_s))
            intervals[w.workstation_id] = user_intervals
        return intervals

    # ------------------------------------------------------------------ #
    def collect_day(self, day: DaySchedule) -> DayRecording:
        """Execute one day's schedule and record everything."""
        clock = self._clock
        times = clock.timestamps(day.duration_s)
        n_steps = times.shape[0]
        if n_steps == 0:
            raise ValueError("day duration too short for the sampling rate")

        channel = RadioChannel(
            self._links,
            config=self._channel_config,
            rng=self._rng,
            sample_interval_s=clock.dt,
        )
        people = self._make_people()
        events = EventLog()

        # Pre-sort movements and build their trajectories lazily at start time.
        pending = sorted(day.movements, key=lambda m: m.start_time)
        pending_idx = 0

        n_streams = len(self._links)
        rssi = np.empty((n_steps, n_streams))
        # Previous positions, used to derive instantaneous body speeds (the
        # channel's motion-induced fluctuation scales with speed).
        prev_positions: Dict[str, Optional[Point]] = {}

        for step in range(n_steps):
            t = float(times[step])
            # Start any movement whose time has come.
            while pending_idx < len(pending) and pending[pending_idx].start_time <= t:
                movement = pending[pending_idx]
                pending_idx += 1
                person = people.get(movement.user_id)
                if person is None:
                    # A visitor: create a transient person entering the office.
                    person = Person(
                        user_id=movement.user_id,
                        workstation_id=None,
                        seat=self._layout.door,
                        initial_state=PresenceState.ABSENT,
                    )
                    people[movement.user_id] = person
                traj, ends_as = self._trajectory_for(movement, person)
                person.start_walk(traj, ends_as)
                if movement.kind is EventKind.DEPARTURE:
                    events.add(
                        GroundTruthEvent(
                            kind=EventKind.DEPARTURE,
                            time=movement.start_time,
                            user_id=movement.user_id,
                            workstation_id=movement.workstation_id,
                            exit_time=traj.end_time,
                        )
                    )
                elif movement.kind is EventKind.ENTRY:
                    events.add(
                        GroundTruthEvent(
                            kind=EventKind.ENTRY,
                            time=movement.start_time,
                            user_id=movement.user_id,
                            workstation_id=movement.workstation_id,
                        )
                    )
                else:
                    events.add(
                        GroundTruthEvent(
                            kind=EventKind.INTERNAL_MOVE,
                            time=movement.start_time,
                            user_id=movement.user_id,
                            workstation_id=movement.workstation_id,
                        )
                    )

            bodies = []
            speeds = []
            for person in people.values():
                person.update(t)
                pos = person.position_at(t, self._rng)
                prev = prev_positions.get(person.user_id)
                prev_positions[person.user_id] = pos
                if pos is None:
                    continue
                bodies.append(pos)
                if prev is None:
                    speed = 0.0
                else:
                    speed = pos.distance_to(prev) / clock.dt
                if person.state is PresenceState.WALKING:
                    # Standing up, turning and opening the door are part of a
                    # walk's "pause" legs: the body is still in motion even
                    # though its centre barely translates.
                    speed = max(speed, 0.6)
                speeds.append(speed)
            rssi[step] = channel.sample_vector(bodies, speeds)

        streams = {
            sid: rssi[:, i] for i, sid in enumerate(self._links.stream_ids)
        }
        trace = RssiTrace(times=times, streams=streams)

        presence = self._presence_intervals(day)
        activity = {
            wid: self._activity_model.generate(
                day.duration_s, presence[wid], start_time=clock.start_time
            )
            for wid in self._layout.workstation_ids
        }
        return DayRecording(
            day_index=day.day_index,
            duration_s=day.duration_s,
            trace=trace,
            events=events,
            activity=activity,
        )

    def collect(self, schedule: CampaignSchedule) -> CampaignRecording:
        """Execute every day of a campaign schedule."""
        days = [self.collect_day(day) for day in schedule.days]
        return CampaignRecording(days=days, layout=self._layout)

    def collect_generated(
        self,
        n_days: int = 5,
        day_duration_s: float = 8 * 3600.0,
        profiles: Optional[Dict[str, BehaviorProfile]] = None,
    ) -> CampaignRecording:
        """Draw a schedule and collect it in one call."""
        generator = ScheduleGenerator(self._layout, profiles, rng=self._rng)
        schedule = generator.generate_campaign(n_days, day_duration_s)
        return self.collect(schedule)

"""Campaign data collection.

Plays the role of the paper's five-day measurement campaign: it executes a
:class:`~repro.mobility.scheduler.CampaignSchedule` against the simulated
office, producing for every day

* the multi-stream RSSI trace recorded by the sensors,
* the ground-truth event log (the "human supervisor" of the paper),
* the per-workstation keyboard/mouse activity traces.

Batch engine and scalar reference
---------------------------------

:meth:`CampaignCollector.collect_day` is a *vectorised batch engine*: it
first compiles the day's schedule into per-person walk assignments
(movement-delimited segments), replays every person's position over the
whole timestamp grid at once through
:meth:`~repro.mobility.person.Person.positions_over`, derives instantaneous
body speeds with array arithmetic, and hands the resulting
``(n_steps, n_bodies, ...)`` blocks to
:meth:`~repro.radio.channel.RadioChannel.sample_block`, which evaluates
shadowing, noise and drift for :attr:`~repro.radio.channel.RadioChannel.BLOCK_CHUNK_STEPS`
timesteps per chunk.

:meth:`CampaignCollector.collect_day_scalar` is the step-by-step reference
implementation of exactly the same contract: it advances person state
machines and the radio channel one 4 Hz instant at a time.  Both paths
consume the same per-purpose random streams in the same order, so their
outputs (RSSI trace, event log, activity traces) are **bit-for-bit
identical** — the equivalence regression tests rely on this.

Seeding scheme
--------------

All randomness derives from one :class:`numpy.random.SeedSequence` root:

* a *structural* child stream (spawn-key domain 0) seeds the per-link fade
  levels and any schedule drawn through :meth:`collect_generated`;
* every day ``d`` owns the child sequence at spawn-key domain ``(1, d)``,
  further split into channel, movement (trajectory perturbations), fidget
  (one grandchild per person) and input-activity streams;
* every campaign drawn through :meth:`collect_generated` derives its day
  streams from the per-campaign child ``(3, c)`` (``c`` counts drawn
  campaigns), so repeated campaigns — whose days all renumber from zero —
  are independent realisations rather than replays of the same noise.

Because day streams depend only on the base identity and the day index —
not on how many days were collected before — :meth:`collect_day` is
idempotent and days can be collected in any order or in parallel (see
:class:`~repro.simulation.runner.CampaignRunner`) with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..mobility.behavior import BehaviorProfile
from ..mobility.events import EventKind, EventLog, GroundTruthEvent
from ..mobility.person import Person, PresenceState
from ..mobility.scheduler import CampaignSchedule, DaySchedule, ScheduleGenerator
from ..mobility.trajectory import (
    Trajectory,
    departure_trajectory,
    entry_trajectory,
    walk_through,
)
from ..radio.channel import ChannelConfig, RadioChannel
from ..radio.geometry import Point
from ..radio.links import LinkSet
from ..radio.office import OfficeLayout
from ..radio.trace import RssiTrace
from ..workstation.activity import ActivityTrace, InputActivityModel
from .clock import SimulationClock

__all__ = [
    "DayRecording",
    "CampaignRecording",
    "CampaignCollector",
    "derive_seed_sequence",
    "require_unique_day_indices",
    "STRUCTURAL_DOMAIN",
    "DAY_DOMAIN",
    "CAMPAIGN_DOMAIN",
    "GENERATED_DOMAIN",
    "SCENARIO_DOMAIN",
]

#: Spawn-key domains of the collector's seed-derivation scheme.  Keeping the
#: domains distinct guarantees the structural, per-day, per-campaign and
#: per-scenario streams never collide.
STRUCTURAL_DOMAIN = 0
DAY_DOMAIN = 1
CAMPAIGN_DOMAIN = 2
GENERATED_DOMAIN = 3
#: Scenario ``i`` of a :class:`~repro.analysis.scenarios.ScenarioSweepRunner`
#: grid derives its root from the sweep seed at ``(SCENARIO_DOMAIN, i)``.
SCENARIO_DOMAIN = 4

#: Minimum body speed (m/s) attributed to a walking person.  Standing up,
#: turning and opening the door are part of a walk's "pause" legs: the body
#: is still in motion even though its centre barely translates.
_MIN_WALKING_SPEED = 0.6


def require_unique_day_indices(days) -> None:
    """Reject schedules whose days share a ``day_index``.

    Day random streams are keyed by the day index, so two days with the
    same index would silently receive byte-identical channel, fidget and
    activity realisations — statistical corruption the caller would never
    notice.  Fail loudly instead.
    """
    indices = [d.day_index for d in days]
    duplicates = sorted({i for i in indices if indices.count(i) > 1})
    if duplicates:
        raise ValueError(
            f"schedule contains duplicate day_index values {duplicates}; "
            "days with equal indices derive identical random streams — "
            "renumber the days or collect them as separate campaigns"
        )


def derive_seed_sequence(
    root: np.random.SeedSequence, *key: int
) -> np.random.SeedSequence:
    """A deterministic child of ``root`` at the given spawn-key suffix.

    Unlike :meth:`numpy.random.SeedSequence.spawn` this is stateless: the
    child depends only on the root identity (entropy + spawn key) and the
    requested suffix, so the same child can be re-derived anywhere — in
    particular inside parallel workers that never saw the parent object.
    """
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + tuple(int(k) for k in key),
    )


@dataclass
class DayRecording:
    """Everything recorded during one simulated working day."""

    day_index: int
    duration_s: float
    trace: RssiTrace
    events: EventLog
    activity: Dict[str, ActivityTrace]

    @property
    def n_events(self) -> int:
        return len(self.events)


@dataclass
class CampaignRecording:
    """A full multi-day campaign recording."""

    days: List[DayRecording]
    layout: OfficeLayout

    @property
    def n_days(self) -> int:
        return len(self.days)

    def label_counts(self) -> Dict[str, int]:
        """Aggregate Table-II-style label histogram over all days."""
        counts: Dict[str, int] = {}
        for day in self.days:
            for label, n in day.events.label_counts().items():
                counts[label] = counts.get(label, 0) + n
        return counts

    def total_labelled_events(self) -> int:
        return sum(len(day.events.labelled()) for day in self.days)

    def total_departures(self) -> int:
        return sum(len(day.events.departures()) for day in self.days)


@dataclass
class _DayPlan:
    """The compiled form of one day's schedule.

    Produced by ``CampaignCollector._prepare_day`` and consumed by both the
    batch and the scalar engine: the timestamp grid, the person roster (in
    stable order, visitors included), every person's walk assignments
    ``(fire_index, trajectory, ends_as)`` in firing order, the ground-truth
    event log, and the compiled trajectory of every fired movement (keyed
    by the movement object) so downstream consumers see the *same* walks
    the engines simulate.
    """

    times: np.ndarray
    people: Dict[str, Person]
    walks: Dict[str, List[Tuple[int, Trajectory, PresenceState]]]
    events: EventLog = field(default_factory=EventLog)
    move_trajectories: Dict[int, Trajectory] = field(default_factory=dict)


class CampaignCollector:
    """Executes movement schedules against the simulated office.

    Parameters
    ----------
    layout:
        The office.
    clock:
        Sampling clock (default 4 Hz).
    channel_config:
        Radio channel configuration.
    seed:
        Seed of the campaign's randomness: an int, ``None`` (fresh OS
        entropy) or a :class:`numpy.random.SeedSequence`.  Every stochastic
        component (fade levels, noise, drift, fidgeting, input activity,
        schedules drawn through :meth:`collect_generated`) derives from it
        through the scheme described in the module docstring.
    """

    def __init__(
        self,
        layout: OfficeLayout,
        *,
        clock: Optional[SimulationClock] = None,
        channel_config: Optional[ChannelConfig] = None,
        seed: Union[int, np.random.SeedSequence, None] = None,
    ) -> None:
        self._layout = layout
        self._clock = clock if clock is not None else SimulationClock()
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        else:
            self._root = np.random.SeedSequence(seed)
        # Structural stream: per-link fade levels and generated schedules.
        self._rng = np.random.default_rng(
            derive_seed_sequence(self._root, STRUCTURAL_DOMAIN)
        )
        self._links = LinkSet(layout, self._rng)
        self._channel_config = (
            channel_config if channel_config is not None else ChannelConfig()
        )
        # Counter of campaigns drawn through collect_generated, folded into
        # their seed bases so repeated draws stay independent.
        self._generated_campaigns = 0

    # ------------------------------------------------------------------ #
    @property
    def layout(self) -> OfficeLayout:
        return self._layout

    @property
    def links(self) -> LinkSet:
        return self._links

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """The root seed sequence all campaign randomness derives from."""
        return self._root

    # ------------------------------------------------------------------ #
    def _day_sequences(
        self,
        day_index: int,
        seed_base: Optional[np.random.SeedSequence] = None,
    ) -> Tuple[
        np.random.SeedSequence,
        np.random.SeedSequence,
        np.random.SeedSequence,
        np.random.SeedSequence,
    ]:
        """The four per-purpose seed sequences of one day.

        Derived from the base identity (the collector root by default) and
        the day index alone, so a day's streams are identical no matter
        when, where or how often the day is collected.  ``collect_generated``
        passes a per-campaign child as ``seed_base`` so that successively
        drawn campaigns — whose days all renumber from zero — do not replay
        the same noise realisations.
        """
        root = seed_base if seed_base is not None else self._root
        day_ss = derive_seed_sequence(root, DAY_DOMAIN, day_index)
        channel_ss, movement_ss, fidget_ss, activity_ss = day_ss.spawn(4)
        return channel_ss, movement_ss, fidget_ss, activity_ss

    def _make_people(self) -> Dict[str, Person]:
        people: Dict[str, Person] = {}
        for w in self._layout.workstations:
            user_id = ScheduleGenerator.user_for(w.workstation_id)
            people[user_id] = Person(
                user_id=user_id,
                workstation_id=w.workstation_id,
                seat=w.seat_position,
            )
        return people

    def _desk_detour(self, seat: Point) -> Point:
        """A waypoint stepping away from the desk towards the room centre.

        Users do not walk in a straight line from their chair to the door:
        they push the chair back and step around the desk first.  The detour
        also makes every departure last roughly the five seconds the paper
        reports as the average workstation-to-door walking time.
        """
        cx, cy = self._layout.width / 2.0, self._layout.height / 2.0
        dx, dy = cx - seat.x, cy - seat.y
        norm = float(np.hypot(dx, dy))
        if norm < 1e-9:
            return seat
        step = 0.8
        return Point(seat.x + step * dx / norm, seat.y + step * dy / norm)

    def _trajectory_for(
        self, movement, seat: Point, rng: np.random.Generator
    ) -> Tuple[Trajectory, PresenceState]:
        door = self._layout.door
        if movement.kind is EventKind.DEPARTURE:
            traj = departure_trajectory(
                seat,
                door,
                movement.start_time,
                stand_up_s=1.5,
                door_open_s=1.5,
                via=[self._desk_detour(seat)],
            )
            return traj, PresenceState.ABSENT
        if movement.kind is EventKind.ENTRY:
            target = self._layout.workstation(movement.workstation_id).seat_position
            traj = entry_trajectory(
                door,
                target,
                movement.start_time,
                door_open_s=1.5,
                sit_down_s=1.5,
                via=[self._desk_detour(target)],
            )
            return traj, PresenceState.SEATED
        # Internal move: a short excursion near the seat (reaching a shelf,
        # turning to a colleague) that perturbs nearby links briefly without
        # being a departure.  Kept within ~1 m so the resulting variation
        # window is shorter than typical t_delta values.
        offset = rng.uniform(0.5, 1.0)
        angle = rng.uniform(0.0, 2.0 * np.pi)
        target = Point(
            float(
                np.clip(
                    seat.x + offset * np.cos(angle),
                    0.3,
                    self._layout.width - 0.3,
                )
            ),
            float(
                np.clip(
                    seat.y + offset * np.sin(angle),
                    0.3,
                    self._layout.height - 0.3,
                )
            ),
        )
        traj = walk_through(
            [seat, target, seat],
            movement.start_time,
            pauses=[0.0, 0.5],
        )
        return traj, PresenceState.SEATED

    def _presence_intervals(
        self, day: DaySchedule, plan: _DayPlan
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Per-workstation intervals during which the assigned user is at the desk.

        Walk end times come from the plan's compiled trajectories — the
        exact walks the engines simulate — so the activity presence windows
        line up with the RSSI trace.  Movements the engine never fires
        (starting after the day's last sample) are ignored here too.
        """
        intervals: Dict[str, List[Tuple[float, float]]] = {}
        for w in self._layout.workstations:
            user_id = ScheduleGenerator.user_for(w.workstation_id)
            user_moves = sorted(
                (
                    m
                    for m in day.movements
                    if m.user_id == user_id and id(m) in plan.move_trajectories
                ),
                key=lambda m: m.start_time,
            )
            present_since: Optional[float] = 0.0
            user_intervals: List[Tuple[float, float]] = []
            for m in user_moves:
                traj = plan.move_trajectories[id(m)]
                if m.kind is EventKind.DEPARTURE:
                    if present_since is not None:
                        # Overlapping manual schedules can place a departure
                        # before the seating completes; a zero-length
                        # presence adds nothing.
                        if m.start_time > present_since:
                            user_intervals.append((present_since, m.start_time))
                        present_since = None
                elif m.kind is EventKind.ENTRY:
                    if present_since is None:
                        present_since = traj.end_time
                elif m.kind is EventKind.INTERNAL_MOVE:
                    if present_since is not None:
                        if m.start_time > present_since:
                            user_intervals.append((present_since, m.start_time))
                        present_since = traj.end_time
            if present_since is not None:
                user_intervals.append((present_since, day.duration_s))
            intervals[w.workstation_id] = user_intervals
        return intervals

    # ------------------------------------------------------------------ #
    def _prepare_day(
        self, day: DaySchedule, movement_rng: np.random.Generator
    ) -> _DayPlan:
        """Compile a day's schedule into walk assignments and events.

        Movements are processed in chronological order exactly as the
        per-step engine would fire them: a movement fires at the first grid
        step whose timestamp reaches its start time, trajectories are built
        from the person's seat *as of that step* (a walk that completed
        earlier may have moved the seat), and movements starting after the
        last grid step never fire.
        """
        clock = self._clock
        times = clock.timestamps(day.duration_s)
        n_steps = times.shape[0]
        if n_steps == 0:
            raise ValueError("day duration too short for the sampling rate")

        people = self._make_people()
        walks: Dict[str, List[Tuple[int, Trajectory, PresenceState]]] = {
            uid: [] for uid in people
        }
        events = EventLog()
        # Virtual per-person walk state used only to evolve seats during
        # compilation (mirrors Person.update's seat hand-over).
        seats: Dict[str, Point] = {uid: p.seat for uid, p in people.items()}
        active: Dict[str, Tuple[int, Trajectory, PresenceState]] = {}
        plan_trajs: Dict[int, Trajectory] = {}

        for movement in sorted(day.movements, key=lambda m: m.start_time):
            fire_idx = int(np.searchsorted(times, movement.start_time, side="left"))
            if fire_idx >= n_steps:
                continue  # starts after the day's last sample: never fires
            uid = movement.user_id
            if uid not in people:
                # A visitor: a transient person entering through the door.
                people[uid] = Person(
                    user_id=uid,
                    workstation_id=None,
                    seat=self._layout.door,
                    initial_state=PresenceState.ABSENT,
                )
                walks[uid] = []
                seats[uid] = self._layout.door
            prior = active.get(uid)
            if prior is not None and prior[0] < fire_idx:
                # The previous walk completed before this one fires; apply
                # its seat hand-over (walks replaced mid-flight never
                # complete and therefore never move the seat).
                _, prior_traj, prior_ends = prior
                if prior_ends is PresenceState.SEATED:
                    seats[uid] = prior_traj.waypoints[-1]
                del active[uid]
            traj, ends_as = self._trajectory_for(movement, seats[uid], movement_rng)
            end_idx = int(np.searchsorted(times, traj.end_time, side="left"))
            active[uid] = (end_idx, traj, ends_as)
            walks[uid].append((fire_idx, traj, ends_as))
            plan_trajs[id(movement)] = traj
            if movement.kind is EventKind.DEPARTURE:
                events.add(
                    GroundTruthEvent(
                        kind=EventKind.DEPARTURE,
                        time=movement.start_time,
                        user_id=uid,
                        workstation_id=movement.workstation_id,
                        exit_time=traj.end_time,
                    )
                )
            elif movement.kind is EventKind.ENTRY:
                events.add(
                    GroundTruthEvent(
                        kind=EventKind.ENTRY,
                        time=movement.start_time,
                        user_id=uid,
                        workstation_id=movement.workstation_id,
                    )
                )
            else:
                events.add(
                    GroundTruthEvent(
                        kind=EventKind.INTERNAL_MOVE,
                        time=movement.start_time,
                        user_id=uid,
                        workstation_id=movement.workstation_id,
                    )
                )
        return _DayPlan(
            times=times,
            people=people,
            walks=walks,
            events=events,
            move_trajectories=plan_trajs,
        )

    def _fidget_rngs(
        self, plan: _DayPlan, fidget_ss: np.random.SeedSequence
    ) -> Dict[str, np.random.Generator]:
        """One dedicated fidget generator per person, in roster order."""
        children = fidget_ss.spawn(len(plan.people))
        return {
            uid: np.random.default_rng(child)
            for uid, child in zip(plan.people, children)
        }

    def _finalize_day(
        self,
        day: DaySchedule,
        plan: _DayPlan,
        rssi: np.ndarray,
        activity_ss: np.random.SeedSequence,
    ) -> DayRecording:
        """Assemble the day recording from the sampled RSSI block."""
        streams = {
            sid: rssi[:, i] for i, sid in enumerate(self._links.stream_ids)
        }
        trace = RssiTrace(times=plan.times, streams=streams)
        presence = self._presence_intervals(day, plan)
        activity_model = InputActivityModel(
            rng=np.random.default_rng(activity_ss)
        )
        activity = {
            wid: activity_model.generate(
                day.duration_s, presence[wid], start_time=self._clock.start_time
            )
            for wid in self._layout.workstation_ids
        }
        return DayRecording(
            day_index=day.day_index,
            duration_s=day.duration_s,
            trace=trace,
            events=plan.events,
            activity=activity,
        )

    # ------------------------------------------------------------------ #
    def collect_day(
        self,
        day: DaySchedule,
        *,
        seed_base: Optional[np.random.SeedSequence] = None,
    ) -> DayRecording:
        """Execute one day's schedule with the vectorised batch engine.

        Produces output bit-identical to :meth:`collect_day_scalar` (the
        equivalence regression tests assert this) at a fraction of the cost:
        person positions are replayed over movement-delimited segments and
        the radio channel samples whole timestep chunks at once.

        ``seed_base`` overrides the identity the day's random streams derive
        from (default: the collector root).  Used by the generated-campaign
        APIs to decorrelate successive campaigns.
        """
        channel_ss, movement_ss, fidget_ss, activity_ss = self._day_sequences(
            day.day_index, seed_base
        )
        movement_rng = np.random.default_rng(movement_ss)
        plan = self._prepare_day(day, movement_rng)
        times = plan.times
        n_steps = times.shape[0]
        n_bodies = len(plan.people)

        xy = np.empty((n_steps, n_bodies, 2))
        present = np.zeros((n_steps, n_bodies), dtype=bool)
        walking = np.zeros((n_steps, n_bodies), dtype=bool)
        fidget_rngs = self._fidget_rngs(plan, fidget_ss)
        for i, (uid, person) in enumerate(plan.people.items()):
            xy[:, i, :], present[:, i], walking[:, i] = person.positions_over(
                times, fidget_rngs[uid], plan.walks[uid]
            )

        # Instantaneous body speeds: consecutive-position distance over dt,
        # zero at (re-)appearance, floored for walkers (a walking body is in
        # motion even while its centre barely translates).
        speeds = np.zeros((n_steps, n_bodies))
        if n_steps > 1:
            dist = np.hypot(
                xy[1:, :, 0] - xy[:-1, :, 0], xy[1:, :, 1] - xy[:-1, :, 1]
            )
            both = present[1:] & present[:-1]
            speeds[1:] = np.where(both, dist / self._clock.dt, 0.0)
        speeds = np.where(
            walking, np.maximum(speeds, _MIN_WALKING_SPEED), speeds
        )

        channel = RadioChannel(
            self._links,
            config=self._channel_config,
            sample_interval_s=self._clock.dt,
            seed_seq=channel_ss,
        )
        rssi = channel.sample_block(xy, speeds, present)
        return self._finalize_day(day, plan, rssi, activity_ss)

    def day_walks(
        self,
        day: DaySchedule,
        *,
        seed_base: Optional[np.random.SeedSequence] = None,
    ) -> Dict[str, List[Tuple[int, Trajectory, PresenceState]]]:
        """Re-derive the ground-truth walks of one day without radio.

        Compiles the same deterministic day plan :meth:`collect_day` and
        :meth:`collect_day_scalar` execute — same seed derivation, same
        movement stream — but skips channel sampling entirely, returning
        each person's ``(fire_idx, trajectory, ends_as)`` walk list.
        This is the position ground truth
        (:meth:`~repro.mobility.trajectory.Trajectory.positions_at`)
        the zone-occupancy workload scores against, recoverable for any
        recorded campaign from its schedule and seed alone.
        """
        _, movement_ss, _, _ = self._day_sequences(day.day_index, seed_base)
        plan = self._prepare_day(day, np.random.default_rng(movement_ss))
        return {uid: list(walks) for uid, walks in plan.walks.items()}

    def collect_day_scalar(
        self,
        day: DaySchedule,
        *,
        seed_base: Optional[np.random.SeedSequence] = None,
    ) -> DayRecording:
        """Execute one day step by step (the reference engine).

        Kept as the per-instant reference implementation of the batch
        contract: it drives the same compiled day plan through the person
        state machines and :meth:`RadioChannel.sample_vector` one timestep
        at a time, consuming the same random streams in the same order as
        :meth:`collect_day`.  Used by the equivalence tests and as the
        baseline of the throughput benchmark.
        """
        channel_ss, movement_ss, fidget_ss, activity_ss = self._day_sequences(
            day.day_index, seed_base
        )
        movement_rng = np.random.default_rng(movement_ss)
        plan = self._prepare_day(day, movement_rng)
        times = plan.times
        n_steps = times.shape[0]
        clock = self._clock

        channel = RadioChannel(
            self._links,
            config=self._channel_config,
            sample_interval_s=clock.dt,
            seed_seq=channel_ss,
        )
        fidget_rngs = self._fidget_rngs(plan, fidget_ss)
        # Flatten walk assignments into one chronological firing list.
        pending = sorted(
            (
                (fire_idx, uid, traj, ends_as)
                for uid, user_walks in plan.walks.items()
                for fire_idx, traj, ends_as in user_walks
            ),
            key=lambda w: w[0],
        )
        pending_idx = 0

        n_streams = len(self._links)
        rssi = np.empty((n_steps, n_streams))
        prev_positions: Dict[str, Optional[Point]] = {}

        for step in range(n_steps):
            t = float(times[step])
            while pending_idx < len(pending) and pending[pending_idx][0] <= step:
                _, uid, traj, ends_as = pending[pending_idx]
                pending_idx += 1
                plan.people[uid].start_walk(traj, ends_as)

            bodies = []
            speeds = []
            for uid, person in plan.people.items():
                person.update(t)
                pos = person.position_at(t, fidget_rngs[uid])
                prev = prev_positions.get(uid)
                prev_positions[uid] = pos
                if pos is None:
                    continue
                bodies.append(pos)
                if prev is None:
                    speed = 0.0
                else:
                    # np.hypot, not Point.distance_to (math.hypot): CPython
                    # and libm hypot differ in the last ulp, and the batch
                    # equivalence contract is bit-for-bit.
                    speed = float(
                        np.hypot(pos.x - prev.x, pos.y - prev.y)
                    ) / clock.dt
                if person.state is PresenceState.WALKING:
                    speed = max(speed, _MIN_WALKING_SPEED)
                speeds.append(speed)
            rssi[step] = channel.sample_vector(bodies, speeds)

        return self._finalize_day(day, plan, rssi, activity_ss)

    def collect(
        self,
        schedule: CampaignSchedule,
        *,
        seed_base: Optional[np.random.SeedSequence] = None,
    ) -> CampaignRecording:
        """Execute every day of a campaign schedule."""
        require_unique_day_indices(schedule.days)
        days = [self.collect_day(day, seed_base=seed_base) for day in schedule.days]
        return CampaignRecording(days=days, layout=self._layout)

    def make_schedule(
        self,
        n_days: int = 5,
        day_duration_s: float = 8 * 3600.0,
        profiles: Optional[Dict[str, BehaviorProfile]] = None,
    ) -> CampaignSchedule:
        """Draw a campaign schedule on the collector's structural stream.

        Stateful across calls (each draw advances the stream), matching the
        historical ``collect_generated`` semantics.
        """
        generator = ScheduleGenerator(self._layout, profiles, rng=self._rng)
        return generator.generate_campaign(n_days, day_duration_s)

    def next_generated_base(self) -> np.random.SeedSequence:
        """The seed base of the next generated campaign, advancing a counter.

        Generated campaigns all number their days from zero, so deriving
        their day streams straight from the collector root would replay
        identical noise in every campaign.  Instead each drawn campaign
        gets the child ``(GENERATED_DOMAIN, c)`` for an ever-increasing
        ``c``, keeping repeated :meth:`collect_generated` campaigns
        statistically independent (as in 1.x) while explicit
        :meth:`collect_day` calls stay idempotent by day index.
        """
        base = derive_seed_sequence(
            self._root, GENERATED_DOMAIN, self._generated_campaigns
        )
        self._generated_campaigns += 1
        return base

    def collect_generated(
        self,
        n_days: int = 5,
        day_duration_s: float = 8 * 3600.0,
        profiles: Optional[Dict[str, BehaviorProfile]] = None,
    ) -> CampaignRecording:
        """Draw a schedule and collect it in one call.

        Stateful across calls: each call draws a fresh schedule from the
        structural stream *and* a fresh per-campaign seed base, so repeated
        campaigns are independent realisations.
        """
        schedule = self.make_schedule(n_days, day_duration_s, profiles)
        return self.collect(schedule, seed_base=self.next_generated_base())

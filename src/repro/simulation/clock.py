"""Discrete simulation clock.

All simulated subsystems (radio sampling, person state machines, the
FADEWICH controller) advance in lock-step at a fixed sampling rate.  The
clock produces the timestamp grid and provides the conversions between
seconds and sample indices used throughout the simulation harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulationClock"]


@dataclass(frozen=True)
class SimulationClock:
    """A fixed-rate simulation clock.

    Parameters
    ----------
    sample_rate_hz:
        Samples per second.  The paper's sensors report RSSI a few times per
        second; the default of 4 Hz gives 18 samples per 4.5-second feature
        window.
    start_time:
        Timestamp of the first sample, in seconds.
    """

    sample_rate_hz: float = 4.0
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")

    @property
    def dt(self) -> float:
        """Interval between consecutive samples, in seconds."""
        return 1.0 / self.sample_rate_hz

    def n_samples(self, duration_s: float) -> int:
        """Number of samples covering ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return int(round(duration_s * self.sample_rate_hz))

    def timestamps(self, duration_s: float) -> np.ndarray:
        """The timestamp grid covering ``duration_s`` seconds."""
        n = self.n_samples(duration_s)
        return self.start_time + np.arange(n) / self.sample_rate_hz

    def index_of(self, t: float) -> int:
        """Sample index of the instant ``t`` (clamped below at 0)."""
        return max(int(round((t - self.start_time) * self.sample_rate_hz)), 0)

    def seconds_to_samples(self, seconds: float) -> int:
        """Convert a duration to a whole number of samples (at least 1)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return max(int(round(seconds * self.sample_rate_hz)), 1)

"""Labelled sample datasets for the RE classifier.

The Radio Environment classifier is trained on *samples*: one feature vector
per detected variation window, labelled either automatically (via the KMA
idle-time correlation, paper Section IV-D3) or with the ground truth during
offline evaluation.  This module provides the dataset containers shared by
the training phase, the cross-validation evaluation and the feature
analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LabeledSample", "SampleDataset"]


@dataclass(frozen=True)
class LabeledSample:
    """One labelled RE sample.

    Attributes
    ----------
    features:
        The feature vector (3 features per stream, in stream order).
    label:
        Event label: ``"w0"`` for office entries, ``"wi"`` for departures
        from workstation ``wi``.
    time:
        Start time of the variation window the sample was extracted from.
    day_index:
        The campaign day the sample belongs to (useful for leave-one-day-out
        analyses).
    """

    features: np.ndarray
    label: str
    time: float
    day_index: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "features", np.asarray(self.features, dtype=float).ravel()
        )
        if self.features.size == 0:
            raise ValueError("a sample needs at least one feature")
        if not self.label:
            raise ValueError("a sample needs a non-empty label")


@dataclass
class SampleDataset:
    """A collection of labelled samples with matrix conversion helpers."""

    feature_names: Tuple[str, ...]
    samples: List[LabeledSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.feature_names) == 0:
            raise ValueError("feature_names must not be empty")
        for s in self.samples:
            self._check_sample(s)
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _check_sample(self, sample: LabeledSample) -> None:
        if sample.features.shape[0] != len(self.feature_names):
            raise ValueError(
                f"sample has {sample.features.shape[0]} features, "
                f"dataset expects {len(self.feature_names)}"
            )

    # ------------------------------------------------------------------ #
    def add(self, sample: LabeledSample) -> None:
        """Append one sample (validating its dimensionality)."""
        self._check_sample(sample)
        self.samples.append(sample)
        self._arrays = None

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @property
    def labels(self) -> List[str]:
        return [s.label for s in self.samples]

    def label_counts(self) -> Dict[str, int]:
        """Histogram of labels (the shape of the paper's Table II)."""
        counts: Dict[str, int] = {}
        for s in self.samples:
            counts[s.label] = counts.get(s.label, 0) + 1
        return counts

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(X, y)``: the sample matrix and the label vector.

        The arrays are memoised (invalidated by :meth:`add`) because the
        cross-validation and learning-curve sweeps request them repeatedly;
        treat them as read-only.
        """
        if not self.samples:
            return (
                np.empty((0, self.n_features)),
                np.empty((0,), dtype=object),
            )
        if self._arrays is None:
            X = np.vstack([s.features for s in self.samples])
            y = np.asarray([s.label for s in self.samples], dtype=object)
            self._arrays = (X, y)
        return self._arrays

    def filter_labels(self, labels: Sequence[str]) -> "SampleDataset":
        """A new dataset containing only samples with the given labels."""
        wanted = set(labels)
        return SampleDataset(
            feature_names=self.feature_names,
            samples=[s for s in self.samples if s.label in wanted],
        )

    def column(self, feature_name: str) -> np.ndarray:
        """All samples' values of one named feature."""
        try:
            idx = self.feature_names.index(feature_name)
        except ValueError as exc:
            raise KeyError(f"unknown feature {feature_name!r}") from exc
        X, _ = self.to_arrays()
        return X[:, idx]

    def subset_features(self, keep: Sequence[str]) -> "SampleDataset":
        """A new dataset with only the named feature columns."""
        indices = []
        for name in keep:
            if name not in self.feature_names:
                raise KeyError(f"unknown feature {name!r}")
            indices.append(self.feature_names.index(name))
        new_samples = [
            LabeledSample(
                features=s.features[indices],
                label=s.label,
                time=s.time,
                day_index=s.day_index,
            )
            for s in self.samples
        ]
        return SampleDataset(feature_names=tuple(keep), samples=new_samples)

    def merged_with(self, other: "SampleDataset") -> "SampleDataset":
        """Concatenate two datasets with identical feature layouts."""
        if tuple(other.feature_names) != tuple(self.feature_names):
            raise ValueError("datasets have different feature layouts")
        return SampleDataset(
            feature_names=self.feature_names,
            samples=list(self.samples) + list(other.samples),
        )

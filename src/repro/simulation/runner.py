"""Parallel campaign execution.

The batch engine makes a single day cheap; this module makes *many* days
and *many campaigns* cheap by executing them concurrently.  Days are
embarrassingly parallel under the collector's seeding scheme: every day's
random streams derive from the root entropy and the day index alone (see
:mod:`repro.simulation.collector`), so collecting day 3 in a worker process
yields bit-identical output to collecting it serially after days 0-2.

* :meth:`CampaignRunner.run` — execute one schedule, one task per day.
* :meth:`CampaignRunner.run_generated` — draw a schedule (serially, on the
  structural stream) and execute it in parallel.
* :meth:`CampaignRunner.run_many` — execute several independent campaigns;
  campaign ``i`` is seeded with the spawn-key-derived child
  ``(CAMPAIGN_DOMAIN, i)`` of the runner's root
  :class:`~numpy.random.SeedSequence`, so the fleet is reproducible from a
  single integer seed.
* :meth:`CampaignRunner.run_tasks` — execute an explicit list of
  :class:`DayTask` items, each optionally overriding the layout and channel
  configuration.  This is the heterogeneous entry point the scenario-grid
  sweep (:mod:`repro.analysis.scenarios`) drives: days of *different*
  scenarios (layouts, channel configs, seeds) share one worker pool.

Outputs are plain :class:`~repro.simulation.collector.CampaignRecording`
objects — the same type ``CampaignCollector.collect`` returns — so they
feed directly into :class:`~repro.core.system.FadewichSystem` training and
replay, the analysis context and every figure/table benchmark.

Execution modes: ``"process"`` (default, true parallelism via
``concurrent.futures.ProcessPoolExecutor``), ``"thread"`` (shares one
collector; useful when the numpy build releases the GIL or for testing),
and ``"serial"`` (no executor at all).  If a process pool cannot be
created (restricted environments), the runner degrades to serial execution
with a warning rather than failing.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..radio.channel import ChannelConfig
from ..radio.office import OfficeLayout
from .clock import SimulationClock
from .collector import (
    CAMPAIGN_DOMAIN,
    CampaignCollector,
    CampaignRecording,
    DayRecording,
    derive_seed_sequence,
    require_unique_day_indices,
)
from ..mobility.scheduler import CampaignSchedule, DaySchedule

__all__ = ["CampaignRunner", "DayTask"]

_MODES = ("process", "thread", "serial")


def _seed_key(seed_seq: np.random.SeedSequence):
    """A hashable identity for a seed sequence.

    ``SeedSequence.entropy`` may be an int, ``None`` or a list (when the
    sequence was built from pooled entropy), so normalise it to a tuple.
    """
    entropy = seed_seq.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = tuple(entropy)
    return entropy, tuple(seed_seq.spawn_key)


def _collect_day_task(
    layout: OfficeLayout,
    clock: Optional[SimulationClock],
    channel_config: Optional[ChannelConfig],
    seed_seq: np.random.SeedSequence,
    day: DaySchedule,
    seed_base: Optional[np.random.SeedSequence] = None,
) -> DayRecording:
    """Worker entry point: rebuild the collector and collect one day.

    Module-level so it pickles for process pools.  Reconstructing the
    collector repeats only the cheap construction work (fade levels draw
    from the structural stream, so every worker sees the same link set);
    the day result is identical to a serial ``collect_day`` call.
    """
    collector = CampaignCollector(
        layout, clock=clock, channel_config=channel_config, seed=seed_seq
    )
    return collector.collect_day(day, seed_base=seed_base)


@dataclass(frozen=True)
class DayTask:
    """One day-collection work item of :meth:`CampaignRunner.run_tasks`.

    ``layout`` / ``clock`` / ``channel_config`` left as ``None`` inherit the
    runner's own defaults, so homogeneous callers (:meth:`CampaignRunner.run`
    and friends) and heterogeneous callers (the scenario sweep, which mixes
    layouts and channel configurations in one pool) share the same executor
    plumbing.  The day's random streams derive from ``seed_base`` (or, when
    that is ``None``, from ``seed_seq``) and the day index exactly as in
    :meth:`~repro.simulation.collector.CampaignCollector.collect_day`, so a
    task's result is bit-identical to a serial collection with the same
    seed.
    """

    day: DaySchedule
    seed_seq: np.random.SeedSequence
    seed_base: Optional[np.random.SeedSequence] = None
    layout: Optional[OfficeLayout] = None
    clock: Optional[SimulationClock] = None
    channel_config: Optional[ChannelConfig] = None


class CampaignRunner:
    """Executes campaign schedules with per-day / per-campaign parallelism.

    Parameters
    ----------
    layout:
        The office layout shared by all campaigns.
    clock:
        Sampling clock (default 4 Hz).
    channel_config:
        Radio channel configuration.
    seed:
        Root seed (int, ``None`` or :class:`numpy.random.SeedSequence`);
        campaign ``i`` of :meth:`run_many` derives its own child seed from
        it, and :meth:`run` forwards it to the day collectors unchanged, so
        runner results match ``CampaignCollector(layout, seed=seed)``
        exactly.
    max_workers:
        Upper bound on concurrent workers (default: CPU count).
    mode:
        ``"process"``, ``"thread"`` or ``"serial"``.
    """

    def __init__(
        self,
        layout: OfficeLayout,
        *,
        clock: Optional[SimulationClock] = None,
        channel_config: Optional[ChannelConfig] = None,
        seed: Union[int, np.random.SeedSequence, None] = None,
        max_workers: Optional[int] = None,
        mode: str = "process",
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self._layout = layout
        self._clock = clock
        self._channel_config = channel_config
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        else:
            self._root = np.random.SeedSequence(seed)
        self._max_workers = max_workers
        self._mode = mode
        # Lazily-built collector reused by run_generated so repeated calls
        # advance the structural stream exactly like a reused
        # CampaignCollector.collect_generated would.
        self._schedule_collector: Optional[CampaignCollector] = None

    # ------------------------------------------------------------------ #
    @property
    def mode(self) -> str:
        return self._mode

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        return self._root

    def _make_collector(self, seed_seq: np.random.SeedSequence) -> CampaignCollector:
        return CampaignCollector(
            self._layout,
            clock=self._clock,
            channel_config=self._channel_config,
            seed=seed_seq,
        )

    def _worker_count(self, n_tasks: int) -> int:
        cap = self._max_workers if self._max_workers else (os.cpu_count() or 1)
        return max(1, min(cap, n_tasks))

    def _resolve(self, task: DayTask) -> DayTask:
        """Fill a task's ``None`` fields with the runner's own defaults."""
        return DayTask(
            day=task.day,
            seed_seq=task.seed_seq,
            seed_base=task.seed_base,
            layout=task.layout if task.layout is not None else self._layout,
            clock=task.clock if task.clock is not None else self._clock,
            channel_config=(
                task.channel_config
                if task.channel_config is not None
                else self._channel_config
            ),
        )

    @staticmethod
    def _collector_key(task: DayTask):
        """Collector-sharing identity of a resolved task.

        Object identity is the right granularity for the layout and channel
        config: distinct-but-equal objects get distinct collectors, which
        costs only cheap re-construction, while the seed identity must be
        structural so equal seeds share one collector.
        """
        return (
            id(task.layout),
            id(task.clock),
            id(task.channel_config),
            _seed_key(task.seed_seq),
        )

    def _collectors_for(self, tasks: Sequence[DayTask]) -> dict:
        """One collector per distinct (layout, channel, seed) triple.

        ``collect_day`` never touches the structural stream, so a collector
        can be shared by many days of the same scenario — including across
        threads (the thread-vs-serial bit-identity test locks this).
        """
        collectors: dict = {}
        for task in tasks:
            key = self._collector_key(task)
            if key not in collectors:
                collectors[key] = CampaignCollector(
                    task.layout,
                    clock=task.clock,
                    channel_config=task.channel_config,
                    seed=task.seed_seq,
                )
        return collectors

    def _collect_serial(self, tasks: Sequence[DayTask]) -> List[DayRecording]:
        collectors = self._collectors_for(tasks)
        return [
            collectors[self._collector_key(task)].collect_day(
                task.day, seed_base=task.seed_base
            )
            for task in tasks
        ]

    def _collect_days(self, tasks: Sequence[DayTask]) -> List[DayRecording]:
        """Collect resolved :class:`DayTask` items, preserving order."""
        if self._mode == "serial" or len(tasks) <= 1:
            return self._collect_serial(tasks)
        if self._mode == "thread":
            collectors = self._collectors_for(tasks)
            with ThreadPoolExecutor(
                max_workers=self._worker_count(len(tasks))
            ) as pool:
                futures = [
                    pool.submit(
                        collectors[self._collector_key(task)].collect_day,
                        task.day,
                        seed_base=task.seed_base,
                    )
                    for task in tasks
                ]
                return [f.result() for f in futures]
        # Process mode.  Only pool-infrastructure failures (no fork in this
        # environment, pool died) trigger the serial fallback; exceptions
        # raised by collect_day inside a worker propagate unchanged.
        pool_error: BaseException
        try:
            pool = ProcessPoolExecutor(
                max_workers=self._worker_count(len(tasks))
            )
        except (OSError, PermissionError, RuntimeError) as exc:
            pool_error = exc
        else:
            with pool:
                try:
                    futures = [
                        pool.submit(
                            _collect_day_task,
                            task.layout,
                            task.clock,
                            task.channel_config,
                            task.seed_seq,
                            task.day,
                            task.seed_base,
                        )
                        for task in tasks
                    ]
                except (OSError, PermissionError, BrokenProcessPool) as exc:
                    # Worker spawn failed (e.g. fork blocked by the host).
                    pool_error = exc
                else:
                    try:
                        return [f.result() for f in futures]
                    except BrokenProcessPool as exc:
                        pool_error = exc
        warnings.warn(
            f"process pool unavailable ({pool_error!r}); falling back to "
            "serial day collection",
            RuntimeWarning,
            stacklevel=3,
        )
        return self._collect_serial(tasks)

    # ------------------------------------------------------------------ #
    def run(self, schedule: CampaignSchedule) -> CampaignRecording:
        """Execute one campaign schedule, one parallel task per day.

        Returns the same :class:`CampaignRecording` a serial
        ``CampaignCollector(layout, seed=seed).collect(schedule)`` would.
        """
        require_unique_day_indices(schedule.days)
        tasks = [
            self._resolve(DayTask(day=day, seed_seq=self._root))
            for day in schedule.days
        ]
        days = self._collect_days(tasks)
        return CampaignRecording(days=days, layout=self._layout)

    def run_generated(
        self,
        n_days: int = 5,
        day_duration_s: float = 8 * 3600.0,
        profiles: Optional[dict] = None,
    ) -> CampaignRecording:
        """Draw a schedule on the structural stream, then run it in parallel.

        Matches ``CampaignCollector.collect_generated`` with the same seed,
        including its statefulness: repeated calls draw successive
        schedules from one structural stream, just like repeated
        ``collect_generated`` calls on one collector.  Schedule generation
        happens serially in the parent; only the day collection fans out.
        """
        if self._schedule_collector is None:
            self._schedule_collector = self._make_collector(self._root)
        schedule = self._schedule_collector.make_schedule(
            n_days, day_duration_s, profiles
        )
        # The schedule collector also owns the generated-campaign counter,
        # so runner and serial collector derive identical seed bases.
        base = self._schedule_collector.next_generated_base()
        tasks = [
            self._resolve(DayTask(day=day, seed_seq=self._root, seed_base=base))
            for day in schedule.days
        ]
        days = self._collect_days(tasks)
        return CampaignRecording(days=days, layout=self._layout)

    def run_many(
        self, schedules: Sequence[CampaignSchedule]
    ) -> List[CampaignRecording]:
        """Execute several independent campaigns concurrently.

        Campaign ``i`` uses the child seed ``(CAMPAIGN_DOMAIN, i)`` of the
        runner's root, so results are reproducible and independent of the
        execution order; all days of all campaigns share one worker pool.
        """
        tasks = []
        spans = []
        for i, schedule in enumerate(schedules):
            require_unique_day_indices(schedule.days)
            seed_i = derive_seed_sequence(self._root, CAMPAIGN_DOMAIN, i)
            start = len(tasks)
            tasks.extend(
                self._resolve(DayTask(day=day, seed_seq=seed_i))
                for day in schedule.days
            )
            spans.append((start, len(tasks)))
        days = self._collect_days(tasks)
        return [
            CampaignRecording(days=days[a:b], layout=self._layout)
            for a, b in spans
        ]

    def run_tasks(self, tasks: Sequence[DayTask]) -> List[DayRecording]:
        """Execute explicit :class:`DayTask` items on the runner's pool.

        The heterogeneous entry point: tasks may carry their own layout,
        clock and channel configuration (``None`` fields inherit the
        runner's defaults), so days of entirely different scenarios share
        one worker pool.  Results are returned in task order, each
        bit-identical to a serial
        ``CampaignCollector(layout, ...).collect_day(day, seed_base=...)``
        with the task's seeds.  Callers mixing scenarios are responsible
        for seed hygiene across tasks (the scenario sweep derives one child
        seed per scenario from a single root).
        """
        return self._collect_days([self._resolve(task) for task in tasks])

    def campaign_seed(self, index: int) -> np.random.SeedSequence:
        """The derived root seed of campaign ``index`` in :meth:`run_many`."""
        return derive_seed_sequence(self._root, CAMPAIGN_DOMAIN, index)

    def collector_for(self, index: Optional[int] = None) -> CampaignCollector:
        """A serial collector matching this runner (or one of its campaigns).

        Useful to cross-check runner output against the serial engine, or
        to continue working (e.g. ``collect_generated``) with the same
        stream state conventions.
        """
        seed_seq = self._root if index is None else self.campaign_seed(index)
        return self._make_collector(seed_seq)

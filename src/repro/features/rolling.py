"""Rolling-std feature extraction — the historical ``CampaignStdFeatures``.

This is the derivation every golden in the tier-1 suite was pinned
against, lifted verbatim out of ``core/evaluation.py``: window length
from the configured std window and the trace's median sample interval,
then :func:`repro.core.movement.rolling_std_matrix` over all streams.
Keeping the expression identical (same rounding, same minimum window of
two samples) keeps the KDE detection path through the feature store
bit-identical to the pre-refactor code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from ..core.movement import rolling_std_matrix
from .base import FeatureBlock, register_extractor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..radio.office import OfficeLayout
    from ..simulation.collector import DayRecording

__all__ = ["RollingStdExtractor"]


@register_extractor
@dataclass(frozen=True)
class RollingStdExtractor:
    """Per-stream rolling standard deviation over a fixed time window.

    Parameters
    ----------
    std_window_s:
        Window length in seconds; converted to samples per day from the
        trace's median sample interval, never below two samples.
    """

    name: ClassVar[str] = "rolling_std"

    std_window_s: float = 4.0

    def __post_init__(self) -> None:
        if not self.std_window_s > 0:
            raise ValueError("std_window_s must be positive")

    def day_block(self, day: "DayRecording", layout: "OfficeLayout") -> FeatureBlock:
        """Rolling-std block for one day, columns in trace stream order."""
        trace = day.trace
        rate = 1.0 / trace.sample_interval
        window_samples = max(int(round(self.std_window_s * rate)), 2)
        times, matrix = rolling_std_matrix(trace, window_samples)
        columns = {sid: j for j, sid in enumerate(trace.stream_ids)}
        return times, matrix, columns

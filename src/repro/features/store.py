"""Per-recording cache of extractor feature blocks.

One :class:`FeatureStore` is bound to one
:class:`~repro.simulation.collector.CampaignRecording` and caches every
extractor's per-day blocks side by side, keyed by ``(extractor
fingerprint, day index)``.  The fingerprint is content-based
(:func:`~repro.features.base.extractor_fingerprint`), so two equal
configs share cache entries while any config change computes fresh
matrices.

Day membership is validated by object identity against the bound
recording: historically the rolling-std cache keyed on ``day.day_index``
alone, so a ``DayRecording`` from a *different* campaign with the same
index silently returned the wrong matrix.  The store refuses such days
outright.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from .base import FeatureBlock, extractor_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..simulation.collector import CampaignRecording, DayRecording

__all__ = ["FeatureStore"]


class FeatureStore:
    """Caches per-day feature blocks for one campaign recording.

    Parameters
    ----------
    recording:
        The campaign whose days this store serves.  Blocks are computed
        lazily on first request and shared across all consumers holding
        the store (detection, the zoo, zone inference).
    """

    def __init__(self, recording: "CampaignRecording") -> None:
        self.recording = recording
        self._day_ids = {id(day) for day in recording.days}
        self._blocks: Dict[Tuple[str, int], FeatureBlock] = {}
        self._hits = 0
        self._misses = 0

    @property
    def hits(self) -> int:
        """Number of day_block calls served from cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of day_block calls that computed a fresh block."""
        return self._misses

    def day_block(self, extractor: object, day: "DayRecording") -> FeatureBlock:
        """The extractor's ``(times, matrix, columns)`` block for ``day``.

        Raises ``ValueError`` if ``day`` does not belong to this store's
        recording — same-index days from other campaigns must never alias
        each other's features.
        """
        if id(day) not in self._day_ids:
            raise ValueError(
                f"day {day.day_index} does not belong to this store's recording"
            )
        key = (extractor_fingerprint(extractor), day.day_index)
        block = self._blocks.get(key)
        if block is None:
            self._misses += 1
            block = extractor.day_block(day, self.recording.layout)
            self._blocks[key] = block
        else:
            self._hits += 1
        return block

"""Feature-extractor contract, registry and content fingerprint.

A *feature extractor* is a frozen config dataclass with a class-level
``name`` and one method::

    day_block(day, layout) -> (times, matrix, columns)

where ``day`` is a :class:`~repro.simulation.collector.DayRecording`,
``layout`` the campaign's :class:`~repro.radio.office.OfficeLayout`,
``times`` a ``(n,)`` float array, ``matrix`` an ``(n, n_streams)`` float
matrix and ``columns`` the stream-id -> column mapping.  Because the
config is frozen and fully describes the derivation, two extractors with
equal fields produce equal blocks — which is what lets
:func:`extractor_fingerprint` stand in for object identity in caches and
sweep-store records.

The fingerprint is deliberately local to this package (a sha256 over a
canonical JSON encoding of the dataclass tree) rather than reusing
:func:`repro.analysis.sweep_store.content_hash`: ``repro.features`` sits
below the analysis layer and must not import it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Mapping, Tuple, Type

import numpy as np

__all__ = [
    "FeatureBlock",
    "extractor_fingerprint",
    "register_extractor",
    "extractor_names",
    "get_extractor",
]

#: The cached unit a feature extractor produces for one recorded day:
#: ``(times, matrix, column_of_stream)``.
FeatureBlock = Tuple[np.ndarray, np.ndarray, Dict[str, int]]


def _canonical(value: object) -> object:
    """Encode a frozen-config value tree into JSON-serialisable form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        encoded = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        encoded["__type__"] = type(value).__name__
        return encoded
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"extractor config values must be dataclasses, sequences, mappings "
        f"or JSON primitives, got {value!r}"
    )


def extractor_fingerprint(extractor: object) -> str:
    """Content hash of an extractor's type and frozen config fields.

    Two extractor instances with equal fields fingerprint identically, so
    a :class:`~repro.features.store.FeatureStore` hit does not depend on
    holding the same instance — and *any* config change (or a different
    extractor type) yields a fresh key.
    """
    payload = json.dumps(
        _canonical(extractor), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


_EXTRACTORS: Dict[str, Type] = {}


def register_extractor(cls: Type) -> Type:
    """Class decorator adding a feature extractor to the registry.

    The class must be a dataclass (its fields are the extraction
    configuration), expose a non-empty class-level ``name`` string and
    implement ``day_block()``.  Names are unique: re-registering the same
    class is a no-op, registering a different class under a taken name is
    an error.
    """
    if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
        raise TypeError(f"feature extractor must be a dataclass type, got {cls!r}")
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise TypeError(
            f"extractor {cls.__name__} needs a non-empty class-level 'name' string"
        )
    if not callable(getattr(cls, "day_block", None)):
        raise TypeError(f"extractor {cls.__name__} must implement day_block()")
    existing = _EXTRACTORS.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"extractor name {name!r} is already registered by {existing.__name__}"
        )
    _EXTRACTORS[name] = cls
    return cls


def extractor_names() -> List[str]:
    """Sorted names of every registered feature extractor."""
    return sorted(_EXTRACTORS)


def get_extractor(spec: object):
    """Resolve ``spec`` to an extractor instance.

    Accepts a registered name (instantiated with default config), a
    registered class, or a ready extractor instance (passed through).
    """
    if isinstance(spec, str):
        cls = _EXTRACTORS.get(spec)
        if cls is None:
            raise ValueError(
                f"unknown extractor {spec!r}; registered extractors: "
                f"{extractor_names()}"
            )
        return cls()
    if isinstance(spec, type):
        if spec in _EXTRACTORS.values():
            return spec()
        raise TypeError(
            f"{spec.__name__} is not a registered extractor class; "
            "decorate it with @register_extractor"
        )
    if dataclasses.is_dataclass(spec) and callable(getattr(spec, "day_block", None)):
        return spec
    raise TypeError(
        "extractor must be a registered name, a registered class or an "
        f"extractor instance, got {spec!r}"
    )

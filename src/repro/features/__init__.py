"""Reusable columnar feature pipeline.

The evaluation engines, the detector zoo and the zone-occupancy workload
all consume the same shape of input: per-day ``(times, matrix,
column_of_stream)`` blocks derived from a campaign's RSSI traces.  This
package turns the derivation into a first-class seam:

- :mod:`repro.features.base` defines the :class:`FeatureExtractor`
  contract (a frozen config dataclass with a ``day_block`` method), a
  registry mirroring the detector zoo's, and a content fingerprint so
  caches and sweep stores can key on *what* was extracted rather than on
  object identity.
- :mod:`repro.features.store` provides :class:`FeatureStore`, the
  per-recording cache of extractor blocks keyed by (day, extractor
  fingerprint).  It validates day membership, so a ``DayRecording``
  from a different campaign can never alias another recording's cache.
- :mod:`repro.features.rolling` re-expresses the historical
  ``CampaignStdFeatures`` rolling-std derivation as
  :class:`RollingStdExtractor` — bit-identical to the original code
  path, so every pinned golden stays green.
"""

from .base import (
    FeatureBlock,
    extractor_fingerprint,
    extractor_names,
    get_extractor,
    register_extractor,
)
from .rolling import RollingStdExtractor
from .store import FeatureStore

__all__ = [
    "FeatureBlock",
    "FeatureStore",
    "RollingStdExtractor",
    "extractor_fingerprint",
    "extractor_names",
    "get_extractor",
    "register_extractor",
]

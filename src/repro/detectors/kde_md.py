"""The paper's KDE normal-profile Mahalanobis detector, as a zoo member.

This is a pure port: both engines delegate to the exact code paths that
predate the detector abstraction — :func:`repro.core.movement.run_profile_grid`
offline and :class:`repro.streaming.detector.OnlineProfile` online — so a
scenario analysed through ``KdeMdDetector`` produces bitwise the numbers
it produced before the zoo existed (the golden and equivalence suites run
unchanged against it).  All tunables live on the scenario's
:class:`~repro.core.config.MDConfig`; the detector itself carries no
fields, which is what pins the goldens: there is no second copy of the
configuration to drift.

Imports of the engine modules are deferred into the methods: the
detectors package sits below ``core``/``streaming`` in the import graph
(analysis imports detectors; evaluation and streaming only ever *receive*
detector instances), and lazy imports keep that graph acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from .base import DetectionGrid, register_detector

__all__ = ["KdeMdDetector"]


@register_detector
@dataclass(frozen=True)
class KdeMdDetector:
    """KDE normal profile + Newton-quantile threshold (paper Section IV)."""

    name: ClassVar[str] = "kde_md"

    def offline_grid(self, std_sums, config, init_samples) -> DetectionGrid:
        from ..core.movement import run_profile_grid

        grid = run_profile_grid(std_sums, config, init_samples)
        return DetectionGrid(decisions=grid.decisions, thresholds=grid.thresholds)

    def streaming_engine(self, config, init_samples):
        from ..streaming.detector import OnlineProfile

        return OnlineProfile(config, init_samples)

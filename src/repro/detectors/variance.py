"""Rolling-variance threshold detector (SNIPPETS.md Snippets 1–2 lineage).

The senseye ``_rssi_variance`` path reduced presence detection to "the
population variance of the last ``window`` samples exceeds a threshold"
(with fewer than two samples the variance is defined as ``0.0``).  This
detector is that idea applied to the std-sum series: no smoothing, no
hysteresis — the cheapest member of the zoo and the natural baseline the
sweep reports compare the others against.

As with :class:`~repro.detectors.ema_mad.EmaMadDetector`, the absolute
threshold of the exemplar becomes a *calibrated* one: the effective
threshold is ``threshold_scale`` times the median rolling variance seen
over the initialisation window.  Decisions are ``-1`` during
initialisation; the threshold trace first materialises at
``init_samples - 1`` (the KDE grid's convention).

:meth:`VarianceThresholdDetector.offline_grid` is the full-array
reference; :meth:`VarianceThresholdDetector.streaming_engine` keeps only
a carry tail of the last ``window - 1`` raw values (arrival order) and
applies the same numpy reductions to the same value sequences, so the
two are bitwise identical under arbitrary batch splits — enforced by the
registry-parametrized hypothesis suite in tier-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .base import DetectionGrid, register_detector

__all__ = ["VarianceThresholdDetector"]

# Same role as the ema_mad floor: an all-quiet init window must not
# calibrate a zero threshold (every comparison would fire on noise ==).
_EFF_FLOOR = 1e-12


@register_detector
@dataclass(frozen=True)
class VarianceThresholdDetector:
    """Population variance of the last ``window`` std sums vs threshold."""

    name: ClassVar[str] = "variance"

    window: int = 10
    threshold_scale: float = 4.0

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if self.threshold_scale <= 0.0:
            raise ValueError(
                f"threshold_scale must be > 0, got {self.threshold_scale}"
            )

    # -- offline reference -------------------------------------------------

    def offline_grid(self, std_sums, config, init_samples: int) -> DetectionGrid:
        matrix = np.asarray(std_sums, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"std_sums must be 2-D, got shape {matrix.shape}")
        if init_samples < 2:
            raise ValueError(f"init_samples must be >= 2, got {init_samples}")
        n, n_cols = matrix.shape
        decisions = np.empty((n, n_cols), dtype=np.int8)
        thresholds = np.empty((n, n_cols))
        for col in range(n_cols):
            dec, thr = self._offline_column(
                np.ascontiguousarray(matrix[:, col]), init_samples
            )
            decisions[:, col] = dec
            thresholds[:, col] = thr
        return DetectionGrid(decisions=decisions, thresholds=thresholds)

    def _offline_column(
        self, values: np.ndarray, init_samples: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = values.size
        decisions = np.full(n, -1, dtype=np.int8)
        thresholds = np.full(n, np.nan)
        if n == 0:
            return decisions, thresholds
        w = self.window
        # Fewer than 2 samples -> 0.0, the exemplar's convention; partial
        # head from 2 values, full windows vectorised.
        variances = np.zeros(n)
        for i in range(1, min(w - 1, n)):
            variances[i] = np.var(values[: i + 1])
        if n >= w:
            variances[w - 1 :] = np.var(sliding_window_view(values, w), axis=1)

        if n < init_samples:
            return decisions, thresholds
        calib = variances[1:init_samples]
        base = float(np.median(calib)) if calib.size else 0.0
        eff = max(self.threshold_scale * base, _EFF_FLOOR)
        thresholds[init_samples - 1 :] = eff
        decisions[init_samples:] = variances[init_samples:] > eff
        return decisions, thresholds

    # -- streaming engine --------------------------------------------------

    def streaming_engine(self, config, init_samples: int) -> "VarianceEngine":
        return VarianceEngine(self, init_samples)


class VarianceEngine:
    """Incremental :class:`VarianceThresholdDetector` over one series.

    State is the last ``window - 1`` raw values (arrival order), the
    sample count, the calibration buffer and — once calibrated — the
    effective threshold.  Stateless past calibration: each decision reads
    only the current rolling variance, so the post-init batch path is
    fully vectorised.
    """

    def __init__(self, detector: VarianceThresholdDetector, init_samples: int) -> None:
        if init_samples < 2:
            raise ValueError(f"init_samples must be >= 2, got {init_samples}")
        self._det = detector
        self._init = int(init_samples)
        self._count = 0
        self._carry = np.empty(0)
        self._calib: List[float] = []
        self._eff: Optional[float] = None

    def snapshot(self) -> dict:
        """JSON-ready bounded state of the rolling-variance engine."""
        return {
            "count": self._count,
            "carry": self._carry.tolist(),
            "calib": list(self._calib),
            "eff": self._eff,
        }

    def restore(self, state: dict) -> None:
        """Overwrite the mutable state from a :meth:`snapshot` dict."""
        self._count = int(state["count"])
        self._carry = np.ascontiguousarray(
            np.asarray(state["carry"], dtype=float)
        )
        self._calib = [float(v) for v in state["calib"]]
        eff = state["eff"]
        self._eff = None if eff is None else float(eff)

    def extend(self, values) -> Tuple[np.ndarray, np.ndarray]:
        """Consume one batch; return its (decisions, thresholds)."""
        batch = np.ascontiguousarray(values, dtype=float).ravel()
        m = batch.size
        decisions = np.full(m, -1, dtype=np.int8)
        thresholds = np.full(m, np.nan)
        if m == 0:
            return decisions, thresholds
        c0 = self._count
        tail = self._carry.size  # == min(c0, window - 1)
        ext = np.concatenate((self._carry, batch)) if tail else batch
        w = self._det.window

        # Rolling variances for this batch (global index g = c0 + j).
        var_b = np.zeros(m)
        head_lo = max(1 - c0, 0)
        head_hi = min(max(w - 1 - c0, 0), m)
        for j in range(head_lo, head_hi):
            var_b[j] = np.var(ext[: tail + j + 1])
        j0 = max(w - 1 - c0, 0)
        if j0 < m:
            rows = sliding_window_view(ext, w)
            var_b[j0:] = np.var(rows[tail + j0 - w + 1 :], axis=1)

        # Calibrate once init_samples values have been seen, then compare.
        if self._eff is None:
            lo = max(1 - c0, 0)
            hi = min(max(self._init - c0, 0), m)
            if hi > lo:
                self._calib.extend(float(v) for v in var_b[lo:hi])
            if c0 + m >= self._init:
                base = (
                    float(np.median(np.asarray(self._calib)))
                    if self._calib
                    else 0.0
                )
                self._eff = max(self._det.threshold_scale * base, _EFF_FLOOR)
                self._calib = []
        if self._eff is not None:
            thr_j = max(self._init - 1 - c0, 0)
            thresholds[thr_j:] = self._eff
            dec_j = max(self._init - c0, 0)
            if dec_j < m:
                decisions[dec_j:] = var_b[dec_j:] > self._eff

        self._count = c0 + m
        keep = min(self._count, w - 1)
        self._carry = ext[len(ext) - keep :].copy()
        return decisions, thresholds

"""Detector interface, result grid and registry.

A *detector* is the pluggable kernel that turns a rolling-std-sum series
``s_t`` into movement decisions.  The paper's KDE normal-profile
Mahalanobis detector is one point in a family of RSSI-variation motion
detectors; this module gives the family one seam so sweeps, the columnar
evaluation engines and the streaming service can host any member without
knowing which one they are running.

The contract
------------

Every detector is a **frozen config dataclass** with a class-level
``name`` and a pair of engines:

``offline_grid(std_sums, config, init_samples) -> DetectionGrid``
    The batch reference.  ``std_sums`` is an ``(n, n_cols)`` float matrix
    of per-instant std sums (one column per sensor subset, evaluated in
    lockstep — the shape :func:`repro.core.movement.run_profile_grid`
    consumes); ``config`` is the scenario's
    :class:`~repro.core.config.MDConfig`; ``init_samples`` is the number
    of leading observations that form the initialisation window.  The
    result carries per-column ``decisions`` (int8: ``-1`` while
    initialising, ``0``/``1`` after) and ``thresholds`` (NaN while
    undefined), with the threshold first materialising at row
    ``init_samples - 1`` — the same convention as the KDE profile grid.

``streaming_engine(config, init_samples) -> engine``
    A fresh incremental engine whose ``extend(values) ->
    (decisions, thresholds)`` consumes one scalar series in arbitrary
    batch splits.  The concatenated outputs must be **bitwise identical**
    to column 0 of ``offline_grid`` over the same values — the same
    equivalence contract ``OnlineStdSum``/``OnlineProfile`` established —
    and the tier-1 suite enforces it for every registered detector under
    hypothesis-generated random splits (partial-window head included).

Detector identity (``name`` plus config fields) participates in scenario
naming, ``ScenarioSpec.content_hash`` and the sweep-store staleness
fingerprint, so a grid re-run with a different detector never reuses
stale records.  Register custom detectors with :func:`register_detector`
(and with :func:`repro.analysis.sweep_store.register_component` if their
specs must round-trip through stored sweep records).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Type

import numpy as np

__all__ = [
    "DetectionGrid",
    "register_detector",
    "detector_names",
    "get_detector",
]


@dataclass(frozen=True)
class DetectionGrid:
    """Per-column detector output over an ``(n, n_cols)`` std-sum matrix.

    ``decisions`` is int8 with ``-1`` while the detector initialises and
    ``0``/``1`` (no movement / movement) afterwards; ``thresholds`` holds
    the effective threshold trace, NaN wherever it is not yet defined.
    Matches the :class:`~repro.core.movement.ProfileGridResult` layout so
    existing consumers need no translation.
    """

    decisions: np.ndarray
    thresholds: np.ndarray

    def __post_init__(self) -> None:
        if self.decisions.shape != self.thresholds.shape:
            raise ValueError(
                "decisions and thresholds must share a shape, got "
                f"{self.decisions.shape} vs {self.thresholds.shape}"
            )


_ENGINE_METHODS = ("offline_grid", "streaming_engine")

_DETECTORS: Dict[str, Type] = {}


def register_detector(cls: Type) -> Type:
    """Class decorator adding a detector to the registry.

    The class must be a dataclass (its fields are the detector's
    configuration), expose a non-empty class-level ``name`` string and
    implement both engine methods.  Names are unique: re-registering the
    same class is a no-op, registering a different class under a taken
    name is an error.
    """
    if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
        raise TypeError(
            f"detector must be a dataclass type, got {cls!r}"
        )
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise TypeError(
            f"detector {cls.__name__} needs a non-empty class-level 'name' string"
        )
    for method in _ENGINE_METHODS:
        if not callable(getattr(cls, method, None)):
            raise TypeError(
                f"detector {cls.__name__} must implement {method}()"
            )
    existing = _DETECTORS.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"detector name {name!r} is already registered by {existing.__name__}"
        )
    _DETECTORS[name] = cls
    return cls


def detector_names() -> List[str]:
    """Sorted names of every registered detector."""
    return sorted(_DETECTORS)


def _is_detector_instance(obj: object) -> bool:
    return (
        not isinstance(obj, type)
        and dataclasses.is_dataclass(obj)
        and all(callable(getattr(obj, m, None)) for m in _ENGINE_METHODS)
    )


def get_detector(spec: object):
    """Resolve ``spec`` to a detector instance.

    Accepts a registered name (instantiated with default config), a
    registered class, or a ready detector instance (passed through, which
    is how config variants enter a grid).
    """
    if isinstance(spec, str):
        cls = _DETECTORS.get(spec)
        if cls is None:
            raise ValueError(
                f"unknown detector {spec!r}; registered detectors: "
                f"{detector_names()}"
            )
        return cls()
    if isinstance(spec, type):
        if spec in _DETECTORS.values():
            return spec()
        raise TypeError(
            f"{spec.__name__} is not a registered detector class; "
            "decorate it with @register_detector"
        )
    if _is_detector_instance(spec):
        return spec
    raise TypeError(
        "detector must be a registered name, a registered class or a "
        f"detector instance, got {spec!r}"
    )

"""Pluggable detector zoo: one interface across scalar, columnar and
streaming paths.

Every detector is a frozen config dataclass with a registry ``name`` and
two engines — an offline reference (:meth:`offline_grid`) and a
streaming engine (:meth:`streaming_engine`) proven bitwise identical to
it under arbitrary batch splits (see :mod:`repro.detectors.base` for the
full contract).  The zoo ships the paper's KDE-MD detector (a pure port
— golden numbers unchanged), the EMA+MAD hysteresis detector and the
rolling-variance threshold baseline; *detector* is a first-class
``ScenarioGrid`` axis, so sweeps compare members head-to-head on
identical recordings.
"""

from .base import (
    DetectionGrid,
    detector_names,
    get_detector,
    register_detector,
)
from .ema_mad import EmaMadDetector
from .kde_md import KdeMdDetector
from .variance import VarianceThresholdDetector

__all__ = [
    "DetectionGrid",
    "EmaMadDetector",
    "KdeMdDetector",
    "VarianceThresholdDetector",
    "detector_names",
    "get_detector",
    "register_detector",
]

"""EMA + median/MAD hysteresis detector (SNIPPETS.md Snippet 3 lineage).

The std-sum series is first smoothed with an exponential moving average;
movement evidence is then two-fold: the short-window standard deviation
of the smoothed series (energy), and the robust deviation of the current
smoothed value from a long-window median in MAD units (level shift).
Either one firing trips the detector, and hysteresis holds it active
until the short-window energy drops below ``down_ratio`` of the
threshold — the exact activate/deactivate shape of the exemplar
``MotionDetector``.

Unlike the exemplar's absolute ``threshold=8.0``, the energy threshold
here is *calibrated*: std-sum magnitudes vary with sensor count and
channel config, so the effective threshold is ``threshold_scale`` times
the median short-window std observed over the initialisation window
(``init_samples``, the same quiet-office assumption the KDE profile
makes).  Decisions are ``-1`` during initialisation and the threshold
trace first materialises at ``init_samples - 1``, mirroring the KDE
grid's convention.

Two engines, one contract: :meth:`EmaMadDetector.offline_grid` is the
full-array reference (``sliding_window_view`` stds/medians over whole
columns), :meth:`EmaMadDetector.streaming_engine` the bounded-state
incremental engine (a carry tail of the last ``long_window - 1`` smoothed
values, kept in arrival order — the ``OnlineStdSum`` pattern).  Both
apply the same numpy reductions to the same value sequences, so their
outputs are bitwise identical under any batch split; the tier-1
registry-parametrized hypothesis suite enforces it.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .base import DetectionGrid, register_detector

__all__ = ["EmaMadDetector"]

# Full-window median/MAD dispatch: below this window size the dense
# ``np.median``-over-``sliding_window_view`` reference is faster (numpy's
# C introselect beats per-step python bookkeeping); from here up the
# indexable sorted window wins — O(log w) per step against the dense
# path's O(w) — crossing ~1x at 160 and reaching ~2x at 400, ~4x at 600
# (measured; the detector bench gate locks the large-window ratio in).
_SORTED_MEDIAN_MIN_W = 160

# Floor for calibrated thresholds: a perfectly quiet init window (all-zero
# stds) must not produce a zero threshold that the hysteresis exit
# (``std < eff * down_ratio``) could never satisfy.
_EFF_FLOOR = 1e-9

# Robust-sigma conversion and degeneracy guards, verbatim from the
# exemplar: MAD below 1e-9 means the long window is flat and the robust
# deviation is undefined — treat as no level-shift evidence.
_MAD_SIGMA = 1.4826
_MAD_TINY = 1e-9


def _ema_series(values: np.ndarray, alpha: float) -> np.ndarray:
    """Per-step python-float EMA recursion (both engines share it)."""
    out = np.empty(values.size)
    e: Optional[float] = None
    for i, v in enumerate(values.tolist()):
        e = v if e is None else alpha * v + (1.0 - alpha) * e
        out[i] = e
    return out


def _sorted_mid(rows: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Medians of pre-sorted rows whose first ``lengths`` entries are data.

    ``(lo + hi) / 2`` over the two middle order statistics — for odd
    lengths both indices coincide and the halving is exact, so the result
    is bitwise what ``np.median`` computes from the same multiset.
    """
    r = np.arange(lengths.size)
    lo = rows[r, (lengths - 1) // 2]
    hi = rows[r, lengths // 2]
    return (lo + hi) / 2.0


def _prefix_median_mad(
    arr: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(median, MAD)`` of every prefix ``arr[:end + 1]``, vectorised.

    Equivalent to ``np.median(arr[:e + 1])`` / ``np.median(np.abs(arr[:e
    + 1] - med))`` per end index — same order statistics, same midpoint
    arithmetic, hence bitwise-identical for the finite series both
    engines feed it — but with two padded sorts instead of O(window)
    separate numpy reductions (the growing-prefix head of the long
    window made ``offline_grid`` median-dispatch-bound).  Padding is
    ``+inf``, which sorts after every finite value.
    """
    if ends.size == 0:
        return np.empty(0), np.empty(0)
    lengths = ends + 1
    width = int(lengths[-1])
    pad = np.arange(width)[None, :] >= lengths[:, None]
    values = np.where(pad, np.inf, arr[None, :width])
    med = _sorted_mid(np.sort(values, axis=1), lengths)
    deviations = np.abs(arr[None, :width] - med[:, None])
    deviations[pad] = np.inf
    mad = _sorted_mid(np.sort(deviations, axis=1), lengths)
    return med, mad


def _dense_window_median_mad(
    arr: np.ndarray, w: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(median, MAD)`` of every full window — the dense reference.

    The historical ``np.median`` over ``sliding_window_view`` rows; kept
    both as the small-window fast path and as the bitwise reference the
    sorted-window path is tested against.
    """
    rows = sliding_window_view(arr, w)
    med = np.median(rows, axis=1)
    mad = np.median(np.abs(rows - med[:, None]), axis=1)
    return med, mad


def _kth_dev(win: list, mid: float, lo_i: int, w: int, k: int) -> float:
    """``k``-th smallest absolute deviation ``|x - mid|`` over a sorted window.

    The deviations of an ascending window around its median form two
    virtual ascending arrays — ``L[i] = mid - win[lo_i - i]`` for the
    lower half (non-negative because ``mid >= win[lo_i]``) and ``R[j] =
    win[lo_i + 1 + j] - mid`` for the upper — so the k-th smallest
    deviation comes from the classic two-sorted-arrays selection in
    O(log k) probes, no materialised deviation array.  IEEE gives
    ``mid - x == abs(x - mid)`` exactly for ``x <= mid`` (negation of a
    correctly-rounded difference is exact), so each probed value is
    bit-for-bit the one the dense path sorts.
    """
    nl = lo_i + 1
    nr = w - 1 - lo_i
    i = j = 0
    while True:
        if i == nl:
            return win[lo_i + 1 + j + k] - mid
        if j == nr:
            return mid - win[lo_i - (i + k)]
        if k == 0:
            a = mid - win[lo_i - i]
            b = win[lo_i + 1 + j] - mid
            return a if a <= b else b
        half = (k + 1) // 2
        ia = min(i + half, nl) - 1
        ib = min(j + half, nr) - 1
        a = mid - win[lo_i - ia]
        b = win[lo_i + 1 + ib] - mid
        if a <= b:
            k -= ia - i + 1
            i = ia + 1
        else:
            k -= ib - j + 1
            j = ib + 1


def _sorted_window_median_mad(
    arr: np.ndarray, w: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(median, MAD)`` of every full window via an indexable sorted list.

    Maintains the current window as an ascending python list updated by
    ``bisect``/``insort`` (O(w) C-level memmove per step, no re-sort) and
    reads medians as direct order statistics: ``win[(w - 1) // 2]`` for
    odd ``w`` — exactly the element ``np.median`` selects — and the
    correctly-rounded midpoint ``(lo + hi) / 2.0`` of the two middle
    elements for even ``w``, which is bitwise ``np.mean`` of that pair.
    MADs come from :func:`_kth_dev` without materialising deviations.
    Output is bit-for-bit :func:`_dense_window_median_mad` for finite
    input (the registry equivalence suite and the dedicated hypothesis
    test enforce it); callers gate non-finite input to the dense path.
    """
    vals = arr.tolist()
    n = len(vals)
    m = n - w + 1
    med = np.empty(m)
    mad = np.empty(m)
    win = sorted(vals[:w])
    lo_i = (w - 1) // 2
    hi_i = w // 2
    odd = lo_i == hi_i
    for i in range(m):
        if i:
            del win[bisect_left(win, vals[i - 1])]
            insort(win, vals[i + w - 1])
        lo = win[lo_i]
        mid = lo if odd else (lo + win[hi_i]) / 2.0
        med[i] = mid
        if odd:
            mad[i] = _kth_dev(win, mid, lo_i, w, lo_i)
        else:
            d0 = _kth_dev(win, mid, lo_i, w, lo_i)
            d1 = _kth_dev(win, mid, lo_i, w, hi_i)
            mad[i] = (d0 + d1) / 2.0
    return med, mad


def _window_median_mad(
    arr: np.ndarray, w: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Full-window rolling ``(median, MAD)``, dispatched by window size.

    Both paths are bitwise-identical on finite data; non-finite values
    (which would break sorted-list ordering) always take the dense path.
    """
    if arr.size - w + 1 <= 0:
        return np.empty(0), np.empty(0)
    if w >= _SORTED_MEDIAN_MIN_W and np.isfinite(arr).all():
        return _sorted_window_median_mad(arr, w)
    return _dense_window_median_mad(arr, w)


@register_detector
@dataclass(frozen=True)
class EmaMadDetector:
    """EMA smoothing + short-window energy + long-window MAD deviation."""

    name: ClassVar[str] = "ema_mad"

    ema_alpha: float = 0.3
    short_window: int = 30
    long_window: int = 120
    min_long: int = 10
    threshold_scale: float = 3.0
    dev_factor: float = 3.0
    down_ratio: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ValueError(f"ema_alpha must be in (0, 1], got {self.ema_alpha}")
        if self.short_window < 2:
            raise ValueError(f"short_window must be >= 2, got {self.short_window}")
        if self.long_window < self.short_window:
            raise ValueError(
                "long_window must be >= short_window, got "
                f"{self.long_window} < {self.short_window}"
            )
        if not 2 <= self.min_long <= self.long_window:
            raise ValueError(
                f"min_long must be in [2, long_window], got {self.min_long}"
            )
        if self.threshold_scale <= 0.0:
            raise ValueError(
                f"threshold_scale must be > 0, got {self.threshold_scale}"
            )
        if self.dev_factor <= 0.0:
            raise ValueError(f"dev_factor must be > 0, got {self.dev_factor}")
        if not 0.0 < self.down_ratio <= 1.0:
            raise ValueError(f"down_ratio must be in (0, 1], got {self.down_ratio}")

    # -- offline reference -------------------------------------------------

    def offline_grid(self, std_sums, config, init_samples: int) -> DetectionGrid:
        matrix = np.asarray(std_sums, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"std_sums must be 2-D, got shape {matrix.shape}")
        if init_samples < 2:
            raise ValueError(f"init_samples must be >= 2, got {init_samples}")
        n, n_cols = matrix.shape
        decisions = np.empty((n, n_cols), dtype=np.int8)
        thresholds = np.empty((n, n_cols))
        for col in range(n_cols):
            dec, thr = self._offline_column(
                np.ascontiguousarray(matrix[:, col]), init_samples
            )
            decisions[:, col] = dec
            thresholds[:, col] = thr
        return DetectionGrid(decisions=decisions, thresholds=thresholds)

    def _offline_column(
        self, values: np.ndarray, init_samples: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = values.size
        decisions = np.full(n, -1, dtype=np.int8)
        thresholds = np.full(n, np.nan)
        if n == 0:
            return decisions, thresholds
        ema = _ema_series(values, self.ema_alpha)
        w, long_w = self.short_window, self.long_window

        # Short-window std of the smoothed series: defined from 2 values
        # (partial head), full windows vectorised.
        stds = np.full(n, np.nan)
        for i in range(1, min(w - 1, n)):
            stds[i] = np.std(ema[: i + 1])
        if n >= w:
            stds[w - 1 :] = np.std(sliding_window_view(ema, w), axis=1)

        # Long-window median/MAD: defined once min_long values exist.
        med = np.full(n, np.nan)
        mad = np.full(n, np.nan)
        lo, hi = self.min_long - 1, min(long_w - 1, n)
        if lo < hi:
            med[lo:hi], mad[lo:hi] = _prefix_median_mad(
                ema, np.arange(lo, hi)
            )
        if n >= long_w:
            med[long_w - 1 :], mad[long_w - 1 :] = _window_median_mad(
                ema, long_w
            )

        if n < init_samples:
            return decisions, thresholds

        # Calibrate the energy threshold on the init window, then walk the
        # hysteresis state machine over the remainder.
        calib = stds[1:init_samples]
        base = float(np.median(calib)) if calib.size else 0.0
        eff = max(self.threshold_scale * base, _EFF_FLOOR)
        thresholds[init_samples - 1 :] = eff
        down = eff * self.down_ratio
        # Vectorised trigger/exit evidence (same IEEE ops as the scalar
        # streaming walk), then the inherently sequential two-state
        # hysteresis over plain python bools.
        s_tail = stds[init_samples:]
        mad_tail = mad[init_samples:]
        rs = np.where(mad_tail > _MAD_TINY, mad_tail * _MAD_SIGMA, 0.0)
        dev = np.zeros(n - init_samples)
        robust = rs > _MAD_TINY
        dev[robust] = (
            np.abs(ema[init_samples:] - med[init_samples:])[robust]
            / rs[robust]
        )
        trig_tail = np.where(
            np.isnan(med[init_samples:]),
            s_tail > eff,
            (dev > self.dev_factor) | (s_tail > eff),
        )
        exit_tail = s_tail < down
        active = False
        out = decisions[init_samples:]
        for i, (trig, drop) in enumerate(
            zip(trig_tail.tolist(), exit_tail.tolist())
        ):
            if active:
                if drop:
                    active = False
            elif trig:
                active = True
            out[i] = 1 if active else 0
        return decisions, thresholds

    # -- streaming engine --------------------------------------------------

    def streaming_engine(self, config, init_samples: int) -> "EmaMadEngine":
        return EmaMadEngine(self, init_samples)


class EmaMadEngine:
    """Incremental :class:`EmaMadDetector` over one scalar series.

    Bounded state: the EMA accumulator, a carry tail of the last
    ``long_window - 1`` *smoothed* values in arrival order (one tail
    serves both the short and long windows since ``long_window >=
    short_window``), the init-window calibration buffer and the hysteresis
    flag.  ``extend`` applies the same reductions as the offline column —
    prefix stds/medians for the partial head, ``sliding_window_view``
    rows once windows fill — so its concatenated output is bitwise equal
    to the reference whatever the batch splits.
    """

    def __init__(self, detector: EmaMadDetector, init_samples: int) -> None:
        if init_samples < 2:
            raise ValueError(f"init_samples must be >= 2, got {init_samples}")
        self._det = detector
        self._init = int(init_samples)
        self._count = 0
        self._ema_last: Optional[float] = None
        self._carry = np.empty(0)
        self._calib: List[float] = []
        self._eff: Optional[float] = None
        self._down = np.nan
        self._active = False

    def snapshot(self) -> dict:
        """JSON-ready bounded state (``down`` may be NaN pre-calibration)."""
        return {
            "count": self._count,
            "ema_last": self._ema_last,
            "carry": self._carry.tolist(),
            "calib": list(self._calib),
            "eff": self._eff,
            "down": self._down,
            "active": self._active,
        }

    def restore(self, state: dict) -> None:
        """Overwrite the mutable state from a :meth:`snapshot` dict."""
        self._count = int(state["count"])
        ema_last = state["ema_last"]
        self._ema_last = None if ema_last is None else float(ema_last)
        self._carry = np.ascontiguousarray(
            np.asarray(state["carry"], dtype=float)
        )
        self._calib = [float(v) for v in state["calib"]]
        eff = state["eff"]
        self._eff = None if eff is None else float(eff)
        self._down = float(state["down"])
        self._active = bool(state["active"])

    def extend(self, values) -> Tuple[np.ndarray, np.ndarray]:
        """Consume one batch; return its (decisions, thresholds)."""
        det = self._det
        batch = np.ascontiguousarray(values, dtype=float).ravel()
        m = batch.size
        decisions = np.full(m, -1, dtype=np.int8)
        thresholds = np.full(m, np.nan)
        if m == 0:
            return decisions, thresholds

        # Smooth, then extend the carried tail so window reductions see
        # the same contiguous value sequences the offline column does.
        ema_b = np.empty(m)
        e = self._ema_last
        for j, v in enumerate(batch.tolist()):
            e = v if e is None else det.ema_alpha * v + (1.0 - det.ema_alpha) * e
            ema_b[j] = e
        self._ema_last = e
        c0 = self._count
        tail = self._carry.size  # == min(c0, long_window - 1)
        ext = np.concatenate((self._carry, ema_b)) if tail else ema_b
        w, long_w = det.short_window, det.long_window

        # Short-window stds for this batch (global index g = c0 + j).
        stds_b = np.full(m, np.nan)
        head_lo = max(1 - c0, 0)
        head_hi = min(max(w - 1 - c0, 0), m)
        for j in range(head_lo, head_hi):
            stds_b[j] = np.std(ext[: tail + j + 1])
        j0 = max(w - 1 - c0, 0)
        if j0 < m:
            rows = sliding_window_view(ext, w)
            stds_b[j0:] = np.std(rows[tail + j0 - w + 1 :], axis=1)

        # Long-window median/MAD for this batch.
        med_b = np.full(m, np.nan)
        mad_b = np.full(m, np.nan)
        part_lo = max(det.min_long - 1 - c0, 0)
        part_hi = min(max(long_w - 1 - c0, 0), m)
        if part_lo < part_hi:
            ends = tail + np.arange(part_lo, part_hi)
            med_b[part_lo:part_hi], mad_b[part_lo:part_hi] = (
                _prefix_median_mad(ext, ends)
            )
        jl = max(long_w - 1 - c0, 0)
        if jl < m:
            # The slice holds the previous long_w - 1 smoothed values plus
            # the batch's remainder: exactly the m - jl full windows, same
            # contiguous values as the offline column's.
            start = tail + jl - long_w + 1
            med_b[jl:], mad_b[jl:] = _window_median_mad(ext[start:], long_w)

        # Calibration + hysteresis, one step at a time.
        for j in range(m):
            g = c0 + j
            s = float(stds_b[j])
            if self._eff is None:
                if 1 <= g <= self._init - 1:
                    self._calib.append(s)
                if g == self._init - 1:
                    base = (
                        float(np.median(np.asarray(self._calib)))
                        if self._calib
                        else 0.0
                    )
                    self._eff = max(det.threshold_scale * base, _EFF_FLOOR)
                    self._down = self._eff * det.down_ratio
                    self._calib = []
            if self._eff is None:
                continue
            if g >= self._init - 1:
                thresholds[j] = self._eff
            if g < self._init:
                continue
            if not np.isnan(med_b[j]):
                madv = float(mad_b[j])
                rs = madv * _MAD_SIGMA if madv > _MAD_TINY else 0.0
                dev = (
                    abs(float(ema_b[j]) - float(med_b[j])) / rs
                    if rs > _MAD_TINY
                    else 0.0
                )
                trig = dev > det.dev_factor or s > self._eff
            else:
                trig = s > self._eff
            if self._active:
                if s < self._down:
                    self._active = False
            elif trig:
                self._active = True
            decisions[j] = 1 if self._active else 0

        self._count = c0 + m
        keep = min(self._count, long_w - 1)
        self._carry = ext[len(ext) - keep :].copy() if keep else ext[:0].copy()
        return decisions, thresholds

"""Keyboard/Mouse Activity (KMA) module.

The simplest of the three FADEWICH modules (paper Section IV-B): each
workstation reports its input idle time to the central station, and the
system asks "which workstations have been idle for the last ``s`` seconds?"
— the set ``S_t^(s)``.

The module is a thin policy layer over an idle-time provider, which can be
either the online :class:`~repro.workstation.idle.IdleTracker` or the
trace-backed :class:`~repro.workstation.idle.TraceIdleProvider`.
"""

from __future__ import annotations

from typing import List, Protocol, Set

__all__ = ["IdleProvider", "KeyboardMouseActivity"]


class IdleProvider(Protocol):
    """Anything that can answer per-workstation idle-time queries."""

    @property
    def workstation_ids(self) -> List[str]:  # pragma: no cover - protocol
        ...

    def idle_time(self, workstation_id: str, t: float) -> float:  # pragma: no cover
        ...


class KeyboardMouseActivity:
    """The KMA module.

    Parameters
    ----------
    provider:
        The idle-time source (per-workstation last-input bookkeeping).
    """

    def __init__(self, provider: IdleProvider) -> None:
        self._provider = provider

    @property
    def workstation_ids(self) -> List[str]:
        """Workstations monitored by this KMA instance."""
        return list(self._provider.workstation_ids)

    def idle_time(self, workstation_id: str, t: float) -> float:
        """Idle time (seconds) of one workstation at time ``t``."""
        return self._provider.idle_time(workstation_id, t)

    def idle_set(self, t: float, s: float) -> Set[str]:
        """The paper's ``S_t^(s)``: workstations idle for >= ``s`` seconds at ``t``.

        Parameters
        ----------
        t:
            Query time.
        s:
            Idle threshold in seconds.  ``s = 1`` is used by Rule 2 (alert
            any workstation idle for the last second), ``s = t_delta`` by
            Rule 1.
        """
        if s < 0:
            raise ValueError("s must be non-negative")
        return {
            wid
            for wid in self._provider.workstation_ids
            if self._provider.idle_time(wid, t) >= s
        }

    def most_idle(self, t: float) -> str:
        """The workstation with the largest idle time at ``t``.

        Used by the training phase to auto-label samples when exactly one
        workstation has been idle throughout a variation window.
        """
        ids = self._provider.workstation_ids
        return max(ids, key=lambda wid: self._provider.idle_time(wid, t))

"""Movement Detection (MD) module — Algorithm 1 of the paper.

MD watches the per-stream RSSI fluctuation level.  At every time step it
computes the *sum over streams of the standard deviation of the last ``d``
seconds of measurements* (``s_t``).  A Gaussian-KDE profile of ``s_t`` built
during a quiet initialisation phase defines "normal"; observations above the
``(100 - alpha)``-th percentile of the profile CDF are anomalous.  The
profile is refreshed in batches of ``b`` values whenever a batch contains
few enough anomalous values (fraction below ``tau``), so it tracks slow
changes of the radio environment.

Contiguous anomalous reports form *variation windows*; windows lasting at
least ``t_delta`` trigger system decisions (handled by the controller).

Entry points:

* :class:`MovementDetector` — the online, sample-by-sample detector used by
  the live system,
* :func:`detect_offline` — a columnar offline run over a recorded
  :class:`~repro.radio.trace.RssiTrace`, used by the evaluation harness,
* :func:`detect_offline_scalar` — the retained per-observation reference
  implementation of exactly the same contract,
* :func:`run_profile_grid` — the batch profile engine advancing many
  independent ``s_t`` columns (sensor subsets, days) in lockstep.

Scalar reference and batch path
-------------------------------

:class:`NormalProfile` (driven one observation at a time) is the semantics
reference for Algorithm 1's profile.  :func:`run_profile_grid` replays the
same arithmetic column-by-column over whole arrays: identical KDE data
windows, identical Scott bandwidths, and the *same* threshold solver —
both paths delegate to the shared safeguarded-Newton quantile engine
(:func:`~repro.ml.kde.mixture_quantiles`), whose per-row arithmetic is
independent of batching and which only evaluates the mixture CDF on
still-active rows.  Decisions and thresholds are therefore **bit-for-bit
identical** to feeding :meth:`NormalProfile.observe` the same values (see
``tests/test_analysis_equivalence.py``).  Both sides warm-start each
threshold from the chain's previous threshold, which is what makes profile
updates nearly free.  Any change to one side must keep the other in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..ml.kde import GaussianKDE, mixture_quantiles
from ..radio.trace import RssiTrace, StreamBuffer
from .config import MDConfig
from .windows import VariationWindow

__all__ = [
    "StdSumTracker",
    "NormalProfile",
    "MovementDetector",
    "OfflineMDResult",
    "ProfileGridResult",
    "rolling_std_sum",
    "rolling_std_matrix",
    "online_std_sum_series",
    "run_profile_grid",
    "variation_windows_from_flags",
    "window_duration_series",
    "detect_offline",
    "detect_offline_scalar",
]


class StdSumTracker:
    """Maintains the per-stream sliding windows and their std-dev sum.

    Parameters
    ----------
    stream_ids:
        The monitored streams.
    window_samples:
        Number of samples of the sliding window (``d`` seconds times the
        sampling rate).
    """

    def __init__(self, stream_ids: Sequence[str], window_samples: int) -> None:
        if window_samples < 2:
            raise ValueError("window_samples must be >= 2")
        self._buffer = StreamBuffer(stream_ids, maxlen=window_samples)
        self._window_samples = window_samples

    @property
    def window_samples(self) -> int:
        return self._window_samples

    def update(self, sample: Mapping[str, float]) -> Optional[float]:
        """Add one multi-stream sample; return the current ``s_t``.

        Returns ``None`` until at least two samples per stream are buffered
        (a standard deviation needs two points).
        """
        self._buffer.append(sample)
        if self._buffer.fill_level() < 2:
            return None
        total = 0.0
        for sid in self._buffer.stream_ids:
            total += float(np.std(self._buffer.window(sid)))
        return total

    def reset(self) -> None:
        self._buffer.clear()


class NormalProfile:
    """The KDE-based normal profile of ``s_t`` with batch updates.

    Implements the profile part of Algorithm 1: initialisation from a quiet
    period, the ``(100 - alpha)``-th percentile threshold, and the batch
    update that discards batches containing too many anomalous values.
    """

    def __init__(self, config: MDConfig, init_samples: int) -> None:
        if init_samples < 2:
            raise ValueError("init_samples must be >= 2")
        self._config = config
        self._init_samples = init_samples
        self._init_buffer: List[float] = []
        self._kde: Optional[GaussianKDE] = None
        self._threshold: Optional[float] = None
        self._batch: List[float] = []

    # ------------------------------------------------------------------ #
    @property
    def is_ready(self) -> bool:
        """Whether the initial profile has been built."""
        return self._kde is not None

    @property
    def threshold(self) -> Optional[float]:
        """Current anomaly threshold (``None`` until ready)."""
        return self._threshold

    @property
    def kde(self) -> Optional[GaussianKDE]:
        return self._kde

    def _rebuild_threshold(self) -> None:
        # Warm-start from the chain's previous threshold: profile updates
        # only nudge the KDE window, so the old threshold is an excellent
        # initial guess for the Newton solver.
        assert self._kde is not None
        self._threshold = self._kde.percentile(
            100.0 - self._config.alpha, x0=self._threshold
        )

    def observe(self, s_t: float) -> Optional[bool]:
        """Feed one ``s_t`` value; return whether it is anomalous.

        Returns ``None`` while the profile is still initialising (the system
        makes no decisions during the installation phase).
        """
        if not self.is_ready:
            self._init_buffer.append(float(s_t))
            if len(self._init_buffer) >= self._init_samples:
                self._kde = GaussianKDE(self._init_buffer)
                self._rebuild_threshold()
            return None

        assert self._threshold is not None
        anomalous = bool(s_t >= self._threshold)

        # Batch-update bookkeeping (Algorithm 1 lines 6, 10-15).
        self._batch.append(float(s_t))
        if len(self._batch) >= self._config.batch_size:
            anomalous_in_batch = sum(
                1 for v in self._batch if v >= self._threshold
            )
            if anomalous_in_batch / len(self._batch) < self._config.tau:
                assert self._kde is not None
                self._kde = self._kde.updated(
                    self._batch, drop_oldest=len(self._batch)
                )
                self._rebuild_threshold()
            self._batch = []
        return anomalous


@dataclass(frozen=True)
class OfflineMDResult:
    """Everything an offline MD run produces.

    Attributes
    ----------
    times:
        Timestamps at which ``s_t`` was defined (the first window's worth of
        samples has no value).
    std_sums:
        The ``s_t`` series (same length as ``times``).
    windows:
        All variation windows, regardless of duration (the ``t_delta``
        filter is applied later by the matching / controller logic).
    threshold_trace:
        The anomaly threshold in force at each time step (it moves as the
        profile updates).
    """

    times: np.ndarray
    std_sums: np.ndarray
    windows: Tuple[VariationWindow, ...]
    threshold_trace: np.ndarray

    def windows_at_least(self, min_duration_s: float) -> List[VariationWindow]:
        """Variation windows lasting at least ``min_duration_s``."""
        return [w for w in self.windows if w.duration >= min_duration_s]


class MovementDetector:
    """Online MD: consumes multi-stream RSSI samples, emits variation windows.

    Parameters
    ----------
    stream_ids:
        Monitored stream ids.
    config:
        MD parameters.
    sample_rate_hz:
        Sampling rate of the incoming RSSI samples.
    """

    def __init__(
        self,
        stream_ids: Sequence[str],
        config: Optional[MDConfig] = None,
        sample_rate_hz: float = 4.0,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        self._config = config if config is not None else MDConfig()
        self._rate = sample_rate_hz
        window_samples = max(int(round(self._config.std_window_s * sample_rate_hz)), 2)
        init_samples = max(int(round(self._config.profile_init_s * sample_rate_hz)), 2)
        self._tracker = StdSumTracker(stream_ids, window_samples)
        self._profile = NormalProfile(self._config, init_samples)
        self._window_start: Optional[float] = None
        self._last_anomalous_t: Optional[float] = None
        self._completed: List[VariationWindow] = []
        self._last_t: Optional[float] = None

    # ------------------------------------------------------------------ #
    @property
    def config(self) -> MDConfig:
        return self._config

    @property
    def profile(self) -> NormalProfile:
        return self._profile

    @property
    def completed_windows(self) -> List[VariationWindow]:
        """Variation windows that have already closed."""
        return list(self._completed)

    def current_window(self, t: float) -> Optional[VariationWindow]:
        """The variation window currently open at time ``t`` (if any)."""
        if self._window_start is None:
            return None
        return VariationWindow(self._window_start, t)

    def current_window_duration(self, t: float) -> float:
        """``dW_t``: duration of the most recent variation window at ``t``.

        Zero when no window is open — the quantity driving the controller's
        state transitions (paper Section IV-G).
        """
        if self._window_start is None:
            return 0.0
        return max(t - self._window_start, 0.0)

    # ------------------------------------------------------------------ #
    def process(self, t: float, sample: Mapping[str, float]) -> Optional[bool]:
        """Consume one sample; return the anomaly decision (or ``None``).

        ``None`` means MD is still initialising (either the std window or
        the normal profile is not yet full).
        """
        if self._last_t is not None and t <= self._last_t:
            raise ValueError("samples must arrive in strictly increasing time order")
        self._last_t = t

        s_t = self._tracker.update(sample)
        if s_t is None:
            return None
        anomalous = self._profile.observe(s_t)
        if anomalous is None:
            return None

        gap = self._config.merge_gap_s
        if anomalous:
            if self._window_start is None:
                self._window_start = t
            self._last_anomalous_t = t
        else:
            if (
                self._window_start is not None
                and self._last_anomalous_t is not None
                and (t - self._last_anomalous_t) > gap
            ):
                self._completed.append(
                    VariationWindow(self._window_start, self._last_anomalous_t)
                )
                self._window_start = None
                self._last_anomalous_t = None
        return anomalous

    def finalize(self, t: float) -> None:
        """Close any open variation window at the end of a run."""
        if self._window_start is not None and self._last_anomalous_t is not None:
            self._completed.append(
                VariationWindow(self._window_start, self._last_anomalous_t)
            )
            self._window_start = None
            self._last_anomalous_t = None


# ---------------------------------------------------------------------- #
# Offline (columnar) path
# ---------------------------------------------------------------------- #
def rolling_std_matrix(
    trace: RssiTrace, window_samples: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-stream rolling standard deviations of a recorded trace.

    Returns ``(times, std_matrix)`` where ``std_matrix[i, j]`` is the
    standard deviation of the last ``window_samples`` samples of stream
    ``trace.stream_ids[j]`` ending at ``times[i]``.  This is the shared
    feature matrix of the evaluation pipeline: computed once per recording,
    any sensor subset's ``s_t`` series is a column-subset sum of it
    (bit-identical to recomputing on the restricted trace, because each
    column's rolling statistics are independent of the others).
    """
    if window_samples < 2:
        raise ValueError("window_samples must be >= 2")
    n = trace.n_samples
    if n < window_samples:
        raise ValueError("trace shorter than the std window")
    matrix = np.column_stack([trace.streams[sid] for sid in trace.stream_ids])
    # Rolling mean/variance via cumulative sums.  All combining steps run
    # in place on the fresh temporaries (bit-identical values, roughly
    # half the large allocations of the naive expression chain).
    csum = np.cumsum(matrix, axis=0)
    np.multiply(matrix, matrix, out=matrix)
    csum2 = np.cumsum(matrix, axis=0)
    w = window_samples
    sum_w = csum[w - 1 :].copy()
    sum_w[1:] -= csum[: n - w]
    sum2_w = csum2[w - 1 :].copy()
    sum2_w[1:] -= csum2[: n - w]
    sum_w /= w          # rolling mean
    sum2_w /= w
    np.multiply(sum_w, sum_w, out=sum_w)
    np.subtract(sum2_w, sum_w, out=sum2_w)
    np.maximum(sum2_w, 0.0, out=sum2_w)
    np.sqrt(sum2_w, out=sum2_w)
    return trace.times[w - 1 :], sum2_w


def rolling_std_sum(trace: RssiTrace, window_samples: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised ``s_t`` series of a recorded trace.

    Returns ``(times, std_sums)`` where the series starts at the first index
    with a full window.
    """
    times, std_matrix = rolling_std_matrix(trace, window_samples)
    return times, std_matrix.sum(axis=1)


def online_std_sum_series(
    matrix: np.ndarray, window_samples: int
) -> np.ndarray:
    """The ``s_t`` series an online :class:`StdSumTracker` would emit.

    ``matrix`` is the ``(n_steps, n_streams)`` sample matrix in stream
    order.  Unlike :func:`rolling_std_sum` (which starts at the first full
    window), the online tracker emits values as soon as two samples are
    buffered, computing the std over the *partial* window; this helper
    replicates that exactly.  Returns an array of length ``n_steps`` whose
    first element is NaN (no std of a single sample).
    """
    if window_samples < 2:
        raise ValueError("window_samples must be >= 2")
    n, k = matrix.shape
    out = np.full(n, np.nan)
    if n < 2:
        return out
    w = min(window_samples, n)
    # Partial windows (fill levels 2 .. w-1): a handful of steps, computed
    # with the same per-stream np.std calls and left-to-right stream
    # accumulation as the online tracker.
    cols = [np.ascontiguousarray(matrix[:, j]) for j in range(k)]
    for i in range(1, w - 1):
        total = 0.0
        for col in cols:
            total += float(np.std(col[: i + 1]))
        out[i] = total
    # Full windows, vectorised per stream.  np.std over the rows of a
    # sliding window view reduces the same values in the same order as the
    # online tracker's per-window np.std, so the results are bit-identical;
    # streams are accumulated left to right exactly like the tracker.
    acc: Optional[np.ndarray] = None
    for col in cols:
        stds = np.std(sliding_window_view(col, w), axis=1)
        acc = stds if acc is None else acc + stds
    out[w - 1 :] = acc
    return out


@dataclass(frozen=True)
class ProfileGridResult:
    """Output of :func:`run_profile_grid`.

    Attributes
    ----------
    decisions:
        ``(n_obs, n_columns)`` int8 matrix: ``-1`` while the profile is
        initialising (the scalar path's ``None``), ``0`` normal, ``1``
        anomalous.
    thresholds:
        ``(n_obs, n_columns)`` threshold in force after each observation
        (NaN while initialising) — the per-column
        :attr:`OfflineMDResult.threshold_trace`.
    """

    decisions: np.ndarray
    thresholds: np.ndarray


def _scott_bandwidths(data: np.ndarray) -> np.ndarray:
    """Row-wise Scott bandwidths, replicating ``scott_bandwidth`` exactly."""
    n = data.shape[1]
    if n < 2:
        return np.ones(data.shape[0])
    sigma = np.std(data, axis=1, ddof=1)
    return np.where(sigma <= 0, 1.0, sigma * n ** (-1.0 / 5.0))


def _run_profile_grid_scalar(
    std_sums: np.ndarray, config: MDConfig, init_samples: int
) -> ProfileGridResult:
    """Column-by-column :class:`NormalProfile` drive (general fallback)."""
    n, n_cols = std_sums.shape
    decisions = np.full((n, n_cols), -1, dtype=np.int8)
    thresholds = np.full((n, n_cols), np.nan)
    for c in range(n_cols):
        profile = NormalProfile(config, init_samples)
        for i in range(n):
            anomalous = profile.observe(float(std_sums[i, c]))
            if profile.threshold is not None:
                thresholds[i, c] = profile.threshold
            if anomalous is not None:
                decisions[i, c] = 1 if anomalous else 0
    return ProfileGridResult(decisions=decisions, thresholds=thresholds)


def run_profile_grid(
    std_sums: np.ndarray, config: Optional[MDConfig] = None, init_samples: int = 2
) -> ProfileGridResult:
    """Advance Algorithm 1's normal profile over many ``s_t`` columns at once.

    Parameters
    ----------
    std_sums:
        ``(n_obs, n_columns)`` matrix of standard-deviation sums; each
        column is an independent profile chain (a sensor subset, a day...).
    config:
        MD parameters.
    init_samples:
        Number of observations of the installation phase (the scalar path's
        ``NormalProfile(config, init_samples)``).

    Per column this produces exactly the decisions and thresholds of
    feeding the values one by one to :meth:`NormalProfile.observe`: the
    initialisation KDE, the batched accept/reject updates and the
    warm-started Newton quantile solve all replicate the scalar arithmetic
    bit for bit (both paths share :func:`~repro.ml.kde.mixture_quantiles`).
    """
    cfg = config if config is not None else MDConfig()
    if init_samples < 2:
        raise ValueError("init_samples must be >= 2")
    std_sums = np.asarray(std_sums, dtype=float)
    if std_sums.ndim == 1:
        # A plain s_t series is one profile chain, not n one-observation
        # columns.
        std_sums = std_sums[:, np.newaxis]
    std_sums = np.ascontiguousarray(std_sums)
    if cfg.batch_size > init_samples:
        # The first accepted update would grow the KDE data window from
        # init_samples to batch_size at column-dependent times, breaking the
        # rectangular lockstep state; fall back to the reference drive.
        return _run_profile_grid_scalar(std_sums, cfg, init_samples)
    n, n_cols = std_sums.shape
    decisions = np.full((n, n_cols), -1, dtype=np.int8)
    thresholds = np.full((n, n_cols), np.nan)
    n0 = init_samples
    if n < n0:
        return ProfileGridResult(decisions=decisions, thresholds=thresholds)

    q = 100.0 - cfg.alpha
    # Initial profile: the first n0 observations of every column.  The KDE
    # windows are mutated in place as batches are accepted, so this must be
    # a real copy, never a view of the caller's matrix.
    data = std_sums[:n0].T.copy()
    bandwidths = _scott_bandwidths(data)
    th = mixture_quantiles(data, bandwidths, q)
    thresholds[n0 - 1] = th

    b = cfg.batch_size
    keep = data.shape[1] - b  # drop_oldest = len(batch) = b on every update
    start = n0
    while start < n:
        end = min(start + b, n)
        segment = std_sums[start:end]
        flags = segment >= th[None, :]
        decisions[start:end] = flags
        thresholds[start:end] = th[None, :]
        if end - start == b:
            anomalous_frac = np.count_nonzero(flags, axis=0) / float(b)
            accept = anomalous_frac < cfg.tau
            if accept.any():
                idx = np.flatnonzero(accept)
                # Slide the accepted columns' KDE windows: drop the oldest
                # batch_size values, append the new batch (GaussianKDE.updated).
                data[idx, :keep] = data[idx, b:]
                data[idx, keep:] = segment[:, idx].T
                updated = np.ascontiguousarray(data[idx])
                new_h = _scott_bandwidths(updated)
                bandwidths[idx] = new_h
                # Warm-start the accepted columns from their previous
                # thresholds, exactly like NormalProfile._rebuild_threshold.
                th[idx] = mixture_quantiles(updated, new_h, q, x0=th[idx])
                # The scalar path updates the threshold while observing the
                # batch's last value, so the trace shows the new threshold
                # there already.
                thresholds[end - 1] = th
        start = end
    return ProfileGridResult(decisions=decisions, thresholds=thresholds)


def variation_windows_from_flags(
    times: np.ndarray, anomalous: np.ndarray, merge_gap_s: float
) -> Tuple[VariationWindow, ...]:
    """Variation windows from a boolean anomaly series.

    Replicates the scalar window bookkeeping: a window spans from the first
    anomalous instant of a run to its last, and two runs merge unless some
    non-anomalous observation between them arrived more than ``merge_gap_s``
    after the earlier run's last anomalous instant.
    """
    idx = np.flatnonzero(anomalous)
    if idx.size == 0:
        return ()
    # The scalar loop closes a window at the first non-anomalous t with
    # t - last_anomalous > gap; between consecutive anomalous indices the
    # largest such t is the one right before the next anomalous index.
    gap_exceeded = times[idx[1:] - 1] - times[idx[:-1]] > merge_gap_s
    split = (idx[1:] > idx[:-1] + 1) & gap_exceeded
    bounds = np.flatnonzero(split) + 1
    starts = np.concatenate([[0], bounds])
    ends = np.concatenate([bounds - 1, [idx.size - 1]])
    return tuple(
        VariationWindow(float(times[idx[s]]), float(times[idx[e]]))
        for s, e in zip(starts, ends)
    )


def window_duration_series(
    times: np.ndarray, anomalous: np.ndarray, merge_gap_s: float
) -> np.ndarray:
    """Per-step ``dW_t`` as the online :class:`MovementDetector` reports it.

    For every timestep: the duration of the currently open variation window
    (time since the open window's first anomalous instant), or 0 when no
    window is open.  A window stays open after its last anomalous instant
    until an observation arrives more than ``merge_gap_s`` later.
    """
    n = times.shape[0]
    out = np.zeros(n)
    idx = np.flatnonzero(anomalous)
    if idx.size == 0:
        return out
    gap_exceeded = times[idx[1:] - 1] - times[idx[:-1]] > merge_gap_s
    split = (idx[1:] > idx[:-1] + 1) & gap_exceeded
    group = np.concatenate([[0], np.cumsum(split)])
    first_of_group = idx[np.concatenate([[0], np.flatnonzero(split) + 1])]
    group_start_t = times[first_of_group]
    # Most recent anomalous index at or before each step.
    prev = np.searchsorted(idx, np.arange(n), side="right") - 1
    has_prev = prev >= 0
    prev_clipped = np.clip(prev, 0, None)
    last_anom_t = times[idx[prev_clipped]]
    is_open = has_prev & (times - last_anom_t <= merge_gap_s)
    out[is_open] = times[is_open] - group_start_t[group[prev_clipped[is_open]]]
    return out


def detect_offline(
    trace: RssiTrace,
    config: Optional[MDConfig] = None,
    *,
    precomputed: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    detector: Optional[object] = None,
) -> OfflineMDResult:
    """Run Algorithm 1 over a recorded trace (columnar fast path).

    Produces output bit-identical to :func:`detect_offline_scalar`, which
    remains the readable per-observation reference.

    Parameters
    ----------
    trace:
        The recorded multi-stream RSSI trace.
    config:
        MD parameters.
    precomputed:
        Optionally, a ``(times, std_sums)`` pair already computed with
        :func:`rolling_std_sum` — the per-sensor-count sweeps reuse it to
        avoid recomputing the rolling statistics.
    detector:
        A detector-zoo member (``repro.detectors``) whose ``offline_grid``
        replaces the KDE profile engine; ``None`` keeps the paper's
        detector, bit-identical to the scalar reference.
    """
    cfg = config if config is not None else MDConfig()
    times, std_sums, init_samples = _offline_series(trace, cfg, precomputed)
    if detector is None:
        grid = run_profile_grid(std_sums[:, np.newaxis], cfg, init_samples)
    else:
        grid = detector.offline_grid(std_sums[:, np.newaxis], cfg, init_samples)
    return OfflineMDResult(
        times=times,
        std_sums=std_sums,
        windows=variation_windows_from_flags(
            times, grid.decisions[:, 0] == 1, cfg.merge_gap_s
        ),
        threshold_trace=grid.thresholds[:, 0],
    )


def _offline_series(
    trace: RssiTrace,
    cfg: MDConfig,
    precomputed: Optional[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Shared preamble of the offline detectors: ``s_t`` series + init size."""
    if precomputed is not None:
        times, std_sums = precomputed
    else:
        rate = 1.0 / trace.sample_interval
        window_samples = max(int(round(cfg.std_window_s * rate)), 2)
        times, std_sums = rolling_std_sum(trace, window_samples)
    if times.shape[0] < 2:
        raise ValueError("not enough samples for offline MD")
    rate = 1.0 / float(np.median(np.diff(times)))
    init_samples = max(int(round(cfg.profile_init_s * rate)), 2)
    return times, std_sums, init_samples


def detect_offline_scalar(
    trace: RssiTrace,
    config: Optional[MDConfig] = None,
    *,
    precomputed: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> OfflineMDResult:
    """Per-observation reference implementation of :func:`detect_offline`.

    Drives :class:`NormalProfile` one value at a time, exactly like the
    online detector; the equivalence tests pin :func:`detect_offline`
    against it.
    """
    cfg = config if config is not None else MDConfig()
    times, std_sums, init_samples = _offline_series(trace, cfg, precomputed)
    profile = NormalProfile(cfg, init_samples)

    thresholds = np.full(times.shape[0], np.nan)
    windows: List[VariationWindow] = []
    window_start: Optional[float] = None
    last_anomalous: Optional[float] = None

    for i, (t, s_t) in enumerate(zip(times, std_sums)):
        anomalous = profile.observe(float(s_t))
        thresholds[i] = profile.threshold if profile.threshold is not None else np.nan
        if anomalous is None:
            continue
        if anomalous:
            if window_start is None:
                window_start = float(t)
            last_anomalous = float(t)
        else:
            if (
                window_start is not None
                and last_anomalous is not None
                and (t - last_anomalous) > cfg.merge_gap_s
            ):
                windows.append(VariationWindow(window_start, last_anomalous))
                window_start = None
                last_anomalous = None
    if window_start is not None and last_anomalous is not None:
        windows.append(VariationWindow(window_start, last_anomalous))

    return OfflineMDResult(
        times=times,
        std_sums=std_sums,
        windows=tuple(windows),
        threshold_trace=thresholds,
    )

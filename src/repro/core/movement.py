"""Movement Detection (MD) module — Algorithm 1 of the paper.

MD watches the per-stream RSSI fluctuation level.  At every time step it
computes the *sum over streams of the standard deviation of the last ``d``
seconds of measurements* (``s_t``).  A Gaussian-KDE profile of ``s_t`` built
during a quiet initialisation phase defines "normal"; observations above the
``(100 - alpha)``-th percentile of the profile CDF are anomalous.  The
profile is refreshed in batches of ``b`` values whenever a batch contains
few enough anomalous values (fraction below ``tau``), so it tracks slow
changes of the radio environment.

Contiguous anomalous reports form *variation windows*; windows lasting at
least ``t_delta`` trigger system decisions (handled by the controller).

Two entry points:

* :class:`MovementDetector` — the online, sample-by-sample detector used by
  the live system,
* :func:`detect_offline` — a vectorised offline run over a recorded
  :class:`~repro.radio.trace.RssiTrace`, used by the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ml.kde import GaussianKDE
from ..radio.trace import RssiTrace, StreamBuffer
from .config import MDConfig
from .windows import VariationWindow

__all__ = [
    "StdSumTracker",
    "NormalProfile",
    "MovementDetector",
    "OfflineMDResult",
    "rolling_std_sum",
    "detect_offline",
]


class StdSumTracker:
    """Maintains the per-stream sliding windows and their std-dev sum.

    Parameters
    ----------
    stream_ids:
        The monitored streams.
    window_samples:
        Number of samples of the sliding window (``d`` seconds times the
        sampling rate).
    """

    def __init__(self, stream_ids: Sequence[str], window_samples: int) -> None:
        if window_samples < 2:
            raise ValueError("window_samples must be >= 2")
        self._buffer = StreamBuffer(stream_ids, maxlen=window_samples)
        self._window_samples = window_samples

    @property
    def window_samples(self) -> int:
        return self._window_samples

    def update(self, sample: Mapping[str, float]) -> Optional[float]:
        """Add one multi-stream sample; return the current ``s_t``.

        Returns ``None`` until at least two samples per stream are buffered
        (a standard deviation needs two points).
        """
        self._buffer.append(sample)
        if self._buffer.fill_level() < 2:
            return None
        total = 0.0
        for sid in self._buffer.stream_ids:
            total += float(np.std(self._buffer.window(sid)))
        return total

    def reset(self) -> None:
        self._buffer.clear()


class NormalProfile:
    """The KDE-based normal profile of ``s_t`` with batch updates.

    Implements the profile part of Algorithm 1: initialisation from a quiet
    period, the ``(100 - alpha)``-th percentile threshold, and the batch
    update that discards batches containing too many anomalous values.
    """

    def __init__(self, config: MDConfig, init_samples: int) -> None:
        if init_samples < 2:
            raise ValueError("init_samples must be >= 2")
        self._config = config
        self._init_samples = init_samples
        self._init_buffer: List[float] = []
        self._kde: Optional[GaussianKDE] = None
        self._threshold: Optional[float] = None
        self._batch: List[float] = []

    # ------------------------------------------------------------------ #
    @property
    def is_ready(self) -> bool:
        """Whether the initial profile has been built."""
        return self._kde is not None

    @property
    def threshold(self) -> Optional[float]:
        """Current anomaly threshold (``None`` until ready)."""
        return self._threshold

    @property
    def kde(self) -> Optional[GaussianKDE]:
        return self._kde

    def _rebuild_threshold(self) -> None:
        assert self._kde is not None
        self._threshold = self._kde.percentile(100.0 - self._config.alpha)

    def observe(self, s_t: float) -> Optional[bool]:
        """Feed one ``s_t`` value; return whether it is anomalous.

        Returns ``None`` while the profile is still initialising (the system
        makes no decisions during the installation phase).
        """
        if not self.is_ready:
            self._init_buffer.append(float(s_t))
            if len(self._init_buffer) >= self._init_samples:
                self._kde = GaussianKDE(self._init_buffer)
                self._rebuild_threshold()
            return None

        assert self._threshold is not None
        anomalous = bool(s_t >= self._threshold)

        # Batch-update bookkeeping (Algorithm 1 lines 6, 10-15).
        self._batch.append(float(s_t))
        if len(self._batch) >= self._config.batch_size:
            anomalous_in_batch = sum(
                1 for v in self._batch if v >= self._threshold
            )
            if anomalous_in_batch / len(self._batch) < self._config.tau:
                assert self._kde is not None
                self._kde = self._kde.updated(
                    self._batch, drop_oldest=len(self._batch)
                )
                self._rebuild_threshold()
            self._batch = []
        return anomalous


@dataclass(frozen=True)
class OfflineMDResult:
    """Everything an offline MD run produces.

    Attributes
    ----------
    times:
        Timestamps at which ``s_t`` was defined (the first window's worth of
        samples has no value).
    std_sums:
        The ``s_t`` series (same length as ``times``).
    windows:
        All variation windows, regardless of duration (the ``t_delta``
        filter is applied later by the matching / controller logic).
    threshold_trace:
        The anomaly threshold in force at each time step (it moves as the
        profile updates).
    """

    times: np.ndarray
    std_sums: np.ndarray
    windows: Tuple[VariationWindow, ...]
    threshold_trace: np.ndarray

    def windows_at_least(self, min_duration_s: float) -> List[VariationWindow]:
        """Variation windows lasting at least ``min_duration_s``."""
        return [w for w in self.windows if w.duration >= min_duration_s]


class MovementDetector:
    """Online MD: consumes multi-stream RSSI samples, emits variation windows.

    Parameters
    ----------
    stream_ids:
        Monitored stream ids.
    config:
        MD parameters.
    sample_rate_hz:
        Sampling rate of the incoming RSSI samples.
    """

    def __init__(
        self,
        stream_ids: Sequence[str],
        config: Optional[MDConfig] = None,
        sample_rate_hz: float = 4.0,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        self._config = config if config is not None else MDConfig()
        self._rate = sample_rate_hz
        window_samples = max(int(round(self._config.std_window_s * sample_rate_hz)), 2)
        init_samples = max(int(round(self._config.profile_init_s * sample_rate_hz)), 2)
        self._tracker = StdSumTracker(stream_ids, window_samples)
        self._profile = NormalProfile(self._config, init_samples)
        self._window_start: Optional[float] = None
        self._last_anomalous_t: Optional[float] = None
        self._completed: List[VariationWindow] = []
        self._last_t: Optional[float] = None

    # ------------------------------------------------------------------ #
    @property
    def config(self) -> MDConfig:
        return self._config

    @property
    def profile(self) -> NormalProfile:
        return self._profile

    @property
    def completed_windows(self) -> List[VariationWindow]:
        """Variation windows that have already closed."""
        return list(self._completed)

    def current_window(self, t: float) -> Optional[VariationWindow]:
        """The variation window currently open at time ``t`` (if any)."""
        if self._window_start is None:
            return None
        return VariationWindow(self._window_start, t)

    def current_window_duration(self, t: float) -> float:
        """``dW_t``: duration of the most recent variation window at ``t``.

        Zero when no window is open — the quantity driving the controller's
        state transitions (paper Section IV-G).
        """
        if self._window_start is None:
            return 0.0
        return max(t - self._window_start, 0.0)

    # ------------------------------------------------------------------ #
    def process(self, t: float, sample: Mapping[str, float]) -> Optional[bool]:
        """Consume one sample; return the anomaly decision (or ``None``).

        ``None`` means MD is still initialising (either the std window or
        the normal profile is not yet full).
        """
        if self._last_t is not None and t <= self._last_t:
            raise ValueError("samples must arrive in strictly increasing time order")
        self._last_t = t

        s_t = self._tracker.update(sample)
        if s_t is None:
            return None
        anomalous = self._profile.observe(s_t)
        if anomalous is None:
            return None

        gap = self._config.merge_gap_s
        if anomalous:
            if self._window_start is None:
                self._window_start = t
            self._last_anomalous_t = t
        else:
            if (
                self._window_start is not None
                and self._last_anomalous_t is not None
                and (t - self._last_anomalous_t) > gap
            ):
                self._completed.append(
                    VariationWindow(self._window_start, self._last_anomalous_t)
                )
                self._window_start = None
                self._last_anomalous_t = None
        return anomalous

    def finalize(self, t: float) -> None:
        """Close any open variation window at the end of a run."""
        if self._window_start is not None and self._last_anomalous_t is not None:
            self._completed.append(
                VariationWindow(self._window_start, self._last_anomalous_t)
            )
            self._window_start = None
            self._last_anomalous_t = None


# ---------------------------------------------------------------------- #
# Offline (vectorised) path
# ---------------------------------------------------------------------- #
def rolling_std_sum(trace: RssiTrace, window_samples: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised ``s_t`` series of a recorded trace.

    Returns ``(times, std_sums)`` where the series starts at the first index
    with a full window.
    """
    if window_samples < 2:
        raise ValueError("window_samples must be >= 2")
    n = trace.n_samples
    if n < window_samples:
        raise ValueError("trace shorter than the std window")
    matrix = np.column_stack([trace.streams[sid] for sid in trace.stream_ids])
    # Rolling mean/variance via cumulative sums.
    csum = np.cumsum(matrix, axis=0)
    csum2 = np.cumsum(matrix ** 2, axis=0)
    w = window_samples
    sum_w = csum[w - 1 :].copy()
    sum_w[1:] -= csum[: n - w]
    sum2_w = csum2[w - 1 :].copy()
    sum2_w[1:] -= csum2[: n - w]
    mean = sum_w / w
    var = np.maximum(sum2_w / w - mean ** 2, 0.0)
    std_sum = np.sqrt(var).sum(axis=1)
    return trace.times[w - 1 :], std_sum


def detect_offline(
    trace: RssiTrace,
    config: Optional[MDConfig] = None,
    *,
    precomputed: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> OfflineMDResult:
    """Run Algorithm 1 over a recorded trace.

    Parameters
    ----------
    trace:
        The recorded multi-stream RSSI trace.
    config:
        MD parameters.
    precomputed:
        Optionally, a ``(times, std_sums)`` pair already computed with
        :func:`rolling_std_sum` — the per-sensor-count sweeps reuse it to
        avoid recomputing the rolling statistics.
    """
    cfg = config if config is not None else MDConfig()
    if precomputed is not None:
        times, std_sums = precomputed
    else:
        rate = 1.0 / trace.sample_interval
        window_samples = max(int(round(cfg.std_window_s * rate)), 2)
        times, std_sums = rolling_std_sum(trace, window_samples)
    if times.shape[0] < 2:
        raise ValueError("not enough samples for offline MD")

    rate = 1.0 / float(np.median(np.diff(times)))
    init_samples = max(int(round(cfg.profile_init_s * rate)), 2)
    profile = NormalProfile(cfg, init_samples)

    thresholds = np.full(times.shape[0], np.nan)
    windows: List[VariationWindow] = []
    window_start: Optional[float] = None
    last_anomalous: Optional[float] = None

    for i, (t, s_t) in enumerate(zip(times, std_sums)):
        anomalous = profile.observe(float(s_t))
        thresholds[i] = profile.threshold if profile.threshold is not None else np.nan
        if anomalous is None:
            continue
        if anomalous:
            if window_start is None:
                window_start = float(t)
            last_anomalous = float(t)
        else:
            if (
                window_start is not None
                and last_anomalous is not None
                and (t - last_anomalous) > cfg.merge_gap_s
            ):
                windows.append(VariationWindow(window_start, last_anomalous))
                window_start = None
                last_anomalous = None
    if window_start is not None and last_anomalous is not None:
        windows.append(VariationWindow(window_start, last_anomalous))

    return OfflineMDResult(
        times=times,
        std_sums=std_sums,
        windows=tuple(windows),
        threshold_trace=thresholds,
    )

"""Security model: the decision tree of deauthentication outcomes.

When a user leaves their workstation at time ``t``, the paper's decision
tree (Figure 5) distinguishes three outcomes:

* **Case A** — MD detected the movement (true positive) and RE classified
  the sample correctly: the workstation is deauthenticated at
  ``t1 + t_delta`` (where ``t1`` is the variation-window start).
* **Case B** — MD detected the movement but RE misclassified it: the
  workstation is *not* deauthenticated by Rule 1, but Rule 2 puts it in the
  alert state and the screen saver locks it ``t_ID + t_ss`` seconds after
  the last input (taken, worst case, to be the departure instant ``t``).
* **Case C** — MD missed the movement entirely (false negative): only the
  baseline inactivity time-out ``T`` eventually deauthenticates, at
  ``t + T``.

This module classifies each departure event into its case and computes the
elapsed time between the user leaving and the deauthentication — the
security metric of Figures 9 and 10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..mobility.events import GroundTruthEvent
from .config import FadewichConfig
from .windows import VariationWindow

__all__ = [
    "DeauthCase",
    "DeauthOutcome",
    "classify_outcome",
    "deauthentication_curve",
]


class DeauthCase(enum.Enum):
    """The three leaves of the paper's decision tree (Figure 5)."""

    CORRECT = "A"
    MISCLASSIFIED = "B"
    MISSED = "C"


@dataclass(frozen=True)
class DeauthOutcome:
    """The deauthentication outcome of one departure event.

    Attributes
    ----------
    event:
        The departure.
    case:
        Which decision-tree leaf applied.
    elapsed_s:
        Seconds between the user leaving the workstation proximity and the
        deauthentication of that workstation.
    window:
        The matched variation window, if any.
    predicted_label:
        RE's prediction for the matched window, if any.
    """

    event: GroundTruthEvent
    case: DeauthCase
    elapsed_s: float
    window: Optional[VariationWindow] = None
    predicted_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.elapsed_s < 0:
            raise ValueError("elapsed_s must be non-negative")


def classify_outcome(
    event: GroundTruthEvent,
    matched_window: Optional[VariationWindow],
    predicted_label: Optional[str],
    config: FadewichConfig,
) -> DeauthOutcome:
    """Assign a departure event to its decision-tree case.

    Parameters
    ----------
    event:
        The departure (its ``time`` is the moment the user left the
        workstation proximity).
    matched_window:
        The variation window MD matched to the event, or ``None`` for a
        false negative.
    predicted_label:
        RE's classification of that window (ignored when ``matched_window``
        is ``None``).
    config:
        System configuration providing ``t_delta``, ``t_ID``, ``t_ss`` and
        the baseline time-out.
    """
    if matched_window is None:
        return DeauthOutcome(
            event=event, case=DeauthCase.MISSED, elapsed_s=config.timeout_s
        )
    if predicted_label is not None and predicted_label == event.workstation_id:
        deauth_time = matched_window.t_start + config.t_delta_s
        elapsed = max(deauth_time - event.time, 0.0)
        return DeauthOutcome(
            event=event,
            case=DeauthCase.CORRECT,
            elapsed_s=elapsed,
            window=matched_window,
            predicted_label=predicted_label,
        )
    return DeauthOutcome(
        event=event,
        case=DeauthCase.MISCLASSIFIED,
        elapsed_s=config.misclassification_delay_s,
        window=matched_window,
        predicted_label=predicted_label,
    )


def deauthentication_curve(
    outcomes: Sequence[DeauthOutcome],
    time_grid: Optional[np.ndarray] = None,
    max_time_s: float = 10.0,
    n_points: int = 101,
) -> tuple:
    """Proportion of workstations deauthenticated within each elapsed time.

    This is the quantity plotted in the paper's Figure 9.

    Parameters
    ----------
    outcomes:
        Deauthentication outcomes of all departure events.
    time_grid:
        Evaluation grid in seconds; generated from ``max_time_s`` and
        ``n_points`` when omitted.

    Returns
    -------
    (times, percent_deauthenticated)
        ``percent_deauthenticated[i]`` is the percentage of departures whose
        workstation was deauthenticated within ``times[i]`` seconds.
    """
    if time_grid is None:
        time_grid = np.linspace(0.0, max_time_s, n_points)
    else:
        time_grid = np.asarray(time_grid, dtype=float)
    if len(outcomes) == 0:
        return time_grid, np.zeros_like(time_grid)
    elapsed = np.asarray([o.elapsed_s for o in outcomes], dtype=float)
    percent = np.asarray(
        [100.0 * float(np.mean(elapsed <= t)) for t in time_grid]
    )
    return time_grid, percent


def case_counts(outcomes: Sequence[DeauthOutcome]) -> dict:
    """Histogram of decision-tree cases over a set of outcomes."""
    counts = {case: 0 for case in DeauthCase}
    for o in outcomes:
        counts[o.case] += 1
    return counts


def median_deauthentication_time(outcomes: Sequence[DeauthOutcome]) -> float:
    """Median elapsed deauthentication time across departures."""
    if not outcomes:
        raise ValueError("no outcomes provided")
    return float(np.median([o.elapsed_s for o in outcomes]))


def vulnerable_time_seconds(
    outcomes: Sequence[DeauthOutcome],
    absence_lookup=None,
) -> float:
    """Total time workstations spend unattended *and* authenticated.

    For each departure, the vulnerable interval lasts from the moment the
    user leaves until the deauthentication — capped by the user's absence
    duration when an ``absence_lookup`` callable (event -> absence seconds)
    is provided, since a returned user is no longer leaving the workstation
    unattended.

    This is the security indicator of the paper's Figure 13.
    """
    total = 0.0
    for o in outcomes:
        vulnerable = o.elapsed_s
        if absence_lookup is not None:
            absence = float(absence_lookup(o.event))
            vulnerable = min(vulnerable, absence)
        total += vulnerable
    return total

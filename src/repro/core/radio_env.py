"""Radio Environment (RE) module.

RE answers the question "who caused this variation window?".  From the RSSI
measurements observed in the first ``t_delta`` seconds of a variation
window it computes, per stream, the variance, the histogram entropy and the
autocorrelation (paper Section IV-D1), concatenates them into a sample, and
classifies the sample with a multi-class SVM into one of the labels
``w0`` ("somebody entered the office") or ``wi`` ("the user at workstation
``wi`` left").

The classifier is trained during the installation phase on samples labelled
automatically through KMA idle times (Section IV-D3); the offline
evaluation instead labels samples with the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ml.features import FeatureExtractor
from ..ml.multiclass import OneVsOneSVC
from ..ml.scaling import StandardScaler
from ..ml.validation import SVCFoldFitter
from ..radio.trace import RssiTrace
from ..simulation.dataset import LabeledSample, SampleDataset
from .config import REConfig
from .windows import VariationWindow

__all__ = ["RadioEnvironment", "RENotTrainedError"]


class RENotTrainedError(RuntimeError):
    """Raised when classification is requested before training."""


@dataclass
class RadioEnvironment:
    """The RE module: feature extraction + SVM classification.

    Parameters
    ----------
    stream_ids:
        The monitored streams, fixing the feature-vector layout.
    config:
        RE parameters.
    random_state:
        Seed forwarded to the SVM (tie-breaking only).
    """

    stream_ids: Sequence[str]
    config: Optional[REConfig] = None
    random_state: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.stream_ids) == 0:
            raise ValueError("RadioEnvironment requires at least one stream")
        cfg = self.config if self.config is not None else REConfig()
        self.config = cfg
        self._extractor = FeatureExtractor(
            stream_ids=tuple(self.stream_ids),
            entropy_bins=cfg.entropy_bins,
            ac_lag=cfg.autocorrelation_lag,
        )
        self._scaler: Optional[StandardScaler] = None
        self._classifier: Optional[OneVsOneSVC] = None

    # ------------------------------------------------------------------ #
    @property
    def extractor(self) -> FeatureExtractor:
        return self._extractor

    @property
    def feature_names(self) -> List[str]:
        return self._extractor.feature_names()

    @property
    def is_trained(self) -> bool:
        return self._classifier is not None

    # ------------------------------------------------------------------ #
    def extract_sample(
        self,
        trace: RssiTrace,
        window: VariationWindow,
        t_delta_s: float,
    ) -> np.ndarray:
        """Feature vector of the window ``[t1, t1 + t_delta]`` of a trace.

        Only the *initial* ``t_delta`` seconds of the variation window are
        used: the paper argues the beginning of the user's path is the most
        workstation-specific part (later parts converge towards the shared
        door).
        """
        if t_delta_s <= 0:
            raise ValueError("t_delta_s must be positive")
        windows = trace.window_at(window.t_start, window.t_start + t_delta_s)
        missing = [sid for sid in self.stream_ids if sid not in windows]
        if missing:
            raise KeyError(f"trace is missing streams: {missing}")
        n_points = windows[self.stream_ids[0]].shape[0]
        if n_points < 2:
            raise ValueError(
                "variation window contains fewer than 2 samples; "
                "check the sampling rate and t_delta"
            )
        return self._extractor.extract(
            {sid: windows[sid] for sid in self.stream_ids}
        )

    def make_sample(
        self,
        trace: RssiTrace,
        window: VariationWindow,
        t_delta_s: float,
        label: str,
        day_index: int = 0,
    ) -> LabeledSample:
        """A labelled sample for the given variation window."""
        return LabeledSample(
            features=self.extract_sample(trace, window, t_delta_s),
            label=label,
            time=window.t_start,
            day_index=day_index,
        )

    def empty_dataset(self) -> SampleDataset:
        """A dataset with this RE instance's feature layout."""
        return SampleDataset(feature_names=tuple(self.feature_names))

    # ------------------------------------------------------------------ #
    def fit(self, dataset: SampleDataset) -> "RadioEnvironment":
        """Train the classifier on a labelled sample dataset."""
        if len(dataset) == 0:
            raise ValueError("cannot train RE on an empty dataset")
        if tuple(dataset.feature_names) != tuple(self.feature_names):
            raise ValueError("dataset feature layout does not match this RE")
        X, y = dataset.to_arrays()
        return self.fit_arrays(X, y)

    def fit_arrays(self, X: np.ndarray, y: np.ndarray) -> "RadioEnvironment":
        """Train directly from arrays (used by the cross-validation loops)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] == 0:
            raise ValueError("cannot train RE on an empty dataset")
        self._scaler = StandardScaler().fit(X)
        cfg = self.config
        self._classifier = OneVsOneSVC(
            C=cfg.svm_c,
            kernel=cfg.svm_kernel,
            random_state=self.random_state,
        )
        self._classifier.fit(self._scaler.transform(X), np.asarray(y))
        return self

    def classify(self, features: np.ndarray) -> str:
        """Predict the label of one sample."""
        return self.classify_many(np.atleast_2d(features))[0]

    def classify_many(self, X: np.ndarray) -> List[str]:
        """Predict labels for a matrix of samples."""
        if self._classifier is None or self._scaler is None:
            raise RENotTrainedError("call fit() before classify()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        preds = self._classifier.predict(self._scaler.transform(X))
        return [str(p) for p in preds]

    def classify_window(
        self, trace: RssiTrace, window: VariationWindow, t_delta_s: float
    ) -> str:
        """Extract the sample for a window and classify it in one call."""
        return self.classify(self.extract_sample(trace, window, t_delta_s))

    def curve_fitter(self, shared_gram: bool = True) -> SVCFoldFitter:
        """The learning-curve fold fitter for this RE configuration.

        Used by the Figure 8 protocol: per (repeat, fold) the fitter fixes
        one :class:`~repro.ml.scaling.StandardScaler` and one kernel on the
        full training fold, then fits every training-size prefix on shared
        Gram views (``shared_gram=True``, the fast path) or on the raw rows
        with a fresh per-fit Gram (``shared_gram=False``, the retained
        bit-identical reference).

        Note the deliberate semantic difference from :meth:`fit_arrays`,
        which standardises and resolves the kernel per training subset:
        fold-level preprocessing is what makes the Gram matrix shareable
        across training sizes, scales the test fold consistently for every
        size, and gives all pairwise machines one common kernel.
        """
        cfg = self.config
        return SVCFoldFitter(
            C=cfg.svm_c,
            kernel=cfg.svm_kernel,
            random_state=self.random_state,
            shared_gram=shared_gram,
        )

    # ------------------------------------------------------------------ #
    def clone_untrained(self) -> "RadioEnvironment":
        """A fresh, untrained RE with the same configuration.

        Used by the cross-validation loops, which train one classifier per
        fold.
        """
        return RadioEnvironment(
            stream_ids=tuple(self.stream_ids),
            config=self.config,
            random_state=self.random_state,
        )

"""Baseline: inactivity time-out deauthentication.

The baseline FADEWICH is compared against (paper Sections V-B and
Appendix B) is the ubiquitous fixed time-out: a workstation idle for ``T``
seconds is deauthenticated.  Under the worst-case assumption that the
departing user's last input coincides with the moment they leave, every
departure leaves the workstation vulnerable for ``min(T, absence)`` seconds
and is an attack opportunity for both adversary types whenever ``T``
exceeds the adversary's reach delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..mobility.events import GroundTruthEvent
from .adversary import Adversary
from .security import DeauthCase, DeauthOutcome

__all__ = ["TimeoutBaseline"]


@dataclass(frozen=True)
class TimeoutBaseline:
    """Fixed inactivity time-out deauthentication.

    Parameters
    ----------
    timeout_s:
        The time-out ``T`` (the paper's comparison uses 300 seconds).
    """

    timeout_s: float = 300.0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    def outcomes(self, departures: Sequence[GroundTruthEvent]) -> List[DeauthOutcome]:
        """Deauthentication outcomes of all departures under the time-out.

        Every departure is deauthenticated exactly ``T`` seconds after the
        user's last input (assumed to be the departure instant); the
        decision-tree case is "missed" since no detection is involved.
        """
        return [
            DeauthOutcome(event=e, case=DeauthCase.MISSED, elapsed_s=self.timeout_s)
            for e in departures
        ]

    def attack_opportunity_count(
        self, departures: Sequence[GroundTruthEvent], adversary: Adversary
    ) -> int:
        """Number of departures the adversary can exploit under the time-out.

        With any realistic ``T`` (tens of seconds or more) the time-out
        always exceeds the adversary's reach delay plus the short walk to
        the door, so every departure is exploitable — the paper's "63 out
        of 63" observation.
        """
        count = 0
        for e in departures:
            exit_time = e.exit_time if e.exit_time is not None else e.time
            arrival = adversary.arrival_time(exit_time)
            deauth_time = e.time + self.timeout_s
            if deauth_time > arrival:
                count += 1
        return count

    def vulnerable_time_seconds(
        self,
        departures: Sequence[GroundTruthEvent],
        absences_s: Sequence[float],
    ) -> float:
        """Total unattended-and-authenticated time under the time-out.

        Parameters
        ----------
        departures:
            The departure events.
        absences_s:
            How long each departing user stayed away (same order); the
            vulnerable interval of a departure is ``min(T, absence)``.
        """
        if len(departures) != len(absences_s):
            raise ValueError("departures and absences must have equal length")
        total = 0.0
        for absence in absences_s:
            if absence < 0:
                raise ValueError("absence durations must be non-negative")
            total += min(self.timeout_s, float(absence))
        return total

    @property
    def user_cost_seconds(self) -> float:
        """Usability cost of the time-out approach.

        The time-out never interrupts a present user (it only fires after
        prolonged inactivity), so its user cost is zero — the left-most
        point of Figure 13.
        """
        return 0.0

"""Evaluation pipeline: from a recorded campaign to the paper's metrics.

The analysis modules (one per table / figure) all share the same processing
chain, which mirrors the paper's Section VII-C procedure:

1. restrict the recorded traces to the streams of the chosen sensor subset,
2. run offline MD over every day (:func:`~repro.core.movement.detect_offline`),
3. match the resulting variation windows against the ground-truth events
   (TP / FP / FN),
4. extract one labelled RE sample per true positive,
5. cross-validate the RE classifier over those samples,
6. combine MD matches and RE predictions into per-departure
   deauthentication outcomes (cases A / B / C).

This module implements those steps once; the analysis modules compose them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..mobility.events import EventKind, GroundTruthEvent
from ..ml.metrics import DetectionCounts
from ..ml.validation import stratified_kfold_indices
from ..radio.links import enumerate_stream_ids
from ..radio.trace import RssiTrace
from ..simulation.collector import CampaignRecording, DayRecording
from ..simulation.dataset import LabeledSample, SampleDataset
from .config import FadewichConfig
from .movement import OfflineMDResult, detect_offline
from .radio_env import RadioEnvironment
from .security import DeauthOutcome, classify_outcome
from .windows import MatchResult, VariationWindow, match_windows

__all__ = [
    "sensor_subset",
    "streams_for_sensors",
    "DayEvaluation",
    "MDEvaluation",
    "evaluate_md",
    "build_sample_dataset",
    "cross_validated_predictions",
    "departure_outcomes",
]


def sensor_subset(all_sensor_ids: Sequence[str], k: int) -> List[str]:
    """The first ``k`` sensors of a deployment, in id order.

    The paper sweeps the number of sensors from 3 to 9 (Table III and
    Figures 7-10); subsets are taken in the deployment's enumeration order.
    """
    ids = list(all_sensor_ids)
    if k < 2:
        raise ValueError("a subset needs at least 2 sensors")
    if k > len(ids):
        raise ValueError(f"requested {k} sensors but only {len(ids)} exist")
    return ids[:k]


def streams_for_sensors(sensor_ids: Sequence[str]) -> List[str]:
    """All directed stream ids among the given sensors."""
    return enumerate_stream_ids(list(sensor_ids))


@dataclass
class DayEvaluation:
    """MD evaluation artefacts of one recorded day."""

    day_index: int
    trace: RssiTrace
    md_result: OfflineMDResult
    match: MatchResult
    events: List[GroundTruthEvent]

    @property
    def counts(self) -> DetectionCounts:
        return self.match.counts


@dataclass
class MDEvaluation:
    """MD evaluation of a whole campaign for one sensor subset."""

    sensor_ids: Tuple[str, ...]
    t_delta_s: float
    days: List[DayEvaluation] = field(default_factory=list)

    @property
    def counts(self) -> DetectionCounts:
        """Aggregate TP/FP/FN over all days."""
        total = DetectionCounts(0, 0, 0)
        for day in self.days:
            total = total + day.counts
        return total

    def rematch(self, t_delta_s: float, slack_s: float) -> "MDEvaluation":
        """Re-score the same MD windows with a different ``t_delta``.

        MD's variation windows do not depend on ``t_delta`` (it is only a
        filter), so sweeping ``t_delta`` (Figure 7) reuses the detection
        results and merely re-runs the matching step.
        """
        new_days = []
        for day in self.days:
            match = match_windows(
                day.md_result.windows,
                day.events,
                slack_s,
                min_duration_s=t_delta_s,
            )
            new_days.append(
                DayEvaluation(
                    day_index=day.day_index,
                    trace=day.trace,
                    md_result=day.md_result,
                    match=match,
                    events=day.events,
                )
            )
        return MDEvaluation(
            sensor_ids=self.sensor_ids, t_delta_s=t_delta_s, days=new_days
        )


def evaluate_md(
    recording: CampaignRecording,
    config: FadewichConfig,
    sensor_ids: Sequence[str],
) -> MDEvaluation:
    """Run offline MD over every recorded day for one sensor subset."""
    stream_ids = streams_for_sensors(sensor_ids)
    evaluation = MDEvaluation(
        sensor_ids=tuple(sensor_ids), t_delta_s=config.t_delta_s
    )
    for day in recording.days:
        trace = day.trace.restricted_to(stream_ids)
        md_result = detect_offline(trace, config.md)
        scored_events = [
            e
            for e in day.events
            if e.kind in (EventKind.DEPARTURE, EventKind.ENTRY)
        ]
        match = match_windows(
            md_result.windows,
            scored_events,
            config.true_window_slack_s,
            min_duration_s=config.t_delta_s,
        )
        evaluation.days.append(
            DayEvaluation(
                day_index=day.day_index,
                trace=trace,
                md_result=md_result,
                match=match,
                events=scored_events,
            )
        )
    return evaluation


def build_sample_dataset(
    evaluation: MDEvaluation,
    config: FadewichConfig,
    *,
    random_state: Optional[int] = None,
) -> Tuple[RadioEnvironment, SampleDataset]:
    """Extract one labelled RE sample per true positive of an MD evaluation.

    Samples are labelled with the ground truth (the offline analogue of the
    paper's KMA-based auto-labelling).  Returns the (untrained) RE instance
    whose feature layout matches the dataset, plus the dataset itself.
    """
    stream_ids = streams_for_sensors(evaluation.sensor_ids)
    re_module = RadioEnvironment(
        stream_ids=stream_ids, config=config.re, random_state=random_state
    )
    dataset = re_module.empty_dataset()
    for day in evaluation.days:
        for window, true_window in day.match.true_positive_pairs:
            label = true_window.event.label
            if label is None:
                continue
            dataset.add(
                re_module.make_sample(
                    day.trace,
                    window,
                    config.t_delta_s,
                    label=label,
                    day_index=day.day_index,
                )
            )
    return re_module, dataset


def cross_validated_predictions(
    re_module: RadioEnvironment,
    dataset: SampleDataset,
    *,
    n_folds: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, str]:
    """Out-of-fold RE predictions for every sample of the dataset.

    Follows the paper's protocol: the samples are split into ``n_folds``
    stratified folds; for each fold the classifier is trained on the other
    folds and predicts the held-out samples.  Returns a mapping from sample
    index (position in ``dataset.samples``) to the predicted label.
    """
    if len(dataset) == 0:
        return {}
    if rng is None:
        rng = np.random.default_rng()
    X, y = dataset.to_arrays()
    predictions: Dict[int, str] = {}
    n_classes = np.unique(y).shape[0]
    if len(dataset) < n_folds or n_classes < 2:
        # Too few samples to cross-validate: train and predict in-sample
        # (the small-sensor-count regimes of the paper hit this too).
        fitted = re_module.clone_untrained().fit_arrays(X, y)
        for i, label in enumerate(fitted.classify_many(X)):
            predictions[i] = label
        return predictions
    for train_idx, test_idx in stratified_kfold_indices(y, n_folds, rng):
        if np.unique(y[train_idx]).shape[0] < 2 or train_idx.size == 0:
            fallback = str(np.unique(y[train_idx])[0]) if train_idx.size else str(y[0])
            for i in test_idx:
                predictions[int(i)] = fallback
            continue
        fold_re = re_module.clone_untrained().fit_arrays(X[train_idx], y[train_idx])
        for i, label in zip(test_idx, fold_re.classify_many(X[test_idx])):
            predictions[int(i)] = label
    return predictions


def departure_outcomes(
    evaluation: MDEvaluation,
    dataset: SampleDataset,
    predictions: Dict[int, str],
    config: FadewichConfig,
) -> List[DeauthOutcome]:
    """Per-departure deauthentication outcomes (decision-tree cases A/B/C).

    Matches each departure event to its MD variation window (if any) and the
    out-of-fold RE prediction of the corresponding sample, then classifies
    the outcome with :func:`~repro.core.security.classify_outcome`.
    """
    # Index predictions by (day_index, window start time).
    prediction_by_key: Dict[Tuple[int, float], str] = {}
    for idx, label in predictions.items():
        sample = dataset.samples[idx]
        prediction_by_key[(sample.day_index, round(sample.time, 6))] = label

    outcomes: List[DeauthOutcome] = []
    for day in evaluation.days:
        matched: Dict[int, Tuple[VariationWindow, str]] = {}
        for window, true_window in day.match.true_positive_pairs:
            key = (day.day_index, round(window.t_start, 6))
            predicted = prediction_by_key.get(key)
            matched[id(true_window.event)] = (window, predicted)
        for event in day.events:
            if event.kind is not EventKind.DEPARTURE:
                continue
            if id(event) in matched:
                window, predicted = matched[id(event)]
                outcomes.append(
                    classify_outcome(event, window, predicted, config)
                )
            else:
                outcomes.append(classify_outcome(event, None, None, config))
    return outcomes

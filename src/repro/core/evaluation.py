"""Evaluation pipeline: from a recorded campaign to the paper's metrics.

The analysis modules (one per table / figure) all share the same processing
chain, which mirrors the paper's Section VII-C procedure:

1. restrict the recorded traces to the streams of the chosen sensor subset,
2. run offline MD over every day (:func:`~repro.core.movement.detect_offline`),
3. match the resulting variation windows against the ground-truth events
   (TP / FP / FN),
4. extract one labelled RE sample per true positive,
5. cross-validate the RE classifier over those samples,
6. combine MD matches and RE predictions into per-departure
   deauthentication outcomes (cases A / B / C).

This module implements those steps once; the analysis modules compose them.

Scalar references and the columnar fast paths
---------------------------------------------

Every hot step of the pipeline exists twice, under a strict contract:

* :func:`evaluate_md` / :func:`evaluate_md_grid` are the columnar fast
  paths: one shared rolling-window feature matrix per recorded day
  (:class:`CampaignStdFeatures`), sliced per sensor subset and pushed
  through the lockstep profile engine
  (:func:`~repro.core.movement.run_profile_grid`), all sensor counts and
  days advancing together.  :func:`evaluate_md_scalar` is the retained
  per-observation reference: it restricts the trace, recomputes the
  rolling statistics and drives
  :func:`~repro.core.movement.detect_offline_scalar` per sensor count.
* :func:`cross_validated_predictions` builds its folds as arrays
  (:func:`~repro.ml.validation.stratified_fold_assignments`) and fits on
  contiguous index views; :func:`cross_validated_predictions_scalar` is
  the retained per-fold-list reference.

The fast paths must stay **bit-identical** to their scalar references —
``tests/test_analysis_equivalence.py`` pins this across seeds, layouts and
sensor counts, and ``tests/test_golden_analysis.py`` pins the paper-facing
numbers they produce.  Change either side only with those suites green (or
consciously re-pinned in the same commit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..features.rolling import RollingStdExtractor
from ..features.store import FeatureStore
from ..mobility.events import EventKind, GroundTruthEvent
from ..ml.metrics import DetectionCounts
from ..ml.validation import stratified_fold_assignments, stratified_kfold_indices
from ..radio.links import enumerate_stream_ids
from ..radio.trace import RssiTrace
from ..simulation.collector import CampaignRecording, DayRecording
from ..simulation.dataset import LabeledSample, SampleDataset
from .config import FadewichConfig
from .movement import (
    OfflineMDResult,
    detect_offline,
    detect_offline_scalar,
    run_profile_grid,
    variation_windows_from_flags,
)
from .radio_env import RadioEnvironment
from .security import DeauthOutcome, classify_outcome
from .windows import MatchResult, VariationWindow, match_windows

__all__ = [
    "sensor_subset",
    "streams_for_sensors",
    "DayEvaluation",
    "MDEvaluation",
    "CampaignStdFeatures",
    "evaluate_md",
    "evaluate_md_scalar",
    "evaluate_md_grid",
    "build_sample_dataset",
    "cross_validated_predictions",
    "cross_validated_predictions_scalar",
    "departure_outcomes",
]


def sensor_subset(all_sensor_ids: Sequence[str], k: int) -> List[str]:
    """The first ``k`` sensors of a deployment, in id order.

    The paper sweeps the number of sensors from 3 to 9 (Table III and
    Figures 7-10); subsets are taken in the deployment's enumeration order.
    """
    ids = list(all_sensor_ids)
    if k < 2:
        raise ValueError("a subset needs at least 2 sensors")
    if k > len(ids):
        raise ValueError(f"requested {k} sensors but only {len(ids)} exist")
    return ids[:k]


def streams_for_sensors(sensor_ids: Sequence[str]) -> List[str]:
    """All directed stream ids among the given sensors."""
    return enumerate_stream_ids(list(sensor_ids))


@dataclass
class DayEvaluation:
    """MD evaluation artefacts of one recorded day."""

    day_index: int
    trace: RssiTrace
    md_result: OfflineMDResult
    match: MatchResult
    events: List[GroundTruthEvent]

    @property
    def counts(self) -> DetectionCounts:
        return self.match.counts


@dataclass
class MDEvaluation:
    """MD evaluation of a whole campaign for one sensor subset."""

    sensor_ids: Tuple[str, ...]
    t_delta_s: float
    days: List[DayEvaluation] = field(default_factory=list)

    @property
    def counts(self) -> DetectionCounts:
        """Aggregate TP/FP/FN over all days."""
        total = DetectionCounts(0, 0, 0)
        for day in self.days:
            total = total + day.counts
        return total

    def rematch(self, t_delta_s: float, slack_s: float) -> "MDEvaluation":
        """Re-score the same MD windows with a different ``t_delta``.

        MD's variation windows do not depend on ``t_delta`` (it is only a
        filter), so sweeping ``t_delta`` (Figure 7) reuses the detection
        results and merely re-runs the matching step.
        """
        new_days = []
        for day in self.days:
            match = match_windows(
                day.md_result.windows,
                day.events,
                slack_s,
                min_duration_s=t_delta_s,
            )
            new_days.append(
                DayEvaluation(
                    day_index=day.day_index,
                    trace=day.trace,
                    md_result=day.md_result,
                    match=match,
                    events=day.events,
                )
            )
        return MDEvaluation(
            sensor_ids=self.sensor_ids, t_delta_s=t_delta_s, days=new_days
        )


class CampaignStdFeatures:
    """The shared rolling-window feature matrix of a recorded campaign.

    For every day, the per-stream rolling standard deviations over *all*
    recorded streams are computed once
    (:class:`~repro.features.rolling.RollingStdExtractor` — the identical
    expression this class historically inlined); any sensor subset's
    ``s_t`` series is then a column-subset sum — bit-identical to
    recomputing the rolling statistics on the restricted trace, at a
    fraction of the cost.  :func:`evaluate_md` and :func:`evaluate_md_grid`
    share one instance across sensor counts.

    Blocks live in a :class:`~repro.features.store.FeatureStore`; pass
    ``store=`` to share one store (and its cache) with other extractors
    over the same recording.  The store validates day membership, so a
    day from a different campaign can no longer alias this recording's
    matrices by sharing a ``day_index``.
    """

    def __init__(
        self,
        recording: CampaignRecording,
        config: FadewichConfig,
        *,
        store: Optional[FeatureStore] = None,
    ) -> None:
        if store is not None and store.recording is not recording:
            raise ValueError("feature store is bound to a different recording")
        self.recording = recording
        self.config = config
        self.store = store if store is not None else FeatureStore(recording)
        self._extractor = RollingStdExtractor(std_window_s=config.md.std_window_s)

    def day_matrix(
        self, day: DayRecording
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, int]]:
        """``(times, std_matrix, column_of_stream)`` of one day, cached."""
        return self.store.day_block(self._extractor, day)

    def std_sums(
        self, day: DayRecording, stream_ids: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(times, s_t)`` series of one day for a stream subset."""
        times, matrix, columns = self.day_matrix(day)
        cols = [columns[sid] for sid in stream_ids]
        # The contiguous copy makes the row reduction use the same memory
        # layout (hence the same summation order) as the restricted-trace
        # computation it replaces.
        return times, np.ascontiguousarray(matrix[:, cols]).sum(axis=1)


def _scored_events(day: DayRecording) -> List[GroundTruthEvent]:
    return [
        e for e in day.events if e.kind in (EventKind.DEPARTURE, EventKind.ENTRY)
    ]


def _profile_init_samples(times: np.ndarray, config: FadewichConfig) -> int:
    if times.shape[0] < 2:
        raise ValueError("not enough samples for offline MD")
    rate = 1.0 / float(np.median(np.diff(times)))
    return max(int(round(config.md.profile_init_s * rate)), 2)


def _evaluate_md_sets(
    recording: CampaignRecording,
    config: FadewichConfig,
    subsets: Sequence[Tuple[int, List[str]]],
    features: Optional[CampaignStdFeatures] = None,
    detector: Optional[object] = None,
) -> Dict[int, MDEvaluation]:
    """Columnar MD evaluation of several sensor subsets at once.

    All subsets of all days advance through the batch profile engine in
    lockstep: one pooled ``(n_obs, n_days * n_subsets)`` std-sum matrix per
    group of equally-shaped days.  ``detector`` swaps the profile engine
    for any zoo member's ``offline_grid`` (``None`` keeps the KDE path).
    """
    if not subsets:
        return {}
    if features is None:
        features = CampaignStdFeatures(recording, config)
    evaluations = {
        key: MDEvaluation(sensor_ids=tuple(ids), t_delta_s=config.t_delta_s)
        for key, ids in subsets
    }
    stream_sets = {key: streams_for_sensors(ids) for key, ids in subsets}

    # Per day: the pooled std-sum columns (one per subset) and metadata.
    day_inputs = []
    for day in recording.days:
        columns = []
        times = None
        for key, _ in subsets:
            times, sums = features.std_sums(day, stream_sets[key])
            columns.append(sums)
        stacked = np.column_stack(columns)
        day_inputs.append(
            (day, times, stacked, _profile_init_samples(times, config))
        )

    # Group equally-shaped days so their profile chains run in one lockstep
    # call, then split the pooled grid back per day.
    groups: Dict[Tuple[int, int], List[int]] = {}
    for i, (_, times, stacked, init_samples) in enumerate(day_inputs):
        groups.setdefault((stacked.shape[0], init_samples), []).append(i)
    n_subsets = len(subsets)
    grids: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * len(day_inputs)
    for (_, init_samples), indices in groups.items():
        pooled = np.hstack([day_inputs[i][2] for i in indices])
        if detector is None:
            result = run_profile_grid(pooled, config.md, init_samples)
        else:
            result = detector.offline_grid(pooled, config.md, init_samples)
        for position, i in enumerate(indices):
            block = slice(position * n_subsets, (position + 1) * n_subsets)
            grids[i] = (result.decisions[:, block], result.thresholds[:, block])

    for (day, times, stacked, _), grid in zip(day_inputs, grids):
        assert grid is not None
        decisions, thresholds = grid
        scored = _scored_events(day)
        for j, (key, _) in enumerate(subsets):
            md_result = OfflineMDResult(
                times=times,
                std_sums=np.ascontiguousarray(stacked[:, j]),
                windows=variation_windows_from_flags(
                    times, decisions[:, j] == 1, config.md.merge_gap_s
                ),
                threshold_trace=np.ascontiguousarray(thresholds[:, j]),
            )
            match = match_windows(
                md_result.windows,
                scored,
                config.true_window_slack_s,
                min_duration_s=config.t_delta_s,
            )
            evaluations[key].days.append(
                DayEvaluation(
                    day_index=day.day_index,
                    trace=day.trace.restricted_view(stream_sets[key]),
                    md_result=md_result,
                    match=match,
                    events=list(scored),
                )
            )
    return evaluations


def evaluate_md(
    recording: CampaignRecording,
    config: FadewichConfig,
    sensor_ids: Sequence[str],
    *,
    features: Optional[CampaignStdFeatures] = None,
    detector: Optional[object] = None,
) -> MDEvaluation:
    """Run offline MD over every recorded day for one sensor subset.

    This is the columnar fast path (bit-identical to
    :func:`evaluate_md_scalar`).  Pass a shared :class:`CampaignStdFeatures`
    to reuse the rolling feature matrix across calls; sweeps over sensor
    counts should prefer :func:`evaluate_md_grid`, which additionally runs
    all counts' profile chains in lockstep.
    """
    return _evaluate_md_sets(
        recording, config, [(0, list(sensor_ids))], features, detector
    )[0]


def evaluate_md_grid(
    recording: CampaignRecording,
    config: FadewichConfig,
    sensor_counts: Optional[Sequence[int]] = None,
    *,
    features: Optional[CampaignStdFeatures] = None,
    detector: Optional[object] = None,
) -> Dict[int, MDEvaluation]:
    """Batch MD evaluation over a sweep of sensor counts.

    The paper's Table III / Figures 7-10 all sweep the number of sensors;
    this entry point computes the whole sweep at once: the rolling feature
    matrix of each day is computed once and sliced per count, and every
    (day, count) profile chain advances through the lockstep batch engine
    together.  Returns ``{n_sensors: MDEvaluation}``, each value
    bit-identical to ``evaluate_md_scalar(recording, config,
    sensor_subset(ids, n))``.
    """
    all_ids = list(recording.layout.sensor_ids)
    if sensor_counts is None:
        sensor_counts = range(3, len(all_ids) + 1)
    # Dedupe while keeping order: a duplicated count must not append its
    # days (and hence its counts) twice to one evaluation.
    counts = list(dict.fromkeys(int(n) for n in sensor_counts))
    subsets = [(n, sensor_subset(all_ids, n)) for n in counts]
    return _evaluate_md_sets(recording, config, subsets, features, detector)


def evaluate_md_scalar(
    recording: CampaignRecording,
    config: FadewichConfig,
    sensor_ids: Sequence[str],
) -> MDEvaluation:
    """Per-observation reference implementation of :func:`evaluate_md`.

    Restricts the trace and recomputes the rolling statistics per call and
    drives the normal profile one value at a time — the semantics reference
    the equivalence tests pin the columnar paths against.
    """
    stream_ids = streams_for_sensors(sensor_ids)
    evaluation = MDEvaluation(
        sensor_ids=tuple(sensor_ids), t_delta_s=config.t_delta_s
    )
    for day in recording.days:
        trace = day.trace.restricted_to(stream_ids)
        md_result = detect_offline_scalar(trace, config.md)
        scored_events = _scored_events(day)
        match = match_windows(
            md_result.windows,
            scored_events,
            config.true_window_slack_s,
            min_duration_s=config.t_delta_s,
        )
        evaluation.days.append(
            DayEvaluation(
                day_index=day.day_index,
                trace=trace,
                md_result=md_result,
                match=match,
                events=scored_events,
            )
        )
    return evaluation


def build_sample_dataset(
    evaluation: MDEvaluation,
    config: FadewichConfig,
    *,
    random_state: Optional[int] = None,
) -> Tuple[RadioEnvironment, SampleDataset]:
    """Extract one labelled RE sample per true positive of an MD evaluation.

    Samples are labelled with the ground truth (the offline analogue of the
    paper's KMA-based auto-labelling).  Returns the (untrained) RE instance
    whose feature layout matches the dataset, plus the dataset itself.
    """
    stream_ids = streams_for_sensors(evaluation.sensor_ids)
    re_module = RadioEnvironment(
        stream_ids=stream_ids, config=config.re, random_state=random_state
    )
    dataset = re_module.empty_dataset()
    for day in evaluation.days:
        for window, true_window in day.match.true_positive_pairs:
            label = true_window.event.label
            if label is None:
                continue
            dataset.add(
                re_module.make_sample(
                    day.trace,
                    window,
                    config.t_delta_s,
                    label=label,
                    day_index=day.day_index,
                )
            )
    return re_module, dataset


def cross_validated_predictions(
    re_module: RadioEnvironment,
    dataset: SampleDataset,
    *,
    n_folds: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, str]:
    """Out-of-fold RE predictions for every sample of the dataset.

    Follows the paper's protocol: the samples are split into ``n_folds``
    stratified folds; for each fold the classifier is trained on the other
    folds and predicts the held-out samples.  Returns a mapping from sample
    index (position in ``dataset.samples``) to the predicted label.

    Columnar fast path: the fold memberships are one assignment array
    (:func:`~repro.ml.validation.stratified_fold_assignments`), each fold's
    train/test sets are boolean-mask index views, and the out-of-fold
    predictions fill one preallocated vector.  Bit-identical to
    :func:`cross_validated_predictions_scalar`.
    """
    if len(dataset) == 0:
        return {}
    if rng is None:
        rng = np.random.default_rng()
    X, y = dataset.to_arrays()
    n_classes = np.unique(y).shape[0]
    if len(dataset) < n_folds or n_classes < 2:
        # Too few samples to cross-validate: train and predict in-sample
        # (the small-sensor-count regimes of the paper hit this too).
        fitted = re_module.clone_untrained().fit_arrays(X, y)
        return dict(enumerate(fitted.classify_many(X)))
    assignments = stratified_fold_assignments(y, n_folds, rng)
    predicted = np.empty(y.shape[0], dtype=object)
    for fold in range(n_folds):
        test_mask = assignments == fold
        train_idx = np.flatnonzero(~test_mask)
        test_idx = np.flatnonzero(test_mask)
        if np.unique(y[train_idx]).shape[0] < 2 or train_idx.size == 0:
            fallback = str(np.unique(y[train_idx])[0]) if train_idx.size else str(y[0])
            predicted[test_idx] = fallback
            continue
        fold_re = re_module.clone_untrained().fit_arrays(X[train_idx], y[train_idx])
        predicted[test_idx] = fold_re.classify_many(X[test_idx])
    return {i: str(label) for i, label in enumerate(predicted)}


def cross_validated_predictions_scalar(
    re_module: RadioEnvironment,
    dataset: SampleDataset,
    *,
    n_folds: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, str]:
    """Per-fold-list reference implementation of
    :func:`cross_validated_predictions` (the equivalence tests pin the
    columnar path against it)."""
    if len(dataset) == 0:
        return {}
    if rng is None:
        rng = np.random.default_rng()
    X, y = dataset.to_arrays()
    predictions: Dict[int, str] = {}
    n_classes = np.unique(y).shape[0]
    if len(dataset) < n_folds or n_classes < 2:
        fitted = re_module.clone_untrained().fit_arrays(X, y)
        for i, label in enumerate(fitted.classify_many(X)):
            predictions[i] = label
        return predictions
    for train_idx, test_idx in stratified_kfold_indices(y, n_folds, rng):
        if np.unique(y[train_idx]).shape[0] < 2 or train_idx.size == 0:
            fallback = str(np.unique(y[train_idx])[0]) if train_idx.size else str(y[0])
            for i in test_idx:
                predictions[int(i)] = fallback
            continue
        fold_re = re_module.clone_untrained().fit_arrays(X[train_idx], y[train_idx])
        for i, label in zip(test_idx, fold_re.classify_many(X[test_idx])):
            predictions[int(i)] = label
    return predictions


def departure_outcomes(
    evaluation: MDEvaluation,
    dataset: SampleDataset,
    predictions: Dict[int, str],
    config: FadewichConfig,
) -> List[DeauthOutcome]:
    """Per-departure deauthentication outcomes (decision-tree cases A/B/C).

    Matches each departure event to its MD variation window (if any) and the
    out-of-fold RE prediction of the corresponding sample, then classifies
    the outcome with :func:`~repro.core.security.classify_outcome`.
    """
    # Index predictions by (day_index, window start time).
    prediction_by_key: Dict[Tuple[int, float], str] = {}
    for idx, label in predictions.items():
        sample = dataset.samples[idx]
        prediction_by_key[(sample.day_index, round(sample.time, 6))] = label

    outcomes: List[DeauthOutcome] = []
    for day in evaluation.days:
        matched: Dict[int, Tuple[VariationWindow, str]] = {}
        for window, true_window in day.match.true_positive_pairs:
            key = (day.day_index, round(window.t_start, 6))
            predicted = prediction_by_key.get(key)
            matched[id(true_window.event)] = (window, predicted)
        for event in day.events:
            if event.kind is not EventKind.DEPARTURE:
                continue
            if id(event) in matched:
                window, predicted = matched[id(event)]
                outcomes.append(
                    classify_outcome(event, window, predicted, config)
                )
            else:
                outcomes.append(classify_outcome(event, None, None, config))
    return outcomes

"""The FADEWICH controller: state machine, rules and actions.

The control component (paper Sections IV-F and IV-G) fuses the outputs of
MD, RE and KMA and applies actions to the workstations.  It is a two-state
automaton:

* **Quiet** — no long variation window is in progress.  The moment the
  current variation window reaches ``t_delta`` the controller queries RE
  (who moved?) and KMA (who is idle?) and applies **Rule 1**: the
  workstation named by RE is deauthenticated if it has been idle for the
  whole window.  The automaton then moves to Noisy.
* **Noisy** — the variation window is still open (possibly other users are
  moving too — the "overlap" case).  At every step the controller applies
  **Rule 2**: every workstation idle for at least one second is put into
  the alert state (a screen saver will start after ``t_ID`` further idle
  seconds).  When MD reports the window closed, the automaton returns to
  Quiet.

Note on Rule 1: the paper's Table I literally reads "if ``ci`` not in
``S(t_delta)`` then Deauthenticate ``ci``", but its own security analysis
(case A: correct classification leads to deauthentication at ``t1 +
t_delta``, when the departed user's workstation *has* been idle throughout
the window) only works with the opposite condition.  We implement the
semantically consistent rule — deauthenticate the classified workstation
when it has been idle for ``t_delta`` — and note the discrepancy here and
in DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..workstation.session import SessionState, WorkstationSession
from .config import FadewichConfig
from .kma import KeyboardMouseActivity

__all__ = ["ControllerState", "ControllerAction", "FadewichController"]


class ControllerState(enum.Enum):
    """The two states of the FADEWICH automaton (Figure 4)."""

    QUIET = "quiet"
    NOISY = "noisy"


@dataclass(frozen=True)
class ControllerAction:
    """A record of one action the controller applied."""

    time: float
    action: str
    workstation_id: str
    rule: int
    predicted_label: Optional[str] = None


@dataclass
class FadewichController:
    """The control automaton.

    Parameters
    ----------
    config:
        System configuration (``t_delta``, ``t_ID`` ...).
    kma:
        The KMA module.
    sessions:
        The workstation session state machines the controller acts on.
    entry_label:
        The RE label meaning "somebody entered the office"; Rule 1 never
        deauthenticates on it.
    """

    config: FadewichConfig
    kma: KeyboardMouseActivity
    sessions: Dict[str, WorkstationSession]
    entry_label: str = "w0"

    _state: ControllerState = field(init=False, default=ControllerState.QUIET)
    _rule1_fired_for_window: bool = field(init=False, default=False)
    _actions: List[ControllerAction] = field(init=False, default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> ControllerState:
        return self._state

    @property
    def actions(self) -> List[ControllerAction]:
        """All actions applied so far, in order."""
        return list(self._actions)

    def reset(self) -> None:
        """Return to the Quiet state (e.g. at the start of a new day)."""
        self._state = ControllerState.QUIET
        self._rule1_fired_for_window = False

    # ------------------------------------------------------------------ #
    def _apply_rule1(self, t: float, predicted_label: str) -> None:
        """Rule 1: deauthenticate the classified workstation if it is idle."""
        idle_set: Set[str] = self.kma.idle_set(t, self.config.t_delta_s)
        if predicted_label == self.entry_label:
            # An office entry: nobody left, nothing to deauthenticate.
            return
        if predicted_label not in self.sessions:
            return
        if predicted_label in idle_set:
            session = self.sessions[predicted_label]
            if session.state is not SessionState.DEAUTHENTICATED:
                session.deauthenticate(t, reason="rule-1")
                self._actions.append(
                    ControllerAction(
                        time=t,
                        action="deauthenticate",
                        workstation_id=predicted_label,
                        rule=1,
                        predicted_label=predicted_label,
                    )
                )

    def _apply_rule2(self, t: float) -> None:
        """Rule 2: put every workstation idle for >= 1 s into the alert state."""
        for wid in self.kma.idle_set(t, 1.0):
            session = self.sessions.get(wid)
            if session is None:
                continue
            if session.state is SessionState.AUTHENTICATED:
                session.enter_alert(t, reason="rule-2")
                self._actions.append(
                    ControllerAction(
                        time=t, action="alert", workstation_id=wid, rule=2
                    )
                )

    # ------------------------------------------------------------------ #
    def step(
        self,
        t: float,
        current_window_duration: float,
        classify_current_window,
    ) -> ControllerState:
        """Advance the automaton by one time step.

        Parameters
        ----------
        t:
            Current time.
        current_window_duration:
            ``dW_t`` reported by MD: duration of the variation window
            currently open (0 when none is open).
        classify_current_window:
            Zero-argument callable invoking RE on the current variation
            window and returning the predicted label.  Only called at the
            moment Rule 1 fires, matching the paper's "query RE at
            ``t1 + t_delta``".

        Returns
        -------
        ControllerState
            The automaton state after the step.
        """
        d_wt = current_window_duration
        t_delta = self.config.t_delta_s

        if self._state is ControllerState.QUIET:
            if d_wt >= t_delta:
                predicted = classify_current_window()
                self._apply_rule1(t, predicted)
                self._rule1_fired_for_window = True
                self._state = ControllerState.NOISY
        else:  # NOISY
            if d_wt == 0.0:
                self._state = ControllerState.QUIET
                self._rule1_fired_for_window = False
            elif d_wt >= t_delta:
                self._apply_rule2(t)

        # Let alert states mature into screen savers.
        for wid, session in self.sessions.items():
            session.tick(t, self.kma.idle_time(wid, t))
        return self._state

    # ------------------------------------------------------------------ #
    def deauthentication_count(self) -> int:
        """Number of Rule-1 deauthentications applied so far."""
        return sum(1 for a in self._actions if a.action == "deauthenticate")

    def alert_count(self) -> int:
        """Number of Rule-2 alert activations applied so far."""
        return sum(1 for a in self._actions if a.action == "alert")

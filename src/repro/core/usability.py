"""Usability cost model.

FADEWICH can inconvenience users in two ways (paper Sections VI-A and
VII-D):

* a **screen saver** wrongly activated at an occupied workstation costs the
  user about 3 seconds (they must produce some input to cancel it),
* a **deauthentication** of an occupied workstation costs about 13 seconds
  (a full re-login).

The paper simulates keyboard/mouse input with the Mikkelsen model (activity
in 78 % of 5-second bins), replays the system's decisions against 100
independent input draws, and reports the average number of wrong screen
savers / deauthentications per 8-hour day and the resulting daily cost
(Table IV).  This module reproduces that protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workstation.activity import ActivityTrace, InputActivityModel
from .config import FadewichConfig
from .windows import VariationWindow

__all__ = ["UsabilityDayInput", "UsabilityResult", "UsabilitySimulator"]


@dataclass(frozen=True)
class UsabilityDayInput:
    """The per-day inputs the usability simulation needs.

    Attributes
    ----------
    decisions:
        ``(variation_window, predicted_label)`` pairs for every window that
        reached ``t_delta`` and therefore triggered a Rule-1 decision.
    presence:
        Per-workstation list of ``(t_start, t_end)`` intervals during which
        the assigned user was physically at the workstation.
    duration_s:
        Length of the working day.
    """

    decisions: Tuple[Tuple[VariationWindow, str], ...]
    presence: Dict[str, Tuple[Tuple[float, float], ...]]
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


@dataclass(frozen=True)
class UsabilityResult:
    """Aggregated usability metrics (one row of the paper's Table IV).

    Per-day averages over all simulated input draws, plus the standard
    deviation across draws (the parenthesised numbers of Table IV).
    """

    screensavers_per_day: float
    screensavers_std: float
    deauthentications_per_day: float
    deauthentications_std: float
    cost_per_day_s: float
    n_draws: int

    def as_row(self) -> Dict[str, float]:
        """The Table IV row as a dictionary."""
        return {
            "screensavers_per_day": self.screensavers_per_day,
            "deauthentications_per_day": self.deauthentications_per_day,
            "cost_per_day_s": self.cost_per_day_s,
        }


class UsabilitySimulator:
    """Replays FADEWICH's decisions against simulated keyboard/mouse input.

    Parameters
    ----------
    config:
        System configuration (``t_delta``, ``t_ID``, costs ...).
    activity_prob:
        Probability of input in a 5-second bin while the user is present.
    rng:
        Random generator for the input draws.
    """

    def __init__(
        self,
        config: Optional[FadewichConfig] = None,
        *,
        activity_prob: float = 0.78,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._config = config if config is not None else FadewichConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._activity_prob = activity_prob

    # ------------------------------------------------------------------ #
    @staticmethod
    def _present_at(
        presence: Sequence[Tuple[float, float]], t: float
    ) -> bool:
        return any(start <= t <= end for start, end in presence)

    def _simulate_day_once(
        self, day: UsabilityDayInput, activity: Dict[str, ActivityTrace]
    ) -> Tuple[int, int]:
        """One input draw of one day; returns (wrong screensavers, wrong deauths)."""
        cfg = self._config
        wrong_screensavers = 0
        wrong_deauths = 0
        for window, predicted in day.decisions:
            t_decision = window.t_start + cfg.t_delta_s

            # Rule 1: deauthenticate the classified workstation if idle.
            if predicted in activity:
                idle = activity[predicted].idle_time_at(t_decision)
                if idle >= cfg.t_delta_s and self._present_at(
                    day.presence.get(predicted, ()), t_decision
                ):
                    wrong_deauths += 1

            # Rule 2: during the remainder of the window, idle workstations
            # enter the alert state; those staying idle for t_ID get a
            # screen saver.  Only screen savers at occupied workstations
            # cost anything.
            noisy_end = max(window.t_end, t_decision)
            for wid, trace in activity.items():
                if wid == predicted:
                    continue
                if not self._present_at(day.presence.get(wid, ()), t_decision):
                    continue
                alert_time = self._first_alert_time(trace, t_decision, noisy_end)
                if alert_time is None:
                    continue
                if not trace.has_input_in(alert_time, alert_time + cfg.t_id_s):
                    wrong_screensavers += 1
        return wrong_screensavers, wrong_deauths

    def _first_alert_time(
        self, trace: ActivityTrace, t_start: float, t_end: float
    ) -> Optional[float]:
        """Earliest instant in ``[t_start, t_end]`` with >= 1 s of idle time."""
        if t_end < t_start:
            return None
        t = t_start
        while t <= t_end:
            if trace.idle_time_at(t) >= 1.0:
                return t
            t += 1.0
        return None

    # ------------------------------------------------------------------ #
    def run(
        self, days: Sequence[UsabilityDayInput], n_draws: int = 100
    ) -> UsabilityResult:
        """Simulate ``n_draws`` independent input draws over the campaign.

        Returns per-day averages (total over the campaign divided by the
        number of days), exactly like the paper's Table IV.
        """
        if not days:
            raise ValueError("at least one day is required")
        if n_draws < 1:
            raise ValueError("n_draws must be >= 1")
        n_days = len(days)
        model = InputActivityModel(
            activity_prob=self._activity_prob, rng=self._rng
        )

        ss_counts = np.zeros(n_draws)
        da_counts = np.zeros(n_draws)
        for draw in range(n_draws):
            total_ss = 0
            total_da = 0
            for day in days:
                activity = {
                    wid: model.generate(
                        day.duration_s, list(day.presence.get(wid, ()))
                    )
                    for wid in day.presence
                }
                ss, da = self._simulate_day_once(day, activity)
                total_ss += ss
                total_da += da
            ss_counts[draw] = total_ss / n_days
            da_counts[draw] = total_da / n_days

        cfg = self._config
        cost = float(
            np.mean(ss_counts) * cfg.screensaver_cost_s
            + np.mean(da_counts) * cfg.reauth_cost_s
        )
        return UsabilityResult(
            screensavers_per_day=float(np.mean(ss_counts)),
            screensavers_std=float(np.std(ss_counts)),
            deauthentications_per_day=float(np.mean(da_counts)),
            deauthentications_std=float(np.std(da_counts)),
            cost_per_day_s=cost,
            n_draws=n_draws,
        )

    def total_cost_seconds(self, result: UsabilityResult, n_days: int) -> float:
        """Total campaign cost in seconds (the Figure 13 cost axis)."""
        if n_days < 1:
            raise ValueError("n_days must be >= 1")
        return result.cost_per_day_s * n_days

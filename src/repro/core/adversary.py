"""Adversary models: Insider and Co-worker lunchtime attackers.

The paper's threat model (Section III-A) distinguishes two adversaries who
both try to take over the departed victim's login session:

* **Insider** — has access to the area *outside* the office; reaching the
  victim's workstation takes about 4 seconds from the moment the victim
  exits the office (they must not be witnessed, so they wait for the victim
  to leave).
* **Co-worker** — already inside the office; can reach the target
  workstation the instant the victim walks out of the door.

An *attack opportunity* exists when the adversary reaches the workstation
while the session is still authenticated, i.e. when the deauthentication
happens later than the adversary's arrival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .security import DeauthOutcome

__all__ = ["Adversary", "INSIDER", "COWORKER", "attack_opportunities"]


@dataclass(frozen=True)
class Adversary:
    """A lunchtime attacker characterised by how fast they reach the target.

    Attributes
    ----------
    name:
        Human-readable name.
    reach_delay_s:
        Seconds between the victim exiting the office and the adversary
        having their hands on the victim's keyboard.
    """

    name: str
    reach_delay_s: float

    def __post_init__(self) -> None:
        if self.reach_delay_s < 0:
            raise ValueError("reach_delay_s must be non-negative")

    def arrival_time(self, victim_exit_time: float) -> float:
        """Absolute time at which the adversary reaches the workstation."""
        return victim_exit_time + self.reach_delay_s


INSIDER = Adversary(name="Insider", reach_delay_s=4.0)
"""The paper's Insider adversary: 4 s to walk in from outside the office."""

COWORKER = Adversary(name="Co-worker", reach_delay_s=0.0)
"""The paper's Co-worker adversary: already inside the office."""


def attack_opportunities(
    outcomes: Sequence[DeauthOutcome], adversary: Adversary
) -> List[DeauthOutcome]:
    """The departures the adversary could have exploited.

    For each departure, the victim's workstation is deauthenticated
    ``elapsed_s`` seconds after the victim left its proximity; the adversary
    arrives ``reach_delay_s`` seconds after the victim exited the office.
    The attack succeeds when the arrival precedes the deauthentication.

    Returns the list of exploitable outcomes (their count, relative to the
    total number of departures, is what Figure 10 plots).
    """
    exploitable: List[DeauthOutcome] = []
    for outcome in outcomes:
        event = outcome.event
        exit_time = event.exit_time if event.exit_time is not None else event.time
        arrival = adversary.arrival_time(exit_time)
        deauth_time = event.time + outcome.elapsed_s
        if deauth_time > arrival:
            exploitable.append(outcome)
    return exploitable


def attack_opportunity_percentage(
    outcomes: Sequence[DeauthOutcome], adversary: Adversary
) -> float:
    """Percentage of departures the adversary could exploit."""
    if not outcomes:
        return 0.0
    return 100.0 * len(attack_opportunities(outcomes, adversary)) / len(outcomes)

"""The FADEWICH core: the paper's contribution.

* :mod:`~repro.core.config` — all tunable parameters with the paper's values,
* :mod:`~repro.core.kma` — Keyboard/Mouse Activity module,
* :mod:`~repro.core.movement` — Movement Detection (Algorithm 1),
* :mod:`~repro.core.windows` — variation windows and TP/FP/FN matching,
* :mod:`~repro.core.radio_env` — Radio Environment classifier,
* :mod:`~repro.core.controller` — the Quiet/Noisy automaton and Rules 1-2,
* :mod:`~repro.core.system` — the assembled online system,
* :mod:`~repro.core.security` — the decision-tree security model,
* :mod:`~repro.core.adversary` — Insider / Co-worker attackers,
* :mod:`~repro.core.baseline` — the inactivity time-out baseline,
* :mod:`~repro.core.usability` — the usability cost simulation,
* :mod:`~repro.core.evaluation` — the shared evaluation pipeline.
"""

from .adversary import (
    COWORKER,
    INSIDER,
    Adversary,
    attack_opportunities,
    attack_opportunity_percentage,
)
from .baseline import TimeoutBaseline
from .config import FadewichConfig, MDConfig, REConfig
from .controller import ControllerAction, ControllerState, FadewichController
from .evaluation import (
    DayEvaluation,
    MDEvaluation,
    build_sample_dataset,
    cross_validated_predictions,
    departure_outcomes,
    evaluate_md,
    sensor_subset,
    streams_for_sensors,
)
from .kma import KeyboardMouseActivity
from .movement import (
    MovementDetector,
    NormalProfile,
    OfflineMDResult,
    StdSumTracker,
    detect_offline,
    rolling_std_sum,
)
from .radio_env import RadioEnvironment, RENotTrainedError
from .security import (
    DeauthCase,
    DeauthOutcome,
    case_counts,
    classify_outcome,
    deauthentication_curve,
    median_deauthentication_time,
    vulnerable_time_seconds,
)
from .system import FadewichSystem, ReplayReport
from .usability import UsabilityDayInput, UsabilityResult, UsabilitySimulator
from .windows import (
    MatchResult,
    TrueWindow,
    VariationWindow,
    match_windows,
    true_window_for_event,
)

__all__ = [
    "COWORKER",
    "INSIDER",
    "Adversary",
    "ControllerAction",
    "ControllerState",
    "DayEvaluation",
    "DeauthCase",
    "DeauthOutcome",
    "FadewichConfig",
    "FadewichController",
    "FadewichSystem",
    "KeyboardMouseActivity",
    "MDConfig",
    "MDEvaluation",
    "MatchResult",
    "MovementDetector",
    "NormalProfile",
    "OfflineMDResult",
    "REConfig",
    "RENotTrainedError",
    "RadioEnvironment",
    "ReplayReport",
    "StdSumTracker",
    "TimeoutBaseline",
    "TrueWindow",
    "UsabilityDayInput",
    "UsabilityResult",
    "UsabilitySimulator",
    "VariationWindow",
    "attack_opportunities",
    "attack_opportunity_percentage",
    "build_sample_dataset",
    "case_counts",
    "classify_outcome",
    "cross_validated_predictions",
    "deauthentication_curve",
    "departure_outcomes",
    "detect_offline",
    "evaluate_md",
    "match_windows",
    "median_deauthentication_time",
    "rolling_std_sum",
    "sensor_subset",
    "streams_for_sensors",
    "true_window_for_event",
    "vulnerable_time_seconds",
]

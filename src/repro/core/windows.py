"""Variation windows and their matching against ground truth.

The MD module emits *variation windows* ``[t1, t2]``: intervals during which
the radio environment's fluctuation level was anomalous.  The security
analysis (paper Section V-A) scores them against *true windows*
``U_t = [t - delta, t + delta]`` centred on every ground-truth movement:

* a variation window overlapping a true window is a **true positive**,
* a variation window overlapping no true window is a **false positive**,
* a true window covered by no variation window is a **false negative**.

This module holds the window data types and the matching algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..mobility.events import GroundTruthEvent
from ..ml.metrics import DetectionCounts

__all__ = [
    "VariationWindow",
    "TrueWindow",
    "MatchResult",
    "true_window_for_event",
    "match_windows",
]


@dataclass(frozen=True)
class VariationWindow:
    """An interval of anomalous radio fluctuations reported by MD."""

    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError("t_end must be >= t_start")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def overlaps(self, other: "TrueWindow") -> bool:
        """Whether this window and a true window share any instant."""
        return self.t_start <= other.t_end and other.t_start <= self.t_end

    def contains(self, t: float) -> bool:
        return self.t_start <= t <= self.t_end


@dataclass(frozen=True)
class TrueWindow:
    """The interval in which a ground-truth movement should be detected."""

    t_start: float
    t_end: float
    event: GroundTruthEvent

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError("t_end must be >= t_start")


def true_window_for_event(
    event: GroundTruthEvent, slack_s: float
) -> TrueWindow:
    """Build the true window ``U_t`` for one ground-truth event.

    The window spans from ``slack_s`` before the event to ``slack_s`` after
    the moment the user finished the movement (the exit time for
    departures, the event time otherwise), following the paper's
    ``U_t = [t - delta, t + delta]`` with the movement duration folded in.
    """
    if slack_s <= 0:
        raise ValueError("slack_s must be positive")
    end_anchor = event.exit_time if event.exit_time is not None else event.time
    return TrueWindow(
        t_start=event.time - slack_s, t_end=end_anchor + slack_s, event=event
    )


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching MD variation windows against ground truth.

    Attributes
    ----------
    counts:
        Aggregate TP/FP/FN counts.
    true_positive_pairs:
        ``(variation_window, true_window)`` pairs for the detected events.
        Each true window appears at most once (the earliest overlapping
        variation window is kept, as the system would act on it first).
    false_positive_windows:
        Variation windows that matched no true window.
    missed_events:
        True windows with no overlapping variation window.
    """

    counts: DetectionCounts
    true_positive_pairs: Tuple[Tuple[VariationWindow, TrueWindow], ...]
    false_positive_windows: Tuple[VariationWindow, ...]
    missed_events: Tuple[TrueWindow, ...]


def match_windows(
    variation_windows: Sequence[VariationWindow],
    events: Sequence[GroundTruthEvent],
    slack_s: float,
    *,
    min_duration_s: Optional[float] = None,
) -> MatchResult:
    """Match MD variation windows to ground-truth events.

    Parameters
    ----------
    variation_windows:
        Windows reported by MD, in any order.
    events:
        Ground-truth movement events (departures and entries; internal moves
        should not be passed — they are neither detections nor misses).
    slack_s:
        Half-width of each event's true window.
    min_duration_s:
        If given, variation windows shorter than this are discarded before
        matching — this is the ``t_delta`` filter of the online system.
    """
    windows = sorted(variation_windows, key=lambda w: w.t_start)
    if min_duration_s is not None:
        windows = [w for w in windows if w.duration >= min_duration_s]
    true_windows = [true_window_for_event(e, slack_s) for e in events]

    tp_pairs: List[Tuple[VariationWindow, TrueWindow]] = []
    matched_truth = set()
    matched_windows = set()

    for ti, tw in enumerate(true_windows):
        for wi, vw in enumerate(windows):
            if wi in matched_windows:
                continue
            if vw.overlaps(tw):
                tp_pairs.append((vw, tw))
                matched_truth.add(ti)
                matched_windows.add(wi)
                break

    # Any unmatched variation window that still overlaps *some* true window
    # (even one already matched) is not a false positive — it corresponds to
    # a real movement, just a redundant detection of it.  The overlap test
    # is a pure predicate, so the sweep over true windows runs columnar.
    if true_windows:
        tw_starts = np.array([tw.t_start for tw in true_windows])
        tw_ends = np.array([tw.t_end for tw in true_windows])
        overlaps_any = [
            bool(np.any((vw.t_start <= tw_ends) & (tw_starts <= vw.t_end)))
            for vw in windows
        ]
    else:
        overlaps_any = [False] * len(windows)
    false_positives = [
        vw
        for wi, vw in enumerate(windows)
        if wi not in matched_windows and not overlaps_any[wi]
    ]

    missed = tuple(
        tw for ti, tw in enumerate(true_windows) if ti not in matched_truth
    )
    counts = DetectionCounts(
        tp=len(tp_pairs), fp=len(false_positives), fn=len(missed)
    )
    return MatchResult(
        counts=counts,
        true_positive_pairs=tuple(tp_pairs),
        false_positive_windows=tuple(false_positives),
        missed_events=missed,
    )

"""Configuration of the FADEWICH system.

All tunable parameters of the paper live here with their published default
values:

* ``t_delta`` — the variation-window duration threshold (4.5 s in the
  paper's final configuration, swept in Figure 7),
* ``alpha`` — the MD anomaly percentile (the paper thresholds at the 99th
  percentile, i.e. ``alpha = 1``),
* ``t_id`` / ``t_ss`` — alert-state idle threshold and screen-saver delay
  (5 s and 3 s, giving the 8-second step of Figure 9),
* the usability costs (3 s to cancel a screen saver, 13 s to re-login),
* the baseline inactivity time-out ``T`` (300 s in Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

__all__ = ["FadewichConfig", "MDConfig", "REConfig"]


@dataclass(frozen=True)
class MDConfig:
    """Movement Detection parameters (paper Section IV-C).

    Attributes
    ----------
    std_window_s:
        Length ``d`` of the sliding window over which each stream's standard
        deviation is computed.
    profile_init_s:
        Length of the initial quiet period used to build the normal profile
        (the paper's adversary-free installation phase, ~30 s of summation
        samples).
    alpha:
        Anomaly percentile parameter: observations above the
        ``(100 - alpha)``-th percentile of the profile CDF are anomalous.
    batch_size:
        Profile-update batch size ``b``.
    tau:
        Maximum fraction of anomalous values tolerated in an update batch
        before the batch is discarded.
    merge_gap_s:
        Anomalous runs separated by less than this are merged into a single
        variation window (bridges single-sample dips below the threshold).
    """

    std_window_s: float = 2.0
    profile_init_s: float = 60.0
    alpha: float = 1.0
    batch_size: int = 40
    tau: float = 0.25
    merge_gap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.std_window_s <= 0:
            raise ValueError("std_window_s must be positive")
        if self.profile_init_s <= 0:
            raise ValueError("profile_init_s must be positive")
        if not 0.0 < self.alpha < 100.0:
            raise ValueError("alpha must be in (0, 100)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        if self.merge_gap_s < 0:
            raise ValueError("merge_gap_s must be non-negative")


@dataclass(frozen=True)
class REConfig:
    """Radio Environment classifier parameters (paper Section IV-D).

    Attributes
    ----------
    svm_c:
        Soft-margin penalty of the SVM.
    svm_kernel:
        Kernel name (``"rbf"`` or ``"linear"``).
    entropy_bins:
        Histogram bins of the entropy feature.
    autocorrelation_lag:
        Lag (in samples) of the autocorrelation feature.
    """

    svm_c: float = 1.0
    svm_kernel: str = "linear"
    entropy_bins: int = 16
    autocorrelation_lag: int = 1

    def __post_init__(self) -> None:
        if self.svm_c <= 0:
            raise ValueError("svm_c must be positive")
        if self.entropy_bins < 1:
            raise ValueError("entropy_bins must be >= 1")
        if self.autocorrelation_lag < 0:
            raise ValueError("autocorrelation_lag must be non-negative")


@dataclass(frozen=True)
class FadewichConfig:
    """Top-level FADEWICH configuration.

    Attributes
    ----------
    t_delta_s:
        Variation-window duration threshold ``t_delta``: windows at least
        this long trigger a system decision (Rule 1).
    t_id_s:
        Alert-state idle threshold ``t_ID`` before the screen saver starts.
    t_ss_s:
        Screen-saver activation delay ``t_ss`` (from Figure 9's case-B
        timing ``t + t_ID + t_ss``).
    timeout_s:
        Baseline inactivity time-out ``T`` used for comparison (Figure 13).
    screensaver_cost_s:
        Usability cost of cancelling a wrongly activated screen saver.
    reauth_cost_s:
        Usability cost of re-authenticating after a wrong deauthentication.
    true_window_slack_s:
        Half-width ``delta`` of the true window ``U_t = [t - delta,
        t + delta]`` used to score MD decisions.
    md:
        Movement Detection parameters.
    re:
        Radio Environment parameters.
    """

    t_delta_s: float = 4.5
    t_id_s: float = 5.0
    t_ss_s: float = 3.0
    timeout_s: float = 300.0
    screensaver_cost_s: float = 3.0
    reauth_cost_s: float = 13.0
    true_window_slack_s: float = 5.0
    md: MDConfig = field(default_factory=MDConfig)
    re: REConfig = field(default_factory=REConfig)

    def __post_init__(self) -> None:
        if self.t_delta_s <= 0:
            raise ValueError("t_delta_s must be positive")
        if self.t_id_s < 0 or self.t_ss_s < 0:
            raise ValueError("t_id_s and t_ss_s must be non-negative")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.screensaver_cost_s < 0 or self.reauth_cost_s < 0:
            raise ValueError("usability costs must be non-negative")
        if self.true_window_slack_s <= 0:
            raise ValueError("true_window_slack_s must be positive")

    def with_t_delta(self, t_delta_s: float) -> "FadewichConfig":
        """A copy with a different ``t_delta`` (used by the Figure 7 sweep)."""
        return replace(self, t_delta_s=t_delta_s)

    def derive(
        self,
        *,
        md: Optional[Dict[str, object]] = None,
        re: Optional[Dict[str, object]] = None,
        **overrides: object,
    ) -> "FadewichConfig":
        """A copy with field overrides, including nested MD / RE fields.

        The scenario-grid constructor of :mod:`repro.analysis.scenarios`
        builds configuration axes from this in one expression::

            FadewichConfig().derive(t_delta_s=6.0, md={"alpha": 2.0})

        ``md`` / ``re`` dicts patch the corresponding nested config through
        :func:`dataclasses.replace`, so unknown field names fail loudly and
        the patched copies re-run their validation.
        """
        if md:
            overrides["md"] = replace(self.md, **md)
        if re:
            overrides["re"] = replace(self.re, **re)
        return replace(self, **overrides)

    @property
    def misclassification_delay_s(self) -> float:
        """Deauthentication delay of a misclassified event (case B): tID + tss."""
        return self.t_id_s + self.t_ss_s

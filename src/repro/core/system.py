"""The complete online FADEWICH system.

Wires together the three modules (KMA, MD, RE), the controller and the
workstation sessions into a single object that consumes the live RSSI
sample stream, exactly like the deployed system of the paper (Figure 1).

Two ways to use it:

* **online** — call :meth:`process_sample` for every incoming multi-stream
  RSSI sample (after training RE via :meth:`train`),
* **replay** — call :meth:`replay_day` on a recorded
  :class:`~repro.simulation.collector.DayRecording` to re-live a captured
  day end to end (used by the integration tests and the examples).

:meth:`replay_day` is a *thin client of the streaming kernel*: the whole
day is delivered to an :class:`~repro.streaming.detector.OnlineDetector`
as a single batch (no per-step sample dicts, no per-step ``np.std``), and
only the controller/session state machines advance step by step, fed from
the kernel's precomputed arrays.  :meth:`replay_day_scalar` is the
retained per-sample reference driving :meth:`process_sample` exactly like
the live system; both produce bit-identical reports
(``tests/test_analysis_equivalence.py``), and the kernel itself is pinned
bit-identical to the per-sample detector whatever the arrival batching
(``tests/test_streaming_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..mobility.events import ENTRY_LABEL
from ..radio.trace import StreamBuffer
from ..simulation.collector import DayRecording
from ..simulation.dataset import SampleDataset
from ..workstation.activity import ActivityTrace
from ..workstation.idle import TraceIdleProvider
from ..workstation.session import SessionState, WorkstationSession
from .config import FadewichConfig
from .controller import ControllerAction, ControllerState, FadewichController
from .kma import KeyboardMouseActivity
from .movement import MovementDetector
from .radio_env import RadioEnvironment

__all__ = ["ReplayReport", "FadewichSystem"]


class _GridIdleProvider:
    """Idle-time provider backed by per-step precomputed arrays.

    Serves the KMA queries of the array replay: every controller step
    queries idle times at a grid timestamp, answered by one array lookup
    instead of a backwards scan through the activity bins.  Off-grid
    queries fall back to the exact trace computation.
    """

    def __init__(
        self, traces: Mapping[str, ActivityTrace], times: np.ndarray
    ) -> None:
        self._traces = dict(traces)
        self._times = times
        self._idle = {
            wid: trace.idle_times_at(times) for wid, trace in self._traces.items()
        }
        self._cursor = 0

    @property
    def workstation_ids(self) -> List[str]:
        return list(self._traces.keys())

    def idle_time(self, workstation_id: str, t: float) -> float:
        times = self._times
        n = times.shape[0]
        i = self._cursor
        if i >= n or times[i] != t:
            # The replay visits timestamps in order: the next step is the
            # overwhelmingly common miss, so try it before binary search.
            if i + 1 < n and times[i + 1] == t:
                i += 1
            else:
                i = int(np.searchsorted(times, t))
                if i >= n or times[i] != t:
                    return self._traces[workstation_id].idle_time_at(t)
            self._cursor = i
        return float(self._idle[workstation_id][i])


@dataclass
class ReplayReport:
    """Summary of a replayed day.

    Attributes
    ----------
    actions:
        Every controller action (deauthentications and alerts) in order.
    final_states:
        The session state of every workstation at the end of the day.
    deauthentications:
        Number of Rule-1 deauthentications.
    alerts:
        Number of Rule-2 alert activations.
    screensavers:
        Number of screen-saver activations across all sessions.
    """

    actions: List[ControllerAction] = field(default_factory=list)
    final_states: Dict[str, SessionState] = field(default_factory=dict)
    deauthentications: int = 0
    alerts: int = 0
    screensavers: int = 0


class FadewichSystem:
    """The assembled FADEWICH deployment.

    Parameters
    ----------
    stream_ids:
        The monitored RSSI streams (fixing the RE feature layout).
    workstation_ids:
        The protected workstations.
    config:
        System configuration.
    sample_rate_hz:
        Sampling rate of the incoming RSSI stream.
    random_state:
        Seed forwarded to the stochastic components.
    """

    def __init__(
        self,
        stream_ids: Sequence[str],
        workstation_ids: Sequence[str],
        config: Optional[FadewichConfig] = None,
        *,
        sample_rate_hz: float = 4.0,
        random_state: Optional[int] = None,
    ) -> None:
        if not workstation_ids:
            raise ValueError("at least one workstation is required")
        self._config = config if config is not None else FadewichConfig()
        self._rate = sample_rate_hz
        self._stream_ids = list(stream_ids)
        self._workstation_ids = list(workstation_ids)
        self._re = RadioEnvironment(
            stream_ids=self._stream_ids,
            config=self._config.re,
            random_state=random_state,
        )
        self._detector = MovementDetector(
            self._stream_ids, self._config.md, sample_rate_hz
        )
        # Buffer holding the most recent samples, long enough to cover the
        # [t1, t1 + t_delta] feature window when Rule 1 fires.
        window_samples = max(
            int(round(self._config.t_delta_s * sample_rate_hz)) + 2, 4
        )
        self._recent = StreamBuffer(self._stream_ids, maxlen=window_samples)
        self._kma: Optional[KeyboardMouseActivity] = None
        self._controller: Optional[FadewichController] = None
        self._sessions: Dict[str, WorkstationSession] = {}

    # ------------------------------------------------------------------ #
    @property
    def config(self) -> FadewichConfig:
        return self._config

    @property
    def radio_environment(self) -> RadioEnvironment:
        return self._re

    @property
    def detector(self) -> MovementDetector:
        return self._detector

    @property
    def sessions(self) -> Dict[str, WorkstationSession]:
        return dict(self._sessions)

    @property
    def controller_state(self) -> Optional[ControllerState]:
        return self._controller.state if self._controller else None

    # ------------------------------------------------------------------ #
    def train(self, dataset: SampleDataset) -> "FadewichSystem":
        """Train the RE classifier from a labelled sample dataset."""
        self._re.fit(dataset)
        return self

    def attach_idle_provider(self, provider) -> "FadewichSystem":
        """Connect the KMA idle-time source and build the control plane."""
        self._kma = KeyboardMouseActivity(provider)
        self._sessions = {
            wid: WorkstationSession(wid, t_id_s=self._config.t_id_s)
            for wid in self._workstation_ids
        }
        self._controller = FadewichController(
            config=self._config,
            kma=self._kma,
            sessions=self._sessions,
            entry_label=ENTRY_LABEL,
        )
        return self

    # ------------------------------------------------------------------ #
    def _classify_recent_window(self) -> str:
        """Classify the feature window ending at the current instant."""
        if not self._re.is_trained:
            # An untrained RE cannot name a workstation; reporting an office
            # entry is the safe, do-nothing prediction.
            return ENTRY_LABEL
        n = self._recent.fill_level()
        if n < 2:
            return ENTRY_LABEL
        windows = self._recent.windows()
        features = self._re.extractor.extract(windows)
        return self._re.classify(features)

    def process_sample(self, t: float, sample: Mapping[str, float]) -> ControllerState:
        """Feed one multi-stream RSSI sample into the live system."""
        if self._controller is None or self._kma is None:
            raise RuntimeError(
                "call attach_idle_provider() before processing samples"
            )
        self._recent.append(sample)
        self._detector.process(t, sample)
        d_wt = self._detector.current_window_duration(t)
        return self._controller.step(t, d_wt, self._classify_recent_window)

    # ------------------------------------------------------------------ #
    def _validate_replay_day(self, day: DayRecording) -> None:
        if not day.trace.streams:
            raise ValueError(
                "cannot replay a day whose trace has no RSSI streams"
            )
        if day.trace.n_samples == 0:
            raise ValueError(
                "cannot replay a day whose trace has no samples"
            )

    def _replay_report(self) -> ReplayReport:
        assert self._controller is not None
        return ReplayReport(
            actions=self._controller.actions,
            final_states={wid: s.state for wid, s in self._sessions.items()},
            deauthentications=self._controller.deauthentication_count(),
            alerts=self._controller.alert_count(),
            screensavers=sum(
                s.screensaver_activations() for s in self._sessions.values()
            ),
        )

    def replay_day(self, day: DayRecording) -> ReplayReport:
        """Replay a recorded day through the full system (array fast path).

        The day's activity traces provide both the KMA idle times and the
        session input events (cancelling alerts / screen savers).

        The whole day is handed to the streaming detection kernel
        (:class:`~repro.streaming.detector.OnlineDetector`) as one batch:
        the std-sum series, anomaly decisions and per-step window
        durations come back as arrays (bit-identical to feeding
        :meth:`process_sample` each sample — see
        :meth:`replay_day_scalar`), and the controller consumes them in a
        lean loop with precomputed idle times and input flags.  RE is only
        invoked at the instants Rule 1 fires, on the same sample windows
        the online buffer would hold.  Note the system's online
        :attr:`detector` state is bypassed (not advanced) on this path; use
        :meth:`replay_day_scalar` for step-level introspection.

        Raises
        ------
        ValueError
            If the day's trace has no streams or no samples — there is
            nothing to replay, and silently returning an empty report would
            mask a broken recording.
        """
        self._validate_replay_day(day)
        trace = day.trace.restricted_to(self._stream_ids)
        times = trace.times
        n = times.shape[0]
        self.attach_idle_provider(_GridIdleProvider(day.activity, times))
        assert self._controller is not None
        cfg = self._config

        matrix = np.column_stack([trace.streams[sid] for sid in self._stream_ids])
        columns = [np.ascontiguousarray(matrix[:, j]) for j in range(matrix.shape[1])]

        # MD through the streaming kernel: one recorded day is simply the
        # whole stream delivered as a single batch.  The kernel returns the
        # online tracker's s_t series (partial windows included), the
        # profile decisions and the per-step dW_t.
        from ..streaming.detector import OnlineDetector

        kernel = OnlineDetector(
            self._stream_ids, cfg.md, sample_rate_hz=self._rate
        )
        durations = kernel.process_block(times, matrix).durations

        # Per-step keyboard/mouse input flags for every workstation.
        interval_starts = np.empty(n)
        interval_starts[0] = float(times[0]) - 1.0 / self._rate
        interval_starts[1:] = times[:-1]
        inputs = {
            wid: day.activity[wid].has_input_in_many(interval_starts, times)
            for wid in self._sessions
        }

        # RE classification of the recent-sample window, only materialised
        # at the instants Rule 1 queries it.
        maxlen = self._recent.maxlen
        current_step = [0]

        def classify_current_window() -> str:
            i = current_step[0]
            fill = min(i + 1, maxlen)
            if not self._re.is_trained or fill < 2:
                return ENTRY_LABEL
            windows = {
                sid: col[i + 1 - fill : i + 1]
                for sid, col in zip(self._stream_ids, columns)
            }
            return self._re.classify(self._re.extractor.extract(windows))

        sessions = list(self._sessions.items())
        controller = self._controller
        for i in range(n):
            current_step[0] = i
            t = float(times[i])
            controller.step(t, float(durations[i]), classify_current_window)
            # Forward keyboard/mouse input to the sessions so alerts cancel
            # and deauthenticated users eventually log back in.
            for wid, session in sessions:
                if inputs[wid][i]:
                    if session.state is SessionState.DEAUTHENTICATED:
                        session.reauthenticate(t)
                    else:
                        session.register_input(t)
        return self._replay_report()

    def replay_day_scalar(self, day: DayRecording) -> ReplayReport:
        """Per-sample reference replay (the live-system path, step by step).

        Semantics reference for :meth:`replay_day`: feeds every sample
        through :meth:`process_sample` exactly like the deployed system.
        The equivalence tests pin the array fast path against it.
        """
        self._validate_replay_day(day)
        provider = TraceIdleProvider(day.activity)
        self.attach_idle_provider(provider)
        assert self._controller is not None

        trace = day.trace.restricted_to(self._stream_ids)
        times = trace.times
        # Precompute the per-step sample rows once: a (n_steps, n_streams)
        # matrix turned into row lists is far cheaper than indexing every
        # stream's numpy array element by element at every step.
        matrix = np.column_stack([trace.streams[sid] for sid in self._stream_ids])
        rows = matrix.tolist()
        prev_t = float(times[0]) - 1.0 / self._rate
        for i in range(times.shape[0]):
            t = float(times[i])
            sample = dict(zip(self._stream_ids, rows[i]))
            self.process_sample(t, sample)
            # Forward keyboard/mouse input to the sessions so alerts cancel
            # and deauthenticated users eventually log back in.
            for wid, session in self._sessions.items():
                if day.activity[wid].has_input_in(prev_t, t):
                    if session.state is SessionState.DEAUTHENTICATED:
                        session.reauthenticate(t)
                    else:
                        session.register_input(t)
            prev_t = t
        return self._replay_report()

"""Ground-truth movement events.

During the paper's data collection a human supervisor recorded when users
stepped away from their workstations and when they entered or exited the
room.  The simulator plays the supervisor's role: every scheduled behaviour
emits ground-truth events that the evaluation uses to score MD (TP/FP/FN)
and to label RE training samples.

Event label convention (paper Section IV-D2):

* ``w0`` — somebody entered the office,
* ``wi`` (i >= 1) — the user assigned to workstation ``wi`` left its
  proximity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["EventKind", "GroundTruthEvent", "EventLog", "ENTRY_LABEL"]

ENTRY_LABEL = "w0"
"""Label the paper assigns to 'a user entered the office' events."""


class EventKind(enum.Enum):
    """Kinds of ground-truth movement events."""

    DEPARTURE = "departure"
    """A user left the proximity of their workstation (and exits the room)."""

    ENTRY = "entry"
    """A user entered the office through the door (and sits down)."""

    INTERNAL_MOVE = "internal_move"
    """A user moved inside the office without leaving (e.g. visiting a
    colleague's desk); generates fluctuations but is not a departure."""


@dataclass(frozen=True)
class GroundTruthEvent:
    """One supervised movement event.

    Attributes
    ----------
    kind:
        What happened.
    time:
        The instant the user left the workstation proximity (departures) or
        crossed the door (entries), in seconds from the campaign start.
    user_id:
        The moving user.
    workstation_id:
        The user's assigned workstation (``None`` for visitors).
    exit_time:
        For departures: when the user crossed the door and left the room.
    label:
        The RE class label of the event (``w0`` for entries, the
        workstation id for departures, ``None`` for internal moves, which
        the paper does not label).
    """

    kind: EventKind
    time: float
    user_id: str
    workstation_id: Optional[str] = None
    exit_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if self.exit_time is not None and self.exit_time < self.time:
            raise ValueError("exit_time cannot precede the event time")

    @property
    def label(self) -> Optional[str]:
        if self.kind is EventKind.ENTRY:
            return ENTRY_LABEL
        if self.kind is EventKind.DEPARTURE:
            return self.workstation_id
        return None


class EventLog:
    """An ordered collection of ground-truth events."""

    def __init__(self, events: Sequence[GroundTruthEvent] = ()) -> None:
        self._events: List[GroundTruthEvent] = sorted(events, key=lambda e: e.time)

    def add(self, event: GroundTruthEvent) -> None:
        """Insert an event keeping chronological order."""
        self._events.append(event)
        self._events.sort(key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, idx: int) -> GroundTruthEvent:
        return self._events[idx]

    @property
    def events(self) -> List[GroundTruthEvent]:
        return list(self._events)

    def departures(self) -> List[GroundTruthEvent]:
        """All departure events (the attack-relevant ones)."""
        return [e for e in self._events if e.kind is EventKind.DEPARTURE]

    def entries(self) -> List[GroundTruthEvent]:
        """All office-entry events."""
        return [e for e in self._events if e.kind is EventKind.ENTRY]

    def labelled(self) -> List[GroundTruthEvent]:
        """Events that carry an RE label (departures and entries)."""
        return [e for e in self._events if e.label is not None]

    def label_counts(self) -> dict:
        """Histogram of labels, the content of the paper's Table II."""
        counts: dict = {}
        for e in self.labelled():
            counts[e.label] = counts.get(e.label, 0) + 1
        return counts

    def in_interval(self, t_start: float, t_end: float) -> List[GroundTruthEvent]:
        """Events whose time lies in ``[t_start, t_end]``."""
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        return [e for e in self._events if t_start <= e.time <= t_end]

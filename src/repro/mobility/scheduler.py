"""Day / campaign movement schedules.

The scheduler draws, ahead of time, every movement that will happen during a
simulated working day: user departures (followed by a later return), the
resulting office entries, and internal (non-departure) moves.  Planned
movements never overlap — the paper registered no overlapping movements in
its 40-hour campaign, and keeping the generator overlap-free makes the
labelled data directly comparable (overlap handling is still exercised by
dedicated tests and examples through manually built schedules).

The output is a :class:`CampaignSchedule`: a chronological list of
:class:`PlannedMovement` records the campaign simulator executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..radio.office import OfficeLayout
from .behavior import AbsenceSampler, BehaviorProfile
from .events import EventKind

__all__ = ["PlannedMovement", "DaySchedule", "CampaignSchedule", "ScheduleGenerator"]


@dataclass(frozen=True)
class PlannedMovement:
    """One planned movement of one user.

    Attributes
    ----------
    kind:
        Departure, entry, or internal move.
    user_id:
        The moving user.
    workstation_id:
        The user's assigned workstation (if any).
    start_time:
        When the movement starts, in seconds from campaign start.
    absence_s:
        For departures: how long the user stays out of the office.
    """

    kind: EventKind
    user_id: str
    workstation_id: Optional[str]
    start_time: float
    absence_s: float = 0.0

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        if self.absence_s < 0:
            raise ValueError("absence_s must be non-negative")


@dataclass
class DaySchedule:
    """All planned movements of one working day, in chronological order."""

    day_index: int
    duration_s: float
    movements: List[PlannedMovement] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.movements.sort(key=lambda m: m.start_time)

    def departures(self) -> List[PlannedMovement]:
        return [m for m in self.movements if m.kind is EventKind.DEPARTURE]

    def entries(self) -> List[PlannedMovement]:
        return [m for m in self.movements if m.kind is EventKind.ENTRY]


@dataclass
class CampaignSchedule:
    """A multi-day campaign: one :class:`DaySchedule` per working day."""

    days: List[DaySchedule]

    @property
    def n_days(self) -> int:
        return len(self.days)

    @property
    def total_movements(self) -> int:
        return sum(len(d.movements) for d in self.days)

    def label_counts(self) -> Dict[str, int]:
        """Expected Table-II-style label histogram of the planned campaign."""
        counts: Dict[str, int] = {}
        for day in self.days:
            for m in day.movements:
                if m.kind is EventKind.ENTRY:
                    counts["w0"] = counts.get("w0", 0) + 1
                elif m.kind is EventKind.DEPARTURE and m.workstation_id:
                    counts[m.workstation_id] = counts.get(m.workstation_id, 0) + 1
        return counts


class ScheduleGenerator:
    """Draws overlap-free campaign schedules for an office and its users.

    Parameters
    ----------
    layout:
        The office; its workstations define the resident users (one user per
        workstation, as in the paper).
    profiles:
        Optional per-workstation behaviour profiles; a shared default is
        used when omitted.
    min_gap_s:
        Minimum temporal separation enforced between any two movements
        (measured between movement start times), so the generated campaign
        contains no overlaps.
    first_movement_s:
        Earliest allowed movement start; the quiet lead-in lets the MD
        module initialise its normal profile, mirroring the paper's
        adversary-free installation phase.
    rng:
        Random generator.
    """

    def __init__(
        self,
        layout: OfficeLayout,
        profiles: Optional[Dict[str, BehaviorProfile]] = None,
        *,
        min_gap_s: float = 45.0,
        first_movement_s: float = 120.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if min_gap_s < 0:
            raise ValueError("min_gap_s must be non-negative")
        if first_movement_s < 0:
            raise ValueError("first_movement_s must be non-negative")
        self._layout = layout
        self._rng = rng if rng is not None else np.random.default_rng()
        self._min_gap = min_gap_s
        self._first_movement_s = first_movement_s
        self._profiles: Dict[str, BehaviorProfile] = {}
        for w in layout.workstations:
            if profiles and w.workstation_id in profiles:
                self._profiles[w.workstation_id] = profiles[w.workstation_id]
            else:
                self._profiles[w.workstation_id] = BehaviorProfile()

    # ------------------------------------------------------------------ #
    @staticmethod
    def user_for(workstation_id: str) -> str:
        """Deterministic user id for a workstation (``w1`` -> ``u1``)."""
        return "u" + workstation_id.lstrip("w")

    def _conflicts(self, t: float, busy: Sequence[float]) -> bool:
        return any(abs(t - b) < self._min_gap for b in busy)

    def generate_day(self, day_index: int, duration_s: float = 8 * 3600.0) -> DaySchedule:
        """Draw one day's worth of movements.

        Departures are drawn as a Poisson process per user and processed in
        chronological order so each user's timeline is consistent: a user
        who is out of the office cannot depart again before their return,
        and every accepted departure is paired with the matching office
        entry.  Internal moves are only scheduled while the user is at their
        desk.  Movements that would violate the overlap gap are shifted or
        dropped.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        movements: List[PlannedMovement] = []
        busy_times: List[float] = []
        latest_start = duration_s - 120.0
        if latest_start <= self._first_movement_s:
            raise ValueError(
                "day too short for the configured first_movement_s lead-in"
            )

        for workstation_id, profile in self._profiles.items():
            user_id = self.user_for(workstation_id)
            sampler = AbsenceSampler(profile, self._rng)
            hours = duration_s / 3600.0

            # Per-user absence bookkeeping keeps the timeline consistent and
            # lets internal moves avoid periods when the user is away.
            absences: List[Tuple[float, float]] = []
            available_from = self._first_movement_s

            n_departures = self._rng.poisson(profile.departures_per_hour * hours)
            departure_times = sorted(
                float(self._rng.uniform(self._first_movement_s, latest_start))
                for _ in range(int(n_departures))
            )
            for t in departure_times:
                if t < available_from:
                    continue
                if self._conflicts(t, busy_times):
                    continue
                absence = sampler.sample()
                movements.append(
                    PlannedMovement(
                        kind=EventKind.DEPARTURE,
                        user_id=user_id,
                        workstation_id=workstation_id,
                        start_time=t,
                        absence_s=absence,
                    )
                )
                busy_times.append(t)

                # The matching return generates an entry event; shift it
                # later (in min_gap steps) if it would overlap another
                # movement.
                t_return = t + absence
                returned = False
                for shift in range(10):
                    candidate = t_return + shift * max(self._min_gap, 1.0)
                    if candidate >= duration_s - 60.0:
                        break
                    if not self._conflicts(candidate, busy_times):
                        movements.append(
                            PlannedMovement(
                                kind=EventKind.ENTRY,
                                user_id=user_id,
                                workstation_id=workstation_id,
                                start_time=candidate,
                            )
                        )
                        busy_times.append(candidate)
                        absences.append((t, candidate + 30.0))
                        available_from = candidate + 30.0
                        returned = True
                        break
                if not returned:
                    # The user stays out for the rest of the day.
                    absences.append((t, duration_s))
                    available_from = duration_s

            n_internal = self._rng.poisson(profile.internal_moves_per_hour * hours)
            for _ in range(int(n_internal)):
                for _attempt in range(20):
                    t = float(
                        self._rng.uniform(self._first_movement_s, latest_start)
                    )
                    away = any(start <= t <= end for start, end in absences)
                    if not away and not self._conflicts(t, busy_times):
                        break
                else:
                    continue
                movements.append(
                    PlannedMovement(
                        kind=EventKind.INTERNAL_MOVE,
                        user_id=user_id,
                        workstation_id=workstation_id,
                        start_time=t,
                    )
                )
                busy_times.append(t)

        return DaySchedule(
            day_index=day_index, duration_s=duration_s, movements=movements
        )

    def generate_campaign(
        self, n_days: int = 5, day_duration_s: float = 8 * 3600.0
    ) -> CampaignSchedule:
        """Draw a multi-day campaign (the paper collects 5 working days)."""
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        days = [self.generate_day(i, day_duration_s) for i in range(n_days)]
        return CampaignSchedule(days=days)

"""Human mobility substrate.

Replaces the paper's three real users observed for five working days with a
behavioural simulator (see DESIGN.md):

* :mod:`~repro.mobility.person` — user state machines (seated / walking /
  absent) with seat fidgeting,
* :mod:`~repro.mobility.trajectory` — constant-speed walks through
  waypoints, including departure / entry trajectories,
* :mod:`~repro.mobility.behavior` — departure rates and absence durations,
* :mod:`~repro.mobility.scheduler` — overlap-free day / campaign schedules,
* :mod:`~repro.mobility.events` — the ground-truth event log the evaluation
  scores against.
"""

from .behavior import AbsenceSampler, BehaviorProfile
from .events import ENTRY_LABEL, EventKind, EventLog, GroundTruthEvent
from .person import Person, PresenceState
from .scheduler import (
    CampaignSchedule,
    DaySchedule,
    PlannedMovement,
    ScheduleGenerator,
)
from .trajectory import (
    Trajectory,
    departure_trajectory,
    entry_trajectory,
    walk_through,
)

__all__ = [
    "ENTRY_LABEL",
    "AbsenceSampler",
    "BehaviorProfile",
    "CampaignSchedule",
    "DaySchedule",
    "EventKind",
    "EventLog",
    "GroundTruthEvent",
    "Person",
    "PlannedMovement",
    "PresenceState",
    "ScheduleGenerator",
    "Trajectory",
    "departure_trajectory",
    "entry_trajectory",
    "walk_through",
]

"""People in the office.

A :class:`Person` has an identity, an optional assigned workstation, and a
time-varying presence: either seated at their workstation (with small
fidgeting around the seat), walking along a trajectory, or absent from the
room.  The radio channel only needs body positions, so a person's state is
fully described by "where is the body at time t, if inside the office".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..radio.geometry import Point
from .trajectory import Trajectory

__all__ = ["PresenceState", "Person"]


class PresenceState(enum.Enum):
    """Where a person currently is."""

    SEATED = "seated"
    WALKING = "walking"
    ABSENT = "absent"


@dataclass
class Person:
    """One office user (or visitor).

    Parameters
    ----------
    user_id:
        Identifier such as ``"u1"``.
    workstation_id:
        Assigned workstation id, or ``None`` for visitors.
    seat:
        The seat position the person occupies when seated.
    fidget_sigma_m:
        Standard deviation (metres) of the small random offsets around the
        seat while seated — people shift in their chairs, lean and reach,
        which perturbs nearby links slightly without being a departure.
    initial_state:
        The person's presence state at campaign start.
    """

    user_id: str
    workstation_id: Optional[str]
    seat: Point
    fidget_sigma_m: float = 0.05
    fidget_interval_s: float = 10.0
    initial_state: PresenceState = PresenceState.SEATED

    _state: PresenceState = field(init=False)
    _trajectory: Optional[Trajectory] = field(init=False, default=None)
    _after_walk_state: PresenceState = field(init=False, default=PresenceState.ABSENT)
    _fidget_offset: tuple = field(init=False, default=(0.0, 0.0))
    _next_fidget_t: Optional[float] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.fidget_sigma_m < 0:
            raise ValueError("fidget_sigma_m must be non-negative")
        if self.fidget_interval_s <= 0:
            raise ValueError("fidget_interval_s must be positive")
        self._state = self.initial_state

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> PresenceState:
        return self._state

    @property
    def trajectory(self) -> Optional[Trajectory]:
        return self._trajectory

    def start_walk(
        self, trajectory: Trajectory, ends_as: PresenceState
    ) -> None:
        """Begin walking along ``trajectory``; end in state ``ends_as``.

        ``ends_as`` is ``ABSENT`` for departures (the walk ends at the door
        and the person leaves) and ``SEATED`` for entries / internal moves
        (the walk ends at a seat).
        """
        if ends_as is PresenceState.WALKING:
            raise ValueError("a walk cannot end in the WALKING state")
        self._trajectory = trajectory
        self._after_walk_state = ends_as
        self._state = PresenceState.WALKING

    def update(self, t: float) -> None:
        """Advance the person's state machine to time ``t``."""
        if self._state is PresenceState.WALKING and self._trajectory is not None:
            if t >= self._trajectory.end_time:
                if self._after_walk_state is PresenceState.SEATED:
                    # The walk's final waypoint becomes the new seat (supports
                    # internal moves to another desk).
                    self.seat = self._trajectory.waypoints[-1]
                self._state = self._after_walk_state
                self._trajectory = None

    def position_at(
        self, t: float, rng: Optional[np.random.Generator] = None
    ) -> Optional[Point]:
        """Body position at time ``t``, or ``None`` if outside the office.

        Seated people are quasi-static: they hold a small offset around the
        seat that is resampled only every ``fidget_interval_s`` seconds on
        average (shifting in the chair, leaning towards the screen).  High
        frequency jitter would be unphysical and would mask the fluctuation
        signature of real walks.
        """
        if self._state is PresenceState.ABSENT:
            return None
        if self._state is PresenceState.WALKING and self._trajectory is not None:
            return self._trajectory.position_at(t)
        # Seated: seat position plus the current (slowly varying) offset.
        if rng is not None and self.fidget_sigma_m > 0:
            if self._next_fidget_t is None or t >= self._next_fidget_t:
                dx, dy = rng.normal(0.0, self.fidget_sigma_m, 2)
                self._fidget_offset = (float(dx), float(dy))
                self._next_fidget_t = t + rng.exponential(self.fidget_interval_s)
            return self.seat.translated(*self._fidget_offset)
        return self.seat

    def positions_over(
        self,
        times: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        walks: Sequence[Tuple[int, Trajectory, "PresenceState"]] = (),
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Replay this person's presence over a whole timestamp grid at once.

        The batch counterpart of the per-step ``update`` / ``position_at``
        protocol: given the walk assignments of a day, it reproduces — draw
        for draw and step for step — the positions the scalar state machine
        would produce, but vectorised over movement-delimited segments
        (walk legs evaluate through :meth:`Trajectory.positions_at`, seated
        spans are piecewise-constant between fidget resamples, absences are
        masked out).

        Parameters
        ----------
        times:
            The day's timestamp grid (strictly increasing).
        rng:
            The person's dedicated fidget stream.  The scalar path must pass
            the *same* stream to :meth:`position_at` for the outputs to be
            identical.
        walks:
            ``(fire_index, trajectory, ends_as)`` triples in firing order:
            at grid step ``fire_index`` the person starts walking along
            ``trajectory`` and, once the walk completes, transitions to
            ``ends_as`` (mirroring :meth:`start_walk`).

        Returns
        -------
        (xy, present, walking):
            ``xy`` is an ``(n_steps, 2)`` position array (rows where the
            person is absent hold the current seat as a finite placeholder),
            ``present`` and ``walking`` are boolean masks per step.

        The person itself is not mutated; replay starts from the current
        state.
        """
        times = np.asarray(times, dtype=float)
        n = times.shape[0]
        xy = np.empty((n, 2))
        present = np.zeros(n, dtype=bool)
        walking = np.zeros(n, dtype=bool)

        state = self._state
        seat_x, seat_y = self.seat.x, self.seat.y
        traj = self._trajectory
        after_state = self._after_walk_state
        offset = self._fidget_offset
        next_fidget_t = self._next_fidget_t
        fidget = rng is not None and self.fidget_sigma_m > 0

        walk_list = list(walks)
        wi = 0  # next walk assignment to fire
        k = 0
        while k < n:
            next_fire = walk_list[wi][0] if wi < len(walk_list) else n
            if next_fire <= k:
                # Movements are processed before the state update at a step,
                # so a firing walk replaces any walk still in flight.
                _, traj, after_state = walk_list[wi]
                state = PresenceState.WALKING
                wi += 1
                continue
            if state is PresenceState.WALKING and traj is not None:
                k_end = int(np.searchsorted(times, traj.end_time, side="left"))
                if k_end <= k:
                    # The walk completes at this step (update() semantics).
                    if after_state is PresenceState.SEATED:
                        last = traj.waypoints[-1]
                        seat_x, seat_y = last.x, last.y
                    state = after_state
                    traj = None
                    continue
                stop = min(next_fire, k_end, n)
                xy[k:stop] = traj.positions_at(times[k:stop])
                present[k:stop] = True
                walking[k:stop] = True
                k = stop
                continue
            stop = min(next_fire, n)
            if state is PresenceState.ABSENT:
                xy[k:stop, 0] = seat_x
                xy[k:stop, 1] = seat_y
                k = stop
                continue
            # Seated: piecewise-constant around the seat, resampling the
            # fidget offset exactly when the scalar path would.
            present[k:stop] = True
            if not fidget:
                xy[k:stop, 0] = seat_x
                xy[k:stop, 1] = seat_y
                k = stop
                continue
            kk = k
            floor_idx = kk
            while kk < stop:
                if next_fidget_t is None:
                    draw_idx = floor_idx
                else:
                    draw_idx = max(
                        floor_idx,
                        int(np.searchsorted(times, next_fidget_t, side="left")),
                    )
                if draw_idx >= stop:
                    xy[kk:stop, 0] = seat_x + offset[0]
                    xy[kk:stop, 1] = seat_y + offset[1]
                    kk = stop
                    break
                xy[kk:draw_idx, 0] = seat_x + offset[0]
                xy[kk:draw_idx, 1] = seat_y + offset[1]
                dx, dy = rng.normal(0.0, self.fidget_sigma_m, 2)
                offset = (float(dx), float(dy))
                next_fidget_t = float(times[draw_idx]) + float(
                    rng.exponential(self.fidget_interval_s)
                )
                kk = draw_idx
                floor_idx = draw_idx + 1
            k = stop
        return xy, present, walking

    def is_present(self) -> bool:
        """Whether the person is currently inside the office."""
        return self._state is not PresenceState.ABSENT

    def mark_absent(self) -> None:
        """Force the person out of the office (e.g. campaign initialisation)."""
        self._state = PresenceState.ABSENT
        self._trajectory = None

    def mark_seated(self, seat: Optional[Point] = None) -> None:
        """Force the person to a seat (e.g. campaign initialisation)."""
        if seat is not None:
            self.seat = seat
        self._state = PresenceState.SEATED
        self._trajectory = None

    def history_snapshot(self) -> List[str]:
        """A short human-readable description of the current state."""
        desc = [f"user={self.user_id}", f"state={self._state.value}"]
        if self.workstation_id:
            desc.append(f"workstation={self.workstation_id}")
        return desc

"""Walking trajectories through the office.

A trajectory is a time-parameterised path through waypoints.  The paper's
analysis assumes a walking speed of roughly 1.4 m/s plus a second or two to
stand up and open the door (Section VII-A, motivating the ~5 s peak of the
F-measure over t_delta).

Trajectories are pure data plus interpolation; the behaviour layer decides
*which* trajectories occur and when.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..radio.geometry import Point, interpolate

__all__ = ["Trajectory", "walk_through", "departure_trajectory", "entry_trajectory"]


@dataclass(frozen=True)
class Trajectory:
    """A piecewise-linear, constant-speed walk through waypoints.

    Attributes
    ----------
    start_time:
        When the walk begins (seconds).
    waypoints:
        Points visited in order.  Consecutive duplicate points are allowed
        and represent a pause only if ``segment_durations`` says so.
    segment_durations:
        Duration of each leg (len(waypoints) - 1 entries, seconds).
    """

    start_time: float
    waypoints: Tuple[Point, ...]
    segment_durations: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        if len(self.segment_durations) != len(self.waypoints) - 1:
            raise ValueError("need exactly one duration per segment")
        if any(d < 0 for d in self.segment_durations):
            raise ValueError("segment durations must be non-negative")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")

    @property
    def duration(self) -> float:
        """Total duration of the walk (seconds)."""
        return float(sum(self.segment_durations))

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    def active_at(self, t: float) -> bool:
        """Whether the walker is en route at time ``t``."""
        return self.start_time <= t <= self.end_time

    def _interp_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(cums, durs, wx, wy)`` arrays, built once and cached.

        The cumulative boundaries come from a sequential running sum so the
        scalar and vectorised interpolation paths resolve a time to
        *exactly* the same segment and fraction.  Cached on the (frozen)
        instance because both engines call into these on hot paths.
        """
        cached = self.__dict__.get("_interp_cache")
        if cached is None:
            acc = 0.0
            cums: List[float] = []
            for d in self.segment_durations:
                acc = acc + d
                cums.append(acc)
            cached = (
                np.asarray(cums),
                np.asarray(self.segment_durations),
                np.asarray([p.x for p in self.waypoints]),
                np.asarray([p.y for p in self.waypoints]),
            )
            object.__setattr__(self, "_interp_cache", cached)
        return cached

    def position_at(self, t: float) -> Point:
        """Walker position at time ``t``.

        Before the start the walker is at the first waypoint, after the end
        at the last waypoint.  Equivalent to ``positions_at([t])[0]`` — both
        paths share the cumulative-boundary arithmetic.
        """
        if t <= self.start_time:
            return self.waypoints[0]
        if t >= self.end_time:
            return self.waypoints[-1]
        elapsed = t - self.start_time
        cums, _, _, _ = self._interp_arrays()
        idx = int(np.searchsorted(cums, elapsed, side="left"))
        idx = min(idx, cums.shape[0] - 1)
        seg_start = float(cums[idx - 1]) if idx > 0 else 0.0
        seg_dur = self.segment_durations[idx]
        frac = 1.0 if seg_dur <= 0 else min((elapsed - seg_start) / seg_dur, 1.0)
        return interpolate(self.waypoints[idx], self.waypoints[idx + 1], frac)

    def positions_at(self, times) -> np.ndarray:
        """Walker positions for a whole array of times at once.

        Parameters
        ----------
        times:
            Array-like of timestamps (seconds).

        Returns
        -------
        ndarray of shape ``(len(times), 2)``
            The ``(x, y)`` position at every timestamp.  Matches
            :meth:`position_at` pointwise exactly: both use the same
            cumulative segment boundaries and interpolation expression.
        """
        t = np.asarray(times, dtype=float)
        if t.ndim != 1:
            raise ValueError("times must be one-dimensional")
        elapsed = t - self.start_time
        cums, durs, wx, wy = self._interp_arrays()
        n_segs = durs.shape[0]
        idx = np.searchsorted(cums, elapsed, side="left")
        idx = np.minimum(idx, n_segs - 1)
        seg_start = np.where(idx > 0, cums[np.maximum(idx - 1, 0)], 0.0)
        seg_dur = durs[idx]
        safe_dur = np.where(seg_dur > 0, seg_dur, 1.0)
        with np.errstate(over="ignore"):
            # A near-zero segment duration can overflow the division; the
            # resulting inf clamps to 1.0 exactly as the scalar path does.
            frac = np.where(
                seg_dur > 0, np.minimum((elapsed - seg_start) / safe_dur, 1.0), 1.0
            )
        frac = np.minimum(1.0, np.maximum(0.0, frac))

        x = wx[idx] + (wx[idx + 1] - wx[idx]) * frac
        y = wy[idx] + (wy[idx + 1] - wy[idx]) * frac

        before = t <= self.start_time
        after = t >= self.end_time
        x = np.where(before, wx[0], np.where(after, wx[-1], x))
        y = np.where(before, wy[0], np.where(after, wy[-1], y))
        return np.column_stack([x, y])


def walk_through(
    waypoints: Sequence[Point],
    start_time: float,
    speed_mps: float = 1.4,
    pauses: Optional[Sequence[float]] = None,
) -> Trajectory:
    """Build a constant-speed trajectory through the given waypoints.

    Parameters
    ----------
    waypoints:
        Points to visit in order.
    start_time:
        Walk start time in seconds.
    speed_mps:
        Walking speed; the paper assumes 1.4 m/s.
    pauses:
        Optional extra dwell added to each leg (e.g. the time to stand up on
        the first leg, or to open the door on the last).  Must have
        ``len(waypoints) - 1`` entries when given.
    """
    if speed_mps <= 0:
        raise ValueError("walking speed must be positive")
    pts = list(waypoints)
    if len(pts) < 2:
        raise ValueError("need at least two waypoints")
    n_legs = len(pts) - 1
    if pauses is None:
        pauses = [0.0] * n_legs
    if len(pauses) != n_legs:
        raise ValueError("pauses must have one entry per leg")
    durations: List[float] = []
    for i in range(n_legs):
        dist = pts[i].distance_to(pts[i + 1])
        durations.append(dist / speed_mps + float(pauses[i]))
    return Trajectory(
        start_time=start_time,
        waypoints=tuple(pts),
        segment_durations=tuple(durations),
    )


def departure_trajectory(
    seat: Point,
    door: Point,
    start_time: float,
    *,
    speed_mps: float = 1.4,
    stand_up_s: float = 1.0,
    door_open_s: float = 1.0,
    via: Optional[Sequence[Point]] = None,
) -> Trajectory:
    """Trajectory of a user leaving their seat and exiting through the door.

    The first leg includes the stand-up time and the final leg the time to
    open the door, matching the paper's reasoning that a 4-metre walk takes
    about five seconds in total.
    """
    waypoints: List[Point] = [seat]
    if via:
        waypoints.extend(via)
    waypoints.append(door)
    n_legs = len(waypoints) - 1
    pauses = [0.0] * n_legs
    pauses[0] += stand_up_s
    pauses[-1] += door_open_s
    return walk_through(waypoints, start_time, speed_mps=speed_mps, pauses=pauses)


def entry_trajectory(
    door: Point,
    seat: Point,
    start_time: float,
    *,
    speed_mps: float = 1.4,
    door_open_s: float = 1.0,
    sit_down_s: float = 1.0,
    via: Optional[Sequence[Point]] = None,
) -> Trajectory:
    """Trajectory of a user entering through the door and sitting down."""
    waypoints: List[Point] = [door]
    if via:
        waypoints.extend(via)
    waypoints.append(seat)
    n_legs = len(waypoints) - 1
    pauses = [0.0] * n_legs
    pauses[0] += door_open_s
    pauses[-1] += sit_down_s
    return walk_through(waypoints, start_time, speed_mps=speed_mps, pauses=pauses)

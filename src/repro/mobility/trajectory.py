"""Walking trajectories through the office.

A trajectory is a time-parameterised path through waypoints.  The paper's
analysis assumes a walking speed of roughly 1.4 m/s plus a second or two to
stand up and open the door (Section VII-A, motivating the ~5 s peak of the
F-measure over t_delta).

Trajectories are pure data plus interpolation; the behaviour layer decides
*which* trajectories occur and when.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..radio.geometry import Point, interpolate

__all__ = ["Trajectory", "walk_through", "departure_trajectory", "entry_trajectory"]


@dataclass(frozen=True)
class Trajectory:
    """A piecewise-linear, constant-speed walk through waypoints.

    Attributes
    ----------
    start_time:
        When the walk begins (seconds).
    waypoints:
        Points visited in order.  Consecutive duplicate points are allowed
        and represent a pause only if ``segment_durations`` says so.
    segment_durations:
        Duration of each leg (len(waypoints) - 1 entries, seconds).
    """

    start_time: float
    waypoints: Tuple[Point, ...]
    segment_durations: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        if len(self.segment_durations) != len(self.waypoints) - 1:
            raise ValueError("need exactly one duration per segment")
        if any(d < 0 for d in self.segment_durations):
            raise ValueError("segment durations must be non-negative")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")

    @property
    def duration(self) -> float:
        """Total duration of the walk (seconds)."""
        return float(sum(self.segment_durations))

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    def active_at(self, t: float) -> bool:
        """Whether the walker is en route at time ``t``."""
        return self.start_time <= t <= self.end_time

    def position_at(self, t: float) -> Point:
        """Walker position at time ``t``.

        Before the start the walker is at the first waypoint, after the end
        at the last waypoint.
        """
        if t <= self.start_time:
            return self.waypoints[0]
        if t >= self.end_time:
            return self.waypoints[-1]
        elapsed = t - self.start_time
        for i, seg_dur in enumerate(self.segment_durations):
            if elapsed <= seg_dur or i == len(self.segment_durations) - 1:
                frac = 1.0 if seg_dur <= 0 else min(elapsed / seg_dur, 1.0)
                return interpolate(self.waypoints[i], self.waypoints[i + 1], frac)
            elapsed -= seg_dur
        return self.waypoints[-1]


def walk_through(
    waypoints: Sequence[Point],
    start_time: float,
    speed_mps: float = 1.4,
    pauses: Optional[Sequence[float]] = None,
) -> Trajectory:
    """Build a constant-speed trajectory through the given waypoints.

    Parameters
    ----------
    waypoints:
        Points to visit in order.
    start_time:
        Walk start time in seconds.
    speed_mps:
        Walking speed; the paper assumes 1.4 m/s.
    pauses:
        Optional extra dwell added to each leg (e.g. the time to stand up on
        the first leg, or to open the door on the last).  Must have
        ``len(waypoints) - 1`` entries when given.
    """
    if speed_mps <= 0:
        raise ValueError("walking speed must be positive")
    pts = list(waypoints)
    if len(pts) < 2:
        raise ValueError("need at least two waypoints")
    n_legs = len(pts) - 1
    if pauses is None:
        pauses = [0.0] * n_legs
    if len(pauses) != n_legs:
        raise ValueError("pauses must have one entry per leg")
    durations: List[float] = []
    for i in range(n_legs):
        dist = pts[i].distance_to(pts[i + 1])
        durations.append(dist / speed_mps + float(pauses[i]))
    return Trajectory(
        start_time=start_time,
        waypoints=tuple(pts),
        segment_durations=tuple(durations),
    )


def departure_trajectory(
    seat: Point,
    door: Point,
    start_time: float,
    *,
    speed_mps: float = 1.4,
    stand_up_s: float = 1.0,
    door_open_s: float = 1.0,
    via: Optional[Sequence[Point]] = None,
) -> Trajectory:
    """Trajectory of a user leaving their seat and exiting through the door.

    The first leg includes the stand-up time and the final leg the time to
    open the door, matching the paper's reasoning that a 4-metre walk takes
    about five seconds in total.
    """
    waypoints: List[Point] = [seat]
    if via:
        waypoints.extend(via)
    waypoints.append(door)
    n_legs = len(waypoints) - 1
    pauses = [0.0] * n_legs
    pauses[0] += stand_up_s
    pauses[-1] += door_open_s
    return walk_through(waypoints, start_time, speed_mps=speed_mps, pauses=pauses)


def entry_trajectory(
    door: Point,
    seat: Point,
    start_time: float,
    *,
    speed_mps: float = 1.4,
    door_open_s: float = 1.0,
    sit_down_s: float = 1.0,
    via: Optional[Sequence[Point]] = None,
) -> Trajectory:
    """Trajectory of a user entering through the door and sitting down."""
    waypoints: List[Point] = [door]
    if via:
        waypoints.extend(via)
    waypoints.append(seat)
    n_legs = len(waypoints) - 1
    pauses = [0.0] * n_legs
    pauses[0] += door_open_s
    pauses[-1] += sit_down_s
    return walk_through(waypoints, start_time, speed_mps=speed_mps, pauses=pauses)

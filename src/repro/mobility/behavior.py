"""Office behaviour models.

Describes *why* and *how often* people move: the rates and durations that a
day-long schedule is drawn from.  The defaults are tuned so that a 5-day,
3-user campaign yields an event mix comparable to the paper's Table II
(about 20 departures per workstation and ~67 office entries over the week).

The behaviour layer is deliberately separate from the trajectory layer:
behaviours decide *when* a user departs and for how long they stay away;
trajectories decide the geometric path of the resulting walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["BehaviorProfile", "AbsenceSampler"]


@dataclass(frozen=True)
class BehaviorProfile:
    """Per-user behavioural parameters.

    Attributes
    ----------
    departures_per_hour:
        Mean rate at which the user leaves their workstation (short breaks,
        coffee, restroom, meetings).  The paper observed roughly 4
        departures per user per 8-hour day, i.e. ~0.5 per hour.
    mean_absence_s:
        Mean time spent outside the office per departure.
    min_absence_s:
        Minimum absence duration (a quick question next door).
    internal_moves_per_hour:
        Rate of movements inside the office that are *not* departures
        (walking to a colleague's desk, the printer, the window).  These
        cause radio fluctuations the system must not misread as departures.
    walking_speed_mps:
        The user's walking speed.
    stand_up_s:
        Time spent standing up before walking.
    arrival_jitter_s:
        Spread of the user's morning arrival around the campaign start.
    """

    departures_per_hour: float = 0.5
    mean_absence_s: float = 600.0
    min_absence_s: float = 60.0
    internal_moves_per_hour: float = 0.3
    walking_speed_mps: float = 1.4
    stand_up_s: float = 1.0
    arrival_jitter_s: float = 600.0

    def __post_init__(self) -> None:
        if self.departures_per_hour < 0 or self.internal_moves_per_hour < 0:
            raise ValueError("rates must be non-negative")
        if self.mean_absence_s <= 0 or self.min_absence_s < 0:
            raise ValueError("absence durations must be positive")
        if self.walking_speed_mps <= 0:
            raise ValueError("walking speed must be positive")


class AbsenceSampler:
    """Draws absence durations for a behaviour profile.

    Uses a log-normal distribution truncated below at ``min_absence_s``:
    most breaks are short (a few minutes) but long lunches occur.
    """

    def __init__(self, profile: BehaviorProfile, rng: Optional[np.random.Generator] = None):
        self._profile = profile
        self._rng = rng if rng is not None else np.random.default_rng()
        # Parameterise the log-normal so its mean equals mean_absence_s with
        # a coefficient of variation of ~0.8.
        cv = 0.8
        sigma2 = np.log(1.0 + cv ** 2)
        self._sigma = float(np.sqrt(sigma2))
        self._mu = float(np.log(profile.mean_absence_s) - sigma2 / 2.0)

    def sample(self) -> float:
        """One absence duration in seconds (>= the profile's minimum)."""
        value = float(self._rng.lognormal(self._mu, self._sigma))
        return max(value, self._profile.min_absence_s)

    def sample_many(self, n: int) -> np.ndarray:
        """Draw ``n`` absence durations."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return np.asarray([self.sample() for _ in range(n)])

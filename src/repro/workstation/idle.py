"""Idle-time tracking.

The KMA module's only job is to answer "which workstations have observed no
keyboard or mouse input during the last ``s`` seconds?" (paper Section
IV-B).  This module provides the underlying per-workstation idle tracker
that can be driven either online (register inputs as they happen) or from a
pre-generated :class:`~repro.workstation.activity.ActivityTrace`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .activity import ActivityTrace

__all__ = ["IdleTracker", "TraceIdleProvider"]


class IdleTracker:
    """Online idle-time tracker for a set of workstations.

    Workstations start with "no input ever seen", which counts as idle since
    the tracker's creation time.
    """

    def __init__(self, workstation_ids, start_time: float = 0.0) -> None:
        ids = list(workstation_ids)
        if not ids:
            raise ValueError("at least one workstation id is required")
        if len(set(ids)) != len(ids):
            raise ValueError("workstation ids must be unique")
        self._start = float(start_time)
        self._last_input: Dict[str, Optional[float]] = {wid: None for wid in ids}

    @property
    def workstation_ids(self) -> List[str]:
        return list(self._last_input.keys())

    def record_input(self, workstation_id: str, t: float) -> None:
        """Register a keyboard/mouse input at time ``t``."""
        if workstation_id not in self._last_input:
            raise KeyError(f"unknown workstation {workstation_id!r}")
        prev = self._last_input[workstation_id]
        if prev is not None and t < prev:
            raise ValueError("inputs must be recorded in chronological order")
        self._last_input[workstation_id] = float(t)

    def idle_time(self, workstation_id: str, t: float) -> float:
        """Seconds of inactivity at workstation ``workstation_id`` as of ``t``."""
        if workstation_id not in self._last_input:
            raise KeyError(f"unknown workstation {workstation_id!r}")
        last = self._last_input[workstation_id]
        if last is None:
            return max(t - self._start, 0.0)
        return max(t - last, 0.0)

    def idle_for(self, t: float, s: float) -> List[str]:
        """Workstations idle for at least ``s`` seconds at time ``t``.

        This is exactly the KMA query ``S_t^(s)`` of the paper.
        """
        if s < 0:
            raise ValueError("s must be non-negative")
        return [wid for wid in self._last_input if self.idle_time(wid, t) >= s]


class TraceIdleProvider:
    """Idle-time answers backed by pre-generated activity traces.

    The campaign simulator generates the whole day's input activity ahead of
    time (the paper does the same when it draws the Mikkelsen input
    distribution); this adapter serves KMA queries from those traces.
    """

    def __init__(self, traces: Mapping[str, ActivityTrace]) -> None:
        if not traces:
            raise ValueError("at least one trace is required")
        self._traces: Dict[str, ActivityTrace] = dict(traces)

    @property
    def workstation_ids(self) -> List[str]:
        return list(self._traces.keys())

    def idle_time(self, workstation_id: str, t: float) -> float:
        """Seconds of inactivity at ``workstation_id`` as of time ``t``."""
        if workstation_id not in self._traces:
            raise KeyError(f"unknown workstation {workstation_id!r}")
        return self._traces[workstation_id].idle_time_at(t)

    def idle_for(self, t: float, s: float) -> List[str]:
        """Workstations idle for at least ``s`` seconds at time ``t``."""
        if s < 0:
            raise ValueError("s must be non-negative")
        return [wid for wid in self._traces if self.idle_time(wid, t) >= s]

    def has_input_in(self, workstation_id: str, t_start: float, t_end: float) -> bool:
        """Whether the workstation saw input during ``[t_start, t_end]``."""
        return self._traces[workstation_id].has_input_in(t_start, t_end)

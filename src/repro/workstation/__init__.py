"""Workstation substrate: input activity, idle time and session state.

* :mod:`~repro.workstation.activity` — the Mikkelsen-style keyboard/mouse
  input generator the paper itself uses,
* :mod:`~repro.workstation.idle` — idle-time tracking and the KMA-style
  "idle for s seconds" query,
* :mod:`~repro.workstation.session` — the workstation session state machine
  (authenticated / alert / screensaver / deauthenticated).
"""

from .activity import (
    MIKKELSEN_ACTIVITY_PROBABILITY,
    MIKKELSEN_BIN_SECONDS,
    ActivityTrace,
    InputActivityModel,
)
from .idle import IdleTracker, TraceIdleProvider
from .session import SessionEvent, SessionState, WorkstationSession

__all__ = [
    "MIKKELSEN_ACTIVITY_PROBABILITY",
    "MIKKELSEN_BIN_SECONDS",
    "ActivityTrace",
    "IdleTracker",
    "InputActivityModel",
    "SessionEvent",
    "SessionState",
    "TraceIdleProvider",
    "WorkstationSession",
]

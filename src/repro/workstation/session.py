"""Login-session state of a workstation.

FADEWICH imposes two kinds of actions on workstations (paper Section IV-F):

* **Deauthenticate** — the current login session is terminated and
  re-authentication is required;
* **Alert state** — if the workstation then stays idle for ``t_ID`` seconds
  a screen saver activates; any input cancels the alert.

This module models that lifecycle as an explicit state machine so that the
security and usability analyses can replay it and count screen-saver
activations, deauthentications, re-logins and vulnerable time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["SessionState", "SessionEvent", "WorkstationSession"]


class SessionState(enum.Enum):
    """Authentication state of a workstation."""

    AUTHENTICATED = "authenticated"
    ALERT = "alert"
    SCREENSAVER = "screensaver"
    DEAUTHENTICATED = "deauthenticated"


@dataclass(frozen=True)
class SessionEvent:
    """A state transition of a workstation session."""

    time: float
    from_state: SessionState
    to_state: SessionState
    reason: str


@dataclass
class WorkstationSession:
    """The session state machine of one workstation.

    Parameters
    ----------
    workstation_id:
        The workstation this session belongs to.
    t_id_s:
        Alert-state idle threshold ``t_ID``: if the workstation remains idle
        this long after entering the alert state, the screen saver starts.
    initial_state:
        Starting state (authenticated by default: the user is logged in).
    """

    workstation_id: str
    t_id_s: float = 5.0
    initial_state: SessionState = SessionState.AUTHENTICATED

    _state: SessionState = field(init=False)
    _alert_since: Optional[float] = field(init=False, default=None)
    _history: List[SessionEvent] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.t_id_s < 0:
            raise ValueError("t_id_s must be non-negative")
        self._state = self.initial_state

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> SessionState:
        return self._state

    @property
    def history(self) -> List[SessionEvent]:
        """All state transitions, in order."""
        return list(self._history)

    def _transition(self, t: float, to_state: SessionState, reason: str) -> None:
        if to_state is self._state:
            return
        self._history.append(
            SessionEvent(time=t, from_state=self._state, to_state=to_state, reason=reason)
        )
        self._state = to_state

    # ------------------------------------------------------------------ #
    def deauthenticate(self, t: float, reason: str = "rule-1") -> None:
        """Apply the Deauthenticate action (Rule 1 or a time-out)."""
        self._alert_since = None
        self._transition(t, SessionState.DEAUTHENTICATED, reason)

    def enter_alert(self, t: float, reason: str = "rule-2") -> None:
        """Apply the Alert-State action (Rule 2).

        Alert has no effect on a deauthenticated workstation and does not
        restart the alert timer if the workstation is already alerted.
        """
        if self._state is SessionState.DEAUTHENTICATED:
            return
        if self._state is SessionState.ALERT:
            return
        if self._state is SessionState.SCREENSAVER:
            return
        self._alert_since = t
        self._transition(t, SessionState.ALERT, reason)

    def register_input(self, t: float) -> None:
        """Keyboard/mouse input: cancels alert and screen saver.

        Input at a deauthenticated workstation does not re-authenticate by
        itself — :meth:`reauthenticate` models the explicit re-login.
        """
        if self._state in (SessionState.ALERT, SessionState.SCREENSAVER):
            self._alert_since = None
            self._transition(t, SessionState.AUTHENTICATED, "user-input")

    def reauthenticate(self, t: float) -> None:
        """The user logs back in after a deauthentication."""
        if self._state is not SessionState.DEAUTHENTICATED:
            return
        self._alert_since = None
        self._transition(t, SessionState.AUTHENTICATED, "re-login")

    def tick(self, t: float, idle_time_s: float) -> None:
        """Advance time: promote alert to screen saver after ``t_ID`` idle.

        Parameters
        ----------
        t:
            Current time.
        idle_time_s:
            The workstation's current idle time (from KMA).
        """
        if self._state is SessionState.ALERT and self._alert_since is not None:
            if t - self._alert_since >= self.t_id_s and idle_time_s >= self.t_id_s:
                self._transition(t, SessionState.SCREENSAVER, "alert-timeout")

    # ------------------------------------------------------------------ #
    def count_transitions_to(self, state: SessionState) -> int:
        """How many times the session entered the given state."""
        return sum(1 for ev in self._history if ev.to_state is state)

    def screensaver_activations(self) -> int:
        """Number of times the screen saver started."""
        return self.count_transitions_to(SessionState.SCREENSAVER)

    def deauthentications(self) -> int:
        """Number of times the session was deauthenticated."""
        return self.count_transitions_to(SessionState.DEAUTHENTICATED)

    def is_accessible(self) -> bool:
        """Whether an adversary walking up now could use the session.

        Screen-saver and alert states keep the session authenticated (the
        paper's screen saver is a usability device, not a lock), so only
        DEAUTHENTICATED denies access.
        """
        return self._state is not SessionState.DEAUTHENTICATED

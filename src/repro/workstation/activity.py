"""Keyboard / mouse input simulation.

The paper does not use its subjects' real typing habits: it simulates
workstation input following Mikkelsen et al., who found office workers use
the keyboard or mouse in 78 % of 5-second intervals (Section VII-D).  This
module implements that generator: time is discretised into 5-second bins and
each bin independently contains input with probability ``activity_prob`` —
but only while the assigned user is actually present at the workstation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["InputActivityModel", "ActivityTrace"]

MIKKELSEN_ACTIVITY_PROBABILITY = 0.78
"""Fraction of 5-second intervals containing keyboard/mouse input
(Mikkelsen et al., as adopted by the paper)."""

MIKKELSEN_BIN_SECONDS = 5.0
"""Discretisation interval of the Mikkelsen input model."""


@dataclass(frozen=True)
class ActivityTrace:
    """Input activity of one workstation over a period.

    Attributes
    ----------
    bin_seconds:
        Width of each activity bin.
    active_bins:
        Boolean array: ``True`` where the bin contains at least one keyboard
        or mouse input.
    start_time:
        Timestamp of the beginning of the first bin.
    """

    bin_seconds: float
    active_bins: np.ndarray
    start_time: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "active_bins", np.asarray(self.active_bins, dtype=bool)
        )
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")

    @property
    def duration(self) -> float:
        return self.bin_seconds * self.active_bins.shape[0]

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    def last_input_before(self, t: float) -> Optional[float]:
        """Timestamp of the last input at or before time ``t``.

        Inputs are placed at the *end* of their bin (worst case for the
        system: the user may type right up to the moment they stand up).
        Returns ``None`` if no input occurred by ``t``.
        """
        if t < self.start_time:
            return None
        last_bin = int(np.floor((t - self.start_time) / self.bin_seconds))
        last_bin = min(last_bin, self.active_bins.shape[0] - 1)
        for b in range(last_bin, -1, -1):
            if self.active_bins[b]:
                input_time = self.start_time + (b + 1) * self.bin_seconds
                return min(input_time, t)
        return None

    def idle_time_at(self, t: float) -> float:
        """Seconds since the last input as of time ``t``.

        If no input has ever occurred, the idle time counts from the start
        of the trace.
        """
        last = self.last_input_before(t)
        if last is None:
            return max(t - self.start_time, 0.0)
        return max(t - last, 0.0)

    def has_input_in(self, t_start: float, t_end: float) -> bool:
        """Whether any input bin overlaps ``[t_start, t_end]``."""
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        first = max(int(np.floor((t_start - self.start_time) / self.bin_seconds)), 0)
        last = int(np.floor((t_end - self.start_time) / self.bin_seconds))
        last = min(last, self.active_bins.shape[0] - 1)
        if first > last:
            return False
        return bool(self.active_bins[first : last + 1].any())

    # ------------------------------------------------------------------ #
    # Columnar queries (used by the array replay fast path).  Each is the
    # vectorised form of its scalar counterpart above and must return the
    # same answers element for element.
    # ------------------------------------------------------------------ #
    def idle_times_at(self, times: np.ndarray) -> np.ndarray:
        """:meth:`idle_time_at` evaluated at many instants at once."""
        t = np.asarray(times, dtype=float)
        n_bins = self.active_bins.shape[0]
        rel = t - self.start_time
        active_idx = np.flatnonzero(self.active_bins)
        if active_idx.size == 0:
            # No input ever: idle since the start of the trace.
            return np.maximum(rel, 0.0)
        last_bin = np.minimum(
            np.floor(rel / self.bin_seconds).astype(np.int64), n_bins - 1
        )
        # Most recent active bin at or before each queried bin.
        pos = np.searchsorted(active_idx, last_bin, side="right") - 1
        has_input = (pos >= 0) & (rel >= 0)
        found = active_idx[np.clip(pos, 0, None)]
        input_time = self.start_time + (found + 1) * self.bin_seconds
        last = np.minimum(input_time, t)
        return np.where(
            has_input,
            np.maximum(t - last, 0.0),
            np.maximum(t - self.start_time, 0.0),
        )

    def has_input_in_many(
        self, t_starts: np.ndarray, t_ends: np.ndarray
    ) -> np.ndarray:
        """:meth:`has_input_in` evaluated over many intervals at once."""
        t_starts = np.asarray(t_starts, dtype=float)
        t_ends = np.asarray(t_ends, dtype=float)
        if np.any(t_ends < t_starts):
            raise ValueError("t_end must be >= t_start")
        n_bins = self.active_bins.shape[0]
        first = np.maximum(
            np.floor((t_starts - self.start_time) / self.bin_seconds).astype(np.int64),
            0,
        )
        last = np.minimum(
            np.floor((t_ends - self.start_time) / self.bin_seconds).astype(np.int64),
            n_bins - 1,
        )
        counts = np.concatenate([[0], np.cumsum(self.active_bins)])
        valid = first <= last
        first_c = np.clip(first, 0, n_bins)
        last_c = np.clip(last, -1, n_bins - 1)
        return valid & (counts[last_c + 1] - counts[first_c] > 0)


class InputActivityModel:
    """Generates Mikkelsen-style activity traces gated by user presence.

    Parameters
    ----------
    activity_prob:
        Probability that a 5-second bin contains input while the user is at
        the workstation.
    bin_seconds:
        Bin width (5 s in the paper).
    rng:
        Random generator.
    """

    def __init__(
        self,
        activity_prob: float = MIKKELSEN_ACTIVITY_PROBABILITY,
        bin_seconds: float = MIKKELSEN_BIN_SECONDS,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= activity_prob <= 1.0:
            raise ValueError("activity_prob must be in [0, 1]")
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        self._p = activity_prob
        self._bin = bin_seconds
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def activity_prob(self) -> float:
        return self._p

    @property
    def bin_seconds(self) -> float:
        return self._bin

    def generate(
        self,
        duration_s: float,
        presence_intervals: Sequence[Tuple[float, float]],
        start_time: float = 0.0,
    ) -> ActivityTrace:
        """Generate an activity trace for one workstation.

        Parameters
        ----------
        duration_s:
            Length of the trace.
        presence_intervals:
            List of ``(t_start, t_end)`` intervals (relative to
            ``start_time``) during which the assigned user is seated at the
            workstation.  Bins outside every interval never contain input.
        start_time:
            Timestamp of the first bin.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        n_bins = int(np.ceil(duration_s / self._bin))
        active = self._rng.random(n_bins) < self._p

        presence_mask = np.zeros(n_bins, dtype=bool)
        for t_start, t_end in presence_intervals:
            if t_end < t_start:
                raise ValueError("presence interval end precedes start")
            first = max(int(np.floor(t_start / self._bin)), 0)
            last = min(int(np.ceil(t_end / self._bin)), n_bins)
            presence_mask[first:last] = True

        return ActivityTrace(
            bin_seconds=self._bin,
            active_bins=active & presence_mask,
            start_time=start_time,
        )

    def generate_always_present(
        self, duration_s: float, start_time: float = 0.0
    ) -> ActivityTrace:
        """Convenience: a trace where the user never leaves the workstation."""
        return self.generate(duration_s, [(0.0, duration_s)], start_time=start_time)

"""Persistent, resumable storage of scenario-sweep results.

PR 3's sweep engine made scenario grids cheap to *run*, but every
``ScenarioSweepRunner.run()`` started from zero: an interrupted 200-point
grid lost all completed work.  This module adds the persistence layer:

* a **component codec** (:func:`component_to_dict` /
  :func:`component_from_dict`) that round-trips the frozen configuration
  dataclasses a scenario is made of — :class:`~repro.core.config.FadewichConfig`,
  :class:`~repro.radio.channel.ChannelConfig`,
  :class:`~repro.analysis.campaign.CampaignScale`,
  :class:`~repro.radio.office.OfficeLayout` and their nested parts —
  through plain JSON, reconstructing value-equal objects;
* a **content hash** (:func:`content_hash`) over the canonical JSON
  encoding, used to key store records by what a scenario *means* rather
  than what it is called;
* the :class:`SweepStore` itself: one JSON record per grid point, written
  atomically (temp file + ``os.replace``), keyed by the scenario name
  **and** a structured key carrying the sweep's root-seed fingerprint and
  the scenario's configuration content hash.  A record whose key does not
  match the requested one is treated as stale and never returned — a
  changed ``FadewichConfig`` (or root seed, or behaviour scale...) can
  therefore never silently resurrect results computed under the old
  definition.

The store deliberately deals in plain dicts: the scenario types serialise
themselves (``ScenarioResult.to_dict`` / ``from_dict`` in
:mod:`repro.analysis.scenarios`), which keeps this module free of circular
imports and makes records greppable JSON on disk.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Type

from ..core.config import FadewichConfig, MDConfig, REConfig
from ..detectors import EmaMadDetector, KdeMdDetector, VarianceThresholdDetector
from ..features.rolling import RollingStdExtractor
from ..radio.channel import ChannelConfig
from ..reliability.faults import (
    STORE_CORRUPT,
    STORE_FSYNC,
    STORE_READ,
    STORE_WRITE,
    as_injector,
)
from ..radio.fading import QuiescentNoise, SkewLaplace
from ..radio.geometry import Point
from ..radio.office import OfficeLayout, Sensor, Workstation
from ..radio.pathloss import FreeSpacePathLoss, LogDistancePathLoss
from ..radio.shadowing import BodyShadowingModel
from ..zones.attenuation import AttenuationExtractor
from ..zones.estimator import ZoneOccupancyEstimator
from ..zones.map import Zone, ZoneMap
from .campaign import CampaignScale

__all__ = [
    "component_to_dict",
    "component_from_dict",
    "content_hash",
    "name_slug",
    "register_component",
    "result_checksum",
    "SweepStore",
    "StoreStats",
]

#: Key under which the codec stores a dataclass's registered type name.
_TYPE_KEY = "__type__"

#: Version stamp written into every record; bumped when the record layout
#: changes incompatibly, so old files read as stale instead of crashing.
#: Format 2 added the mandatory ``checksum`` field (SHA-256 of the result
#: payload, verified on read).
RECORD_FORMAT = 2

# --------------------------------------------------------------------------- #
# Component codec
# --------------------------------------------------------------------------- #

#: Types the decoder may reconstruct.  Encoding accepts *any* dataclass;
#: decoding only trusts this registry, so a record cannot instantiate
#: arbitrary classes.
_COMPONENT_TYPES: Dict[str, Type] = {
    cls.__name__: cls
    for cls in (
        FadewichConfig,
        MDConfig,
        REConfig,
        ChannelConfig,
        LogDistancePathLoss,
        FreeSpacePathLoss,
        QuiescentNoise,
        SkewLaplace,
        BodyShadowingModel,
        CampaignScale,
        OfficeLayout,
        Sensor,
        Workstation,
        Point,
        KdeMdDetector,
        EmaMadDetector,
        VarianceThresholdDetector,
        RollingStdExtractor,
        AttenuationExtractor,
        Zone,
        ZoneMap,
        ZoneOccupancyEstimator,
    )
}


def register_component(cls: Type) -> Type:
    """Register an additional dataclass for decoding (custom path-loss
    models, layout subtypes...).  Returns the class, so it can be used as a
    decorator."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    _COMPONENT_TYPES[cls.__name__] = cls
    return cls


def component_to_dict(obj):
    """Encode a configuration component as JSON-ready data.

    Dataclasses become ``{"__type__": name, **fields}`` recursively;
    sequences become lists; primitives pass through.  The encoding is
    purely value-based, so two equal components encode identically —
    the property :func:`content_hash` relies on.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded = {_TYPE_KEY: type(obj).__name__}
        for f in dataclasses.fields(obj):
            encoded[f.name] = component_to_dict(getattr(obj, f.name))
        return encoded
    if isinstance(obj, (list, tuple)):
        return [component_to_dict(v) for v in obj]
    if isinstance(obj, Mapping):
        return {str(k): component_to_dict(v) for k, v in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot encode {type(obj).__name__!r} as a sweep-store component"
    )


def component_from_dict(data):
    """Decode :func:`component_to_dict` output back into value-equal objects.

    JSON arrays decode to tuples (the frozen configuration dataclasses all
    use tuple fields, and dataclass equality distinguishes list from
    tuple); only registered dataclass types are instantiated.
    """
    if isinstance(data, Mapping):
        if _TYPE_KEY in data:
            type_name = data[_TYPE_KEY]
            cls = _COMPONENT_TYPES.get(type_name)
            if cls is None:
                raise ValueError(
                    f"unknown component type {type_name!r}; register it "
                    "with repro.analysis.sweep_store.register_component"
                )
            kwargs = {
                k: component_from_dict(v)
                for k, v in data.items()
                if k != _TYPE_KEY
            }
            return cls(**kwargs)
        return {k: component_from_dict(v) for k, v in data.items()}
    if isinstance(data, list):
        return tuple(component_from_dict(v) for v in data)
    return data


#: Longest sanitised-name prefix kept in an on-disk filename.  The hash
#: suffix carries the identity; the slug is only for greppability, and an
#: unbounded one would overflow common 255-byte filename limits (a grid
#: path name concatenates every axis name).
_MAX_SLUG_CHARS = 80


def name_slug(name: str) -> str:
    """A filesystem-safe, collision-free slug of an arbitrary name.

    ``<sanitised prefix>-<10 hex chars of SHA-256(name)>``: the sanitised
    prefix keeps store directories greppable, while the hash suffix makes
    distinct names — path-separator tricks (``a/b`` vs ``a_b``), dot
    segments, case-colliding variants on case-insensitive filesystems,
    over-long names sharing a truncated prefix — map to distinct slugs.
    The result is always a single path component: separators are replaced
    before truncation and the output is verified to contain none.

    Raises ``ValueError`` for non-string or empty names and for names
    containing NUL (which the OS would reject much less legibly).
    """
    if not isinstance(name, str):
        raise TypeError(f"name must be a str, got {type(name).__name__}")
    if not name:
        raise ValueError("name must be non-empty")
    if "\x00" in name:
        raise ValueError("name must not contain NUL")
    # Stripping dots at the edges keeps slugs from starting with "." (a
    # hidden file, or a dot segment for all-dot names like "..").
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_.")[:_MAX_SLUG_CHARS]
    if not slug:
        slug = "scenario"
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:10]
    filename = f"{slug}-{digest}"
    # Defence in depth: whatever the sanitiser missed must never escape
    # the store directory as a path component.
    if os.sep in filename or (os.altsep and os.altsep in filename):
        raise ValueError(f"unsafe name {name!r}: slug {filename!r}")
    return filename


def content_hash(*components) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of components.

    This is the staleness key of the store: records carry the hash of the
    configuration content they were computed under, so renaming an axis
    value cannot alias two different configurations and editing a
    configuration in place cannot reuse results computed under the old
    values.
    """
    encoded = [component_to_dict(c) for c in components]
    canonical = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_checksum(result) -> str:
    """SHA-256 hex digest of a result payload's canonical JSON.

    The integrity stamp of a store record: ``put`` computes it over the
    JSON-normalised payload (so what is hashed is exactly what a reader
    will parse back) and ``get`` recomputes it over the parsed payload —
    any bitrot, torn write or hand-edit of the result block makes the two
    disagree and the record is quarantined instead of trusted.
    """
    normalised = json.loads(json.dumps(result))
    canonical = json.dumps(normalised, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------------- #

#: Read-failure sentinels returned by ``SweepStore._load_raw``; distinct
#: objects so ``None``-valued JSON can never masquerade as a failure.
_MISSING = object()
_IOERROR = object()
_UNPARSEABLE = object()


@dataclass
class StoreStats:
    """Counters of one store's lifetime (reset with :meth:`SweepStore.reset_stats`).

    ``stale`` counts records that existed under the requested name but
    could not be reused: a key (root seed, configuration content hash...)
    that did not match, an incompatible record ``format`` version, or a
    missing/mangled fingerprint or result block — the silent-reuse hazards
    the key scheme exists to catch.  ``corrupt`` counts records whose
    *bytes* betrayed them — unparseable JSON or a result block failing
    its checksum — which :meth:`SweepStore.get` quarantines to a
    ``.corrupt`` file instead of silently re-reading as a miss on every
    resume.  Every :meth:`SweepStore.get` lands in exactly one bucket, so
    ``hits + misses + stale + corrupt == lookups`` at all times.

    All mutation goes through the ``count_*`` methods under one lock: a
    :class:`SweepStore` shared by several worker threads (the cooperative
    sweep-queue mode) must not lose increments to the classic
    read-modify-write race of bare ``+=`` on ints.
    """

    hits: int = 0
    misses: int = 0
    stale: int = 0
    corrupt: int = 0
    writes: int = 0
    lookups: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def count_hit(self) -> None:
        with self._lock:
            self.lookups += 1
            self.hits += 1

    def count_miss(self) -> None:
        with self._lock:
            self.lookups += 1
            self.misses += 1

    def count_stale(self) -> None:
        with self._lock:
            self.lookups += 1
            self.stale += 1

    def count_corrupt(self) -> None:
        with self._lock:
            self.lookups += 1
            self.corrupt += 1

    def count_write(self) -> None:
        with self._lock:
            self.writes += 1

    def reclassify_hit_as_stale(self) -> None:
        """Atomically move one lookup from ``hits`` to ``stale``.

        Used when a key-matching record turns out to have an unusable
        payload only after decoding: the lookup was already counted as a
        hit, and the partition invariant must survive the correction.
        """
        with self._lock:
            self.hits -= 1
            self.stale += 1

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(
                hits=self.hits,
                misses=self.misses,
                stale=self.stale,
                corrupt=self.corrupt,
                writes=self.writes,
                lookups=self.lookups,
            )


class SweepStore:
    """One JSON record per completed grid point, atomically written.

    Parameters
    ----------
    path:
        Directory of the store; created on first use.  Each scenario gets
        one file named after a sanitised slug of its grid-path name plus a
        short name hash (so distinct names can never collide on disk).

    Records are looked up by ``(name, key)``: ``key`` is the structured
    staleness fingerprint the runner builds
    (:meth:`~repro.analysis.scenarios.ScenarioSweepRunner.store_key` —
    root-seed entropy and spawn key, the scenario's simulation-seed index,
    the analysis seed, the evaluated sensor counts and the configuration
    content hash).  A record with a non-matching key is *stale*: ``get``
    returns ``None`` and the record stays on disk untouched (re-running the
    old sweep would find it again); ``put`` simply overwrites it.

    Writes are atomic and durable — the record is serialised to a
    temporary file in the store directory, ``fsync``-ed, and
    ``os.replace``-d into place — so a killed sweep leaves either the old
    record or the new one, never a torn file.  Every record carries a
    SHA-256 checksum of its result payload (:func:`result_checksum`),
    verified on read: a record whose bytes fail to parse or whose payload
    fails its checksum is *quarantined* — atomically renamed to a
    ``.corrupt`` sibling for post-mortem inspection, counted in
    :attr:`StoreStats.corrupt` — instead of being silently re-read (and
    re-missed) on every resume.  Transient I/O errors, by contrast, read
    as plain misses with the file left untouched: an EIO must never
    destroy a good record.

    ``faults`` (a :class:`~repro.reliability.FaultPlan` or
    :class:`~repro.reliability.FaultInjector`) arms the reliability
    layer's injection points — ``store.read`` / ``store.write`` /
    ``store.fsync`` raise the ``OSError`` a failing disk would, and
    ``store.corrupt`` mangles the serialised bytes on their way to disk —
    all *inside* the production read/write paths, so what the chaos suite
    exercises is exactly the code a real fault would hit.
    """

    def __init__(self, path, *, faults=None) -> None:
        self._path = Path(path)
        self._path.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()
        self._faults = as_injector(faults)

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        return self._path

    @property
    def faults(self):
        """The armed :class:`~repro.reliability.FaultInjector` (or ``None``)."""
        return self._faults

    @faults.setter
    def faults(self, value) -> None:
        self._faults = as_injector(value)

    def reset_stats(self) -> None:
        self.stats = StoreStats()

    def record_path(self, name: str) -> Path:
        """The on-disk file of a scenario's record.

        Built from :func:`name_slug`, so hostile or merely awkward names
        (path separators, ``..`` segments, case collisions, over-long grid
        paths) can neither escape the store directory nor overwrite a
        sibling record.
        """
        return self._path / f"{name_slug(name)}.json"

    def lease_path(self, name: str) -> Path:
        """The on-disk lease file of a name (see :mod:`~repro.analysis.sweep_queue`).

        Leases share the record naming scheme but carry a ``.lease``
        suffix, so they are invisible to :meth:`names` (which globs
        ``*.json``) and can never collide with a record file.
        """
        return self._path / f"{name_slug(name)}.lease"

    @staticmethod
    def _normalise_key(key: Mapping) -> Dict:
        """The key as it reads back from JSON (tuples to lists etc.)."""
        return json.loads(json.dumps(dict(key), sort_keys=True))

    @staticmethod
    def _valid_record(record) -> bool:
        """Whether parsed JSON has the shape of a record we wrote.

        Anything else — foreign files, mangled payloads — is invisible to
        :meth:`names`, never a crash.
        """
        return (
            isinstance(record, dict)
            and record.get("format") == RECORD_FORMAT
            and isinstance(record.get("name"), str)
            and isinstance(record.get("result"), dict)
        )

    def _load_raw(self, name: str):
        """The parsed JSON at a scenario's path, or a failure sentinel.

        Distinguishes the three ways a read can fail, because they demand
        different handling: ``_MISSING`` (no file), ``_IOERROR``
        (transient I/O failure — the file may be fine, leave it alone)
        and ``_UNPARSEABLE`` (the bytes themselves are bad — quarantine).
        """
        path = self.record_path(name)
        if self._faults is not None:
            spec = self._faults.fired(STORE_READ)
            if spec is not None:
                return _IOERROR
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return _MISSING
        except OSError:
            return _IOERROR
        try:
            return json.loads(text)
        except ValueError:
            return _UNPARSEABLE

    def quarantine_path(self, name: str) -> Path:
        """Where a scenario's record lands if it is found corrupt."""
        return self.record_path(name).with_suffix(".corrupt")

    def corrupt_files(self) -> List[Path]:
        """Quarantined record files currently in the store, sorted."""
        return sorted(self._path.glob("*.corrupt"))

    def _quarantine(self, name: str) -> None:
        """Atomically move a corrupt record out of the record namespace.

        The ``.corrupt`` sibling keeps the bytes for post-mortem while
        freeing the slot, so the scenario recollects cleanly (a fresh
        ``put`` just writes the record file anew).  Best-effort: if the
        rename itself fails the record is left in place and will be
        re-detected next read.
        """
        try:
            os.replace(self.record_path(name), self.quarantine_path(name))
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def get(self, name: str, key: Mapping) -> Optional[Dict]:
        """The stored result payload of a scenario, or ``None``.

        ``None`` means no record, an untrustworthy one, or a corrupt one
        — the caller recomputes in all cases.  The counter taxonomy
        partitions every lookup:

        * **miss** — no file, a transient I/O error (the file is left
          untouched), or a file that is not one of *this scenario's*
          records (non-dict payload, name mismatch — a foreign file
          squatting on the slot);
        * **stale** — a record of the requested scenario that cannot be
          reused: written under a different key (root seed, configuration
          content hash...), an incompatible ``format`` version, or with a
          missing/mangled fingerprint or result block;
        * **corrupt** — the record's *bytes* are bad: unparseable JSON,
          or a result payload failing its SHA-256 checksum.  The file is
          quarantined to ``.corrupt`` so the slot recollects cleanly;
        * **hit** — format, name, key, result and checksum all check out.
        """
        record = self._load_raw(name)
        if record is _MISSING or record is _IOERROR:
            self.stats.count_miss()
            return None
        if record is _UNPARSEABLE:
            self._quarantine(name)
            self.stats.count_corrupt()
            return None
        if not isinstance(record, dict) or record.get("name") != name:
            self.stats.count_miss()
            return None
        if (
            record.get("format") != RECORD_FORMAT
            or not isinstance(record.get("result"), dict)
            or record.get("key") != self._normalise_key(key)
        ):
            self.stats.count_stale()
            return None
        if record.get("checksum") != result_checksum(record["result"]):
            self._quarantine(name)
            self.stats.count_corrupt()
            return None
        self.stats.count_hit()
        return record["result"]

    def put(self, name: str, key: Mapping, result: Mapping) -> Path:
        """Atomically and durably persist one scenario's result payload.

        The record (with its payload checksum) is serialised to a temp
        file, flushed and ``fsync``-ed, then ``os.replace``-d into place:
        a crash at any instant leaves either the previous complete record
        or the new one, and the new one only after its bytes are durable.
        """
        record = {
            "format": RECORD_FORMAT,
            "name": name,
            "key": self._normalise_key(key),
            "result": result,
            "checksum": result_checksum(result),
        }
        path = self.record_path(name)
        if self._faults is not None:
            spec = self._faults.fired(STORE_WRITE)
            if spec is not None:
                raise OSError(f"injected fault at {STORE_WRITE!r}")
        text = json.dumps(record, indent=2, sort_keys=True) + "\n"
        if self._faults is not None:
            spec = self._faults.fired(STORE_CORRUPT)
            if spec is not None:
                # Bitrot stand-in: publish only half the serialised bytes.
                text = text[: len(text) // 2]
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem + ".", suffix=".tmp", dir=self._path
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                if self._faults is not None:
                    spec = self._faults.fired(STORE_FSYNC)
                    if spec is not None:
                        raise OSError(f"injected fault at {STORE_FSYNC!r}")
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.count_write()
        return path

    def delete(self, name: str) -> bool:
        """Remove a scenario's record; ``True`` if one existed."""
        try:
            os.unlink(self.record_path(name))
            return True
        except FileNotFoundError:
            return False

    def names(self) -> List[str]:
        """Names of all readable records, sorted."""
        found = []
        for path in sorted(self._path.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, ValueError):
                continue
            if self._valid_record(record):
                found.append(record["name"])
        return sorted(found)

    def __len__(self) -> int:
        return len(self.names())

    def clear(self) -> int:
        """Delete every record; returns how many were removed.

        Lease files (``*.lease``, written by the cooperative sweep queue)
        are swept away too — a cleared store must not leave claims behind
        that would block the next fleet from ever collecting the names
        they squat on — but only records count toward the return value.
        """
        removed = 0
        for name in self.names():
            removed += bool(self.delete(name))
        for lease in self._path.glob("*.lease"):
            try:
                os.unlink(lease)
            except OSError:
                pass
        return removed

"""Per-table / per-figure reproduction code.

Each module computes the data behind one of the paper's tables or figures
and renders it as text:

* :mod:`~repro.analysis.events_table` — Table II,
* :mod:`~repro.analysis.md_profile` — Figure 2,
* :mod:`~repro.analysis.md_performance` — Table III and Figure 7,
* :mod:`~repro.analysis.re_performance` — Figure 8,
* :mod:`~repro.analysis.security_eval` — Figures 9 and 10,
* :mod:`~repro.analysis.usability_eval` — Table IV,
* :mod:`~repro.analysis.feature_analysis` — Figures 11-12 and Table V,
* :mod:`~repro.analysis.comparison` — Figure 13.

:mod:`~repro.analysis.campaign` provides the shared campaign collection and
the :class:`~repro.analysis.campaign.AnalysisContext` cache they all build
on; :mod:`~repro.analysis.scenarios` sweeps grids of whole scenarios
(layouts x behaviours x channels x configs x replicates) through the batch
engines and aggregates the results into one report;
:mod:`~repro.analysis.sweep_queue` lets N processes/hosts cooperatively
fill one :class:`~repro.analysis.sweep_store.SweepStore` through expiring
lease-file claims (:func:`~repro.analysis.sweep_queue.run_prioritized`
batches named grids in priority order).
"""

from .campaign import AnalysisContext, CampaignScale, collect_campaign
from .comparison import TradeoffPoint, compute_tradeoff, render_tradeoff
from .events_table import EventTable, compute_event_table, render_event_table
from .feature_analysis import (
    StreamImportanceResult,
    VarianceCorrelationResult,
    compute_rmi_ranking,
    compute_stream_importance,
    compute_variance_correlations,
    render_rmi_table,
    render_stream_importance,
    render_variance_correlations,
)
from .md_performance import (
    FMeasureCurve,
    MDTableRow,
    compute_fmeasure_curves,
    compute_md_table,
    render_fmeasure_curves,
    render_md_table,
)
from .md_profile import StdProfileResult, compute_std_profile, render_std_profile
from .re_performance import (
    AccuracyCurve,
    compute_learning_curves,
    render_learning_curves,
)
from .scenarios import (
    ScenarioGrid,
    ScenarioResult,
    ScenarioSpec,
    ScenarioSweepRunner,
    SweepReport,
    SweepRunStats,
)
from .sweep_queue import (
    GridJob,
    LeaseManager,
    PrioritizedRunResult,
    SweepWorker,
    SweepWorkerStats,
    run_prioritized,
)
from .sweep_store import StoreStats, SweepStore
from .security_eval import (
    AttackOpportunityRow,
    DeauthCurve,
    compute_attack_opportunities,
    compute_deauth_curves,
    render_attack_opportunities,
    render_deauth_curves,
)
from .usability_eval import (
    UsabilityTableRow,
    build_usability_inputs,
    compute_usability_table,
    presence_intervals_from_events,
    render_usability_table,
)

__all__ = [
    "AccuracyCurve",
    "AnalysisContext",
    "AttackOpportunityRow",
    "CampaignScale",
    "DeauthCurve",
    "EventTable",
    "FMeasureCurve",
    "GridJob",
    "LeaseManager",
    "MDTableRow",
    "PrioritizedRunResult",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioSweepRunner",
    "StdProfileResult",
    "StoreStats",
    "StreamImportanceResult",
    "SweepReport",
    "SweepRunStats",
    "SweepStore",
    "SweepWorker",
    "SweepWorkerStats",
    "TradeoffPoint",
    "UsabilityTableRow",
    "VarianceCorrelationResult",
    "build_usability_inputs",
    "collect_campaign",
    "compute_attack_opportunities",
    "compute_deauth_curves",
    "compute_event_table",
    "compute_fmeasure_curves",
    "compute_learning_curves",
    "compute_md_table",
    "compute_rmi_ranking",
    "compute_std_profile",
    "compute_stream_importance",
    "compute_tradeoff",
    "compute_usability_table",
    "compute_variance_correlations",
    "presence_intervals_from_events",
    "render_attack_opportunities",
    "render_deauth_curves",
    "render_event_table",
    "render_fmeasure_curves",
    "render_learning_curves",
    "render_md_table",
    "render_rmi_table",
    "render_std_profile",
    "render_stream_importance",
    "render_tradeoff",
    "render_usability_table",
    "render_variance_correlations",
    "run_prioritized",
]

"""Reproduction of Table II: labelled events collected during the campaign.

The paper's 40-hour campaign yielded 130 labelled events: 67 office entries
(``w0``) and roughly 20 departures per workstation.  The simulated campaign
regenerates a histogram of the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..simulation.collector import CampaignRecording

__all__ = ["EventTable", "compute_event_table", "render_event_table"]


@dataclass(frozen=True)
class EventTable:
    """The Table II label histogram."""

    counts: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def entries(self) -> int:
        return self.counts.get("w0", 0)

    @property
    def departures(self) -> int:
        return self.total - self.entries

    def departure_balance(self) -> float:
        """Ratio of the least to the most frequent departure label.

        1.0 means perfectly balanced workstations (the paper's 21/20/22 is
        nearly balanced); 0.0 means some workstation never produced a
        departure.
        """
        per_ws = [n for label, n in self.counts.items() if label != "w0"]
        if not per_ws or max(per_ws) == 0:
            return 0.0
        return min(per_ws) / max(per_ws)


def compute_event_table(recording: CampaignRecording) -> EventTable:
    """Aggregate the labelled events of a recorded campaign."""
    return EventTable(counts=dict(recording.label_counts()))


def render_event_table(table: EventTable) -> str:
    """Render Table II in the paper's format."""
    labels = sorted(table.counts.keys(), key=lambda x: (x != "w0", x))
    lines = [
        "Table II: number of labelled events collected",
        " | ".join(f"{label:>5}" for label in labels),
        " | ".join(f"{table.counts[label]:>5}" for label in labels),
        f"total: {table.total} (entries: {table.entries}, departures: {table.departures})",
    ]
    return "\n".join(lines)

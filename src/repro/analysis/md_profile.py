"""Reproduction of Figure 2: distribution of the sum of standard deviations.

The figure contrasts the ``s_t`` values observed while the office is quiet
("normal") with those observed while a user is walking, together with the
Gaussian-KDE density of the normal profile and its 99th percentile.

The percentile line is produced by the shared safeguarded-Newton quantile
engine (:func:`repro.ml.kde.mixture_quantiles`) — the same threshold rule
Algorithm 1 now uses online and in the lockstep grid, within ``1e-6`` of
the retained bisection rule it re-pinned (``bisect_quantiles``), so the
figure's threshold is exactly the one the detector acts on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.config import FadewichConfig
from ..core.movement import rolling_std_matrix
from ..core.windows import true_window_for_event
from ..ml.kde import GaussianKDE
from ..mobility.events import EventKind
from ..simulation.collector import CampaignRecording

__all__ = ["StdProfileResult", "compute_std_profile", "render_std_profile"]


@dataclass(frozen=True)
class StdProfileResult:
    """The data behind Figure 2.

    Attributes
    ----------
    normal_values:
        ``s_t`` samples observed while nobody was moving.
    walking_values:
        ``s_t`` samples observed inside a ground-truth movement window.
    kde_grid / kde_density:
        Evaluation grid and normal-profile density (the solid line).
    percentile_99:
        The 99th percentile of the normal profile (the anomaly threshold).
    """

    normal_values: np.ndarray
    walking_values: np.ndarray
    kde_grid: np.ndarray
    kde_density: np.ndarray
    percentile_99: float

    @property
    def separation(self) -> float:
        """Difference between the walking and normal medians (in std-sum units)."""
        if self.walking_values.size == 0 or self.normal_values.size == 0:
            return 0.0
        return float(
            np.median(self.walking_values) - np.median(self.normal_values)
        )


def compute_std_profile(
    recording: CampaignRecording,
    config: Optional[FadewichConfig] = None,
    day_index: int = 0,
) -> StdProfileResult:
    """Compute the Figure 2 distributions from one recorded day."""
    cfg = config if config is not None else FadewichConfig()
    day = recording.days[day_index]
    trace = day.trace
    rate = 1.0 / trace.sample_interval
    window_samples = max(int(round(cfg.md.std_window_s * rate)), 2)
    # The per-stream rolling matrix is the same shared feature matrix the
    # evaluation pipeline slices; summing its columns gives the s_t series.
    times, std_matrix = rolling_std_matrix(trace, window_samples)
    std_sums = std_matrix.sum(axis=1)

    # "Walking" samples are those inside the actual movement interval (from
    # the moment the user starts moving to the moment they reach the door or
    # their seat); the slack-extended true windows used for TP/FP scoring
    # would dilute the walking distribution with quiet samples.
    moving_mask = np.zeros(times.shape[0], dtype=bool)
    excluded_mask = np.zeros(times.shape[0], dtype=bool)
    for event in day.events:
        if event.kind is EventKind.INTERNAL_MOVE:
            continue
        move_end = event.exit_time if event.exit_time is not None else event.time + 5.0
        moving_mask |= (times >= event.time) & (times <= move_end)
        tw = true_window_for_event(event, cfg.true_window_slack_s)
        excluded_mask |= (times >= tw.t_start) & (times <= tw.t_end)

    # Quiet samples exclude the slack-extended windows entirely, so that the
    # rising/falling edges of a movement pollute neither distribution.
    normal_values = std_sums[~excluded_mask]
    walking_values = std_sums[moving_mask]
    if normal_values.size == 0:
        raise ValueError("the recorded day has no quiet samples")

    kde = GaussianKDE(normal_values)
    lo = float(min(std_sums.min(), normal_values.min()))
    hi = float(max(std_sums.max(), walking_values.max() if walking_values.size else 0))
    grid = np.linspace(lo, hi, 200)
    density = kde.pdf(grid)
    return StdProfileResult(
        normal_values=normal_values,
        walking_values=walking_values,
        kde_grid=grid,
        kde_density=density,
        percentile_99=kde.percentile(99.0),
    )


def render_std_profile(result: StdProfileResult, bins: int = 12) -> str:
    """Render the Figure 2 data as a text summary with coarse histograms."""
    lines = ["Figure 2: distribution of the sum of standard deviations"]
    lines.append(
        f"normal: n={result.normal_values.size}, "
        f"median={np.median(result.normal_values):.1f}"
    )
    if result.walking_values.size:
        lines.append(
            f"walking: n={result.walking_values.size}, "
            f"median={np.median(result.walking_values):.1f}"
        )
    lines.append(f"99th percentile of the normal profile: {result.percentile_99:.1f}")
    lines.append(f"median separation (walking - normal): {result.separation:.1f}")

    lo = float(result.kde_grid.min())
    hi = float(result.kde_grid.max())
    edges = np.linspace(lo, hi, bins + 1)
    normal_hist, _ = np.histogram(result.normal_values, bins=edges, density=True)
    if result.walking_values.size:
        walking_hist, _ = np.histogram(
            result.walking_values, bins=edges, density=True
        )
    else:
        walking_hist = np.zeros(bins)
    lines.append(f"{'bin':>14} | {'normal':>8} | {'walking':>8}")
    for i in range(bins):
        lines.append(
            f"[{edges[i]:5.1f},{edges[i+1]:5.1f}) | "
            f"{normal_hist[i]:8.4f} | {walking_hist[i]:8.4f}"
        )
    return "\n".join(lines)

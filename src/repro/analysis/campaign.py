"""Shared campaign setup and caching for the reproduction experiments.

Every table and figure of the paper is computed from the same ingredients:
a recorded campaign, per-sensor-count MD evaluations, the RE sample dataset
and its cross-validated predictions.  :class:`AnalysisContext` computes each
ingredient once and caches it, so the per-figure analysis modules (and the
benchmarks) can share the work.

Two campaign scales are provided:

* ``"compact"`` (default) — five simulated days of 40 minutes each with
  proportionally higher movement rates, producing on the order of a hundred
  labelled events in a few seconds of simulation.  This is what the
  benchmarks use.
* ``"paper"`` — five 8-hour days with the paper's movement rates (about
  130 events), for users who want the full-scale run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import FadewichConfig
from ..core.evaluation import (
    CampaignStdFeatures,
    MDEvaluation,
    build_sample_dataset,
    cross_validated_predictions,
    departure_outcomes,
    evaluate_md_grid,
    sensor_subset,
)
from ..core.radio_env import RadioEnvironment
from ..core.security import DeauthOutcome
from ..mobility.behavior import BehaviorProfile
from ..radio.channel import ChannelConfig
from ..radio.office import OfficeLayout, paper_office
from ..simulation.collector import CampaignCollector, CampaignRecording
from ..simulation.dataset import SampleDataset

__all__ = ["CampaignScale", "collect_campaign", "AnalysisContext"]


@dataclass(frozen=True)
class CampaignScale:
    """Parameters of a reproduction campaign.

    Attributes
    ----------
    n_days:
        Number of simulated working days.
    day_duration_s:
        Length of each day.
    departures_per_hour / mean_absence_s / internal_moves_per_hour:
        Behaviour profile shared by all users, scaled so the campaign yields
        a Table-II-like number of events.
    """

    name: str
    n_days: int
    day_duration_s: float
    departures_per_hour: float
    mean_absence_s: float
    min_absence_s: float
    internal_moves_per_hour: float

    @staticmethod
    def compact() -> "CampaignScale":
        """Five 40-minute days with compressed movement rates (default)."""
        return CampaignScale(
            name="compact",
            n_days=5,
            day_duration_s=2400.0,
            departures_per_hour=6.5,
            mean_absence_s=150.0,
            min_absence_s=45.0,
            internal_moves_per_hour=2.0,
        )

    @staticmethod
    def paper() -> "CampaignScale":
        """Five 8-hour days with the paper's movement rates (~130 events)."""
        return CampaignScale(
            name="paper",
            n_days=5,
            day_duration_s=8 * 3600.0,
            departures_per_hour=0.55,
            mean_absence_s=600.0,
            min_absence_s=60.0,
            internal_moves_per_hour=0.3,
        )

    def behavior_profile(self) -> BehaviorProfile:
        return BehaviorProfile(
            departures_per_hour=self.departures_per_hour,
            mean_absence_s=self.mean_absence_s,
            min_absence_s=self.min_absence_s,
            internal_moves_per_hour=self.internal_moves_per_hour,
        )

    def profiles_for(self, layout: OfficeLayout) -> Dict[str, BehaviorProfile]:
        """The per-workstation profile map schedule generation expects."""
        profile = self.behavior_profile()
        return {w.workstation_id: profile for w in layout.workstations}

    def derive(self, name: Optional[str] = None, **overrides) -> "CampaignScale":
        """A copy with field overrides — the behaviour axis of scenario grids.

        ``name`` defaults to the original name suffixed with ``+`` so
        derived scales remain distinguishable in sweep reports::

            CampaignScale.compact().derive("busy", departures_per_hour=12.0)
        """
        scale = replace(self, **overrides)
        return replace(scale, name=name if name is not None else f"{self.name}+")


def collect_campaign(
    seed: int = 42,
    scale: Optional[CampaignScale] = None,
    layout: Optional[OfficeLayout] = None,
    channel_config: Optional[ChannelConfig] = None,
) -> CampaignRecording:
    """Collect one reproduction campaign.

    Parameters
    ----------
    seed:
        Seed of all stochastic components (schedules, radio noise, inputs).
        Also accepts a :class:`numpy.random.SeedSequence` (the scenario
        sweep passes derived child seeds).
    scale:
        Campaign scale; :meth:`CampaignScale.compact` when omitted.
    layout:
        Office layout; the paper's office when omitted.
    channel_config:
        Radio channel configuration; the model defaults when omitted.
    """
    scale = scale if scale is not None else CampaignScale.compact()
    layout = layout if layout is not None else paper_office()
    collector = CampaignCollector(layout, channel_config=channel_config, seed=seed)
    return collector.collect_generated(
        n_days=scale.n_days,
        day_duration_s=scale.day_duration_s,
        profiles=scale.profiles_for(layout),
    )


class AnalysisContext:
    """Caches the shared evaluation artefacts of one campaign.

    Parameters
    ----------
    recording:
        The recorded campaign (collect it with :func:`collect_campaign`).
    config:
        The FADEWICH configuration (the paper's defaults when omitted).
    seed:
        Seed of the cross-validation shuffles.
    detector:
        Optional detector-zoo member (``repro.detectors``) evaluated in
        place of the paper's KDE profile engine; ``None`` keeps the KDE
        path bit-identical to before the zoo existed.
    features:
        Optional pre-built :class:`CampaignStdFeatures` for this recording
        and config — sweeps share one across the detector axis so the
        rolling feature matrices are computed once per recording.
    """

    def __init__(
        self,
        recording: CampaignRecording,
        config: Optional[FadewichConfig] = None,
        seed: int = 0,
        *,
        detector: Optional[object] = None,
        features: Optional[CampaignStdFeatures] = None,
    ) -> None:
        self.recording = recording
        self.config = config if config is not None else FadewichConfig()
        self.layout = recording.layout
        self.detector = detector
        self._seed = seed
        # Every cache is keyed on (sensor subset, config, detector):
        # ``config`` and ``detector`` are public attributes, and a bare
        # ``n_sensors`` key would keep serving results computed under a
        # previous configuration (regression test in
        # tests/test_analysis_equivalence.py).
        self._md_cache: Dict[Tuple, MDEvaluation] = {}
        self._dataset_cache: Dict[Tuple, Tuple[RadioEnvironment, SampleDataset]] = {}
        self._prediction_cache: Dict[Tuple, Dict[int, str]] = {}
        self._outcome_cache: Dict[Tuple, List[DeauthOutcome]] = {}
        self._features_cache: Dict[FadewichConfig, CampaignStdFeatures] = {}
        if features is not None:
            if features.recording is not recording:
                raise ValueError(
                    "shared features were built for a different recording"
                )
            if features.config != self.config:
                raise ValueError(
                    "shared features were built for a different config"
                )
            self._features_cache[self.config] = features

    # ------------------------------------------------------------------ #
    @property
    def all_sensor_ids(self) -> List[str]:
        return list(self.layout.sensor_ids)

    @property
    def max_sensors(self) -> int:
        return len(self.layout.sensors)

    def sensor_ids(self, n_sensors: int) -> List[str]:
        """The first ``n_sensors`` sensor ids of the deployment."""
        return sensor_subset(self.all_sensor_ids, n_sensors)

    def _key(self, n_sensors: int) -> Tuple:
        return (tuple(self.sensor_ids(n_sensors)), self.config, self.detector)

    def _features(self) -> CampaignStdFeatures:
        """The shared rolling feature matrix of the current config, cached."""
        if self.config not in self._features_cache:
            self._features_cache[self.config] = CampaignStdFeatures(
                self.recording, self.config
            )
        return self._features_cache[self.config]

    # ------------------------------------------------------------------ #
    def md_evaluations(
        self, sensor_counts: Sequence[int]
    ) -> Dict[int, MDEvaluation]:
        """MD evaluations for several sensor counts, batch-computed.

        Uncached counts are evaluated together through
        :func:`~repro.core.evaluation.evaluate_md_grid`, so the rolling
        feature matrix is shared and all profile chains advance in
        lockstep.
        """
        counts = [int(n) for n in sensor_counts]
        missing = list(
            dict.fromkeys(n for n in counts if self._key(n) not in self._md_cache)
        )
        if missing:
            computed = evaluate_md_grid(
                self.recording,
                self.config,
                missing,
                features=self._features(),
                detector=self.detector,
            )
            for n, evaluation in computed.items():
                self._md_cache[self._key(n)] = evaluation
        return {n: self._md_cache[self._key(n)] for n in counts}

    def md_evaluation(self, n_sensors: int) -> MDEvaluation:
        """MD evaluation (TP/FP/FN and windows) for a sensor count, cached."""
        return self.md_evaluations([n_sensors])[n_sensors]

    def sample_dataset(
        self, n_sensors: int
    ) -> Tuple[RadioEnvironment, SampleDataset]:
        """The labelled RE dataset of a sensor count, cached."""
        key = self._key(n_sensors)
        if key not in self._dataset_cache:
            self._dataset_cache[key] = build_sample_dataset(
                self.md_evaluation(n_sensors), self.config, random_state=self._seed
            )
        return self._dataset_cache[key]

    def re_predictions(self, n_sensors: int) -> Dict[int, str]:
        """Out-of-fold RE predictions per sample index, cached."""
        key = self._key(n_sensors)
        if key not in self._prediction_cache:
            re_module, dataset = self.sample_dataset(n_sensors)
            self._prediction_cache[key] = cross_validated_predictions(
                re_module,
                dataset,
                rng=np.random.default_rng(self._seed),
            )
        return self._prediction_cache[key]

    def outcomes(self, n_sensors: int) -> List[DeauthOutcome]:
        """Per-departure deauthentication outcomes, cached."""
        key = self._key(n_sensors)
        if key not in self._outcome_cache:
            _, dataset = self.sample_dataset(n_sensors)
            self._outcome_cache[key] = departure_outcomes(
                self.md_evaluation(n_sensors),
                dataset,
                self.re_predictions(n_sensors),
                self.config,
            )
        return self._outcome_cache[key]

    def re_accuracy(self, n_sensors: int) -> float:
        """Out-of-fold classification accuracy of RE for a sensor count."""
        _, dataset = self.sample_dataset(n_sensors)
        predictions = self.re_predictions(n_sensors)
        if not predictions:
            return 0.0
        correct = sum(
            1
            for idx, label in predictions.items()
            if dataset.samples[idx].label == label
        )
        return correct / len(predictions)

    def sensor_sweep(self, counts: Optional[Sequence[int]] = None) -> List[int]:
        """The sensor counts swept by the paper (3..9 by default)."""
        if counts is not None:
            return [int(c) for c in counts]
        return list(range(3, self.max_sensors + 1))

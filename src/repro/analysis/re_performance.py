"""Reproduction of Figure 8: RE classification accuracy vs training size.

The paper evaluates the RE classifier with 5-fold cross-validation repeated
10 times, training on increasing numbers of samples and reporting the test
accuracy with 95 % confidence intervals, for 3 / 5 / 7 / 9 sensors.

Each curve runs through the shared-Gram fast path
(:meth:`~repro.core.radio_env.RadioEnvironment.curve_fitter`): one scaler,
one kernel and one Gram matrix per (repeat, fold), every training-size
prefix fitted on index-sliced Gram views.  The RE template itself is never
trained by the curve fits (locked by
``tests/test_analysis_and_integration.py::test_learning_curve_template_stateless``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..ml.validation import LearningCurveResult, learning_curve
from .campaign import AnalysisContext

__all__ = [
    "AccuracyCurve",
    "compute_learning_curves",
    "render_learning_curves",
]


@dataclass(frozen=True)
class AccuracyCurve:
    """One Figure 8 line: accuracy vs training-set size for a sensor count."""

    n_sensors: int
    result: LearningCurveResult

    @property
    def final_accuracy(self) -> float:
        """Accuracy at the largest evaluated training size."""
        valid = ~np.isnan(self.result.mean_accuracy)
        if not valid.any():
            return 0.0
        return float(self.result.mean_accuracy[valid][-1])


def compute_learning_curves(
    context: AnalysisContext,
    sensor_counts: Sequence[int] = (3, 5, 7, 9),
    train_sizes: Optional[Sequence[int]] = None,
    *,
    n_folds: int = 5,
    n_repeats: int = 10,
    seed: int = 0,
) -> List[AccuracyCurve]:
    """Compute the Figure 8 learning curves.

    Parameters
    ----------
    sensor_counts:
        The sensor counts plotted (3, 5, 7, 9 in the paper).
    train_sizes:
        Training-set sizes; an automatic grid up to the available number of
        training samples when omitted.
    n_folds / n_repeats:
        The paper's 5-fold cross-validation repeated 10 times.
    """
    curves: List[AccuracyCurve] = []
    plotted = [n for n in sensor_counts if n <= context.max_sensors]
    # Warm the MD cache for the whole sweep in one lockstep batch before
    # the per-count dataset extraction walks it.
    context.md_evaluations(plotted)
    for n in plotted:
        re_module, dataset = context.sample_dataset(n)
        if len(dataset) < n_folds:
            continue
        X, y = dataset.to_arrays()
        max_train = int(len(dataset) * (n_folds - 1) / n_folds)
        if train_sizes is None:
            sizes = [s for s in (5, 10, 20, 30, 40, 60, 80, 100) if s <= max_train]
            if not sizes:
                sizes = [max_train]
        else:
            sizes = [s for s in train_sizes if s <= max_train] or [max_train]
        result = learning_curve(
            None,
            X,
            y,
            sizes,
            n_folds=n_folds,
            n_repeats=n_repeats,
            rng=np.random.default_rng(seed),
            fitter=re_module.curve_fitter(),
        )
        curves.append(AccuracyCurve(n_sensors=n, result=result))
    return curves


def render_learning_curves(curves: Sequence[AccuracyCurve]) -> str:
    """Render the Figure 8 data as a text table."""
    if not curves:
        return "Figure 8: no curves (not enough samples)"
    lines = ["Figure 8: RE classification accuracy vs number of training samples"]
    for curve in curves:
        lines.append(f"-- {curve.n_sensors} sensors --")
        lines.append(f"{'train size':>10} | {'accuracy':>8} | {'ci95':>6}")
        res = curve.result
        for size, acc, ci in zip(res.train_sizes, res.mean_accuracy, res.ci95):
            if np.isnan(acc):
                continue
            lines.append(f"{size:>10} | {acc:8.3f} | {ci:6.3f}")
        lines.append(f"final accuracy: {curve.final_accuracy:.3f}")
    return "\n".join(lines)
